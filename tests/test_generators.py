"""Unit/property tests for degree sampling, partitions and the DCSBM."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import DCSBMParams, generate_dcsbm
from repro.errors import GeneratorError
from repro.generators.degree import (
    power_law_pmf,
    rescale_to_mean,
    sample_power_law_degrees,
)
from repro.generators.partition import sample_memberships
from repro.utils.rng import philox_stream


class TestPowerLawPmf:
    def test_normalized(self):
        _, pmf = power_law_pmf(2.5, 1, 100)
        assert pmf.sum() == pytest.approx(1.0)

    def test_decreasing(self):
        _, pmf = power_law_pmf(2.0, 1, 50)
        assert (np.diff(pmf) < 0).all()

    def test_support_bounds(self):
        support, _ = power_law_pmf(2.0, 3, 9)
        assert support.tolist() == [3, 4, 5, 6, 7, 8, 9]

    def test_bad_bounds(self):
        with pytest.raises(GeneratorError):
            power_law_pmf(2.0, 0, 10)
        with pytest.raises(GeneratorError):
            power_law_pmf(2.0, 5, 4)


class TestDegreeSampling:
    def test_within_bounds(self):
        rng = philox_stream(1, 2)
        d = sample_power_law_degrees(rng, 5000, 2.5, 2, 30)
        assert d.min() >= 2
        assert d.max() <= 30

    def test_heavier_tail_for_smaller_exponent(self):
        rng1 = philox_stream(3, 0)
        rng2 = philox_stream(3, 0)
        light = sample_power_law_degrees(rng1, 20000, 3.5, 1, 100)
        heavy = sample_power_law_degrees(rng2, 20000, 1.8, 1, 100)
        assert heavy.mean() > light.mean()

    def test_rescale_to_mean(self):
        rng = philox_stream(4, 0)
        d = sample_power_law_degrees(rng, 2000, 2.5, 1, 40)
        scaled = rescale_to_mean(d, 10.0)
        assert scaled.mean() == pytest.approx(10.0, rel=0.15)
        assert scaled.min() >= 1

    def test_rescale_bad_target(self):
        with pytest.raises(GeneratorError):
            rescale_to_mean(np.array([1, 2, 3]), 0.0)


class TestMemberships:
    def test_all_communities_nonempty(self):
        rng = philox_stream(5, 0)
        m = sample_memberships(rng, 50, 7)
        assert set(m.tolist()) == set(range(7))

    def test_concentration_controls_balance(self):
        rng1 = philox_stream(6, 0)
        rng2 = philox_stream(6, 0)
        balanced = sample_memberships(rng1, 3000, 5, size_concentration=200.0)
        skewed = sample_memberships(rng2, 3000, 5, size_concentration=0.5)
        cv_balanced = np.bincount(balanced).std() / np.bincount(balanced).mean()
        cv_skewed = np.bincount(skewed).std() / np.bincount(skewed).mean()
        assert cv_skewed > cv_balanced

    def test_too_many_communities(self):
        rng = philox_stream(7, 0)
        with pytest.raises(GeneratorError):
            sample_memberships(rng, 3, 5)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2**31 - 1), st.integers(1, 8))
    def test_labels_in_range(self, seed, k):
        rng = philox_stream(seed, 1)
        m = sample_memberships(rng, 40, k)
        assert m.min() >= 0
        assert m.max() < k


class TestDCSBM:
    def test_shapes_and_determinism(self):
        params = DCSBMParams(
            num_vertices=100, num_communities=4, within_between_ratio=5.0,
            mean_degree=6.0,
        )
        g1, t1 = generate_dcsbm(params, seed=9)
        g2, t2 = generate_dcsbm(params, seed=9)
        assert g1 == g2
        np.testing.assert_array_equal(t1, t2)
        assert g1.num_vertices == 100
        assert t1.shape == (100,)

    def test_different_seeds_differ(self):
        params = DCSBMParams(
            num_vertices=100, num_communities=4, within_between_ratio=5.0,
            mean_degree=6.0,
        )
        g1, _ = generate_dcsbm(params, seed=1)
        g2, _ = generate_dcsbm(params, seed=2)
        assert g1 != g2

    def test_no_self_loops(self):
        g, _ = generate_dcsbm(
            DCSBMParams(num_vertices=80, num_communities=3,
                        within_between_ratio=4.0, mean_degree=8.0),
            seed=3,
        )
        assert g.self_loops.sum() == 0

    def test_mean_degree_approximate(self):
        g, _ = generate_dcsbm(
            DCSBMParams(num_vertices=400, num_communities=4,
                        within_between_ratio=4.0, mean_degree=10.0),
            seed=4,
        )
        assert g.num_edges / g.num_vertices == pytest.approx(10.0, rel=0.15)

    def test_assortativity_scales_with_r(self):
        """Higher r must concentrate edges within communities."""
        def within_fraction(r: float) -> float:
            g, truth = generate_dcsbm(
                DCSBMParams(num_vertices=300, num_communities=4,
                            within_between_ratio=r, mean_degree=8.0),
                seed=5,
            )
            src = truth[g.edges[:, 0]]
            dst = truth[g.edges[:, 1]]
            return float((src == dst).mean())

        f1, f4, f8 = within_fraction(1.0), within_fraction(4.0), within_fraction(8.0)
        assert f1 < f4 < f8
        assert f1 == pytest.approx(0.25, abs=0.08)  # r=1: random baseline 1/C

    def test_r_one_is_unstructured(self):
        g, truth = generate_dcsbm(
            DCSBMParams(num_vertices=200, num_communities=4,
                        within_between_ratio=1.0, mean_degree=8.0),
            seed=6,
        )
        from repro.metrics import directed_modularity

        assert abs(directed_modularity(g, truth)) < 0.1

    def test_invalid_params(self):
        with pytest.raises(GeneratorError):
            generate_dcsbm(DCSBMParams(num_vertices=1, num_communities=1,
                                       within_between_ratio=1.0))
        with pytest.raises(GeneratorError):
            generate_dcsbm(DCSBMParams(num_vertices=10, num_communities=2,
                                       within_between_ratio=-1.0))

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_edges_always_valid(self, seed):
        g, truth = generate_dcsbm(
            DCSBMParams(num_vertices=60, num_communities=3,
                        within_between_ratio=3.0, mean_degree=4.0),
            seed=seed,
        )
        assert g.edges.min() >= 0
        assert g.edges.max() < 60
        assert truth.min() >= 0
        assert truth.max() < 3
