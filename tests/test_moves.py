"""Unit tests for proposal distributions and MH acceptance."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Blockmodel, Graph
from repro.sbm.moves import (
    accept_probability,
    propose_block_merge,
    propose_vertex_move,
)


@pytest.fixture
def state(medium_graph):
    graph, _ = medium_graph
    rng = np.random.default_rng(2)
    assignment = rng.integers(0, 6, graph.num_vertices)
    return graph, Blockmodel.from_assignment(graph, assignment, 6)


class TestVertexProposal:
    def test_in_range(self, state):
        graph, bm = state
        rng = np.random.default_rng(0)
        for v in range(0, graph.num_vertices, 7):
            s = propose_vertex_move(bm, graph, v, rng.random(5))
            assert 0 <= s < bm.num_blocks

    def test_isolated_vertex_uniform(self):
        graph = Graph(4, np.array([[0, 1]], dtype=np.int64))
        bm = Blockmodel.from_assignment(graph, np.array([0, 1, 2, 2]), 3)
        # vertex 3 has no edges: proposal must come from uniforms[3]
        assert propose_vertex_move(bm, graph, 3, np.array([0.9, 0.9, 0.9, 0.0])) == 0
        assert propose_vertex_move(bm, graph, 3, np.array([0.9, 0.9, 0.9, 0.99])) == 2

    def test_mixture_takes_uniform_branch(self, state):
        graph, bm = state
        # uniforms[1] = 0 always falls below C/(d_u + C)
        uniforms = np.array([0.5, 0.0, 0.5, 0.42])
        s = propose_vertex_move(bm, graph, 0, uniforms)
        assert s == int(0.42 * bm.num_blocks)

    def test_multinomial_branch_biased_to_connected_blocks(self, state):
        graph, bm = state
        # With uniforms[1] = 1.0 the exploit branch always fires; the drawn
        # block must then have nonzero row/col mass around the neighbour's
        # block (a weak but deterministic sanity check).
        rng = np.random.default_rng(1)
        for _ in range(50):
            u = rng.random(5)
            u[1] = 0.999999
            v = int(rng.integers(graph.num_vertices))
            if graph.degree[v] == 0:
                continue
            s = propose_vertex_move(bm, graph, v, u)
            assert 0 <= s < bm.num_blocks

    def test_deterministic_given_uniforms(self, state):
        graph, bm = state
        u = np.array([0.3, 0.9, 0.7, 0.1, 0.5])
        assert propose_vertex_move(bm, graph, 5, u) == propose_vertex_move(
            bm, graph, 5, u
        )


class TestMergeProposal:
    def test_never_self(self, state):
        _, bm = state
        rng = np.random.default_rng(3)
        for r in range(bm.num_blocks):
            for _ in range(20):
                s = propose_block_merge(bm, r, rng.random(4))
                assert s != r
                assert 0 <= s < bm.num_blocks

    def test_isolated_block_uniform_other(self, tiny_graph, tiny_truth):
        bm = Blockmodel.from_assignment(tiny_graph, tiny_truth, num_blocks=3)
        # block 2 is empty: must fall back to a uniform other block
        s = propose_block_merge(bm, 2, np.array([0.1, 0.1, 0.1, 0.0]))
        assert s in (0, 1)

    def test_two_blocks_always_other(self, tiny_graph, tiny_truth):
        bm = Blockmodel.from_assignment(tiny_graph, tiny_truth)
        rng = np.random.default_rng(4)
        for _ in range(20):
            assert propose_block_merge(bm, 0, rng.random(4)) == 1

    def test_single_block_rejected(self, tiny_graph):
        bm = Blockmodel.from_assignment(
            tiny_graph, np.zeros(tiny_graph.num_vertices, dtype=np.int64), 1
        )
        with pytest.raises(ValueError):
            propose_block_merge(bm, 0, np.zeros(4))


class TestAcceptProbability:
    def test_improvement_always_accepted(self):
        assert accept_probability(-5.0, 1.0, 3.0) == 1.0

    def test_neutral_move_unit(self):
        assert accept_probability(0.0, 1.0, 3.0) == 1.0

    def test_worse_move_discounted(self):
        p = accept_probability(1.0, 1.0, 3.0)
        assert p == pytest.approx(np.exp(-3.0))

    def test_beta_sharpens(self):
        assert accept_probability(1.0, 1.0, 5.0) < accept_probability(1.0, 1.0, 1.0)

    def test_hastings_rescues_worse_move(self):
        assert accept_probability(1.0, np.exp(3.0), 3.0) == 1.0

    def test_zero_hastings(self):
        assert accept_probability(-1.0, 0.0, 3.0) == 0.0

    def test_extreme_delta_underflow_guard(self):
        assert accept_probability(1e6, 1.0, 3.0) == 0.0

    def test_monotone_in_delta(self):
        deltas = [0.0, 0.5, 1.0, 2.0, 4.0]
        probs = [accept_probability(d, 1.0, 3.0) for d in deltas]
        assert all(b <= a for a, b in zip(probs, probs[1:]))


class TestBatchMergeProposals:
    def test_matches_scalar_loop(self, medium_graph):
        from repro.sbm.moves import propose_block_merges_batch

        graph, _ = medium_graph
        bm = Blockmodel.singleton(graph)
        C = bm.num_blocks
        rng = np.random.default_rng(6)
        uniforms = rng.random((C, 4, 4))
        batch = propose_block_merges_batch(bm, uniforms)
        for r in range(C):
            for j in range(uniforms.shape[1]):
                assert batch[r, j] == propose_block_merge(bm, r, uniforms[r, j])

    def test_isolated_blocks_use_fallback(self, tiny_graph):
        from repro.sbm.moves import propose_block_merges_batch

        # blocks with d_r == 0 (no incident edges) draw uniform-other
        assignment = np.zeros(tiny_graph.num_vertices, dtype=np.int64)
        assignment[0] = 1
        bm = Blockmodel.from_assignment(tiny_graph, assignment, 4)  # 2 empty
        rng = np.random.default_rng(8)
        uniforms = rng.random((4, 3, 4))
        batch = propose_block_merges_batch(bm, uniforms)
        for r in range(4):
            for j in range(3):
                expected = propose_block_merge(bm, r, uniforms[r, j])
                assert batch[r, j] == expected
                assert batch[r, j] != r

    def test_single_block_rejected(self, tiny_graph):
        from repro.sbm.moves import propose_block_merges_batch

        bm = Blockmodel.from_assignment(
            tiny_graph, np.zeros(tiny_graph.num_vertices, dtype=np.int64), 1
        )
        with pytest.raises(ValueError):
            propose_block_merges_batch(bm, np.zeros((1, 1, 4)))

    def test_bad_shape_rejected(self, medium_graph):
        from repro.sbm.moves import propose_block_merges_batch

        graph, _ = medium_graph
        bm = Blockmodel.singleton(graph)
        with pytest.raises(ValueError):
            propose_block_merges_batch(bm, np.zeros((3, 4)))
