"""Unit/integration tests for the command-line interface."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import build_parser, main


@pytest.fixture
def graph_file(tmp_path):
    """Generate a small planted graph on disk, plus its truth file."""
    graph_path = tmp_path / "g.txt"
    truth_path = tmp_path / "truth.txt"
    code = main([
        "generate", "--custom",
        "--vertices", "90", "--communities", "3", "--ratio", "9.0",
        "--mean-degree", "8.0", "--seed", "4",
        "--output", str(graph_path),
        "--truth-output", str(truth_path),
    ])
    assert code == 0
    return graph_path, truth_path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_detect_defaults(self):
        args = build_parser().parse_args(["detect", "g.txt"])
        assert args.variant == "h-sbp"
        assert args.runs == 1

    def test_generate_sources_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["generate", "--corpus", "S1", "--custom", "--output", "x.txt"]
            )

    def test_detect_accepts_registered_variants(self):
        from repro.mcmc.engine import available_variants

        for name in available_variants():
            args = build_parser().parse_args(["detect", "g.txt", "--variant", name])
            assert args.variant == name

    def test_unregistered_variant_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["detect", "g.txt", "--variant", "nope"])


class TestVariantsCommand:
    def test_lists_every_registered_spec(self, capsys):
        from repro.mcmc.engine import available_variants

        assert main(["variants", "--list"]) == 0
        out = capsys.readouterr().out
        for name in available_variants():
            assert name in out
        # plan segments are printed, not just names
        assert "serial[" in out and "frozen[" in out
        assert "barriers/sweep" in out


class TestGenerate:
    def test_corpus_graph(self, tmp_path, capsys):
        out = tmp_path / "s2.txt"
        assert main(["generate", "--corpus", "S2", "--output", str(out)]) == 0
        assert "wrote" in capsys.readouterr().out
        assert out.exists()

    def test_standin_graph_mtx(self, tmp_path):
        out = tmp_path / "wiki.mtx"
        assert main(["generate", "--standin", "wiki-Vote", "--output", str(out)]) == 0
        assert out.read_text().startswith("%%MatrixMarket")

    def test_standin_truth_unavailable(self, tmp_path):
        out = tmp_path / "wiki.txt"
        code = main([
            "generate", "--standin", "wiki-Vote", "--output", str(out),
            "--truth-output", str(tmp_path / "t.txt"),
        ])
        assert code == 2

    def test_custom_truth_file(self, graph_file):
        graph_path, truth_path = graph_file
        pairs = np.loadtxt(truth_path, dtype=np.int64, comments="#")
        assert pairs.shape == (90, 2)
        assert set(pairs[:, 1]) == {0, 1, 2}


class TestInfo:
    def test_prints_stats(self, graph_file, capsys):
        graph_path, _ = graph_file
        assert main(["info", str(graph_path)]) == 0
        out = capsys.readouterr().out
        assert "V" in out and "90" in out

    def test_prints_content_digest(self, graph_file, capsys):
        from repro.graph.io import read_edge_list

        graph_path, _ = graph_file
        assert main(["info", str(graph_path)]) == 0
        out = capsys.readouterr().out
        digest_lines = [l for l in out.splitlines() if l.startswith("digest")]
        assert len(digest_lines) == 1
        # The printed address is the graph's actual content digest.
        assert read_edge_list(graph_path).digest() in digest_lines[0]


@pytest.mark.slow
class TestDetectAndCompare:
    def test_detect_json_and_output(self, graph_file, tmp_path, capsys):
        graph_path, _ = graph_file
        communities = tmp_path / "communities.txt"
        code = main([
            "detect", str(graph_path), "--variant", "h-sbp", "--seed", "3",
            "--json", "--output", str(communities),
        ])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["V"] == 90
        assert summary["communities"] >= 1
        assert 0.0 < summary["normalized_mdl"] <= 1.05
        pairs = np.loadtxt(communities, dtype=np.int64, comments="#")
        assert pairs.shape[0] == 90

    def test_detect_text_output(self, graph_file, capsys):
        graph_path, _ = graph_file
        assert main(["detect", str(graph_path), "--variant", "a-sbp",
                     "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "normalized_mdl" in out

    def test_compare_with_truth(self, graph_file, capsys):
        graph_path, truth_path = graph_file
        code = main([
            "compare", str(graph_path), "--variants", "a-sbp,h-sbp",
            "--seed", "2", "--truth", str(truth_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "NMI" in out
        assert "a-sbp" in out and "h-sbp" in out


class TestCLIErrorHandling:
    def test_missing_file_clean_error(self, capsys):
        code = main(["info", "/nonexistent/graph.txt"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_malformed_graph_clean_error(self, tmp_path, capsys):
        path = tmp_path / "bad.txt"
        path.write_text("not a graph\n")
        code = main(["info", str(path)])
        assert code == 1
        assert "error:" in capsys.readouterr().err
