"""Unit tests for the Fig. 3 correlation fits."""

from __future__ import annotations

import numpy as np
import pytest

from repro import fit_correlation


class TestFitCorrelation:
    def test_perfect_line(self):
        x = np.linspace(0, 1, 20)
        fit = fit_correlation(x, 2 * x + 1)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.p_value < 1e-10

    def test_noise_low_r2(self):
        rng = np.random.default_rng(0)
        fit = fit_correlation(rng.random(100), rng.random(100))
        assert fit.r_squared < 0.1

    def test_stronger_signal_higher_r2(self):
        rng = np.random.default_rng(1)
        x = np.linspace(0, 1, 200)
        tight = fit_correlation(x, x + rng.normal(0, 0.05, 200))
        loose = fit_correlation(x, x + rng.normal(0, 0.5, 200))
        assert tight.r_squared > loose.r_squared

    def test_n_recorded(self):
        fit = fit_correlation([1, 2, 3, 4], [1, 2, 3, 5])
        assert fit.n == 4

    def test_describe(self):
        fit = fit_correlation([1, 2, 3], [1, 2, 3])
        text = fit.describe("NMI~MDL")
        assert "NMI~MDL" in text
        assert "r^2=" in text

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            fit_correlation([1, 2], [1, 2])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            fit_correlation([1, 2, 3], [1, 2])
