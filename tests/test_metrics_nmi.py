"""Unit/property tests for NMI, entropy and mutual information."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.nmi import (
    contingency_table,
    entropy,
    mutual_information,
    normalized_mutual_information,
)

labelings = st.lists(st.integers(0, 4), min_size=2, max_size=40).map(
    lambda xs: np.asarray(xs, dtype=np.int64)
)


class TestContingency:
    def test_counts(self):
        x = np.array([0, 0, 1, 1])
        y = np.array([0, 1, 1, 1])
        table = contingency_table(x, y)
        assert table.tolist() == [[1, 1], [0, 2]]

    def test_densifies_labels(self):
        x = np.array([10, 10, 99])
        y = np.array([5, 7, 7])
        table = contingency_table(x, y)
        assert table.shape == (2, 2)
        assert table.sum() == 3

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            contingency_table(np.array([0, 1]), np.array([0]))


class TestEntropy:
    def test_uniform(self):
        assert entropy(np.array([0, 1, 2, 3])) == pytest.approx(np.log(4))

    def test_constant_zero(self):
        assert entropy(np.array([7, 7, 7])) == 0.0

    def test_empty(self):
        assert entropy(np.array([], dtype=np.int64)) == 0.0


class TestMutualInformation:
    def test_identical_equals_entropy(self):
        x = np.array([0, 0, 1, 2, 2, 2])
        assert mutual_information(x, x) == pytest.approx(entropy(x))

    def test_independent_near_zero(self):
        rng = np.random.default_rng(0)
        x = rng.integers(0, 3, 30000)
        y = rng.integers(0, 3, 30000)
        assert mutual_information(x, y) < 0.001

    @settings(max_examples=50, deadline=None)
    @given(labelings, labelings)
    def test_nonnegative_and_symmetric(self, x, y):
        n = min(len(x), len(y))
        x, y = x[:n], y[:n]
        mi = mutual_information(x, y)
        assert mi >= 0.0
        assert mi == pytest.approx(mutual_information(y, x))

    @settings(max_examples=50, deadline=None)
    @given(labelings)
    def test_bounded_by_entropy(self, x):
        assert mutual_information(x, x) <= entropy(x) + 1e-12


class TestNMI:
    def test_identical_is_one(self):
        x = np.array([0, 1, 1, 2, 0])
        for norm in ("max", "min", "sqrt", "mean"):
            assert normalized_mutual_information(x, x, norm) == pytest.approx(1.0)

    def test_relabeling_invariant(self):
        x = np.array([0, 0, 1, 1, 2, 2])
        y = np.array([5, 5, 3, 3, 9, 9])
        assert normalized_mutual_information(x, y) == pytest.approx(1.0)

    def test_both_constant(self):
        x = np.zeros(5, dtype=np.int64)
        assert normalized_mutual_information(x, x) == 1.0

    def test_one_constant(self):
        x = np.zeros(6, dtype=np.int64)
        y = np.array([0, 1, 2, 0, 1, 2])
        assert normalized_mutual_information(x, y) == 0.0

    def test_norm_ordering(self):
        """min-normalized >= sqrt/mean >= max-normalized."""
        rng = np.random.default_rng(1)
        x = rng.integers(0, 3, 200)
        y = np.where(rng.random(200) < 0.8, x, rng.integers(0, 5, 200))
        nmi_max = normalized_mutual_information(x, y, "max")
        nmi_min = normalized_mutual_information(x, y, "min")
        nmi_sqrt = normalized_mutual_information(x, y, "sqrt")
        assert nmi_min >= nmi_sqrt >= nmi_max

    def test_refinement_scores_one_under_min_norm(self):
        coarse = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        fine = np.array([0, 0, 1, 1, 2, 2, 3, 3])
        assert normalized_mutual_information(coarse, fine, "min") == pytest.approx(1.0)
        assert normalized_mutual_information(coarse, fine, "max") < 1.0

    def test_unknown_norm(self):
        with pytest.raises(ValueError):
            normalized_mutual_information(np.array([0, 1]), np.array([0, 1]), "l2")

    @settings(max_examples=50, deadline=None)
    @given(labelings, labelings)
    def test_in_unit_interval(self, x, y):
        n = min(len(x), len(y))
        value = normalized_mutual_information(x[:n], y[:n])
        assert 0.0 <= value <= 1.0
