"""Tests for artifact serialization and the adjusted Rand index."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Blockmodel, SBPConfig, run_sbp
from repro.errors import ReproError, SerializationError
from repro.io.serialize import (
    atomic_write,
    load_assignment,
    load_blockmodel,
    load_result,
    save_assignment,
    save_blockmodel,
    save_result,
)
from repro.metrics.ari import adjusted_rand_index


@pytest.fixture(scope="module")
def result(planted_graph):
    graph, _ = planted_graph
    return run_sbp(graph, SBPConfig(seed=6, max_sweeps=8))


class TestResultRoundtrip:
    def test_roundtrip_fields(self, result, tmp_path):
        path = tmp_path / "result.json"
        save_result(result, path)
        back = load_result(path)
        np.testing.assert_array_equal(back.assignment, result.assignment)
        assert back.mdl == result.mdl
        assert back.variant == result.variant
        assert back.timings.mcmc == result.timings.mcmc
        assert back.converged == result.converged

    def test_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(ReproError):
            load_result(path)

    def test_future_version_rejected(self, result, tmp_path):
        import json

        path = tmp_path / "result.json"
        save_result(result, path)
        payload = json.loads(path.read_text())
        payload["version"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(ReproError, match="newer"):
            load_result(path)

    def test_truncated_json_names_path(self, result, tmp_path):
        """A crash-truncated artifact must fail loudly, naming the file."""
        path = tmp_path / "result.json"
        save_result(result, path)
        path.write_text(path.read_text()[: 50])
        with pytest.raises(SerializationError, match=str(path)):
            load_result(path)

    def test_missing_field_names_path(self, result, tmp_path):
        import json

        path = tmp_path / "result.json"
        save_result(result, path)
        payload = json.loads(path.read_text())
        del payload["assignment"]
        path.write_text(json.dumps(payload))
        with pytest.raises(SerializationError, match="malformed result field"):
            load_result(path)

    def test_v1_result_without_interrupted_loads(self, result, tmp_path):
        """Pre-resilience artifacts (v1, no 'interrupted') still load."""
        import json

        path = tmp_path / "result.json"
        save_result(result, path)
        payload = json.loads(path.read_text())
        payload["version"] = 1
        del payload["interrupted"]
        path.write_text(json.dumps(payload))
        assert load_result(path).interrupted is False


class TestAtomicWrite:
    def test_failed_write_preserves_old_artifact(self, tmp_path):
        path = tmp_path / "artifact.txt"
        path.write_text("old contents")
        with pytest.raises(RuntimeError):
            with atomic_write(path) as fh:
                fh.write("half-written")
                raise RuntimeError("crash mid-write")
        assert path.read_text() == "old contents"
        # No stray temp files survive the failure.
        assert [p.name for p in tmp_path.iterdir()] == ["artifact.txt"]

    def test_clean_write_replaces(self, tmp_path):
        path = tmp_path / "artifact.txt"
        path.write_text("old")
        with atomic_write(path) as fh:
            fh.write("new")
        assert path.read_text() == "new"
        assert [p.name for p in tmp_path.iterdir()] == ["artifact.txt"]


class TestAssignmentRoundtrip:
    def test_roundtrip(self, tmp_path):
        assignment = np.array([0, 2, 1, 1, 0], dtype=np.int64)
        path = tmp_path / "labels.txt"
        save_assignment(assignment, path)
        np.testing.assert_array_equal(load_assignment(path), assignment)

    def test_sparse_requires_size(self, tmp_path):
        path = tmp_path / "labels.txt"
        path.write_text("0 1\n5 2\n")
        with pytest.raises(ReproError):
            load_assignment(path)
        out = load_assignment(path, num_vertices=7)
        assert out[5] == 2
        assert out[3] == -1

    def test_bad_line(self, tmp_path):
        path = tmp_path / "labels.txt"
        path.write_text("42\n")
        with pytest.raises(ReproError):
            load_assignment(path)

    def test_empty_rejected(self, tmp_path):
        path = tmp_path / "labels.txt"
        path.write_text("# nothing\n")
        with pytest.raises(ReproError):
            load_assignment(path)


class TestBlockmodelRoundtrip:
    def test_roundtrip(self, tiny_graph, tiny_truth, tmp_path):
        bm = Blockmodel.from_assignment(tiny_graph, tiny_truth)
        path = tmp_path / "bm.npz"
        save_blockmodel(bm, path)
        back = load_blockmodel(path)
        np.testing.assert_array_equal(back.B, bm.B)
        np.testing.assert_array_equal(back.assignment, bm.assignment)
        np.testing.assert_array_equal(back.d_out, bm.d_out)
        back.check_consistency(tiny_graph)

    def test_shape_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez_compressed(
            path,
            B=np.zeros((2, 2), dtype=np.int64),
            assignment=np.zeros(3, dtype=np.int64),
            num_blocks=np.asarray([5]),
        )
        with pytest.raises(ReproError):
            load_blockmodel(path)

    def test_truncated_archive_names_path(self, tiny_graph, tiny_truth, tmp_path):
        bm = Blockmodel.from_assignment(tiny_graph, tiny_truth)
        path = tmp_path / "bm.npz"
        save_blockmodel(bm, path)
        path.write_bytes(path.read_bytes()[: 30])
        with pytest.raises(SerializationError, match=str(path)):
            load_blockmodel(path)

    def test_missing_member_rejected(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez_compressed(path, B=np.zeros((2, 2), dtype=np.int64))
        with pytest.raises(SerializationError, match="missing blockmodel field"):
            load_blockmodel(path)

    def test_missing_file_still_filenotfound(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_blockmodel(tmp_path / "absent.npz")

    def test_suffix_appended_like_savez(self, tiny_graph, tiny_truth, tmp_path):
        bm = Blockmodel.from_assignment(tiny_graph, tiny_truth)
        save_blockmodel(bm, tmp_path / "bm")
        assert (tmp_path / "bm.npz").exists()


class TestAdjustedRandIndex:
    def test_identical_is_one(self):
        x = np.array([0, 0, 1, 1, 2])
        assert adjusted_rand_index(x, x) == pytest.approx(1.0)

    def test_relabeling_invariant(self):
        x = np.array([0, 0, 1, 1])
        y = np.array([7, 7, 3, 3])
        assert adjusted_rand_index(x, y) == pytest.approx(1.0)

    def test_independent_near_zero(self):
        rng = np.random.default_rng(0)
        x = rng.integers(0, 4, 5000)
        y = rng.integers(0, 4, 5000)
        assert abs(adjusted_rand_index(x, y)) < 0.02

    def test_known_value(self):
        # classic textbook example
        x = np.array([0, 0, 0, 1, 1, 1])
        y = np.array([0, 0, 1, 1, 2, 2])
        assert adjusted_rand_index(x, y) == pytest.approx(0.2424, abs=1e-3)

    def test_degenerate_single_cluster(self):
        x = np.zeros(5, dtype=np.int64)
        assert adjusted_rand_index(x, x) == 1.0

    def test_can_be_negative(self):
        """Anti-correlated partitions score below chance."""
        x = np.array([0, 0, 1, 1])
        y = np.array([0, 1, 0, 1])
        assert adjusted_rand_index(x, y) < 0.0

    def test_symmetry(self):
        rng = np.random.default_rng(3)
        x = rng.integers(0, 3, 100)
        y = rng.integers(0, 5, 100)
        assert adjusted_rand_index(x, y) == pytest.approx(
            adjusted_rand_index(y, x)
        )

    def test_tracks_nmi_on_partial_agreement(self):
        from repro.metrics import normalized_mutual_information

        rng = np.random.default_rng(4)
        truth = rng.integers(0, 3, 400)
        noisy = np.where(rng.random(400) < 0.7, truth, rng.integers(0, 3, 400))
        pure_noise = rng.integers(0, 3, 400)
        assert adjusted_rand_index(truth, noisy) > adjusted_rand_index(
            truth, pure_noise
        )
        assert normalized_mutual_information(truth, noisy) > 0.1
