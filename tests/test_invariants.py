"""Cross-cutting property tests: invariants that must survive any input.

These tie multiple subsystems together under hypothesis-generated
graphs and states — the contracts that, if broken anywhere, silently
corrupt inference.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Blockmodel, Graph, SBPConfig
from repro.core.merge import block_merge_phase
from repro.mcmc.async_gibbs import async_gibbs_sweep
from repro.mcmc.metropolis import metropolis_sweep
from repro.parallel.serial import SerialBackend
from repro.parallel.vectorized import VectorizedBackend
from repro.sbm.entropy import (
    description_length,
    normalized_description_length,
    null_description_length,
)
from repro.utils.rng import SweepRandomness


def _graph_strategy(draw, max_v=30, max_e=80):
    n = draw(st.integers(3, max_v))
    m = draw(st.integers(1, max_e))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    edges = rng.integers(0, n, (m, 2)).astype(np.int64)
    return Graph(n, edges), rng


@st.composite
def graph_and_state(draw):
    graph, rng = _graph_strategy(draw)
    blocks = draw(st.integers(1, min(6, graph.num_vertices)))
    assignment = rng.integers(0, blocks, graph.num_vertices).astype(np.int64)
    return graph, assignment, blocks, rng


class TestEdgeConservation:
    """The total edge count must survive every state transition."""

    @settings(max_examples=30, deadline=None)
    @given(graph_and_state())
    def test_sweeps_conserve_edges(self, state):
        graph, assignment, blocks, rng = state
        bm = Blockmodel.from_assignment(graph, assignment, blocks)
        E = graph.num_edges

        rand = SweepRandomness.draw(1, 1, 0, graph.num_vertices)
        vertices = np.arange(graph.num_vertices, dtype=np.int64)
        metropolis_sweep(bm, graph, vertices, rand, 3.0)
        assert bm.num_edges == E

        rand2 = SweepRandomness.draw(1, 2, 0, graph.num_vertices)
        async_gibbs_sweep(bm, graph, vertices, rand2, 3.0, SerialBackend())
        assert bm.num_edges == E
        bm.check_consistency(graph)

    @settings(max_examples=20, deadline=None)
    @given(graph_and_state(), st.integers(1, 3))
    def test_merge_phase_conserves_edges(self, state, merges):
        graph, assignment, blocks, rng = state
        if blocks <= merges:
            return
        bm = Blockmodel.from_assignment(graph, assignment, blocks)
        merged = block_merge_phase(bm, graph, merges, SBPConfig(seed=2), 1)
        assert merged.num_edges == graph.num_edges
        merged.check_consistency(graph)


class TestMDLProperties:
    @settings(max_examples=30, deadline=None)
    @given(graph_and_state())
    def test_mdl_finite_and_normalization_positive(self, state):
        graph, assignment, blocks, _ = state
        bm = Blockmodel.from_assignment(graph, assignment, blocks)
        mdl = bm.mdl(graph)
        assert np.isfinite(mdl)
        norm = normalized_description_length(mdl, graph.num_edges, graph.num_vertices)
        assert np.isfinite(norm)
        assert norm > 0

    @settings(max_examples=30, deadline=None)
    @given(st.integers(1, 500), st.integers(2, 100))
    def test_null_mdl_is_single_block_mdl(self, num_edges, num_vertices):
        B = np.array([[num_edges]], dtype=np.int64)
        direct = description_length(
            num_edges, num_vertices, B, B.sum(1), B.sum(0), num_blocks=1
        )
        assert direct == pytest.approx(null_description_length(num_edges, num_vertices))


class TestBackendAgreementProperty:
    @settings(max_examples=15, deadline=None)
    @given(graph_and_state(), st.integers(0, 2**31 - 1))
    def test_serial_vs_vectorized_on_arbitrary_states(self, state, sweep_seed):
        """Backend equality must hold for *any* graph/state, not just the
        fixtures used elsewhere."""
        graph, assignment, blocks, _ = state
        bm = Blockmodel.from_assignment(graph, assignment, blocks)
        vertices = np.arange(graph.num_vertices, dtype=np.int64)
        rand = SweepRandomness.draw(sweep_seed, 1, 0, graph.num_vertices)
        a1, t1 = SerialBackend().evaluate_sweep(bm, graph, vertices, rand.uniforms, 3.0)
        a2, t2 = VectorizedBackend().evaluate_sweep(bm, graph, vertices, rand.uniforms, 3.0)
        np.testing.assert_array_equal(t1, t2)
        np.testing.assert_array_equal(a1, a2)


class TestAssignmentValidity:
    @settings(max_examples=20, deadline=None)
    @given(graph_and_state())
    def test_sweeps_keep_assignment_in_range(self, state):
        graph, assignment, blocks, _ = state
        bm = Blockmodel.from_assignment(graph, assignment, blocks)
        vertices = np.arange(graph.num_vertices, dtype=np.int64)
        for sweep in range(2):
            rand = SweepRandomness.draw(4, 1, sweep, graph.num_vertices)
            async_gibbs_sweep(bm, graph, vertices, rand, 3.0, VectorizedBackend())
            assert bm.assignment.min() >= 0
            assert bm.assignment.max() < bm.num_blocks

    @settings(max_examples=20, deadline=None)
    @given(graph_and_state())
    def test_compact_preserves_partition_structure(self, state):
        """Compaction relabels but never regroups."""
        from repro.metrics import normalized_mutual_information

        graph, assignment, blocks, _ = state
        bm = Blockmodel.from_assignment(graph, assignment, blocks)
        before = bm.assignment.copy()
        bm.compact()
        assert normalized_mutual_information(before, bm.assignment) == pytest.approx(1.0)
