"""Resilience layer: checkpoint/resume, fault tolerance, audits, interrupts.

The load-bearing properties:

* a run killed between agglomerative iterations and resumed from its
  checkpoint reproduces the uninterrupted run bit-identically (all
  randomness is a pure function of ``(seed, phase tag, sweep)``);
* injected worker crashes, hangs and corrupt results are absorbed by
  :class:`ResilientBackend`'s fallback chain without changing results;
* invariant audits catch (and heal) corrupted blockmodel state;
* SIGINT / ``time_budget`` produce best-so-far ``interrupted=True``
  results with a valid checkpoint on disk, never a stack trace.
"""

from __future__ import annotations

import os
import signal
import threading

import numpy as np
import pytest

from repro import (
    Blockmodel,
    SBPConfig,
    run_best_of,
    run_sbp,
)
from repro.diagnostics import run_health
from repro.errors import (
    BackendError,
    CheckpointError,
    ConvergenceError,
    FaultInjected,
)
from repro.parallel.backend import get_backend
from repro.parallel.serial import SerialBackend
from repro.resilience import (
    ChaosBackend,
    InvariantAuditor,
    ResilientBackend,
    RunCheckpointer,
    StopGuard,
)
from repro.resilience.checkpoint import config_digest
from repro.utils.rng import SweepRandomness

#: Short phases keep full inference runs fast while still exercising
#: several agglomerative iterations on the 80-vertex planted graph.
_FAST = dict(max_sweeps=8)


def _sweep_inputs(graph, seed=0):
    vertices = np.arange(graph.num_vertices, dtype=np.int64)
    rand = SweepRandomness.draw(seed, 1, 0, graph.num_vertices)
    return vertices, rand.uniforms


# ----------------------------------------------------------------------
# Checkpoint / resume
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestCheckpointResume:
    @pytest.mark.parametrize("variant", ["sbp", "a-sbp"])
    @pytest.mark.parametrize("seed", [3, 11])
    def test_kill_and_resume_is_bit_identical(
        self, planted_graph, tmp_path, variant, seed
    ):
        """Killed between iterations -> resume == uninterrupted reference."""
        graph, _ = planted_graph
        config = SBPConfig(variant=variant, seed=seed, **_FAST)
        reference = run_sbp(graph, config)

        ck = RunCheckpointer(tmp_path / "ckpt")
        # Simulate the kill deterministically: stop after 2 iterations.
        run_sbp(graph, config.replace(max_outer_iterations=2), checkpointer=ck)
        assert ck.has_snapshot()

        resumed = run_sbp(graph, config, checkpointer=ck)
        np.testing.assert_array_equal(resumed.assignment, reference.assignment)
        assert resumed.mdl == reference.mdl
        assert resumed.num_blocks == reference.num_blocks
        assert resumed.outer_iterations == reference.outer_iterations
        assert resumed.search_history == reference.search_history

    def test_resume_after_time_budget_interrupt(self, planted_graph, tmp_path):
        graph, _ = planted_graph
        config = SBPConfig(seed=5, **_FAST)
        reference = run_sbp(graph, config)

        ck = RunCheckpointer(tmp_path / "ckpt")
        interrupted = run_sbp(
            graph, config.replace(time_budget=0.0), checkpointer=ck
        )
        assert interrupted.interrupted
        assert not interrupted.converged
        assert ck.has_snapshot()

        resumed = run_sbp(graph, config, checkpointer=ck)
        assert not resumed.interrupted
        np.testing.assert_array_equal(resumed.assignment, reference.assignment)
        assert resumed.mdl == reference.mdl

    def test_snapshot_pruning_keeps_last(self, planted_graph, tmp_path):
        graph, _ = planted_graph
        ck = RunCheckpointer(tmp_path / "ckpt", keep_last=2)
        run_sbp(graph, SBPConfig(seed=1, **_FAST), checkpointer=ck)
        manifests = [
            p for p in os.listdir(tmp_path / "ckpt") if p.endswith(".json")
        ]
        assert len(manifests) == 2

    def test_damaged_latest_snapshot_falls_back(self, planted_graph, tmp_path):
        graph, _ = planted_graph
        config = SBPConfig(seed=7, **_FAST)
        ck = RunCheckpointer(tmp_path / "ckpt", keep_last=3)
        run_sbp(graph, config.replace(max_outer_iterations=3), checkpointer=ck)
        manifests = sorted(
            p
            for p in (tmp_path / "ckpt").iterdir()
            if p.name.endswith(".json")
        )
        # Truncate the newest manifest mid-file: load() must skip it.
        newest = manifests[-1]
        newest.write_text(newest.read_text()[: 40])
        state = ck.load()
        assert state is not None
        assert state.outer < 3 or newest.name != f"state_{state.outer:05d}.json"
        resumed = run_sbp(graph, config, checkpointer=ck)
        np.testing.assert_array_equal(
            resumed.assignment, run_sbp(graph, config).assignment
        )

    def test_all_snapshots_damaged_raises(self, planted_graph, tmp_path):
        graph, _ = planted_graph
        ck = RunCheckpointer(tmp_path / "ckpt")
        run_sbp(
            graph,
            SBPConfig(seed=2, max_outer_iterations=2, **_FAST),
            checkpointer=ck,
        )
        for manifest in (tmp_path / "ckpt").glob("state_*.json"):
            manifest.write_text("{ not json")
        with pytest.raises(CheckpointError, match="no valid checkpoint"):
            ck.load()

    def test_incompatible_config_refused(self, planted_graph, tmp_path):
        graph, _ = planted_graph
        ck = RunCheckpointer(tmp_path / "ckpt")
        run_sbp(
            graph,
            SBPConfig(seed=2, max_outer_iterations=2, **_FAST),
            checkpointer=ck,
        )
        with pytest.raises(CheckpointError, match="incompatible"):
            run_sbp(graph, SBPConfig(seed=99, **_FAST), checkpointer=ck)

    def test_digest_ignores_backend_choice(self):
        a = SBPConfig(seed=4, backend="serial")
        b = SBPConfig(seed=4, backend="process")
        c = SBPConfig(seed=5, backend="serial")
        assert config_digest(a) == config_digest(b)
        assert config_digest(a) != config_digest(c)

    def test_empty_directory_loads_none(self, tmp_path):
        assert RunCheckpointer(tmp_path / "nothing").load() is None


@pytest.mark.slow
class TestBestOfResume:
    def test_completed_members_are_reused(self, planted_graph, tmp_path):
        graph, _ = planted_graph
        config = SBPConfig(seed=9, **_FAST)
        ref_best, ref_all = run_best_of(graph, config, runs=2)

        ck = RunCheckpointer(tmp_path / "bo")
        best1, all1 = run_best_of(graph, config, runs=2, checkpointer=ck)
        np.testing.assert_array_equal(best1.assignment, ref_best.assignment)
        assert [r.mdl for r in all1] == [r.mdl for r in ref_all]
        # Both members persisted; a second invocation is pure replay.
        assert ck.load_completed(0) is not None
        assert ck.load_completed(1) is not None
        best2, all2 = run_best_of(graph, config, runs=2, checkpointer=ck)
        assert best2.mdl == ref_best.mdl
        assert [r.seed for r in all2] == [r.seed for r in ref_all]

    def test_interrupted_member_not_marked_complete(
        self, planted_graph, tmp_path
    ):
        graph, _ = planted_graph
        config = SBPConfig(seed=9, time_budget=0.0, **_FAST)
        ck = RunCheckpointer(tmp_path / "bo")
        best, results = run_best_of(graph, config, runs=3, checkpointer=ck)
        assert results[-1].interrupted
        assert best.interrupted
        assert ck.load_completed(len(results) - 1) is None
        # Resume without the budget finishes the protocol identically.
        ref_best, _ = run_best_of(graph, config.replace(time_budget=None), runs=3)
        resumed_best, resumed = run_best_of(
            graph, config.replace(time_budget=None), runs=3, checkpointer=ck
        )
        assert len(resumed) == 3
        assert resumed_best.mdl == ref_best.mdl
        np.testing.assert_array_equal(
            resumed_best.assignment, ref_best.assignment
        )


# ----------------------------------------------------------------------
# Fault-tolerant backend
# ----------------------------------------------------------------------
class TestResilientBackend:
    def test_crash_falls_back_bit_identically(self, medium_graph):
        graph, _ = medium_graph
        rng = np.random.default_rng(21)
        bm = Blockmodel.from_assignment(
            graph, rng.integers(0, 10, graph.num_vertices), 10
        )
        vertices, uniforms = _sweep_inputs(graph, seed=5)
        a_ref, t_ref = SerialBackend().evaluate_sweep(
            bm, graph, vertices, uniforms, 3.0
        )
        chaos = ChaosBackend(SerialBackend(), {0: "raise"})
        backend = ResilientBackend(chaos, fallbacks=("vectorized",), retries=0)
        a, t = backend.evaluate_sweep(bm, graph, vertices, uniforms, 3.0)
        np.testing.assert_array_equal(a, a_ref)
        np.testing.assert_array_equal(t, t_ref)

    def test_retry_recovers_without_fallback(self, medium_graph):
        graph, _ = medium_graph
        bm = Blockmodel.singleton(graph)
        vertices, uniforms = _sweep_inputs(graph, seed=2)
        chaos = ChaosBackend(SerialBackend(), {0: "raise"})
        backend = ResilientBackend(chaos, fallbacks=(), retries=1)
        a, t = backend.evaluate_sweep(bm, graph, vertices, uniforms, 3.0)
        a_ref, t_ref = SerialBackend().evaluate_sweep(
            bm, graph, vertices, uniforms, 3.0
        )
        np.testing.assert_array_equal(a, a_ref)
        np.testing.assert_array_equal(t, t_ref)
        assert chaos.calls == 2

    def test_hang_times_out_onto_fallback(self, medium_graph):
        graph, _ = medium_graph
        bm = Blockmodel.singleton(graph)
        vertices, uniforms = _sweep_inputs(graph, seed=3)
        chaos = ChaosBackend(SerialBackend(), {0: "hang"}, hang_seconds=5.0)
        backend = ResilientBackend(
            chaos, fallbacks=("serial",), sweep_timeout=0.25, retries=3
        )
        try:
            a, t = backend.evaluate_sweep(bm, graph, vertices, uniforms, 3.0)
        finally:
            backend.close()  # releases the injected hang promptly
        a_ref, t_ref = SerialBackend().evaluate_sweep(
            bm, graph, vertices, uniforms, 3.0
        )
        np.testing.assert_array_equal(a, a_ref)
        np.testing.assert_array_equal(t, t_ref)
        # Hangs must not be retried on the wedged backend.
        assert chaos.calls == 1

    def test_corrupt_result_detected_and_replaced(self, medium_graph):
        graph, _ = medium_graph
        bm = Blockmodel.singleton(graph)
        vertices, uniforms = _sweep_inputs(graph, seed=4)
        chaos = ChaosBackend(SerialBackend(), {0: "corrupt"})
        backend = ResilientBackend(chaos, fallbacks=("serial",), retries=0)
        a, t = backend.evaluate_sweep(bm, graph, vertices, uniforms, 3.0)
        assert int(t.max()) < bm.num_blocks

    def test_exhausted_chain_raises_backend_error(self, medium_graph):
        graph, _ = medium_graph
        bm = Blockmodel.singleton(graph)
        vertices, uniforms = _sweep_inputs(graph)
        chaos = ChaosBackend(SerialBackend(), {0: "raise", 1: "raise"})
        backend = ResilientBackend(chaos, fallbacks=(), retries=1)
        with pytest.raises(BackendError, match="chain exhausted"):
            backend.evaluate_sweep(bm, graph, vertices, uniforms, 3.0)

    def test_nesting_rejected(self):
        with pytest.raises(BackendError, match="nest"):
            ResilientBackend("serial", fallbacks=("resilient",))

    def test_spec_string_builds_chain(self):
        backend = get_backend("resilient:serial")
        assert [b.name for b in backend.chain] == ["serial", "vectorized"]
        backend = get_backend("resilient:vectorized")
        assert [b.name for b in backend.chain] == ["vectorized", "serial"]

    def test_unknown_spec_rejected(self):
        with pytest.raises(BackendError, match="unknown backend"):
            get_backend("bogus:serial")
        with pytest.raises(BackendError, match="unknown backend"):
            get_backend("resilient:")

    @pytest.mark.slow
    def test_full_run_with_chaos_matches_serial_oracle(self, planted_graph):
        """Acceptance: crash + hang injected mid-run; fallback completes
        the run and the result matches the fault-free serial oracle."""
        graph, _ = planted_graph
        config = SBPConfig(variant="a-sbp", seed=13, **_FAST)
        reference = run_sbp(graph, config.replace(backend="serial"))

        chaos = ChaosBackend(
            SerialBackend(), {1: "raise", 4: "hang"}, hang_seconds=3.0
        )
        chaotic = config.replace(
            backend="resilient",
            backend_options=dict(
                inner=chaos, fallbacks=("serial",), sweep_timeout=0.5, retries=0
            ),
        )
        result = run_sbp(graph, chaotic)
        assert chaos.calls >= 5  # both faults actually fired
        np.testing.assert_array_equal(result.assignment, reference.assignment)
        assert result.mdl == reference.mdl


# ----------------------------------------------------------------------
# Fault injection harness
# ----------------------------------------------------------------------
class TestChaosBackend:
    def test_raise_fault(self, medium_graph):
        graph, _ = medium_graph
        bm = Blockmodel.singleton(graph)
        vertices, uniforms = _sweep_inputs(graph)
        chaos = ChaosBackend(SerialBackend(), {0: "raise"})
        with pytest.raises(FaultInjected):
            chaos.evaluate_sweep(bm, graph, vertices, uniforms, 3.0)
        # FaultInjected is a BackendError, so real handlers catch it too.
        assert issubclass(FaultInjected, BackendError)

    def test_passthrough_between_faults(self, medium_graph):
        graph, _ = medium_graph
        bm = Blockmodel.singleton(graph)
        vertices, uniforms = _sweep_inputs(graph)
        chaos = ChaosBackend(SerialBackend(), {1: "raise"})
        a, t = chaos.evaluate_sweep(bm, graph, vertices, uniforms, 3.0)
        a_ref, t_ref = SerialBackend().evaluate_sweep(
            bm, graph, vertices, uniforms, 3.0
        )
        np.testing.assert_array_equal(a, a_ref)
        np.testing.assert_array_equal(t, t_ref)

    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kinds"):
            ChaosBackend(SerialBackend(), {0: "segfault"})


# ----------------------------------------------------------------------
# Invariant auditing
# ----------------------------------------------------------------------
class TestInvariantAuditor:
    def test_corrupted_B_is_caught_and_healed(self, medium_graph):
        graph, _ = medium_graph
        bm = Blockmodel.singleton(graph)
        bm.B[0, 0] += 7  # deliberate corruption
        auditor = InvariantAuditor(cadence=1, self_heal=True)
        healed = auditor.audit(bm, graph, iteration=1)
        assert healed
        assert auditor.heals == 1
        bm.check_consistency(graph)  # state repaired

    def test_corruption_without_self_heal_raises_diagnosed(self, medium_graph):
        graph, _ = medium_graph
        bm = Blockmodel.singleton(graph)
        bm.B[0, 0] += 7
        auditor = InvariantAuditor(cadence=1, self_heal=False)
        with pytest.raises(ConvergenceError, match="invariant audit failed"):
            auditor.audit(bm, graph, iteration=3)

    def test_clean_state_passes(self, medium_graph):
        graph, _ = medium_graph
        bm = Blockmodel.singleton(graph)
        auditor = InvariantAuditor(cadence=2)
        assert auditor.audit(bm, graph, iteration=2) is False
        assert auditor.heals == 0

    def test_cadence(self):
        auditor = InvariantAuditor(cadence=3)
        assert [i for i in range(1, 10) if auditor.due(i)] == [3, 6, 9]
        assert not InvariantAuditor(cadence=0).due(4)

    def test_nan_mdl_healed_by_rebuild(self, medium_graph):
        graph, _ = medium_graph
        bm = Blockmodel.singleton(graph)
        bm.B[0, 0] = -50  # drives x log x to NaN territory
        auditor = InvariantAuditor()
        value = auditor.guard_mdl(float("nan"), bm, graph, iteration=2)
        assert np.isfinite(value)
        assert auditor.heals == 1
        assert value == bm.mdl(graph)

    def test_unhealable_nan_raises_diagnosed(self, medium_graph, monkeypatch):
        graph, _ = medium_graph
        bm = Blockmodel.singleton(graph)
        auditor = InvariantAuditor()
        monkeypatch.setattr(Blockmodel, "mdl", lambda self, g: float("nan"))
        with pytest.raises(ConvergenceError, match="non-finite MDL"):
            auditor.guard_mdl(float("nan"), bm, graph, iteration=2)

    def test_finite_mdl_passes_through_untouched(self, medium_graph):
        graph, _ = medium_graph
        bm = Blockmodel.singleton(graph)
        auditor = InvariantAuditor()
        assert auditor.guard_mdl(123.5, bm, graph, 1) == 123.5
        assert auditor.heals == 0

    @pytest.mark.slow
    def test_audited_run_is_bit_identical_to_unaudited(self, planted_graph):
        graph, _ = planted_graph
        config = SBPConfig(seed=6, **_FAST)
        plain = run_sbp(graph, config)
        audited = run_sbp(graph, config.replace(audit_cadence=1))
        np.testing.assert_array_equal(audited.assignment, plain.assignment)
        assert audited.mdl == plain.mdl


# ----------------------------------------------------------------------
# Interruption
# ----------------------------------------------------------------------
class TestStopGuard:
    def test_time_budget_triggers(self):
        guard = StopGuard(time_budget=0.0)
        assert guard.triggered
        assert "budget" in (guard.reason or "")

    def test_no_budget_never_triggers(self):
        guard = StopGuard()
        assert not guard.triggered
        guard.trigger("manual")
        assert guard.triggered
        assert guard.reason == "manual"

    def test_sigint_is_intercepted_once(self):
        guard = StopGuard()
        with guard.install():
            os.kill(os.getpid(), signal.SIGINT)
            # The handler latches the guard instead of raising.
            assert guard.triggered
            with pytest.raises(KeyboardInterrupt):
                os.kill(os.getpid(), signal.SIGINT)
        # Original disposition restored on exit.
        assert signal.getsignal(signal.SIGINT) is signal.default_int_handler

    def test_install_from_worker_thread_is_noop(self):
        guard = StopGuard()
        seen = []

        def _run():
            with guard.install():
                seen.append(signal.getsignal(signal.SIGINT))

        thread = threading.Thread(target=_run)
        thread.start()
        thread.join()
        assert seen == [signal.default_int_handler]

    @pytest.mark.slow
    def test_sigint_mid_run_returns_best_so_far(self, medium_graph, tmp_path):
        graph, _ = medium_graph
        # A deliberately long search so the timer fires mid-run.
        config = SBPConfig(
            variant="a-sbp", seed=8, max_sweeps=60,
            mcmc_threshold=1e-9, mcmc_threshold_final=1e-9,
        )
        ck = RunCheckpointer(tmp_path / "ckpt")
        timer = threading.Timer(
            0.3, os.kill, args=(os.getpid(), signal.SIGINT)
        )
        timer.start()
        try:
            result = run_sbp(graph, config, checkpointer=ck)
        finally:
            timer.cancel()
        assert result.interrupted
        assert not result.converged
        assert result.num_blocks >= 1
        assert np.isfinite(result.mdl)
        assert ck.has_snapshot()
        health = run_health(result)
        assert not health["ok"]
        assert any("interrupted" in p for p in health["problems"])


# ----------------------------------------------------------------------
# Health report
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestRunHealth:
    def test_healthy_run(self, planted_graph):
        graph, _ = planted_graph
        result = run_sbp(graph, SBPConfig(seed=6, **_FAST))
        health = run_health(result)
        assert health["ok"]
        assert health["converged"] and not health["interrupted"]
        assert health["problems"] == []

    def test_interrupted_run_flagged(self, planted_graph):
        graph, _ = planted_graph
        result = run_sbp(graph, SBPConfig(seed=6, time_budget=0.0, **_FAST))
        health = run_health(result)
        assert not health["ok"]
        assert health["interrupted"]
