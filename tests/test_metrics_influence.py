"""Unit tests for total influence (Eq. 3) and the degree heuristic."""

from __future__ import annotations

import numpy as np
import pytest

from repro import DCSBMParams, Graph, generate_dcsbm, total_influence
from repro.metrics.influence import (
    conditional_distribution,
    degree_influence_scores,
    exerted_influence,
    influence_degree_correlation,
    pair_influence_matrix,
)
from repro.sbm.blockmodel import Blockmodel


@pytest.fixture(scope="module")
def small_planted():
    return generate_dcsbm(
        DCSBMParams(num_vertices=25, num_communities=3,
                    within_between_ratio=6.0, mean_degree=5.0),
        seed=33,
    )


class TestConditional:
    def test_is_distribution(self, small_planted):
        graph, truth = small_planted
        bm = Blockmodel.from_assignment(graph, truth)
        for v in range(graph.num_vertices):
            p = conditional_distribution(bm, graph, v, beta=1.0)
            assert p.shape == (bm.num_blocks,)
            assert p.sum() == pytest.approx(1.0)
            assert (p >= 0).all()

    def test_prefers_current_structure(self, small_planted):
        """Under a fitted state, most vertices' conditionals favour their
        own community."""
        graph, truth = small_planted
        bm = Blockmodel.from_assignment(graph, truth)
        hits = sum(
            int(np.argmax(conditional_distribution(bm, graph, v, 1.0)) == truth[v])
            for v in range(graph.num_vertices)
        )
        assert hits > graph.num_vertices * 0.6


class TestTotalInfluence:
    def test_nonnegative(self, small_planted):
        graph, truth = small_planted
        alpha = total_influence(graph, truth, beta=1.0)
        assert alpha >= 0.0

    def test_per_vertex_vector(self, small_planted):
        graph, truth = small_planted
        vec = total_influence(graph, truth, beta=1.0, per_vertex=True)
        assert vec.shape == (graph.num_vertices,)
        assert float(vec.max()) == pytest.approx(
            total_influence(graph, truth, beta=1.0)
        )

    def test_isolated_vertices_zero_influence(self):
        """A graph with no edges: no vertex can influence another."""
        graph = Graph(6, np.empty((0, 2), dtype=np.int64))
        labels = np.array([0, 0, 1, 1, 2, 2])
        assert total_influence(graph, labels, beta=1.0) == pytest.approx(0.0)

    def test_guardrail_on_large_graphs(self):
        graph = Graph(300, np.array([[0, 1]], dtype=np.int64))
        with pytest.raises(ValueError, match="refusing"):
            total_influence(graph, np.zeros(300, dtype=np.int64))

    def test_pair_matrix_shape_and_diagonal(self, small_planted):
        graph, truth = small_planted
        M = pair_influence_matrix(graph, truth, beta=1.0)
        assert M.shape == (graph.num_vertices, graph.num_vertices)
        assert np.diag(M).sum() == 0.0
        assert (M >= 0).all()
        assert (M <= 1.0 + 1e-9).all()  # TV distance is bounded by 1

    def test_exerted_is_column_sum(self, small_planted):
        graph, truth = small_planted
        M = pair_influence_matrix(graph, truth, beta=1.0)
        np.testing.assert_allclose(
            exerted_influence(graph, truth, beta=1.0), M.sum(axis=0)
        )

    def test_beta_zero_flattens(self, small_planted):
        """beta -> 0 makes all conditionals uniform, hence no influence."""
        graph, truth = small_planted
        alpha = total_influence(graph, truth, beta=1e-12)
        assert alpha == pytest.approx(0.0, abs=1e-6)


class TestDegreeHeuristic:
    def test_scores_normalized(self, small_planted):
        graph, _ = small_planted
        scores = degree_influence_scores(graph)
        assert scores.max() == pytest.approx(1.0)
        assert scores.min() >= 0.0

    def test_empty_graph(self):
        graph = Graph(4, np.empty((0, 2), dtype=np.int64))
        assert degree_influence_scores(graph).tolist() == [0.0] * 4

    def test_degree_correlates_with_influence(self, small_planted):
        """The paper's §3.2 assumption, verified empirically (E1 bench)."""
        graph, truth = small_planted
        rho = influence_degree_correlation(graph, truth, beta=1.0)
        assert rho > 0.3
