"""Unit tests for the halo-exchange protocol."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distributed.comm import SimCommWorld
from repro.distributed.graphdist import DistributedGraph
from repro.distributed.halo import build_halo_plan, halo_exchange_moves
from repro.distributed.partition import partition_vertices


@pytest.fixture
def dgraph(medium_graph):
    graph, _ = medium_graph
    owner = partition_vertices(graph, 4, "contiguous")
    return DistributedGraph(graph, owner)


class TestHaloPlan:
    def test_send_lists_mirror_ghost_tables(self, dgraph):
        plan = build_halo_plan(dgraph)
        # every ghost of rank b owned by rank a appears in sends[a][b]
        for shard in dgraph.shards:
            owners = dgraph.owner[shard.ghosts]
            for a in np.unique(owners):
                expected = set(shard.ghosts[owners == a].tolist())
                got = set(plan.sends[int(a)][shard.rank].tolist())
                assert got == expected

    def test_total_slots_equals_total_ghosts(self, dgraph):
        plan = build_halo_plan(dgraph)
        assert plan.total_send_slots == dgraph.total_ghosts

    def test_single_rank_empty_plan(self, medium_graph):
        graph, _ = medium_graph
        dg = DistributedGraph(graph, np.zeros(graph.num_vertices, dtype=np.int64))
        plan = build_halo_plan(dg)
        assert plan.total_send_slots == 0


class TestHaloExchange:
    def test_each_rank_learns_its_ghost_moves(self, dgraph):
        plan = build_halo_plan(dgraph)
        world = SimCommWorld(4)
        rng = np.random.default_rng(0)
        moves_by_rank = []
        for shard in dgraph.shards:
            moved = shard.owned[rng.random(shard.num_owned) < 0.4]
            targets = rng.integers(0, 10, moved.shape[0])
            moves_by_rank.append(np.stack([moved, targets], axis=1))

        received = halo_exchange_moves(world, plan, moves_by_rank)

        all_moves = np.concatenate(moves_by_rank)
        moved_set = dict(zip(all_moves[:, 0].tolist(), all_moves[:, 1].tolist()))
        for shard, incoming in zip(dgraph.shards, received):
            expected = {
                int(g): moved_set[int(g)]
                for g in shard.ghosts
                if int(g) in moved_set
            }
            got = dict(zip(incoming[:, 0].tolist(), incoming[:, 1].tolist()))
            assert got == expected

    def test_halo_volume_below_allgather_when_cut_small(self, medium_graph):
        """With few moves, the halo sends less than a full allgather."""
        graph, _ = medium_graph
        owner = partition_vertices(graph, 4, "contiguous")
        dg = DistributedGraph(graph, owner)
        plan = build_halo_plan(dg)

        halo_world = SimCommWorld(4)
        # one tiny move per rank
        moves = [
            np.array([[int(shard.owned[0]), 0]], dtype=np.int64)
            for shard in dg.shards
        ]
        halo_exchange_moves(halo_world, plan, moves)

        allgather_world = SimCommWorld(4)
        allgather_world.allgather(moves)
        # halo point-to-point bytes carry only ghost-relevant payloads
        assert (
            halo_world.ledger.point_to_point_bytes
            <= allgather_world.ledger.collective_bytes * 4
        )

    def test_arity_mismatch(self, dgraph):
        plan = build_halo_plan(dgraph)
        with pytest.raises(ValueError):
            halo_exchange_moves(SimCommWorld(4), plan, [np.empty((0, 2))])

    def test_no_moves_no_payload(self, dgraph):
        plan = build_halo_plan(dgraph)
        world = SimCommWorld(4)
        empties = [np.empty((0, 2), dtype=np.int64) for _ in range(4)]
        received = halo_exchange_moves(world, plan, empties)
        assert all(r.shape == (0, 2) for r in received)
