"""Backend equivalence: serial oracle vs vectorized batch vs process pool.

This is the load-bearing property of the whole parallelization story:
because asynchronous Gibbs evaluates every vertex against the frozen
state and the per-sweep randomness is pre-drawn in vertex order, every
execution strategy must produce identical decisions.
"""

from __future__ import annotations

import multiprocessing as mp

import numpy as np
import pytest

from repro import Blockmodel
from repro.errors import BackendError
from repro.parallel import processpool
from repro.parallel.backend import available_backends, get_backend, register_backend
from repro.parallel.processpool import _WORKER_STATE, ProcessPoolBackend
from repro.parallel.serial import SerialBackend
from repro.parallel.vectorized import VectorizedBackend
from repro.utils.rng import SweepRandomness

fork_only = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(),
    reason="ProcessPoolBackend requires the 'fork' start method",
)


@pytest.fixture
def state(medium_graph):
    graph, _ = medium_graph
    rng = np.random.default_rng(21)
    assignment = rng.integers(0, 10, graph.num_vertices)
    return graph, Blockmodel.from_assignment(graph, assignment, 10)


def _sweep_inputs(graph, seed=0, phase=1, sweep=0):
    vertices = np.arange(graph.num_vertices, dtype=np.int64)
    rand = SweepRandomness.draw(seed, phase, sweep, graph.num_vertices)
    return vertices, rand.uniforms


class TestVectorizedEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_decisions_identical(self, state, seed):
        graph, bm = state
        vertices, uniforms = _sweep_inputs(graph, seed=seed)
        a1, t1 = SerialBackend().evaluate_sweep(bm, graph, vertices, uniforms, 3.0)
        a2, t2 = VectorizedBackend().evaluate_sweep(bm, graph, vertices, uniforms, 3.0)
        np.testing.assert_array_equal(t1, t2)
        np.testing.assert_array_equal(a1, a2)

    def test_beta_variation(self, state):
        graph, bm = state
        vertices, uniforms = _sweep_inputs(graph, seed=9)
        for beta in (0.5, 1.0, 3.0, 10.0):
            a1, t1 = SerialBackend().evaluate_sweep(bm, graph, vertices, uniforms, beta)
            a2, t2 = VectorizedBackend().evaluate_sweep(bm, graph, vertices, uniforms, beta)
            np.testing.assert_array_equal(t1, t2)
            np.testing.assert_array_equal(a1, a2)

    def test_subset_sweep(self, state):
        graph, bm = state
        vertices = np.arange(10, 60, dtype=np.int64)
        rand = SweepRandomness.draw(4, 1, 0, len(vertices))
        a1, t1 = SerialBackend().evaluate_sweep(bm, graph, vertices, rand.uniforms, 3.0)
        a2, t2 = VectorizedBackend().evaluate_sweep(bm, graph, vertices, rand.uniforms, 3.0)
        np.testing.assert_array_equal(t1, t2)
        np.testing.assert_array_equal(a1, a2)

    def test_empty_sweep(self, state):
        graph, bm = state
        empty = np.empty(0, dtype=np.int64)
        a, t = VectorizedBackend().evaluate_sweep(
            bm, graph, empty, np.empty((0, 5)), 3.0
        )
        assert a.shape == (0,)
        assert t.shape == (0,)

    def test_does_not_mutate(self, state):
        graph, bm = state
        before_B = bm.B.copy()
        vertices, uniforms = _sweep_inputs(graph)
        VectorizedBackend().evaluate_sweep(bm, graph, vertices, uniforms, 3.0)
        np.testing.assert_array_equal(bm.B, before_B)

    def test_singleton_blockmodel(self, medium_graph):
        """C = V (first agglomerative iteration) must also agree."""
        graph, _ = medium_graph
        bm = Blockmodel.singleton(graph)
        vertices, uniforms = _sweep_inputs(graph, seed=13)
        a1, t1 = SerialBackend().evaluate_sweep(bm, graph, vertices, uniforms, 3.0)
        a2, t2 = VectorizedBackend().evaluate_sweep(bm, graph, vertices, uniforms, 3.0)
        np.testing.assert_array_equal(t1, t2)
        np.testing.assert_array_equal(a1, a2)


def _raise_worker(args):
    raise RuntimeError("boom from worker")


def _hang_worker(args):
    import time

    time.sleep(30)


@fork_only
@pytest.mark.slow
class TestProcessPoolFailureModes:
    def test_worker_exception_surfaces_as_backend_error(self, state, monkeypatch):
        graph, bm = state
        vertices, uniforms = _sweep_inputs(graph, seed=7)
        monkeypatch.setattr(processpool, "_worker_evaluate", _raise_worker)
        backend = ProcessPoolBackend(num_workers=2, min_chunk=1)
        try:
            with pytest.raises(BackendError, match="worker failed"):
                backend.evaluate_sweep(bm, graph, vertices, uniforms, 3.0)
            # Pool torn down so the next sweep starts from a clean fork.
            assert backend._pool is None
            assert _WORKER_STATE == {}
        finally:
            backend.close()

    def test_hung_worker_detected_by_timeout(self, state, monkeypatch):
        graph, bm = state
        vertices, uniforms = _sweep_inputs(graph, seed=8)
        monkeypatch.setattr(processpool, "_worker_evaluate", _hang_worker)
        backend = ProcessPoolBackend(num_workers=2, min_chunk=1, sweep_timeout=0.5)
        try:
            with pytest.raises(BackendError, match="hung or dead"):
                backend.evaluate_sweep(bm, graph, vertices, uniforms, 3.0)
            assert backend._pool is None
        finally:
            backend.close()

    def test_recovers_after_worker_failure(self, state, monkeypatch):
        graph, bm = state
        vertices, uniforms = _sweep_inputs(graph, seed=9)
        backend = ProcessPoolBackend(num_workers=2, min_chunk=1)
        try:
            with monkeypatch.context() as patched:
                patched.setattr(processpool, "_worker_evaluate", _raise_worker)
                with pytest.raises(BackendError):
                    backend.evaluate_sweep(bm, graph, vertices, uniforms, 3.0)
            # Next sweep forks a fresh pool and matches the serial oracle.
            a, t = backend.evaluate_sweep(bm, graph, vertices, uniforms, 3.0)
            a1, t1 = SerialBackend().evaluate_sweep(bm, graph, vertices, uniforms, 3.0)
            np.testing.assert_array_equal(a, a1)
            np.testing.assert_array_equal(t, t1)
        finally:
            backend.close()

    def test_pool_persists_across_sweeps(self, state):
        graph, bm = state
        vertices, uniforms = _sweep_inputs(graph, seed=10)
        backend = ProcessPoolBackend(num_workers=2, min_chunk=1)
        try:
            backend.evaluate_sweep(bm, graph, vertices, uniforms, 3.0)
            first_pool = backend._pool
            assert first_pool is not None
            assert _WORKER_STATE == {}  # parent cleared its staging slot
            backend.evaluate_sweep(bm, graph, vertices, uniforms, 3.0)
            assert backend._pool is first_pool  # no refork for the same graph
        finally:
            backend.close()
        assert backend._pool is None

    def test_worker_state_cleared_when_fork_fails(self, state, monkeypatch):
        graph, bm = state
        vertices, uniforms = _sweep_inputs(graph, seed=11)
        backend = ProcessPoolBackend(num_workers=2, min_chunk=1)

        class _BrokenContext:
            def Pool(self, processes):
                raise OSError("fork failed")

        monkeypatch.setattr(
            processpool.mp, "get_context", lambda name: _BrokenContext()
        )
        with pytest.raises(OSError):
            backend.evaluate_sweep(bm, graph, vertices, uniforms, 3.0)
        assert _WORKER_STATE == {}

    def test_invalid_parameters_rejected(self):
        with pytest.raises(BackendError, match="num_workers"):
            ProcessPoolBackend(num_workers=-1)
        with pytest.raises(BackendError, match="sweep_timeout"):
            ProcessPoolBackend(sweep_timeout=0.0)


@fork_only
@pytest.mark.slow
class TestProcessPoolEquivalence:
    def test_decisions_identical(self, state):
        graph, bm = state
        vertices, uniforms = _sweep_inputs(graph, seed=5)
        a1, t1 = SerialBackend().evaluate_sweep(bm, graph, vertices, uniforms, 3.0)
        backend = ProcessPoolBackend(num_workers=2, min_chunk=1)
        a2, t2 = backend.evaluate_sweep(bm, graph, vertices, uniforms, 3.0)
        np.testing.assert_array_equal(t1, t2)
        np.testing.assert_array_equal(a1, a2)

    def test_small_sweep_falls_back_to_serial(self, state):
        graph, bm = state
        backend = ProcessPoolBackend(num_workers=4, min_chunk=10**6)
        vertices, uniforms = _sweep_inputs(graph, seed=6)
        a, t = backend.evaluate_sweep(bm, graph, vertices, uniforms, 3.0)
        a1, t1 = SerialBackend().evaluate_sweep(bm, graph, vertices, uniforms, 3.0)
        np.testing.assert_array_equal(a, a1)
        np.testing.assert_array_equal(t, t1)


class TestRegistry:
    def test_builtins_available(self):
        names = available_backends()
        assert {"serial", "vectorized", "process"} <= set(names)

    def test_get_unknown_rejected(self):
        with pytest.raises(BackendError):
            get_backend("quantum")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(BackendError):
            register_backend("serial", SerialBackend)

    def test_factory_kwargs(self):
        backend = get_backend("process", num_workers=3)
        assert backend.num_workers == 3

    def test_context_manager(self):
        with get_backend("serial") as backend:
            assert backend.name == "serial"
