"""Unit tests for RNG streams, timers and validation helpers."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.utils.rng import (
    UNIFORMS_PER_VERTEX,
    SweepRandomness,
    philox_stream,
    spawn_seeds,
)
from repro.utils.timer import StopwatchPool, Timer
from repro.utils.validation import (
    check_nonnegative_int,
    check_positive,
    check_probability,
)


class TestPhiloxStreams:
    def test_same_key_same_stream(self):
        a = philox_stream(1, 2, 3).random(10)
        b = philox_stream(1, 2, 3).random(10)
        np.testing.assert_array_equal(a, b)

    def test_distinct_counters_distinct_streams(self):
        a = philox_stream(1, 2, 3).random(10)
        b = philox_stream(1, 2, 4).random(10)
        assert not np.array_equal(a, b)

    def test_counter_order_matters(self):
        a = philox_stream(1, 2, 3).random(10)
        b = philox_stream(1, 3, 2).random(10)
        assert not np.array_equal(a, b)

    def test_huge_seed_ok(self):
        gen = philox_stream(2**63 - 1, 2**62)
        assert 0.0 <= gen.random() < 1.0


class TestSpawnSeeds:
    def test_deterministic(self):
        assert spawn_seeds(7, 5) == spawn_seeds(7, 5)

    def test_distinct(self):
        seeds = spawn_seeds(7, 10)
        assert len(set(seeds)) == 10

    def test_differs_by_master(self):
        assert spawn_seeds(7, 3) != spawn_seeds(8, 3)


class TestSweepRandomness:
    def test_shape(self):
        rand = SweepRandomness.draw(0, 1, 2, 50)
        assert rand.uniforms.shape == (50, UNIFORMS_PER_VERTEX)
        assert len(rand) == 50

    def test_keyed_by_all_three(self):
        base = SweepRandomness.draw(0, 1, 2, 10).uniforms
        assert not np.array_equal(base, SweepRandomness.draw(1, 1, 2, 10).uniforms)
        assert not np.array_equal(base, SweepRandomness.draw(0, 2, 2, 10).uniforms)
        assert not np.array_equal(base, SweepRandomness.draw(0, 1, 3, 10).uniforms)

    def test_prefix_stability(self):
        """Drawing more rows must not change earlier rows (same stream)."""
        small = SweepRandomness.draw(3, 1, 0, 10).uniforms
        large = SweepRandomness.draw(3, 1, 0, 20).uniforms
        np.testing.assert_array_equal(small, large[:10])

    def test_slice_is_view(self):
        rand = SweepRandomness.draw(0, 0, 0, 30)
        view = rand.slice(5, 10)
        assert view.base is rand.uniforms
        assert view.shape == (5, UNIFORMS_PER_VERTEX)

    def test_in_unit_interval(self):
        u = SweepRandomness.draw(9, 9, 9, 100).uniforms
        assert u.min() >= 0.0
        assert u.max() < 1.0


class TestTimer:
    def test_accumulates(self):
        t = Timer()
        with t.measure():
            time.sleep(0.01)
        first = t.elapsed
        with t.measure():
            time.sleep(0.01)
        assert t.elapsed > first

    def test_double_start_rejected(self):
        t = Timer()
        t.start()
        with pytest.raises(RuntimeError):
            t.start()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_reset(self):
        t = Timer()
        with t.measure():
            pass
        t.reset()
        assert t.elapsed == 0.0
        assert not t.running


class TestStopwatchPool:
    def test_sections_accumulate(self):
        pool = StopwatchPool()
        with pool.section("a"):
            time.sleep(0.005)
        with pool.section("a"):
            time.sleep(0.005)
        assert pool.elapsed("a") >= 0.01

    def test_unknown_section_zero(self):
        assert StopwatchPool().elapsed("nothing") == 0.0

    def test_add_virtual_time(self):
        pool = StopwatchPool()
        pool.add("model", 2.5)
        assert pool.elapsed("model") == 2.5

    def test_add_negative_rejected(self):
        with pytest.raises(ValueError):
            StopwatchPool().add("x", -1.0)

    def test_snapshot_and_reset(self):
        pool = StopwatchPool()
        pool.add("x", 1.0)
        assert pool.snapshot() == {"x": 1.0}
        pool.reset()
        assert pool.elapsed("x") == 0.0


class TestValidation:
    def test_nonnegative_int(self):
        assert check_nonnegative_int(5, "n") == 5
        assert check_nonnegative_int(0, "n") == 0
        with pytest.raises(ValueError):
            check_nonnegative_int(-1, "n")
        with pytest.raises(ValueError):
            check_nonnegative_int(1.5, "n")
        with pytest.raises(ValueError):
            check_nonnegative_int("x", "n")

    def test_positive(self):
        assert check_positive(0.5, "x") == 0.5
        with pytest.raises(ValueError):
            check_positive(0.0, "x")
        with pytest.raises(ValueError):
            check_positive("y", "x")

    def test_probability(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0
        with pytest.raises(ValueError):
            check_probability(1.1, "p")
        with pytest.raises(ValueError):
            check_probability(-0.1, "p")
