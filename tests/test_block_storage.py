"""Block-storage engines: unit contract + recorded-trace replay.

Two layers of evidence that ``dense``, ``sparse`` and ``hybrid`` are
interchangeable:

* **Contract tests** exercise every :class:`BlockState` operation on
  small hand-built matrices (self-loops, empty blocks, zero rows) and
  compare every engine cell-for-cell against a plain ndarray reference.
* **Recorded traces** register a ``recording`` engine (a dense subclass
  that logs every mutation) and drive *real* phase code — an MCMC phase
  via the sweep engine and a block-merge phase — then replay the logged
  op sequence against fresh states of every engine, asserting byte-equal
  dense views after **every** op. Replay catches ordering/aliasing bugs
  a final-state comparison would miss.
"""

from __future__ import annotations

import numpy as np
import pytest
from numpy.testing import assert_array_equal

from repro import Blockmodel, SBPConfig
from repro.core.sbp import run_mcmc_phase
from repro.errors import BackendError, BlockmodelError
from repro.parallel.backend import get_backend
from repro.sbm.block_storage import (
    BlockState,
    DenseBlockState,
    HybridBlockState,
    RowCDF,
    SparseBlockState,
    available_block_storages,
    get_block_storage,
    register_block_storage,
)
from repro.utils.timer import StopwatchPool

ENGINES = (DenseBlockState, SparseBlockState, HybridBlockState)


def _ref_matrix() -> np.ndarray:
    """5x5 reference with self-loops, an empty block (3) and zero cells."""
    return np.array(
        [
            [2, 1, 0, 0, 3],
            [0, 4, 1, 0, 0],
            [1, 0, 0, 0, 2],
            [0, 0, 0, 0, 0],  # block 3 is empty
            [0, 2, 0, 0, 5],
        ],
        dtype=np.int64,
    )


@pytest.fixture(params=ENGINES, ids=lambda c: c.name)
def engine(request):
    return request.param


class TestContract:
    def test_from_dense_round_trip(self, engine):
        ref = _ref_matrix()
        state = engine.from_dense(ref)
        assert_array_equal(state.to_dense(), ref)
        assert state.num_blocks == 5
        assert state.nnz == np.count_nonzero(ref)
        assert state.total == ref.sum()
        assert state.density == pytest.approx(np.count_nonzero(ref) / 25)
        assert state.equals_dense(ref)

    def test_from_dense_copies(self, engine):
        ref = _ref_matrix()
        state = engine.from_dense(ref)
        ref[0, 0] = 99
        assert state.get(0, 0) == 2

    def test_from_edges_matches_reference(self, engine):
        rng = np.random.default_rng(7)
        src = rng.integers(0, 6, 40)
        dst = rng.integers(0, 6, 40)
        ref = np.zeros((6, 6), dtype=np.int64)
        np.add.at(ref, (src, dst), 1)
        state = engine.from_edges(src, dst, 6)
        assert_array_equal(state.to_dense(), ref)

    def test_from_edges_empty(self, engine):
        state = engine.from_edges(
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64), 3
        )
        assert_array_equal(state.to_dense(), np.zeros((3, 3), dtype=np.int64))
        assert state.nnz == 0

    def test_reads(self, engine):
        ref = _ref_matrix()
        state = engine.from_dense(ref)
        idx = np.array([4, 0, 3, 2], dtype=np.int64)
        for r in range(5):
            assert_array_equal(state.row_gather(r, idx), ref[r, idx])
            assert_array_equal(state.col_gather(r, idx), ref[idx, r])
            assert_array_equal(state.dense_row(r), ref[r, :])
            assert_array_equal(state.dense_col(r), ref[:, r])
            for c in range(5):
                assert state.get(r, c) == ref[r, c]
        assert_array_equal(state.gather(idx, idx[::-1]), ref[idx, idx[::-1]])
        assert_array_equal(state.diagonal(), np.diagonal(ref))
        assert_array_equal(state.row_sums(), ref.sum(axis=1))
        assert_array_equal(state.col_sums(), ref.sum(axis=0))

    def test_nonzero_is_row_major_reference(self, engine):
        ref = _ref_matrix()
        rows, cols, vals = engine.from_dense(ref).nonzero()
        rr, rc = np.nonzero(ref)
        assert_array_equal(rows, rr)
        assert_array_equal(cols, rc)
        assert_array_equal(vals, ref[rr, rc])

    def test_likelihood_matrix_matches_dense(self, engine):
        ref = _ref_matrix()
        assert_array_equal(engine.from_dense(ref).likelihood_matrix(), ref)

    def test_sym_row_cdf_draws_match_dense_identity(self, engine):
        ref = _ref_matrix()
        state = engine.from_dense(ref)
        for u in range(5):
            weights = ref[u, :] + ref[:, u]
            dense_cdf = RowCDF(None, np.cumsum(weights))
            cdf = state.sym_row_cdf(u)
            assert cdf.total == dense_cdf.total == weights.sum()
            for uniform in (0.0, 0.199, 0.2, 0.5, 0.73, 0.999999, 1.0):
                assert cdf.draw(uniform, -1) == dense_cdf.draw(uniform, -1)
            if cdf.total > 0:
                grid = np.linspace(0.0, 0.9999, 37)
                assert_array_equal(cdf.draw_many(grid), dense_cdf.draw_many(grid))

    def test_sym_row_cdf_zero_row_falls_back(self, engine):
        state = engine.from_dense(np.zeros((4, 4), dtype=np.int64))
        assert state.sym_row_cdf(2).draw(0.5, 3) == 3

    def test_apply_move(self, engine):
        ref = _ref_matrix()
        state = engine.from_dense(ref)
        # move a vertex from block 0 to block 4: out-edges to {1, 4},
        # in-edges from {2}, one self-loop
        t_out = np.array([1, 4], dtype=np.int64)
        c_out = np.array([1, 2], dtype=np.int64)
        t_in = np.array([2], dtype=np.int64)
        c_in = np.array([1], dtype=np.int64)
        state.apply_move(0, 4, t_out, c_out, t_in, c_in, loops=1)
        ref[0, t_out] -= c_out
        ref[4, t_out] += c_out
        ref[t_in, 0] -= c_in
        ref[t_in, 4] += c_in
        ref[0, 0] -= 1
        ref[4, 4] += 1
        assert_array_equal(state.to_dense(), ref)

    def test_scatter_edges(self, engine):
        ref = _ref_matrix()
        state = engine.from_dense(ref)
        old_src = np.array([0, 0, 4, 2], dtype=np.int64)
        old_dst = np.array([4, 4, 4, 0], dtype=np.int64)
        new_src = np.array([1, 1, 4, 2], dtype=np.int64)
        new_dst = np.array([4, 1, 1, 2], dtype=np.int64)
        state.scatter_edges(old_src, old_dst, new_src, new_dst)
        np.subtract.at(ref, (old_src, old_dst), 1)
        np.add.at(ref, (new_src, new_dst), 1)
        assert_array_equal(state.to_dense(), ref)

    def test_merge_into(self, engine):
        ref = _ref_matrix()
        state = engine.from_dense(ref)
        state.merge_into(4, 0)  # block 4 has a self-loop and cross terms
        expect = _ref_matrix()
        expect[0, :] += expect[4, :]
        expect[:, 0] += expect[:, 4]
        expect[4, :] = 0
        expect[:, 4] = 0
        assert_array_equal(state.to_dense(), expect)

    def test_merge_into_empty_target(self, engine):
        state = engine.from_dense(_ref_matrix())
        state.merge_into(0, 3)  # target block 3 starts with no edges
        expect = _ref_matrix()
        expect[3, :] += expect[0, :]
        expect[:, 3] += expect[:, 0]
        expect[0, :] = 0
        expect[:, 0] = 0
        assert_array_equal(state.to_dense(), expect)

    def test_compact_drops_empty_block(self, engine):
        state = engine.from_dense(_ref_matrix())
        keep = np.array([0, 1, 2, 4], dtype=np.int64)
        mapping = np.array([0, 1, 2, -1, 3], dtype=np.int64)
        compacted = state.compact(keep, mapping)
        assert compacted.num_blocks == 4
        assert_array_equal(
            compacted.to_dense(), _ref_matrix()[np.ix_(keep, keep)]
        )
        # the source state is untouched
        assert_array_equal(state.to_dense(), _ref_matrix())

    def test_copy_is_independent(self, engine):
        state = engine.from_dense(_ref_matrix())
        dup = state.copy()
        state.merge_into(0, 1)
        assert_array_equal(dup.to_dense(), _ref_matrix())

    def test_memory_bytes_positive(self, engine):
        assert engine.from_dense(_ref_matrix()).memory_bytes() > 0


class TestSparseSpecifics:
    def test_negative_count_rejected(self):
        state = SparseBlockState.from_dense(_ref_matrix())
        # removing an edge that does not exist drives a cell below zero
        with pytest.raises(BlockmodelError):
            state.scatter_edges(
                np.array([3], dtype=np.int64), np.array([3], dtype=np.int64),
                np.array([0], dtype=np.int64), np.array([1], dtype=np.int64),
            )

    def test_zero_cells_are_not_stored(self):
        state = SparseBlockState.from_dense(_ref_matrix())
        # move every count out of cell (0, 1); the support must shrink
        state.scatter_edges(
            np.array([0], dtype=np.int64), np.array([1], dtype=np.int64),
            np.array([0], dtype=np.int64), np.array([4], dtype=np.int64),
        )
        before = state.nnz
        assert state.get(0, 1) == 0
        assert before == np.count_nonzero(state.to_dense())

    def test_sparse_beats_dense_memory_when_sparse(self):
        C = 2048
        rng = np.random.default_rng(3)
        src = rng.integers(0, C, 4 * C)
        dst = rng.integers(0, C, 4 * C)
        dense = DenseBlockState.from_edges(src, dst, C)
        sparse = SparseBlockState.from_edges(src, dst, C)
        assert sparse.memory_bytes() < dense.memory_bytes()


class TestRegistry:
    def test_builtins_listed(self):
        names = available_block_storages()
        assert "dense" in names and "sparse" in names and "hybrid" in names

    def test_get_unknown_raises(self):
        with pytest.raises(BackendError, match="unknown"):
            get_block_storage("no-such-engine")

    def test_duplicate_register_raises(self):
        with pytest.raises(BackendError, match="already"):
            register_block_storage("dense", DenseBlockState)

    def test_config_validates_storage_name(self):
        with pytest.raises(ValueError, match="block_storage"):
            SBPConfig(block_storage="no-such-engine")


# ----------------------------------------------------------------------
# Recorded traces from real runs
# ----------------------------------------------------------------------
class RecordingBlockState(DenseBlockState):
    """Dense engine that logs every mutation for later replay."""

    name = "recording"

    def __init__(self, B: np.ndarray, ops: list | None = None) -> None:
        super().__init__(B)
        self.ops = [] if ops is None else ops

    def apply_move(self, r, s, t_out, c_out, t_in, c_in, loops) -> None:
        self.ops.append((
            "apply_move",
            (int(r), int(s), np.array(t_out), np.array(c_out),
             np.array(t_in), np.array(c_in), int(loops)),
        ))
        super().apply_move(r, s, t_out, c_out, t_in, c_in, loops)

    def scatter_edges(self, old_src, old_dst, new_src, new_dst) -> None:
        self.ops.append((
            "scatter_edges",
            tuple(np.array(a) for a in (old_src, old_dst, new_src, new_dst)),
        ))
        super().scatter_edges(old_src, old_dst, new_src, new_dst)

    def merge_into(self, r: int, s: int) -> None:
        self.ops.append(("merge_into", (int(r), int(s))))
        super().merge_into(r, s)

    def compact(self, keep, mapping) -> "RecordingBlockState":
        self.ops.append(("compact", (np.array(keep), np.array(mapping))))
        base = super().compact(keep, mapping)
        return RecordingBlockState(base.B, self.ops)  # continue the lineage

    def copy(self) -> "RecordingBlockState":
        return RecordingBlockState(self.B.copy(), self.ops)  # shared log

    @classmethod
    def from_edges(cls, src_blocks, dst_blocks, num_blocks):
        return cls(DenseBlockState.from_edges(src_blocks, dst_blocks,
                                              num_blocks).B)

    @classmethod
    def from_dense(cls, dense):
        return cls(np.asarray(dense, dtype=np.int64).copy())


def _replay(ops, start: np.ndarray, engine) -> BlockState:
    """Apply a recorded op sequence to a fresh state of ``engine``."""
    state = engine.from_dense(start)
    for op, payload in ops:
        if op == "compact":
            state = state.compact(*payload)
        else:
            getattr(state, op)(*payload)
    return state


def _replay_pair(ops, start: np.ndarray) -> None:
    """Replay against every engine, asserting equality after every op."""
    dense = DenseBlockState.from_dense(start)
    others = [
        SparseBlockState.from_dense(start),
        HybridBlockState.from_dense(start),
    ]
    for i, (op, payload) in enumerate(ops):
        if op == "compact":
            dense = dense.compact(*payload)
            others = [o.compact(*payload) for o in others]
        else:
            getattr(dense, op)(*payload)
            for other in others:
                getattr(other, op)(*payload)
        expect = dense.to_dense()
        for other in others:
            assert_array_equal(
                other.to_dense(), expect,
                err_msg=f"{other.name} diverged from dense at op {i} ({op})",
            )


@pytest.fixture(scope="module")
def recording_registered():
    try:
        register_block_storage("recording", RecordingBlockState)
    except BackendError:
        pass  # already registered by an earlier module run
    return "recording"


@pytest.mark.slow
class TestRecordedTraces:
    def _recorded_phase(self, graph, variant: str, seed: int):
        """Run one real MCMC phase on a recording state; return its trace."""
        rng = np.random.default_rng(31)
        assignment = rng.integers(0, 10, graph.num_vertices)
        bm = Blockmodel.from_assignment(
            graph, assignment, 10, storage=RecordingBlockState
        )
        start = bm.state.to_dense()
        config = SBPConfig(variant=variant, seed=seed, max_sweeps=4)
        backend = get_backend(config.backend)
        try:
            run_mcmc_phase(bm, graph, config, backend, 1, 0.0, StopwatchPool())
        finally:
            backend.close()
        return start, bm.state

    @pytest.mark.parametrize("variant", ["sbp", "a-sbp", "h-sbp"])
    def test_mcmc_phase_trace_replays_on_both_engines(
        self, medium_graph, variant
    ):
        graph, _ = medium_graph
        start, final_state = self._recorded_phase(graph, variant, seed=11)
        assert final_state.ops, "phase recorded no mutations"
        _replay_pair(final_state.ops, start)
        for engine in ENGINES:
            replayed = _replay(final_state.ops, start, engine)
            assert_array_equal(replayed.to_dense(), final_state.to_dense())

    def test_merge_phase_trace_replays_on_both_engines(self, medium_graph):
        """Merge decisions from a real candidate scan, applied as a trace.

        The production apply step rebuilds from the assignment, so the
        ``merge_into``/``compact`` ops are exercised via the in-place
        :meth:`Blockmodel.merge_blocks` path using the same real
        decisions ``block_merge_phase`` would pick.
        """
        from repro.sbm.delta import merge_delta_batch
        from repro.sbm.moves import propose_block_merges_batch
        from repro.utils.rng import philox_stream

        graph, _ = medium_graph
        rng = np.random.default_rng(13)
        assignment = rng.integers(0, 12, graph.num_vertices)
        bm = Blockmodel.from_assignment(
            graph, assignment, 12, storage=RecordingBlockState
        )
        start = bm.state.to_dense()
        uniforms = philox_stream(5, 0, 0).random((12, 4, 4))
        blocks = np.arange(12, dtype=np.int64)
        targets = propose_block_merges_batch(bm, uniforms)
        applied = 0
        for p in range(targets.shape[1]):
            if applied >= 4:
                break
            deltas = merge_delta_batch(bm, blocks, targets[:, p])
            r = int(blocks[np.argmin(deltas)])
            s = int(targets[np.argmin(deltas), p])
            if r != s and (bm.assignment == r).any() and (bm.assignment == s).any():
                bm.merge_blocks(r, s)
                applied += 1
        bm.compact()
        ops = bm.state.ops
        assert any(op == "merge_into" for op, _ in ops)
        assert any(op == "compact" for op, _ in ops)
        _replay_pair(ops, start)

    def test_full_run_accepts_registered_engine(
        self, planted_graph, recording_registered
    ):
        """``block_storage`` accepts any registered engine end to end."""
        from repro.core.sbp import run_sbp

        graph, _ = planted_graph
        config = SBPConfig(seed=6, max_sweeps=6,
                           block_storage=recording_registered)
        reference = run_sbp(graph, SBPConfig(seed=6, max_sweeps=6))
        result = run_sbp(graph, config)
        assert_array_equal(result.assignment, reference.assignment)
        assert result.mdl == reference.mdl
