"""Unit tests for GraphBuilder."""

from __future__ import annotations

import pytest

from repro import GraphBuilder
from repro.errors import GraphValidationError


class TestAutoLabeling:
    def test_string_labels_densified(self):
        g = GraphBuilder().add_edge("a", "b").add_edge("b", "c").build()
        assert g.num_vertices == 3
        assert g.num_edges == 2

    def test_labels_in_first_seen_order(self):
        b = GraphBuilder()
        b.add_edge("x", "y").add_edge("z", "x")
        assert b.labels == ["x", "y", "z"]

    def test_add_vertex_registers_isolated(self):
        b = GraphBuilder()
        b.add_edge(0, 1)
        b.add_vertex("lonely")
        g = b.build()
        assert g.num_vertices == 3
        assert g.degree[2] == 0

    def test_chaining(self):
        b = GraphBuilder().add_edges([(0, 1), (1, 2), (0, 1)])
        assert b.num_edges == 3


class TestFixedSize:
    def test_in_range_ids(self):
        g = GraphBuilder(num_vertices=5).add_edge(0, 4).build()
        assert g.num_vertices == 5

    def test_out_of_range_rejected(self):
        with pytest.raises(GraphValidationError):
            GraphBuilder(num_vertices=3).add_edge(0, 3)

    def test_non_integer_rejected(self):
        with pytest.raises(GraphValidationError):
            GraphBuilder(num_vertices=3).add_edge("a", 0)


class TestBuild:
    def test_deduplicate(self):
        g = GraphBuilder().add_edges([(0, 1), (0, 1), (1, 0)]).build(deduplicate=True)
        assert g.num_edges == 2

    def test_keeps_parallel_edges_by_default(self):
        g = GraphBuilder().add_edges([(0, 1), (0, 1)]).build()
        assert g.num_edges == 2

    def test_empty_builder_rejected(self):
        with pytest.raises(GraphValidationError):
            GraphBuilder().build()

    def test_edgeless_fixed_size_allowed(self):
        g = GraphBuilder(num_vertices=4).build()
        assert g.num_vertices == 4
        assert g.num_edges == 0
