"""Partition service: job digests, result store, lease queue, orchestrator,
HTTP front-end.

The three contracts CI gates here:

* **cache discipline** — executing the same (graph, config, mode, runs)
  twice through a store yields a byte-equal outcome the second time,
  without re-running MCMC;
* **orchestrator correctness** — N workers draining a mixed queue of
  >= 20 jobs produce results identical to serial execution, and a
  killed worker's job survives via lease expiry onto a survivor;
* **front-end fidelity** — the stdlib-HTTP endpoints submit, track and
  serve exactly what the store holds.
"""

from __future__ import annotations

import json
import os
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.core.variants import SBPConfig
from repro.errors import LeaseError, ServiceError, UnknownJobError
from repro.generators import DCSBMParams, generate_dcsbm
from repro.graph.graph import Graph
from repro.io.serialize import result_payload
from repro.service.jobs import JOB_MODES, JobSpec, execute_job, job_digest
from repro.service.orchestrator import Orchestrator, run_jobs_serially
from repro.service.queue import (
    JobState,
    LeaseQueue,
    available_job_queues,
    get_job_queue,
)
from repro.service.store import (
    DiskResultStore,
    MemoryResultStore,
    available_result_stores,
    get_result_store,
)
from repro.streaming.source import synthetic_churn_stream

# Tiny-but-structured graphs keep every MCMC run in the sub-second range.
_FAST = dict(max_sweeps=6)


def _planted(num_vertices=40, seed=7):
    params = DCSBMParams(
        num_vertices=num_vertices, num_communities=2,
        within_between_ratio=8.0, mean_degree=6.0,
    )
    graph, _ = generate_dcsbm(params, seed=seed)
    return graph


def _spec(graph=None, seed=3, runs=1, **config_overrides):
    graph = graph if graph is not None else _planted()
    config = SBPConfig(seed=seed, **{**_FAST, **config_overrides})
    return JobSpec.for_graph(graph, config, runs=runs)


class FakeClock:
    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


# ----------------------------------------------------------------------
# Job specs and digests
# ----------------------------------------------------------------------
class TestJobDigest:
    def test_digest_is_stable(self):
        spec = _spec()
        assert spec.digest() == spec.digest() == job_digest(spec.resolved())
        assert len(spec.digest()) == 32

    def test_digest_covers_graph_content(self):
        assert _spec(graph=_planted(seed=1)).digest() != \
            _spec(graph=_planted(seed=2)).digest()

    def test_digest_covers_config_and_runs(self):
        base = _spec(seed=3, runs=1)
        assert base.digest() != _spec(seed=4, runs=1).digest()
        assert base.digest() != _spec(seed=3, runs=2).digest()

    def test_auto_storage_shares_address_with_resolved_engine(self):
        graph = _planted()
        auto = JobSpec.for_graph(graph, SBPConfig(seed=3, block_storage="auto"))
        resolved = auto.resolved()
        assert resolved.config.block_storage != "auto"
        explicit = JobSpec.for_graph(
            graph,
            SBPConfig(seed=3, block_storage=resolved.config.block_storage),
        )
        assert auto.digest() == explicit.digest()

    def test_backend_choice_does_not_fragment_the_cache(self):
        # All backends are bit-identical by construction, so the digest
        # deliberately excludes them (mirrors config_digest).
        graph = _planted()
        a = JobSpec.for_graph(graph, SBPConfig(seed=3, backend="vectorized"))
        b = JobSpec.for_graph(graph, SBPConfig(seed=3, backend="serial"))
        assert a.digest() == b.digest()

    def test_stream_digest_covers_batches_and_policy(self):
        s1 = synthetic_churn_stream(
            num_vertices=40, num_communities=2, num_snapshots=3, seed=5)
        s2 = synthetic_churn_stream(
            num_vertices=40, num_communities=2, num_snapshots=3, seed=6)
        config = SBPConfig(seed=3, **_FAST)
        d1 = JobSpec.for_stream(s1, config).digest()
        assert d1 != JobSpec.for_stream(s2, config).digest()
        assert d1 != JobSpec.for_stream(
            s1, config, drift_threshold=0.5).digest()
        # Same stream rebuilt from the same seed: same address.
        s1_again = synthetic_churn_stream(
            num_vertices=40, num_communities=2, num_snapshots=3, seed=5)
        assert d1 == JobSpec.for_stream(s1_again, config).digest()

    def test_mode_validation(self):
        graph = _planted()
        assert JobSpec.for_graph(graph, SBPConfig(sample_rate=0.5)).mode == "sample"
        assert JobSpec.for_graph(graph, SBPConfig()).mode == "fit"
        assert set(JOB_MODES) == {"fit", "sample", "stream"}
        with pytest.raises(ServiceError):
            JobSpec(graph=graph, config=SBPConfig(), mode="nope")
        with pytest.raises(ServiceError):
            JobSpec(graph=graph, config=SBPConfig(), runs=0)
        with pytest.raises(ServiceError):
            JobSpec(graph=graph, config=SBPConfig(), mode="stream")
        with pytest.raises(ServiceError):
            JobSpec(graph=graph, config=SBPConfig(sample_rate=0.5), mode="fit")

    def test_stream_spec_checks_initial_graph(self):
        stream = synthetic_churn_stream(
            num_vertices=40, num_communities=2, num_snapshots=2, seed=5)
        with pytest.raises(ServiceError):
            JobSpec(graph=_planted(), config=SBPConfig(), mode="stream",
                    stream=stream)


# ----------------------------------------------------------------------
# Result store
# ----------------------------------------------------------------------
def _make_store(engine: str, tmp_path, budget=None):
    if engine == "disk":
        return DiskResultStore(tmp_path / "store", size_budget_bytes=budget)
    return MemoryResultStore(size_budget_bytes=budget)


@pytest.mark.parametrize("engine", ["disk", "memory"])
class TestResultStore:
    def test_round_trip_is_byte_equal(self, engine, tmp_path):
        store = _make_store(engine, tmp_path)
        outcome = execute_job(_spec())
        store.put(outcome)
        loaded = store.get(outcome.digest)
        assert loaded.cache_hit
        assert loaded.digest == outcome.digest
        assert np.array_equal(loaded.best.assignment, outcome.best.assignment)
        # Full payload equality — timings included, not just the argmax.
        assert result_payload(loaded.best) == result_payload(outcome.best)
        assert store._read(outcome.digest) == store._read(outcome.digest)

    def test_miss_and_hit_accounting(self, engine, tmp_path):
        store = _make_store(engine, tmp_path)
        assert store.get("0" * 32) is None
        outcome = execute_job(_spec())
        store.put(outcome)
        store.get(outcome.digest)
        health = store.health()
        assert health["hits"] == 1 and health["misses"] == 1
        assert health["puts"] == 1 and health["entries"] == 1
        assert health["bytes"] > 0
        assert outcome.digest in store
        assert store.digests() == [outcome.digest]

    def test_eviction_respects_budget_and_keeps_newest(self, engine, tmp_path):
        first = execute_job(_spec(seed=1))
        second = execute_job(_spec(seed=2))
        probe = _make_store(engine, tmp_path / "probe")
        probe.put(first)
        entry_size = probe.health()["bytes"]
        store = _make_store(engine, tmp_path / "real", budget=entry_size + 16)
        store.put(first)
        store.put(second)  # pushes past budget: first must be evicted
        assert store.get(second.digest) is not None
        assert store.get(first.digest) is None
        assert store.stats.evictions == 1

    def test_registry(self, engine, tmp_path):
        assert engine in available_result_stores()
        factory = get_result_store(engine)
        store = (
            factory(tmp_path / "reg") if engine == "disk" else factory()
        )
        outcome = execute_job(_spec())
        store.put(outcome)
        assert store.get(outcome.digest) is not None


class TestDiskStoreSpecifics:
    def test_persists_across_instances(self, tmp_path):
        outcome = execute_job(_spec())
        DiskResultStore(tmp_path).put(outcome)
        reopened = DiskResultStore(tmp_path)
        loaded = reopened.get(outcome.digest)
        assert loaded is not None and loaded.cache_hit

    def test_reads_refresh_lru_recency(self, tmp_path):
        a, b, c = (execute_job(_spec(seed=s)) for s in (1, 2, 3))
        probe = DiskResultStore(tmp_path / "probe")
        probe.put(a)
        entry = probe.health()["bytes"]
        store = DiskResultStore(tmp_path / "s", size_budget_bytes=2 * entry + 32)
        store.put(a)
        store.put(b)
        # Backdate mtimes so recency order is unambiguous, then read `a`
        # to refresh it: the next eviction must take `b`, not `a`.
        os.utime(store._path(a.digest), (1, 1))
        os.utime(store._path(b.digest), (2, 2))
        assert store.get(a.digest) is not None
        store.put(c)
        assert store.get(a.digest) is not None
        assert store.get(b.digest) is None

    def test_bad_budget_rejected(self, tmp_path):
        with pytest.raises(ServiceError):
            DiskResultStore(tmp_path, size_budget_bytes=0)

    def test_memory_store_read_refreshes_recency(self):
        a, b, c = (execute_job(_spec(seed=s)) for s in (1, 2, 3))
        probe = MemoryResultStore()
        probe.put(a)
        entry = probe.health()["bytes"]
        store = MemoryResultStore(size_budget_bytes=2 * entry + 32)
        store.put(a)
        store.put(b)
        store.get(a.digest)  # a becomes most-recent
        store.put(c)
        assert store.get(a.digest) is not None
        assert store.get(b.digest) is None


# ----------------------------------------------------------------------
# execute_job cache discipline
# ----------------------------------------------------------------------
class TestExecuteJob:
    @pytest.mark.parametrize("engine", ["disk", "memory"])
    def test_cache_hit_is_bit_identical_and_skips_mcmc(
        self, engine, tmp_path, monkeypatch
    ):
        store = _make_store(engine, tmp_path)
        spec = _spec(runs=2)
        first = execute_job(spec, store=store)
        assert not first.cache_hit

        import repro.core.sbp as sbp_module

        def _boom(*args, **kwargs):  # a hit must never reach the engine
            raise AssertionError("cache hit re-ran MCMC")

        monkeypatch.setattr(sbp_module, "run_best_of", _boom)
        second = execute_job(spec, store=store)
        assert second.cache_hit
        assert len(second.results) == len(first.results) == 2
        for ours, cached in zip(first.results, second.results):
            assert result_payload(ours) == result_payload(cached)

    def test_interrupted_outcomes_are_not_cached(self, monkeypatch):
        store = MemoryResultStore()
        spec = _spec()
        real = execute_job(spec)
        for result in real.results:
            object.__setattr__(result, "interrupted", True)

        import repro.core.sbp as sbp_module

        monkeypatch.setattr(
            sbp_module, "run_best_of",
            lambda *a, **k: (real.results[0], real.results),
        )
        outcome = execute_job(spec, store=store)
        assert outcome.interrupted
        assert store.health()["entries"] == 0

    def test_resilient_flag_wraps_plain_backends_only(self):
        spec = _spec()
        outcome = execute_job(spec, resilient=True)
        reference = execute_job(spec)
        assert np.array_equal(
            outcome.best.assignment, reference.best.assignment
        )
        assert outcome.best.mdl == reference.best.mdl

    def test_stream_cache_round_trip(self, tmp_path):
        stream = synthetic_churn_stream(
            num_vertices=40, num_communities=2, num_snapshots=3, seed=5)
        spec = JobSpec.for_stream(stream, SBPConfig(seed=3, **_FAST))
        store = DiskResultStore(tmp_path)
        first = execute_job(spec, store=store)
        second = execute_job(spec, store=store)
        assert second.cache_hit
        assert second.stream is not None
        assert second.summary()["warm_refits"] == first.summary()["warm_refits"]
        assert np.array_equal(
            first.best.assignment, second.best.assignment
        )

    def test_run_health_surfaces_store_stats(self):
        from repro.diagnostics import run_health

        store = MemoryResultStore()
        outcome = execute_job(_spec(), store=store)
        execute_job(_spec(), store=store)
        health = run_health(outcome.best, store=store)
        assert health["store"]["hits"] == 1
        assert health["store"]["entries"] == 1
        plain = run_health(outcome.best)
        assert "store" not in plain


# ----------------------------------------------------------------------
# Lease queue (fake clock: deterministic expiry)
# ----------------------------------------------------------------------
class TestLeaseQueue:
    def _queue(self, **kwargs):
        clock = FakeClock()
        defaults = dict(lease_ttl=10.0, max_attempts=3, clock=clock)
        defaults.update(kwargs)
        return LeaseQueue(**defaults), clock

    def test_submit_dedupes_by_digest(self):
        q, _ = self._queue()
        spec = _spec()
        assert q.submit(spec) == q.submit(spec)
        assert q.counts()["pending"] == 1

    def test_fifo_and_lifo_orders(self):
        specs = [_spec(seed=s) for s in (1, 2, 3)]
        q, _ = self._queue(order="fifo")
        ids = [q.submit(s) for s in specs]
        assert [q.lease("w").job_id for _ in specs] == ids
        q, _ = self._queue(order="lifo")
        ids = [q.submit(s) for s in specs]
        assert [q.lease("w").job_id for _ in specs] == ids[::-1]

    def test_lease_complete_lifecycle(self):
        q, _ = self._queue()
        job_id = q.submit(_spec())
        job = q.lease("w1")
        assert job.state is JobState.LEASED and job.attempts == 1
        q.heartbeat(job_id, "w1")
        q.complete(job_id, "w1")
        assert q.status(job_id)["state"] == "done"
        assert q.drained() and q.lease("w2") is None

    def test_heartbeat_keeps_lease_alive(self):
        q, clock = self._queue(lease_ttl=10.0)
        job_id = q.submit(_spec())
        q.lease("w1")
        for _ in range(5):
            clock.advance(6.0)  # would expire without the heartbeat
            q.heartbeat(job_id, "w1")
        assert q.counts()["expirations"] == 0
        q.complete(job_id, "w1")

    def test_expired_lease_requeues_for_survivor(self):
        q, clock = self._queue(lease_ttl=10.0)
        job_id = q.submit(_spec())
        q.lease("dead-worker")
        clock.advance(10.5)
        job = q.lease("survivor")
        assert job is not None and job.job_id == job_id
        assert job.worker == "survivor" and job.attempts == 2
        assert q.counts()["expirations"] == 1
        # The zombie is fenced off every lease-holder operation.
        with pytest.raises(LeaseError):
            q.heartbeat(job_id, "dead-worker")
        with pytest.raises(LeaseError):
            q.complete(job_id, "dead-worker")
        with pytest.raises(LeaseError):
            q.fail(job_id, "dead-worker", "zombie report")
        q.complete(job_id, "survivor")
        assert q.status(job_id)["state"] == "done"

    def test_attempts_exhaustion_fails_the_job(self):
        q, clock = self._queue(lease_ttl=1.0, max_attempts=2)
        job_id = q.submit(_spec())
        for _ in range(2):
            assert q.lease("w") is not None
            clock.advance(1.5)
        assert q.lease("w") is None
        status = q.status(job_id)
        assert status["state"] == "failed"
        assert "attempts exhausted" in status["error"]

    def test_failed_job_revives_on_resubmit(self):
        q, _ = self._queue(max_attempts=1)
        spec = _spec()
        job_id = q.submit(spec)
        q.lease("w")
        q.fail(job_id, "w", "boom")
        assert q.status(job_id)["state"] == "failed"
        assert q.submit(spec) == job_id
        status = q.status(job_id)
        assert status["state"] == "pending" and status["attempts"] == 0

    def test_unknown_job_raises(self):
        q, _ = self._queue()
        with pytest.raises(UnknownJobError):
            q.status("f" * 32)

    def test_snapshot_and_get_spec(self):
        q, _ = self._queue()
        spec = _spec()
        job_id = q.submit(spec)
        rows = q.snapshot()
        assert len(rows) == 1 and rows[0]["job_id"] == job_id
        assert q.get_spec(job_id).digest() == job_id

    def test_constructor_validation_and_registry(self):
        with pytest.raises(ServiceError):
            LeaseQueue(lease_ttl=0)
        with pytest.raises(ServiceError):
            LeaseQueue(max_attempts=0)
        with pytest.raises(ServiceError):
            LeaseQueue(order="priority")
        assert available_job_queues() == ["fifo", "lifo"]
        assert get_job_queue("lifo")(lease_ttl=5.0).order == "lifo"
        with pytest.raises(ServiceError):
            get_job_queue("no-such-queue")


# ----------------------------------------------------------------------
# Orchestrator
# ----------------------------------------------------------------------
class TestOrchestrator:
    def test_workers_match_serial_on_mixed_queue(self, tmp_path):
        # >= 20 jobs across all three modes, drained by 4 workers, must
        # equal one-at-a-time execution result-for-result.
        graphs = [_planted(seed=s) for s in (1, 2)]
        specs = []
        for graph in graphs:
            for seed in range(8):
                specs.append(_spec(graph=graph, seed=seed))
            specs.append(_spec(graph=graph, seed=50, runs=2))
        for seed in (5, 6):
            stream = synthetic_churn_stream(
                num_vertices=40, num_communities=2, num_snapshots=2,
                seed=seed)
            specs.append(JobSpec.for_stream(stream, SBPConfig(seed=3, **_FAST)))
        specs.append(_spec(seed=9, sample_rate=0.5))
        specs.append(_spec(seed=10, sample_rate=0.5))
        assert len(specs) >= 20

        serial = run_jobs_serially(specs, MemoryResultStore())

        store = DiskResultStore(tmp_path / "store")
        queue = LeaseQueue(lease_ttl=30.0)
        for spec in specs:
            queue.submit(spec)
        orch = Orchestrator(
            queue, store, workers=4, checkpoint_root=tmp_path / "ckpt")
        assert orch.run_until_drained(timeout=600)
        counts = queue.counts()
        assert counts["done"] == len({s.digest() for s in specs})
        assert counts["failed"] == 0

        for spec, reference in zip(specs, serial):
            outcome = store.get(spec.digest())
            assert outcome is not None
            assert outcome.best.mdl == reference.best.mdl
            assert np.array_equal(
                outcome.best.assignment, reference.best.assignment
            )
            assert [r.mdl for r in outcome.results] == \
                [r.mdl for r in reference.results]

    def test_killed_worker_job_completes_on_survivor(self, tmp_path):
        # worker-0 dies on its first lease (no fail call, heartbeat
        # stops); after the TTL the queue re-leases to worker-1.
        specs = [_spec(seed=s) for s in (1, 2, 3)]
        store = MemoryResultStore()
        queue = LeaseQueue(lease_ttl=1.0, max_attempts=3)
        for spec in specs:
            queue.submit(spec)
        orch = Orchestrator(
            queue, store, workers=2,
            checkpoint_root=tmp_path / "ckpt",
            crash_plan={"worker-0": 1},
        )
        assert orch.run_until_drained(timeout=300)
        counts = queue.counts()
        assert counts["done"] == len(specs)
        assert counts["failed"] == 0
        assert counts["expirations"] >= 1  # the kill really expired a lease
        reference = run_jobs_serially(specs)
        for spec, ref in zip(specs, reference):
            outcome = store.get(spec.digest())
            assert outcome is not None
            assert np.array_equal(
                outcome.best.assignment, ref.best.assignment)

    def test_job_exception_fails_and_requeues(self):
        queue = LeaseQueue(lease_ttl=30.0, max_attempts=2)
        store = MemoryResultStore()
        spec = _spec()
        queue.submit(spec)
        orch = Orchestrator(queue, store, workers=1)

        import repro.service.orchestrator as orch_module

        original = orch_module.execute_job
        try:
            def _always_raise(*args, **kwargs):
                raise RuntimeError("engine exploded")

            orch_module.execute_job = _always_raise
            assert orch.run_until_drained(timeout=60)
        finally:
            orch_module.execute_job = original
        status = queue.status(spec.digest())
        assert status["state"] == "failed"
        assert "engine exploded" in status["error"]

    def test_worker_count_validation(self):
        with pytest.raises(ValueError):
            Orchestrator(LeaseQueue(), MemoryResultStore(), workers=0)


# ----------------------------------------------------------------------
# HTTP front-end
# ----------------------------------------------------------------------
def _two_cliques(n=6):
    edges = []
    for block in (range(n), range(n, 2 * n)):
        block = list(block)
        for i in block:
            for j in block:
                if i != j:
                    edges.append([i, j])
    edges.append([0, n])
    edges.append([n, 0])
    return edges, 2 * n


@pytest.fixture()
def service(tmp_path):
    from repro.service.server import PartitionService

    svc = PartitionService(
        MemoryResultStore(),
        LeaseQueue(lease_ttl=30.0),
        workers=2,
        port=0,
        checkpoint_root=tmp_path / "ckpt",
    )
    svc.start()
    try:
        yield svc
    finally:
        svc.close()


def _get(base: str, path: str):
    with urllib.request.urlopen(base + path, timeout=30) as resp:
        return resp.status, resp.read()


def _post(base: str, path: str, body: dict):
    req = urllib.request.Request(
        base + path, data=json.dumps(body).encode("utf-8"), method="POST")
    with urllib.request.urlopen(req, timeout=30) as resp:
        return resp.status, resp.read()


class TestHTTPService:
    def _base(self, service):
        host, port = service.address
        return f"http://{host}:{port}"

    def _wait_done(self, base, job_id, deadline_s=240.0):
        deadline = time.monotonic() + deadline_s
        while time.monotonic() < deadline:
            _, raw = _get(base, f"/status/{job_id}")
            status = json.loads(raw)
            if status["state"] in ("done", "failed"):
                return status
            time.sleep(0.05)
        raise AssertionError(f"job {job_id} never finished")

    def test_submit_status_result_report_health(self, service):
        base = self._base(service)
        edges, num_vertices = _two_cliques()
        body = {
            "edges": edges,
            "num_vertices": num_vertices,
            "config": {"seed": 1, "max_sweeps": 6},
            "runs": 1,
        }
        code, raw = _post(base, "/submit", body)
        assert code == 200
        submitted = json.loads(raw)
        job_id = submitted["job_id"]
        assert submitted["state"] in ("pending", "leased", "done")

        status = self._wait_done(base, job_id)
        assert status["state"] == "done", status
        assert status["outcome"]["digest"] == job_id
        assert status["outcome"]["V"] == num_vertices

        code, raw = _get(base, f"/result/{job_id}")
        assert code == 200
        payload = json.loads(raw)
        assert payload["format"] == "repro.job_outcome"
        assert payload["digest"] == job_id
        assert len(payload["results"]) == 1

        code, raw = _get(base, "/report")
        assert code == 200
        report = raw.decode()
        assert "partition service store (1 outcomes)" in report
        assert job_id in report

        code, raw = _get(base, "/health")
        health = json.loads(raw)
        assert health["ok"] is True
        assert health["queue"]["done"] == 1
        assert health["store"]["entries"] == 1

        # Resubmitting the same content returns the same job id (dedupe).
        code, raw = _post(base, "/submit", body)
        assert json.loads(raw)["job_id"] == job_id

    def test_bad_requests_are_4xx(self, service):
        base = self._base(service)
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(base, "/submit", {"config": {"seed": 1}})  # no graph source
        assert err.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as err:
            _post(base, "/submit", {"edges": [[0, 1]], "config": {"nope": 1}})
        assert err.value.code == 400
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(base, "/status/" + "f" * 32)
        assert err.value.code == 404
        with pytest.raises(urllib.error.HTTPError) as err:
            _get(base, "/no-such-endpoint")
        assert err.value.code == 404

    def test_build_job_spec_sources(self):
        from repro.service.server import build_job_spec

        edges, num_vertices = _two_cliques()
        spec = build_job_spec({
            "edges": edges, "num_vertices": num_vertices,
            "config": {"seed": 2},
        })
        assert isinstance(spec.graph, Graph)
        assert spec.graph.num_vertices == num_vertices
        corpus_spec = build_job_spec({"corpus": "S1", "config": {"seed": 1}})
        assert corpus_spec.mode == "fit"
        stream_spec = build_job_spec({
            "stream": {
                "source": "synthetic-churn",
                "options": {"num_vertices": 40, "num_communities": 2,
                            "num_snapshots": 2, "seed": 5},
            },
            "config": {"seed": 3},
        })
        assert stream_spec.mode == "stream"
        with pytest.raises(ServiceError):
            build_job_spec({"edges": [[0, 1]], "corpus": "S1"})
        with pytest.raises(ServiceError):
            build_job_spec({"path": "/nonexistent/graph.txt"})


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------
class TestCLIIntegration:
    def test_registry_lists_service_sections(self, capsys):
        from repro.cli import main

        assert main(["registry", "--list"]) == 0
        out = capsys.readouterr().out
        assert "result stores" in out
        assert "job queues" in out
        for name in ("disk", "memory", "fifo", "lifo"):
            assert name in out

    def test_serve_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve"])
        assert args.store == "disk"
        assert args.queue == "fifo"
        assert args.port == 8642
        assert args.lease_ttl == 30.0
        assert args.max_attempts == 3

    def test_detect_store_flag_caches(self, tmp_path, capsys):
        from repro.cli import main
        from repro.graph.io import write_edge_list

        graph = _planted()
        graph_path = tmp_path / "g.txt"
        write_edge_list(graph, graph_path)
        store_dir = tmp_path / "store"
        argv = ["detect", str(graph_path), "--variant", "sbp",
                "--seed", "3", "--store", str(store_dir), "--json"]
        assert main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert "cached" not in first
        assert main(argv) == 0
        second = json.loads(capsys.readouterr().out)
        assert second.pop("cached") is True
        assert first == second
