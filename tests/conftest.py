"""Shared fixtures: hand-built graphs, planted-partition graphs, state."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Blockmodel, DCSBMParams, Graph, generate_dcsbm


@pytest.fixture
def tiny_graph() -> Graph:
    """8 vertices, two obvious clusters {0..3} and {4..7}, one bridge.

    Includes a self-loop (vertex 2) and a parallel edge (1 -> 0 twice) so
    multigraph handling is always exercised.
    """
    edges = np.array(
        [
            [0, 1], [1, 2], [2, 3], [3, 0], [1, 0], [1, 0], [2, 2],
            [4, 5], [5, 6], [6, 7], [7, 4], [5, 4], [6, 4],
            [3, 4],  # bridge
        ],
        dtype=np.int64,
    )
    return Graph(8, edges)


@pytest.fixture
def tiny_truth() -> np.ndarray:
    return np.array([0, 0, 0, 0, 1, 1, 1, 1], dtype=np.int64)


@pytest.fixture(scope="session")
def planted_graph() -> tuple[Graph, np.ndarray]:
    """An easily detectable planted partition (V=80, 3 communities)."""
    return generate_dcsbm(
        DCSBMParams(
            num_vertices=80,
            num_communities=3,
            within_between_ratio=8.0,
            mean_degree=8.0,
            d_max=16,
        ),
        seed=101,
    )


@pytest.fixture(scope="session")
def medium_graph() -> tuple[Graph, np.ndarray]:
    """A moderately sized graph for backend and sweep tests (V=150)."""
    return generate_dcsbm(
        DCSBMParams(
            num_vertices=150,
            num_communities=5,
            within_between_ratio=6.0,
            mean_degree=7.0,
            d_max=24,
        ),
        seed=77,
    )


@pytest.fixture
def random_blockmodel(medium_graph) -> tuple[Graph, Blockmodel]:
    """A deliberately wrong random assignment over the medium graph."""
    graph, _ = medium_graph
    rng = np.random.default_rng(5)
    assignment = rng.integers(0, 9, graph.num_vertices)
    return graph, Blockmodel.from_assignment(graph, assignment, 9)


def make_line_graph(n: int = 5) -> Graph:
    """0 -> 1 -> ... -> n-1, a minimal deterministic structure."""
    edges = np.stack(
        [np.arange(n - 1, dtype=np.int64), np.arange(1, n, dtype=np.int64)], axis=1
    )
    return Graph(n, edges)
