"""Integration tests for the full SBP drivers (paper's headline claims)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    DCSBMParams,
    SBPConfig,
    Variant,
    generate_dcsbm,
    run_best_of,
    run_sbp,
)
from repro.metrics import normalized_mutual_information


@pytest.fixture(scope="module")
def easy_graph():
    """Strong, clearly detectable community structure."""
    return generate_dcsbm(
        DCSBMParams(
            num_vertices=90,
            num_communities=3,
            within_between_ratio=10.0,
            mean_degree=9.0,
            d_max=20,
        ),
        seed=55,
    )


@pytest.fixture(scope="module")
def structureless_graph():
    """r = 1: a degree-corrected random graph with no communities."""
    return generate_dcsbm(
        DCSBMParams(
            num_vertices=90,
            num_communities=3,
            within_between_ratio=1.0,
            mean_degree=6.0,
        ),
        seed=56,
    )


@pytest.mark.slow
class TestVariantsRecoverStructure:
    @pytest.mark.parametrize("variant", [Variant.SBP, Variant.ASBP, Variant.HSBP])
    def test_planted_partition_recovered(self, easy_graph, variant):
        graph, truth = easy_graph
        result = run_sbp(graph, SBPConfig(variant=variant, seed=11))
        nmi = normalized_mutual_information(truth, result.assignment)
        assert nmi > 0.8, f"{variant} NMI {nmi}"
        assert result.normalized_mdl < 1.0
        assert 2 <= result.num_blocks <= 6

    @pytest.mark.parametrize("variant", [Variant.SBP, Variant.HSBP])
    def test_structureless_collapses(self, structureless_graph, variant):
        graph, _ = structureless_graph
        result = run_sbp(graph, SBPConfig(variant=variant, seed=12))
        # the paper's r=1 story: no structure found, MDL_norm ~ 1
        assert result.num_blocks <= 3
        assert result.normalized_mdl >= 0.98


@pytest.mark.slow
class TestDriverMechanics:
    def test_result_fields(self, easy_graph):
        graph, _ = easy_graph
        result = run_sbp(graph, SBPConfig(seed=1))
        assert result.variant == "sbp"
        assert result.num_vertices == graph.num_vertices
        assert result.assignment.shape == (graph.num_vertices,)
        assert result.assignment.max() == result.num_blocks - 1
        assert result.mcmc_sweeps > 0
        assert result.outer_iterations > 0
        assert result.converged
        assert result.timings.total > 0
        assert result.mcmc_seconds > 0

    def test_deterministic_per_seed(self, easy_graph):
        graph, _ = easy_graph
        a = run_sbp(graph, SBPConfig(seed=42))
        b = run_sbp(graph, SBPConfig(seed=42))
        np.testing.assert_array_equal(a.assignment, b.assignment)
        assert a.mdl == b.mdl

    def test_serial_and_vectorized_backends_agree(self, easy_graph):
        """The parallel backend must not change the chain (§3.1 exactness)."""
        graph, _ = easy_graph
        fast = run_sbp(graph, SBPConfig(variant=Variant.ASBP, seed=7, backend="vectorized"))
        slow = run_sbp(graph, SBPConfig(variant=Variant.ASBP, seed=7, backend="serial"))
        np.testing.assert_array_equal(fast.assignment, slow.assignment)
        assert fast.mdl == pytest.approx(slow.mdl)

    def test_record_work_collects_sweeps(self, easy_graph):
        graph, _ = easy_graph
        result = run_sbp(graph, SBPConfig(variant=Variant.HSBP, seed=3, record_work=True))
        assert len(result.sweep_stats) == result.mcmc_sweeps
        assert any(s.work_per_vertex is not None for s in result.sweep_stats)
        assert all(s.serial_work > 0 for s in result.sweep_stats)

    def test_validate_mode(self, easy_graph):
        graph, _ = easy_graph
        result = run_sbp(graph, SBPConfig(seed=2, validate=True, max_sweeps=5))
        assert result.num_blocks >= 1

    def test_hsbp_timings_split(self, easy_graph):
        graph, _ = easy_graph
        result = run_sbp(graph, SBPConfig(variant=Variant.HSBP, seed=4))
        assert result.timings.mcmc > 0
        assert result.timings.rebuild > 0
        assert result.timings.block_merge > 0

    def test_best_of_picks_lowest_mdl(self, easy_graph):
        graph, _ = easy_graph
        best, all_results = run_best_of(graph, SBPConfig(seed=9), runs=3)
        assert len(all_results) == 3
        assert best.mdl == min(r.mdl for r in all_results)
        # derived seeds must differ
        assert len({r.seed for r in all_results}) == 3

    def test_best_of_single_run(self, easy_graph):
        graph, _ = easy_graph
        best, all_results = run_best_of(graph, SBPConfig(seed=9), runs=1)
        assert len(all_results) == 1
        assert best is all_results[0]

    def test_best_of_zero_runs_rejected(self, easy_graph):
        graph, _ = easy_graph
        with pytest.raises(ValueError):
            run_best_of(graph, SBPConfig(), runs=0)


class TestConfigValidation:
    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            SBPConfig(vstar_fraction=2.0)

    def test_bad_rate(self):
        with pytest.raises(ValueError):
            SBPConfig(block_reduction_rate=1.0)

    def test_bad_sweeps(self):
        with pytest.raises(ValueError):
            SBPConfig(max_sweeps=0)

    def test_bad_beta(self):
        with pytest.raises(ValueError):
            SBPConfig(beta=0.0)

    def test_string_variant_coerced(self):
        assert SBPConfig(variant="h-sbp").variant is Variant.HSBP

    def test_replace(self):
        config = SBPConfig(seed=1)
        other = config.replace(seed=2, variant="a-sbp")
        assert other.seed == 2
        assert other.variant is Variant.ASBP
        assert config.seed == 1


@pytest.mark.slow
class TestSearchHistory:
    def test_history_descends_to_best(self, easy_graph):
        graph, _ = easy_graph
        result = run_sbp(graph, SBPConfig(seed=13))
        assert result.search_history, "history must be recorded"
        blocks = [c for c, _ in result.search_history]
        mdls = [m for _, m in result.search_history]
        # the halving stage starts from about V/2 blocks
        assert blocks[0] > result.num_blocks
        # the best recorded MDL matches the returned result
        assert min(mdls) == pytest.approx(result.mdl)
        # every evaluated C is positive and no larger than the start
        assert all(0 < c <= blocks[0] for c in blocks)
