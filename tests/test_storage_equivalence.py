"""Storage-engine equivalence: full runs, checkpoints, CLI.

The ``sparse`` and ``hybrid`` engines are only admissible because they
replay the exact chains the ``dense`` oracle produces — byte-equal
assignments and bit-identical MDL floats, per sweep, across the variant
x update strategy x seed matrix. On top of the chain equivalence this
module covers the persistence surface: blockmodel archives round-trip
their storage engine, checkpoints refuse a resume under a different
engine, and the CLI flag reaches the config.
"""

from __future__ import annotations

import numpy as np
import pytest
from numpy.testing import assert_array_equal

from repro import SBPConfig, run_best_of, run_sbp
from repro.cli import main
from repro.errors import CheckpointError
from repro.io.serialize import load_blockmodel, save_blockmodel
from repro.resilience.checkpoint import RunCheckpointer, config_digest
from repro.sbm.blockmodel import Blockmodel

#: The equivalence matrix the CI gate runs: every combo must match.
VARIANTS = ("sbp", "a-sbp", "h-sbp")
STRATEGIES = ("rebuild", "incremental")
SEEDS = (3, 17)

_MATRIX = [
    (v, st, sd) for v in VARIANTS for st in STRATEGIES for sd in SEEDS
]


def _ids(combo):
    return "|".join(str(part) for part in combo)


def _run(graph, variant, strategy, seed, storage, **overrides):
    config = SBPConfig(
        variant=variant,
        seed=seed,
        update_strategy=strategy,
        block_storage=storage,
        record_work=True,
        **overrides,
    )
    return run_sbp(graph, config)


@pytest.mark.slow
class TestFullRunEquivalence:
    @pytest.mark.parametrize("combo", _MATRIX, ids=_ids)
    def test_engines_replay_dense_chain(self, planted_graph, combo):
        variant, strategy, seed = combo
        graph, _ = planted_graph
        dense = _run(graph, variant, strategy, seed, "dense")
        dense_mdls = [s.delta_mdl for s in dense.sweep_stats]
        dense_acc = [s.accepted for s in dense.sweep_stats]
        for storage in ("sparse", "hybrid"):
            other = _run(graph, variant, strategy, seed, storage)
            assert_array_equal(other.assignment, dense.assignment)
            assert other.mdl == dense.mdl  # bit-identical, not approx
            assert other.num_blocks == dense.num_blocks
            assert other.search_history == dense.search_history
            assert [s.delta_mdl for s in other.sweep_stats] == dense_mdls
            assert [s.accepted for s in other.sweep_stats] == dense_acc


class TestSerializationRoundTrip:
    @pytest.mark.parametrize("storage", ["dense", "sparse", "hybrid"])
    def test_blockmodel_archive_preserves_engine(
        self, planted_graph, tmp_path, storage
    ):
        graph, _ = planted_graph
        rng = np.random.default_rng(2)
        assignment = rng.integers(0, 5, graph.num_vertices)
        bm = Blockmodel.from_assignment(graph, assignment, 5, storage=storage)
        path = tmp_path / "bm.npz"
        save_blockmodel(bm, path)
        loaded = load_blockmodel(path)
        assert loaded.storage_name == storage
        assert_array_equal(loaded.state.to_dense(), bm.state.to_dense())
        assert_array_equal(loaded.assignment, bm.assignment)
        assert_array_equal(loaded.d_out, bm.d_out)
        assert_array_equal(loaded.d_in, bm.d_in)

    def test_legacy_archive_without_storage_field(self, tmp_path):
        """Archives from before the engines existed load as dense."""
        B = np.array([[2, 1], [0, 3]], dtype=np.int64)
        path = tmp_path / "legacy.npz"
        np.savez_compressed(
            path,
            B=B,
            assignment=np.array([0, 0, 1, 1], dtype=np.int64),
            num_blocks=np.asarray([2], dtype=np.int64),
        )
        loaded = load_blockmodel(path)
        assert loaded.storage_name == "dense"
        assert_array_equal(loaded.state.to_dense(), B)


@pytest.mark.slow
class TestCheckpointStorage:
    _FAST = dict(max_sweeps=8)

    def test_sparse_checkpoint_round_trip(self, planted_graph, tmp_path):
        """Interrupt-free resume check: snapshot, then rerun to the end."""
        graph, _ = planted_graph
        ck = RunCheckpointer(tmp_path / "ckpt")
        config = SBPConfig(seed=5, block_storage="sparse", **self._FAST)
        first = run_sbp(graph, config, checkpointer=ck)
        assert ck.has_snapshot()
        resumed = run_sbp(graph, config, checkpointer=ck)
        assert_array_equal(resumed.assignment, first.assignment)
        assert resumed.mdl == first.mdl

    def test_cross_storage_resume_refused(self, planted_graph, tmp_path):
        graph, _ = planted_graph
        ck = RunCheckpointer(tmp_path / "ckpt")
        run_sbp(
            graph,
            SBPConfig(seed=5, block_storage="dense", **self._FAST),
            checkpointer=ck,
        )
        with pytest.raises(CheckpointError, match="incompatible"):
            run_sbp(
                graph,
                SBPConfig(seed=5, block_storage="sparse", **self._FAST),
                checkpointer=ck,
            )

    def test_cross_storage_completed_member_refused(
        self, planted_graph, tmp_path
    ):
        """A *finished* best-of member must not replay under another engine.

        In-progress snapshots are digest-checked inside ``run_sbp``; the
        completed-member fast path in ``run_best_of`` reads the stored
        result without re-entering ``run_sbp``, so it carries its own
        digest sidecar and must refuse the same way.
        """
        graph, _ = planted_graph
        ck = RunCheckpointer(tmp_path / "ckpt")
        sparse = SBPConfig(seed=5, block_storage="sparse", **self._FAST)
        run_best_of(graph, sparse, runs=1, checkpointer=ck)
        with pytest.raises(CheckpointError, match="incompatible"):
            run_best_of(
                graph,
                sparse.replace(block_storage="dense"),
                runs=1,
                checkpointer=ck,
            )
        # Same config replays the stored result without recomputing.
        best, results = run_best_of(graph, sparse, runs=1, checkpointer=ck)
        assert len(results) == 1

    def test_digest_separates_storage_engines(self):
        digests = {
            config_digest(SBPConfig(seed=1, block_storage=name))
            for name in ("dense", "sparse", "hybrid")
        }
        assert len(digests) == 3


class TestCLI:
    def test_detect_accepts_block_storage(self, tmp_path, capsys):
        graph_path = tmp_path / "g.txt"
        assert main([
            "generate", "--custom", "--vertices", "60", "--communities", "3",
            "--ratio", "9.0", "--seed", "4", "--output", str(graph_path),
        ]) == 0
        capsys.readouterr()
        code = main([
            "detect", str(graph_path), "--variant", "a-sbp",
            "--block-storage", "sparse", "--json",
        ])
        assert code == 0
        assert '"communities"' in capsys.readouterr().out

    def test_unknown_storage_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["detect", "g.txt", "--block-storage", "no-such-engine"])

    def test_registry_lists_every_section(self, capsys):
        assert main(["registry", "--list"]) == 0
        out = capsys.readouterr().out
        for section in ("variants", "execution backends", "merge backends",
                        "update strategies", "block storages"):
            assert section in out
        for name in ("dense", "sparse", "hybrid", "auto", "incremental",
                     "h-sbp"):
            assert name in out

    def test_variants_deprecation_note(self, capsys):
        assert main(["variants"]) == 0
        captured = capsys.readouterr()
        assert "deprecated" in captured.err
        assert "h-sbp" in captured.out
