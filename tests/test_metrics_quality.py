"""Unit tests for modularity and MDL-based quality metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Graph, partition_mdl, partition_normalized_mdl
from repro.metrics.modularity import directed_modularity


class TestDirectedModularity:
    def test_two_cliques(self, tiny_graph, tiny_truth):
        q = directed_modularity(tiny_graph, tiny_truth)
        assert q > 0.3

    def test_single_community_zero(self, tiny_graph):
        q = directed_modularity(
            tiny_graph, np.zeros(tiny_graph.num_vertices, dtype=np.int64)
        )
        assert q == pytest.approx(0.0)

    def test_matches_networkx(self, medium_graph):
        nx = pytest.importorskip("networkx")
        graph, truth = medium_graph
        q_ours = directed_modularity(graph, truth)

        G = nx.MultiDiGraph()
        G.add_nodes_from(range(graph.num_vertices))
        G.add_edges_from(map(tuple, graph.edges))
        communities = [
            set(np.nonzero(truth == c)[0].tolist()) for c in range(truth.max() + 1)
        ]
        q_nx = nx.algorithms.community.modularity(G, communities)
        assert q_ours == pytest.approx(q_nx, abs=1e-9)

    def test_empty_graph(self):
        g = Graph(3, np.empty((0, 2), dtype=np.int64))
        assert directed_modularity(g, np.array([0, 1, 2])) == 0.0

    def test_shape_mismatch(self, tiny_graph):
        with pytest.raises(ValueError):
            directed_modularity(tiny_graph, np.array([0, 1]))

    def test_bad_partition_scores_lower(self, planted_graph):
        graph, truth = planted_graph
        rng = np.random.default_rng(0)
        shuffled = rng.permutation(truth)
        assert directed_modularity(graph, truth) > directed_modularity(
            graph, shuffled
        )


class TestPartitionMDL:
    def test_truth_beats_random(self, planted_graph):
        graph, truth = planted_graph
        rng = np.random.default_rng(1)
        random_labels = rng.integers(0, 3, graph.num_vertices)
        assert partition_mdl(graph, truth) < partition_mdl(graph, random_labels)

    def test_normalized_single_block_is_one(self, tiny_graph):
        labels = np.zeros(tiny_graph.num_vertices, dtype=np.int64)
        assert partition_normalized_mdl(tiny_graph, labels) == pytest.approx(1.0)

    def test_structure_below_one(self, planted_graph):
        graph, truth = planted_graph
        assert partition_normalized_mdl(graph, truth) < 1.0

    def test_sparse_labels_compacted(self, tiny_graph):
        """Labels 0/7 must behave like labels 0/1 after compaction."""
        sparse = np.array([0, 0, 0, 0, 7, 7, 7, 7])
        dense = np.array([0, 0, 0, 0, 1, 1, 1, 1])
        assert partition_mdl(tiny_graph, sparse) == pytest.approx(
            partition_mdl(tiny_graph, dense)
        )
