"""Unit tests for the golden-section search over the number of blocks."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Blockmodel, Graph
from repro.core.partition_search import GoldenSectionSearch


def _bm_with_blocks(num_blocks: int) -> Blockmodel:
    """A dummy blockmodel whose only relevant property is num_blocks."""
    n = max(num_blocks, 2)
    edges = np.stack(
        [np.arange(n, dtype=np.int64), np.roll(np.arange(n, dtype=np.int64), 1)],
        axis=1,
    )
    graph = Graph(n, edges)
    assignment = np.arange(n, dtype=np.int64) % num_blocks
    return Blockmodel.from_assignment(graph, assignment, num_blocks)


class TestReductionStage:
    def test_first_update_halves(self):
        search = GoldenSectionSearch(reduction_rate=0.5)
        step = search.update(_bm_with_blocks(64), 1000.0)
        assert not step.done
        assert step.target_blocks == 32
        assert step.num_merges == 32
        assert step.start.num_blocks == 64

    def test_keeps_halving_while_improving(self):
        search = GoldenSectionSearch(reduction_rate=0.5)
        search.update(_bm_with_blocks(64), 1000.0)
        step = search.update(_bm_with_blocks(32), 900.0)
        assert step.target_blocks == 16
        assert not search.bracket_established

    def test_worse_smaller_candidate_establishes_bracket(self):
        search = GoldenSectionSearch(reduction_rate=0.5)
        search.update(_bm_with_blocks(64), 1000.0)
        search.update(_bm_with_blocks(32), 900.0)
        search.update(_bm_with_blocks(16), 950.0)  # worse: bracket formed
        assert search.bracket_established
        assert search.best.num_blocks == 32

    def test_custom_rate(self):
        search = GoldenSectionSearch(reduction_rate=0.7)
        step = search.update(_bm_with_blocks(100), 500.0)
        assert step.target_blocks == 70


class TestGoldenStage:
    def _bracketed(self):
        search = GoldenSectionSearch(reduction_rate=0.5)
        search.update(_bm_with_blocks(64), 1000.0)
        search.update(_bm_with_blocks(32), 900.0)
        search.update(_bm_with_blocks(16), 950.0)
        return search

    def test_next_target_inside_bracket(self):
        search = self._bracketed()
        step = search.update(_bm_with_blocks(24), 905.0)  # worse, between 16 and 32
        assert not step.done
        assert 16 < step.target_blocks < 64
        assert step.num_merges == step.start.num_blocks - step.target_blocks

    def test_terminates_when_bracket_width_two(self):
        search = GoldenSectionSearch()
        search.update(_bm_with_blocks(5), 100.0)
        search.update(_bm_with_blocks(4), 90.0)
        step = search.update(_bm_with_blocks(3), 95.0)
        # bracket is (3, 4, 5): width 2 -> done
        assert step.done
        assert search.best.num_blocks == 4

    def test_search_converges_on_quadratic_mdl(self):
        """Driving the search with a quadratic MDL(C) must find the minimum."""
        optimum = 23

        def mdl(c: int) -> float:
            return (c - optimum) ** 2 + 10.0

        search = GoldenSectionSearch(reduction_rate=0.5)
        bm = _bm_with_blocks(128)
        step = search.update(bm, mdl(128))
        iterations = 0
        while not step.done and iterations < 60:
            c = step.target_blocks
            step = search.update(_bm_with_blocks(c), mdl(c))
            iterations += 1
        assert step.done
        assert abs(search.best.num_blocks - optimum) <= 1

    def test_stored_partitions_are_copies(self):
        search = GoldenSectionSearch()
        bm = _bm_with_blocks(10)
        search.update(bm, 50.0)
        bm.assignment[:] = 0  # mutate caller's copy
        assert search.best.assignment.max() > 0


class TestEdgeCases:
    def test_best_before_any_update(self):
        with pytest.raises(RuntimeError):
            GoldenSectionSearch().best

    def test_single_block_terminates(self):
        search = GoldenSectionSearch()
        step = search.update(_bm_with_blocks(1), 10.0)
        assert step.done

    def test_two_blocks_progresses_to_one(self):
        search = GoldenSectionSearch()
        step = search.update(_bm_with_blocks(2), 10.0)
        assert not step.done
        assert step.target_blocks == 1
