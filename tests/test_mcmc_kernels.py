"""Unit/integration tests for the three MCMC sweep kernels."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Blockmodel, SBPConfig
from repro.mcmc.async_gibbs import async_gibbs_sweep
from repro.mcmc.engine import SweepEngine, build_plan, split_vertices_by_degree
from repro.mcmc.evaluate import evaluate_vertex
from repro.mcmc.metropolis import metropolis_sweep
from repro.parallel.serial import SerialBackend
from repro.parallel.vectorized import VectorizedBackend
from repro.utils.rng import SweepRandomness
from repro.utils.timer import StopwatchPool, Timer


@pytest.fixture
def state(medium_graph):
    graph, truth = medium_graph
    rng = np.random.default_rng(8)
    assignment = rng.integers(0, 8, graph.num_vertices)
    return graph, Blockmodel.from_assignment(graph, assignment, 8)


def _vertices(graph):
    return np.arange(graph.num_vertices, dtype=np.int64)


class TestEvaluateVertex:
    def test_never_mutates_state(self, state):
        graph, bm = state
        before_B = bm.B.copy()
        before_assign = bm.assignment.copy()
        rand = SweepRandomness.draw(1, 0, 0, graph.num_vertices)
        for v in range(0, graph.num_vertices, 11):
            evaluate_vertex(bm, graph, v, rand.uniforms[v], 3.0)
        np.testing.assert_array_equal(bm.B, before_B)
        np.testing.assert_array_equal(bm.assignment, before_assign)

    def test_same_block_proposal_rejected(self, state):
        graph, bm = state
        # force the uniform branch onto the current block
        v = 0
        r = int(bm.assignment[v])
        C = bm.num_blocks
        uniforms = np.array([0.5, 0.0, 0.5, (r + 0.5) / C, 0.0])
        decision = evaluate_vertex(bm, graph, v, uniforms, 3.0)
        assert decision.target == r
        assert not decision.accepted


class TestMetropolisSweep:
    def test_updates_in_place_consistently(self, state):
        graph, bm = state
        rand = SweepRandomness.draw(2, 1, 0, graph.num_vertices)
        stats = metropolis_sweep(bm, graph, _vertices(graph), rand, 3.0)
        bm.check_consistency(graph)
        assert stats.proposals == graph.num_vertices
        assert 0 <= stats.accepted <= stats.proposals

    def test_reduces_mdl_from_random_state(self, state):
        graph, bm = state
        before = bm.mdl(graph)
        for sweep in range(3):
            rand = SweepRandomness.draw(3, 1, sweep, graph.num_vertices)
            metropolis_sweep(bm, graph, _vertices(graph), rand, 3.0)
        assert bm.mdl(graph) < before

    def test_work_recording(self, state):
        graph, bm = state
        rand = SweepRandomness.draw(4, 1, 0, graph.num_vertices)
        stats = metropolis_sweep(
            bm, graph, _vertices(graph), rand, 3.0, record_work=True
        )
        assert stats.work_per_vertex is not None
        assert stats.work_per_vertex.sum() == stats.serial_work
        assert stats.parallel_work == 0.0

    def test_randomness_too_short_rejected(self, state):
        graph, bm = state
        rand = SweepRandomness.draw(5, 1, 0, 3)
        with pytest.raises(ValueError):
            metropolis_sweep(bm, graph, _vertices(graph), rand, 3.0)


class TestAsyncGibbsSweep:
    def test_rebuild_keeps_consistency(self, state):
        graph, bm = state
        rand = SweepRandomness.draw(6, 2, 0, graph.num_vertices)
        stats = async_gibbs_sweep(
            bm, graph, _vertices(graph), rand, 3.0, SerialBackend()
        )
        bm.check_consistency(graph)
        assert stats.parallel_work > 0
        assert stats.serial_work == 0.0

    def test_rebuild_timer_accrues(self, state):
        graph, bm = state
        rand = SweepRandomness.draw(7, 2, 0, graph.num_vertices)
        timer = Timer()
        async_gibbs_sweep(
            bm, graph, _vertices(graph), rand, 3.0, SerialBackend(),
            rebuild_timer=timer,
        )
        assert timer.elapsed > 0.0

    def test_reduces_mdl_from_random_state(self, state):
        graph, bm = state
        before = bm.mdl(graph)
        backend = VectorizedBackend()
        for sweep in range(3):
            rand = SweepRandomness.draw(8, 2, sweep, graph.num_vertices)
            async_gibbs_sweep(bm, graph, _vertices(graph), rand, 3.0, backend)
        assert bm.mdl(graph) < before

    def test_subset_of_vertices_only(self, state):
        graph, bm = state
        frozen = bm.assignment.copy()
        subset = np.arange(0, 30, dtype=np.int64)
        rand = SweepRandomness.draw(9, 2, 0, len(subset))
        async_gibbs_sweep(bm, graph, subset, rand, 3.0, SerialBackend())
        # vertices outside the subset must not move
        np.testing.assert_array_equal(bm.assignment[30:], frozen[30:])


class TestSplitByDegree:
    def test_fraction_sizes(self, medium_graph):
        graph, _ = medium_graph
        vstar, vminus = split_vertices_by_degree(graph, 0.15)
        assert len(vstar) == int(np.ceil(0.15 * graph.num_vertices))
        assert len(vstar) + len(vminus) == graph.num_vertices
        assert np.intersect1d(vstar, vminus).size == 0

    def test_vstar_has_max_degrees(self, medium_graph):
        graph, _ = medium_graph
        vstar, vminus = split_vertices_by_degree(graph, 0.1)
        assert graph.degree[vstar].min() >= graph.degree[vminus].max()

    def test_zero_fraction(self, medium_graph):
        graph, _ = medium_graph
        vstar, vminus = split_vertices_by_degree(graph, 0.0)
        assert len(vstar) == 0
        assert len(vminus) == graph.num_vertices

    def test_full_fraction(self, medium_graph):
        graph, _ = medium_graph
        vstar, vminus = split_vertices_by_degree(graph, 1.0)
        assert len(vstar) == graph.num_vertices
        assert len(vminus) == 0

    def test_descending_order(self, medium_graph):
        graph, _ = medium_graph
        vstar, _ = split_vertices_by_degree(graph, 0.2)
        degrees = graph.degree[vstar]
        assert (np.diff(degrees) <= 0).all()

    def test_bad_fraction_rejected(self, medium_graph):
        graph, _ = medium_graph
        with pytest.raises(ValueError):
            split_vertices_by_degree(graph, 1.5)


class TestHybridSweep:
    @staticmethod
    def _engine(seed, backend, **overrides):
        config = SBPConfig(variant="h-sbp", seed=seed, **overrides)
        return SweepEngine(
            build_plan(config), config, backend, StopwatchPool()
        )

    def test_consistency_and_split_work(self, state):
        graph, bm = state
        engine = self._engine(10, SerialBackend())
        bound = engine.bind(graph)
        stats = engine.run_sweep(bm, graph, bound, iteration=0, sweep=0)
        bm.check_consistency(graph)
        assert stats.serial_work > 0
        assert stats.parallel_work > 0
        assert stats.proposals == graph.num_vertices

    def test_reduces_mdl(self, state):
        graph, bm = state
        engine = self._engine(11, VectorizedBackend())
        bound = engine.bind(graph)
        before = bm.mdl(graph)
        for sweep in range(3):
            engine.run_sweep(bm, graph, bound, iteration=0, sweep=sweep)
        assert bm.mdl(graph) < before
