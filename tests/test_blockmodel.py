"""Unit + property tests for Blockmodel state transitions."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Blockmodel, Graph
from repro.errors import BlockmodelError
from repro.sbm.delta import vertex_move_context


class TestConstruction:
    def test_from_assignment_counts(self, tiny_graph, tiny_truth):
        bm = Blockmodel.from_assignment(tiny_graph, tiny_truth)
        assert bm.num_blocks == 2
        assert bm.B.sum() == tiny_graph.num_edges
        # bridge 3 -> 4 is the only cross edge
        assert bm.B[0, 1] == 1
        assert bm.B[1, 0] == 0
        bm.check_consistency(tiny_graph)

    def test_singleton(self, tiny_graph):
        bm = Blockmodel.singleton(tiny_graph)
        assert bm.num_blocks == tiny_graph.num_vertices
        np.testing.assert_array_equal(bm.d_out, tiny_graph.out_degree)
        np.testing.assert_array_equal(bm.d_in, tiny_graph.in_degree)
        bm.check_consistency(tiny_graph)

    def test_explicit_num_blocks_allows_empty(self, tiny_graph, tiny_truth):
        bm = Blockmodel.from_assignment(tiny_graph, tiny_truth, num_blocks=5)
        assert bm.num_blocks == 5
        assert bm.num_nonempty_blocks == 2

    def test_bad_shape_rejected(self, tiny_graph):
        with pytest.raises(BlockmodelError):
            Blockmodel.from_assignment(tiny_graph, np.zeros(3, dtype=np.int64))

    def test_out_of_range_rejected(self, tiny_graph, tiny_truth):
        with pytest.raises(BlockmodelError):
            Blockmodel.from_assignment(tiny_graph, tiny_truth, num_blocks=1)

    def test_copy_is_deep(self, tiny_graph, tiny_truth):
        bm = Blockmodel.from_assignment(tiny_graph, tiny_truth)
        clone = bm.copy()
        clone.B[0, 0] += 1
        clone.assignment[0] = 1
        assert bm.B[0, 0] != clone.B[0, 0]
        assert bm.assignment[0] == 0


class TestMoves:
    def test_apply_move_matches_rebuild(self, tiny_graph, tiny_truth):
        bm = Blockmodel.from_assignment(tiny_graph, tiny_truth)
        ctx = vertex_move_context(bm, tiny_graph, 3)
        bm.apply_move(3, 1, ctx.t_out, ctx.c_out, ctx.t_in, ctx.c_in,
                      ctx.loops, ctx.deg_out, ctx.deg_in)
        assert bm.assignment[3] == 1
        bm.check_consistency(tiny_graph)

    def test_self_loop_vertex_move(self, tiny_graph, tiny_truth):
        bm = Blockmodel.from_assignment(tiny_graph, tiny_truth)
        ctx = vertex_move_context(bm, tiny_graph, 2)  # vertex with self-loop
        bm.apply_move(2, 1, ctx.t_out, ctx.c_out, ctx.t_in, ctx.c_in,
                      ctx.loops, ctx.deg_out, ctx.deg_in)
        bm.check_consistency(tiny_graph)

    def test_noop_move_same_block(self, tiny_graph, tiny_truth):
        bm = Blockmodel.from_assignment(tiny_graph, tiny_truth)
        before = bm.B.copy()
        ctx = vertex_move_context(bm, tiny_graph, 0)
        bm.apply_move(0, 0, ctx.t_out, ctx.c_out, ctx.t_in, ctx.c_in,
                      ctx.loops, ctx.deg_out, ctx.deg_in)
        np.testing.assert_array_equal(bm.B, before)

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2**31 - 1), st.integers(2, 7))
    def test_random_move_sequences_stay_consistent(self, seed, blocks):
        """Property: any sequence of incremental moves equals a rebuild."""
        rng = np.random.default_rng(seed)
        n = 25
        edges = rng.integers(0, n, (60, 2)).astype(np.int64)
        graph = Graph(n, edges)
        assignment = rng.integers(0, blocks, n).astype(np.int64)
        bm = Blockmodel.from_assignment(graph, assignment, blocks)
        for _ in range(15):
            v = int(rng.integers(n))
            s = int(rng.integers(blocks))
            ctx = vertex_move_context(bm, graph, v)
            bm.apply_move(v, s, ctx.t_out, ctx.c_out, ctx.t_in, ctx.c_in,
                          ctx.loops, ctx.deg_out, ctx.deg_in)
        bm.check_consistency(graph)
        rebuilt = Blockmodel.from_assignment(graph, bm.assignment, blocks)
        np.testing.assert_array_equal(rebuilt.B, bm.B)


class TestMerges:
    def test_merge_blocks_folds_counts(self, tiny_graph, tiny_truth):
        bm = Blockmodel.from_assignment(tiny_graph, tiny_truth)
        total = bm.B.sum()
        bm.merge_blocks(0, 1)
        assert bm.B.sum() == total
        assert bm.B[0].sum() == 0 and bm.B[:, 0].sum() == 0
        assert (bm.assignment == 1).all()
        bm.check_consistency(tiny_graph)

    def test_merge_self_rejected(self, tiny_graph, tiny_truth):
        bm = Blockmodel.from_assignment(tiny_graph, tiny_truth)
        with pytest.raises(BlockmodelError):
            bm.merge_blocks(1, 1)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_merge_equals_relabel_then_rebuild(self, seed):
        rng = np.random.default_rng(seed)
        n, blocks = 20, 5
        edges = rng.integers(0, n, (50, 2)).astype(np.int64)
        graph = Graph(n, edges)
        assignment = rng.integers(0, blocks, n).astype(np.int64)
        bm = Blockmodel.from_assignment(graph, assignment, blocks)
        r, s = 1, 3
        bm.merge_blocks(r, s)
        relabeled = assignment.copy()
        relabeled[relabeled == r] = s
        expected = Blockmodel.from_assignment(graph, relabeled, blocks)
        np.testing.assert_array_equal(bm.B, expected.B)


class TestCompactAndRebuild:
    def test_compact_drops_empty(self, tiny_graph, tiny_truth):
        bm = Blockmodel.from_assignment(tiny_graph, tiny_truth, num_blocks=6)
        mapping = bm.compact()
        assert bm.num_blocks == 2
        assert (mapping >= -1).all()
        assert set(bm.assignment.tolist()) == {0, 1}
        bm.check_consistency(tiny_graph)

    def test_compact_preserves_mdl(self, medium_graph):
        graph, truth = medium_graph
        bm = Blockmodel.from_assignment(graph, truth, num_blocks=int(truth.max()) + 3)
        # empty blocks present: MDL uses matrix dim, so compact changes it
        bm.compact()
        assert bm.num_blocks == int(truth.max()) + 1

    def test_rebuild_with_new_assignment(self, tiny_graph, tiny_truth):
        bm = Blockmodel.from_assignment(tiny_graph, tiny_truth)
        flipped = 1 - tiny_truth
        bm.rebuild(tiny_graph, flipped)
        np.testing.assert_array_equal(bm.assignment, flipped)
        bm.check_consistency(tiny_graph)

    def test_rebuild_shape_mismatch_rejected(self, tiny_graph, tiny_truth):
        bm = Blockmodel.from_assignment(tiny_graph, tiny_truth)
        with pytest.raises(BlockmodelError):
            bm.rebuild(tiny_graph, np.zeros(3, dtype=np.int64))

    def test_block_sizes(self, tiny_graph, tiny_truth):
        bm = Blockmodel.from_assignment(tiny_graph, tiny_truth)
        assert bm.block_sizes().tolist() == [4, 4]
