"""Incremental update engine: bit-identical to the rebuild oracle.

The load-bearing properties:

* :func:`apply_sweep_delta` leaves ``B``/degrees/assignment byte-equal
  to a full O(E) recount for any moved set — including self-loops,
  parallel edges, edges between two moved vertices, and moves that
  empty a block;
* the serial :class:`ProposalCache` serves the exact CDFs the uncached
  path builds, across dirty-set invalidations;
* full runs under ``update_strategy='incremental'`` reproduce the
  ``'rebuild'`` oracle bit-identically: MDL trajectories, per-sweep
  acceptance counts, and final assignments, for every variant;
* checkpoint resume of an incremental run stays bit-identical, and a
  digest mismatch on ``update_strategy`` is rejected cleanly;
* boundary uniforms (exactly 1.0) can no longer index out of range.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Blockmodel, Graph, SBPConfig, run_sbp
from repro.errors import BackendError, CheckpointError, ConvergenceError
from repro.mcmc.async_gibbs import async_gibbs_sweep
from repro.mcmc.metropolis import metropolis_sweep
from repro.parallel.backend import (
    available_update_strategies,
    get_update_strategy,
)
from repro.parallel.vectorized import VectorizedBackend
from repro.resilience import RunCheckpointer
from repro.resilience.checkpoint import config_digest
from repro.sbm.incremental import (
    IncrementalUpdater,
    ProposalCache,
    RebuildUpdater,
    apply_sweep_delta,
)
from repro.sbm.moves import _uniform_other, propose_vertex_move
from repro.utils.rng import SweepRandomness

_FAST = dict(max_sweeps=8)


def _assert_same_state(a: Blockmodel, b: Blockmodel) -> None:
    assert np.array_equal(a.B, b.B)
    assert np.array_equal(a.d_out, b.d_out)
    assert np.array_equal(a.d_in, b.d_in)
    assert np.array_equal(a.d, b.d)
    assert np.array_equal(a.assignment, b.assignment)


def _loopy_graph() -> Graph:
    """12 vertices with self-loops, parallel edges, and a dense core.

    Every pathological shape the delta kernel must count exactly once:
    vertex 0 has two self-loops, 1 -> 2 is doubled, and the core
    {0, 1, 2, 3} is strongly connected so any moved set containing two
    of them exercises moved-moved edges.
    """
    edges = np.array(
        [
            [0, 0], [0, 0], [0, 1], [1, 0], [1, 2], [1, 2], [2, 3],
            [3, 0], [2, 0], [3, 1], [4, 0], [4, 5], [5, 6], [6, 4],
            [7, 8], [8, 9], [9, 7], [10, 11], [11, 10], [5, 5],
            [2, 10], [9, 3],
        ],
        dtype=np.int64,
    )
    return Graph(12, edges)


# ----------------------------------------------------------------------
# Kernel: apply_sweep_delta vs full recount
# ----------------------------------------------------------------------
class TestApplySweepDelta:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("num_blocks", [2, 4, 7])
    def test_random_batches_match_rebuild(self, seed, num_blocks):
        graph = _loopy_graph()
        rng = np.random.default_rng(seed)
        assignment = rng.integers(0, num_blocks, graph.num_vertices)
        bm = Blockmodel.from_assignment(graph, assignment, num_blocks)
        for _ in range(10):
            size = int(rng.integers(0, graph.num_vertices + 1))
            moved = rng.choice(graph.num_vertices, size=size, replace=False)
            targets = rng.integers(0, num_blocks, size)
            oracle = bm.copy()
            new_assignment = oracle.assignment.copy()
            new_assignment[moved] = targets
            oracle.rebuild(graph, new_assignment)

            apply_sweep_delta(bm, graph, moved, targets)
            _assert_same_state(bm, oracle)
            bm.check_consistency(graph)

    def test_moved_moved_edges_and_self_loops(self):
        graph = _loopy_graph()
        bm = Blockmodel.singleton(graph)
        # Move the whole strongly connected core at once: every core edge
        # (including the doubled ones and 0's two self-loops) has both
        # endpoints in the moved set.
        moved = np.array([0, 1, 2, 3], dtype=np.int64)
        targets = np.array([5, 5, 6, 6], dtype=np.int64)
        oracle = bm.copy()
        new_assignment = oracle.assignment.copy()
        new_assignment[moved] = targets
        oracle.rebuild(graph, new_assignment)
        apply_sweep_delta(bm, graph, moved, targets)
        _assert_same_state(bm, oracle)

    def test_emptying_a_block_is_exact(self, tiny_graph):
        bm = Blockmodel.from_assignment(
            tiny_graph, np.array([0, 0, 0, 0, 1, 1, 1, 2]), 3
        )
        # Move vertex 7 out of block 2, leaving it empty.
        apply_sweep_delta(
            bm, tiny_graph,
            np.array([7], dtype=np.int64), np.array([1], dtype=np.int64),
        )
        assert bm.block_sizes()[2] == 0
        bm.check_consistency(tiny_graph)

    def test_empty_moved_set_is_a_noop(self, tiny_graph):
        bm = Blockmodel.singleton(tiny_graph)
        before = bm.copy()
        empty = np.empty(0, dtype=np.int64)
        apply_sweep_delta(bm, tiny_graph, empty, empty)
        _assert_same_state(bm, before)

    def test_scratch_mask_path_matches_isin_path(self):
        graph = _loopy_graph()
        rng = np.random.default_rng(9)
        assignment = rng.integers(0, 5, graph.num_vertices)
        a = Blockmodel.from_assignment(graph, assignment, 5)
        b = a.copy()
        moved = np.array([0, 2, 5, 9], dtype=np.int64)
        targets = np.array([4, 1, 0, 2], dtype=np.int64)
        scratch = np.zeros(graph.num_vertices, dtype=bool)
        apply_sweep_delta(a, graph, moved, targets, scratch_mask=scratch)
        apply_sweep_delta(b, graph, moved, targets)
        _assert_same_state(a, b)
        assert not scratch.any()  # restored for reuse

    def test_blockmodel_method_delegates(self, tiny_graph):
        bm = Blockmodel.singleton(tiny_graph)
        oracle = bm.copy()
        moved = np.array([1, 4], dtype=np.int64)
        targets = np.array([0, 5], dtype=np.int64)
        bm.apply_sweep_delta(tiny_graph, moved, targets)
        apply_sweep_delta(oracle, tiny_graph, moved, targets)
        _assert_same_state(bm, oracle)

    def test_misaligned_inputs_rejected(self, tiny_graph):
        bm = Blockmodel.singleton(tiny_graph)
        with pytest.raises(ValueError, match="aligned"):
            apply_sweep_delta(
                bm, tiny_graph,
                np.array([1, 2], dtype=np.int64), np.array([0], dtype=np.int64),
            )


# ----------------------------------------------------------------------
# ProposalCache
# ----------------------------------------------------------------------
class TestProposalCache:
    def test_serves_exact_cdfs_across_invalidations(self, random_blockmodel):
        graph, bm = random_blockmodel
        cache = ProposalCache(bm)
        rng = np.random.default_rng(3)
        vertices = rng.permutation(graph.num_vertices)[:60]
        rand = SweepRandomness.draw(7, 1, 0, graph.num_vertices)
        for i, v in enumerate(vertices):
            cached = propose_vertex_move(
                bm, graph, int(v), rand.uniforms[i], cache=cache
            )
            uncached = propose_vertex_move(bm, graph, int(v), rand.uniforms[i])
            assert cached == uncached
        assert cache.hits + cache.misses > 0

    def test_metropolis_with_cache_matches_uncached(self, medium_graph):
        graph, _ = medium_graph
        rng = np.random.default_rng(11)
        assignment = rng.integers(0, 8, graph.num_vertices)
        cached_bm = Blockmodel.from_assignment(graph, assignment, 8)
        plain_bm = cached_bm.copy()
        vertices = np.arange(graph.num_vertices, dtype=np.int64)
        for sweep in range(3):
            rand = SweepRandomness.draw(21, 1, sweep, graph.num_vertices)
            stats_cached = metropolis_sweep(
                cached_bm, graph, vertices, rand, beta=3.0,
                updater=IncrementalUpdater(),
            )
            stats_plain = metropolis_sweep(
                plain_bm, graph, vertices, rand, beta=3.0
            )
            assert stats_cached.accepted == stats_plain.accepted
            _assert_same_state(cached_bm, plain_bm)
        cached_bm.check_consistency(graph)

    def test_cache_hit_rate_is_nontrivial(self, medium_graph):
        """Low-acceptance sweeps should mostly hit the cache."""
        graph, _ = medium_graph
        rng = np.random.default_rng(1)
        bm = Blockmodel.from_assignment(
            graph, rng.integers(0, 6, graph.num_vertices), 6
        )
        updater = IncrementalUpdater()
        cache = updater.make_proposal_cache(bm)
        vertices = np.arange(graph.num_vertices, dtype=np.int64)
        rand = SweepRandomness.draw(5, 1, 0, graph.num_vertices)
        for i, v in enumerate(vertices):
            propose_vertex_move(bm, graph, int(v), rand.uniforms[i], cache=cache)
        # 6 blocks serve 150 vertices: ≥90% of row lookups must be hits.
        assert cache.hits > 9 * cache.misses


# ----------------------------------------------------------------------
# Sweep-level equivalence (async barrier)
# ----------------------------------------------------------------------
class TestSweepBarrierEquivalence:
    @pytest.mark.parametrize("seed", [0, 4])
    def test_async_sweep_incremental_matches_legacy(self, medium_graph, seed):
        graph, _ = medium_graph
        rng = np.random.default_rng(seed)
        assignment = rng.integers(0, 10, graph.num_vertices)
        legacy = Blockmodel.from_assignment(graph, assignment, 10)
        inc = legacy.copy()
        reb = legacy.copy()
        vertices = np.arange(graph.num_vertices, dtype=np.int64)
        backend = VectorizedBackend()
        inc_updater = IncrementalUpdater()
        reb_updater = RebuildUpdater()
        for sweep in range(4):
            rand = SweepRandomness.draw(seed, 2, sweep, graph.num_vertices)
            s_legacy = async_gibbs_sweep(
                legacy, graph, vertices, rand, 3.0, backend
            )
            s_inc = async_gibbs_sweep(
                inc, graph, vertices, rand, 3.0, backend, updater=inc_updater
            )
            s_reb = async_gibbs_sweep(
                reb, graph, vertices, rand, 3.0, backend, updater=reb_updater
            )
            assert s_legacy.accepted == s_inc.accepted == s_reb.accepted
            assert s_inc.barrier_moved == s_inc.accepted
            _assert_same_state(legacy, inc)
            _assert_same_state(legacy, reb)
        inc.check_consistency(graph)


# ----------------------------------------------------------------------
# Full-run equivalence: the acceptance criterion
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestRunEquivalence:
    @pytest.mark.parametrize("variant", ["sbp", "a-sbp", "h-sbp", "b-sbp"])
    @pytest.mark.parametrize("seed", [3, 11])
    def test_incremental_run_is_bit_identical(self, planted_graph, variant, seed):
        graph, _ = planted_graph
        base = SBPConfig(
            variant=variant, seed=seed, record_work=True, **_FAST
        )
        oracle = run_sbp(graph, base.replace(update_strategy="rebuild"))
        fast = run_sbp(graph, base.replace(update_strategy="incremental"))

        assert fast.mdl == oracle.mdl
        assert fast.num_blocks == oracle.num_blocks
        assert np.array_equal(fast.assignment, oracle.assignment)
        assert fast.mcmc_sweeps == oracle.mcmc_sweeps
        # MDL trajectory and acceptance counts, sweep by sweep.
        assert [s.delta_mdl for s in fast.sweep_stats] == [
            s.delta_mdl for s in oracle.sweep_stats
        ]
        assert [s.accepted for s in fast.sweep_stats] == [
            s.accepted for s in oracle.sweep_stats
        ]
        assert [(c, m) for c, m in fast.search_history] == [
            (c, m) for c, m in oracle.search_history
        ]

    def test_barrier_timing_lands_in_the_right_bucket(self, planted_graph):
        graph, _ = planted_graph
        base = SBPConfig(variant="a-sbp", seed=1, **_FAST)
        inc = run_sbp(graph, base.replace(update_strategy="incremental"))
        reb = run_sbp(graph, base.replace(update_strategy="rebuild"))
        assert inc.timings.barrier_apply > 0.0
        assert inc.timings.barrier_rebuild == 0.0
        assert reb.timings.barrier_rebuild > 0.0
        assert reb.timings.barrier_apply == 0.0
        # Sub-buckets never exceed the umbrella rebuild accumulator.
        assert inc.timings.barrier_apply <= inc.timings.rebuild + 1e-6
        assert reb.timings.barrier_rebuild <= reb.timings.rebuild + 1e-6


# ----------------------------------------------------------------------
# Audit hook
# ----------------------------------------------------------------------
class TestVerifyEvery:
    def test_audited_run_is_unchanged_and_audits_fire(self, medium_graph):
        graph, _ = medium_graph
        rng = np.random.default_rng(2)
        assignment = rng.integers(0, 10, graph.num_vertices)
        plain_bm = Blockmodel.from_assignment(graph, assignment, 10)
        audited_bm = plain_bm.copy()
        vertices = np.arange(graph.num_vertices, dtype=np.int64)
        backend = VectorizedBackend()
        plain = IncrementalUpdater()
        audited = IncrementalUpdater(verify_every=2)
        for sweep in range(4):
            rand = SweepRandomness.draw(8, 2, sweep, graph.num_vertices)
            async_gibbs_sweep(
                plain_bm, graph, vertices, rand, 3.0, backend, updater=plain
            )
            async_gibbs_sweep(
                audited_bm, graph, vertices, rand, 3.0, backend, updater=audited
            )
        _assert_same_state(plain_bm, audited_bm)
        assert audited.audits_run == 2
        assert audited.heals == 0

    def test_audit_catches_injected_corruption(self, tiny_graph):
        bm = Blockmodel.singleton(tiny_graph)
        updater = IncrementalUpdater(verify_every=1, self_heal=False)
        bm.B[0, 1] += 3  # drift the counts behind the auditor's back
        with pytest.raises(ConvergenceError):
            updater.apply_sweep(
                bm, tiny_graph,
                np.array([4], dtype=np.int64), np.array([5], dtype=np.int64),
            )

    def test_self_heal_repairs_and_counts(self, tiny_graph):
        bm = Blockmodel.singleton(tiny_graph)
        updater = IncrementalUpdater(verify_every=1, self_heal=True)
        bm.B[0, 1] += 3
        updater.apply_sweep(
            bm, tiny_graph,
            np.array([4], dtype=np.int64), np.array([5], dtype=np.int64),
        )
        assert updater.heals == 1
        bm.check_consistency(tiny_graph)

    def test_negative_cadence_rejected(self):
        with pytest.raises(ValueError, match="verify_every"):
            IncrementalUpdater(verify_every=-1)


# ----------------------------------------------------------------------
# Registry + config plumbing
# ----------------------------------------------------------------------
class TestDispatch:
    def test_registry_lists_both_engines(self):
        assert {"rebuild", "incremental"} <= set(available_update_strategies())

    def test_factories_produce_the_named_engine(self):
        assert isinstance(get_update_strategy("rebuild"), RebuildUpdater)
        assert isinstance(get_update_strategy("incremental"), IncrementalUpdater)

    def test_unknown_strategy_raises(self):
        with pytest.raises(BackendError, match="unknown update strategy"):
            get_update_strategy("magic")

    def test_config_rejects_unknown_strategy(self):
        with pytest.raises(ValueError, match="update_strategy"):
            SBPConfig(update_strategy="magic")

    def test_rebuild_updater_provides_no_cache(self, tiny_graph):
        bm = Blockmodel.singleton(tiny_graph)
        assert RebuildUpdater().make_proposal_cache(bm) is None
        assert isinstance(
            IncrementalUpdater().make_proposal_cache(bm), ProposalCache
        )


# ----------------------------------------------------------------------
# Checkpoint resume across the new knob
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestCheckpointAcrossStrategies:
    def test_incremental_resume_is_bit_identical(self, planted_graph, tmp_path):
        graph, _ = planted_graph
        config = SBPConfig(variant="a-sbp", seed=5, **_FAST)
        reference = run_sbp(graph, config)

        ck = RunCheckpointer(tmp_path / "ckpt")
        run_sbp(graph, config.replace(max_outer_iterations=2), checkpointer=ck)
        assert ck.has_snapshot()
        resumed = run_sbp(graph, config, checkpointer=ck)

        assert resumed.mdl == reference.mdl
        assert np.array_equal(resumed.assignment, reference.assignment)

    def test_digest_covers_update_strategy(self):
        a = SBPConfig(seed=1, update_strategy="incremental")
        b = SBPConfig(seed=1, update_strategy="rebuild")
        assert config_digest(a) != config_digest(b)

    def test_strategy_mismatch_rejected_on_resume(self, planted_graph, tmp_path):
        graph, _ = planted_graph
        config = SBPConfig(variant="a-sbp", seed=5, **_FAST)
        ck = RunCheckpointer(tmp_path / "ckpt")
        run_sbp(graph, config.replace(max_outer_iterations=1), checkpointer=ck)
        with pytest.raises(CheckpointError, match="incompatible"):
            run_sbp(
                graph, config.replace(update_strategy="rebuild"),
                checkpointer=ck,
            )


# ----------------------------------------------------------------------
# Boundary uniforms (the clamp bugfix)
# ----------------------------------------------------------------------
class TestBoundaryUniforms:
    def test_degree_zero_vertex_with_unit_uniform(self):
        graph = Graph(3, np.array([[0, 1]], dtype=np.int64))  # vertex 2 isolated
        bm = Blockmodel.singleton(graph)
        ones = np.ones(5, dtype=np.float64)
        s = propose_vertex_move(bm, graph, 2, ones)
        assert 0 <= s < bm.num_blocks

    def test_connected_vertex_with_unit_uniforms(self, tiny_graph):
        bm = Blockmodel.singleton(tiny_graph)
        ones = np.ones(5, dtype=np.float64)
        for v in range(tiny_graph.num_vertices):
            s = propose_vertex_move(bm, tiny_graph, v, ones)
            assert 0 <= s < bm.num_blocks

    def test_uniform_other_at_boundary(self):
        for C in (2, 3, 10):
            for r in range(C):
                s = _uniform_other(C, r, 1.0)
                assert 0 <= s < C and s != r

    def test_vectorized_backend_with_unit_uniforms(self, medium_graph):
        graph, _ = medium_graph
        rng = np.random.default_rng(0)
        bm = Blockmodel.from_assignment(
            graph, rng.integers(0, 5, graph.num_vertices), 5
        )
        vertices = np.arange(graph.num_vertices, dtype=np.int64)
        ones = np.ones((graph.num_vertices, 5), dtype=np.float64)
        accepted, targets = VectorizedBackend().evaluate_sweep(
            bm, graph, vertices, ones, 3.0
        )
        assert targets.min() >= 0
        assert targets.max() < bm.num_blocks
