"""Unit tests for the MCMC phase stopping rule."""

from __future__ import annotations

import pytest

from repro.mcmc.convergence import ConvergenceMonitor


class TestValidation:
    def test_bad_threshold(self):
        with pytest.raises(ValueError):
            ConvergenceMonitor(-1.0, 10)

    def test_bad_max_sweeps(self):
        with pytest.raises(ValueError):
            ConvergenceMonitor(0.1, 0)

    def test_bad_window(self):
        with pytest.raises(ValueError):
            ConvergenceMonitor(0.1, 10, window=0)

    def test_update_before_start(self):
        monitor = ConvergenceMonitor(0.1, 10)
        with pytest.raises(RuntimeError):
            monitor.update(1.0)


class TestStoppingRule:
    def test_stops_on_flat_mdl(self):
        monitor = ConvergenceMonitor(1e-4, max_sweeps=100, window=3)
        monitor.start(1000.0)
        results = [monitor.update(1000.0) for _ in range(3)]
        assert results == [False, False, True]

    def test_does_not_stop_while_improving(self):
        monitor = ConvergenceMonitor(1e-4, max_sweeps=100, window=3)
        monitor.start(1000.0)
        mdl = 1000.0
        for _ in range(10):
            mdl -= 10.0
            assert not monitor.update(mdl)

    def test_max_sweeps_cap(self):
        monitor = ConvergenceMonitor(1e-12, max_sweeps=5, window=3)
        monitor.start(1000.0)
        mdl = 1000.0
        done = False
        for i in range(5):
            mdl -= 100.0  # always far above threshold
            done = monitor.update(mdl)
        assert done
        assert monitor.sweeps == 5

    def test_window_filters_single_quiet_sweep(self):
        """One flat sweep among noisy ones must not trigger convergence."""
        monitor = ConvergenceMonitor(1e-3, max_sweeps=100, window=3)
        monitor.start(1000.0)
        assert not monitor.update(990.0)   # big change
        assert not monitor.update(990.0)   # flat
        assert not monitor.update(980.0)   # big change again: window avg high

    def test_relative_threshold_scales_with_mdl(self):
        monitor = ConvergenceMonitor(0.01, max_sweeps=100, window=1)
        monitor.start(10_000.0)
        # |delta| = 50 < 0.01 * 9950 -> converged immediately with window 1
        assert monitor.update(9950.0)

    def test_start_resets(self):
        monitor = ConvergenceMonitor(1e-4, max_sweeps=3, window=1)
        monitor.start(100.0)
        monitor.update(90.0)
        monitor.start(100.0)
        assert monitor.sweeps == 0

    def test_last_mdl_tracks(self):
        monitor = ConvergenceMonitor(1e-4, 10)
        monitor.start(5.0)
        monitor.update(4.0)
        assert monitor.last_mdl == 4.0
