"""Tests for the declarative sweep-plan engine (repro.mcmc.engine).

Covers the plan grammar (selectors, segments, validation), the variant
registry (including registering a brand-new variant with zero engine or
driver edits — the refactor's acceptance criterion), the H-SBP
fraction-boundary degeneracies, and the `tiered` plan that exists only
because the engine composes segment modes freely.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest
from numpy.testing import assert_array_equal

from repro import Blockmodel, SBPConfig
from repro.core.sbp import run_mcmc_phase
from repro.errors import ReproError
from repro.mcmc.engine import (
    AllVertices,
    DegreeBand,
    DegreeTop,
    SegmentMode,
    SweepEngine,
    SweepPlan,
    SweepSegment,
    VariantSpec,
    available_variants,
    build_plan,
    get_variant_spec,
    register_variant,
    split_vertices_by_degree,
)
from repro.parallel.backend import get_backend
from repro.utils.timer import StopwatchPool

sys.path.insert(0, str(Path(__file__).resolve().parent))

import golden_utils as gu  # noqa: E402


@pytest.fixture(scope="module")
def graph():
    return gu.golden_graph()


# ----------------------------------------------------------------------
# Selectors and plan grammar
# ----------------------------------------------------------------------
class TestSelectors:
    def test_all_vertices_is_ascending_ids(self, graph):
        assert_array_equal(
            AllVertices().select(graph),
            np.arange(graph.num_vertices, dtype=np.int64),
        )

    def test_degree_top_matches_split(self, graph):
        vstar, _ = split_vertices_by_degree(graph, 0.2)
        assert_array_equal(DegreeTop(0.2).select(graph), vstar)

    def test_degree_band_tail_matches_vminus(self, graph):
        _, vminus = split_vertices_by_degree(graph, 0.2)
        assert_array_equal(DegreeBand(0.2, 1.0).select(graph), vminus)

    def test_degree_bands_partition_the_graph(self, graph):
        pieces = [
            DegreeTop(0.1).select(graph),
            DegreeBand(0.1, 0.6).select(graph),
            DegreeBand(0.6, 1.0).select(graph),
        ]
        combined = np.sort(np.concatenate(pieces))
        assert_array_equal(combined, np.arange(graph.num_vertices))

    def test_empty_band(self, graph):
        assert DegreeBand(0.5, 0.5).select(graph).size == 0

    def test_selector_validation(self):
        with pytest.raises(ValueError):
            DegreeTop(1.5)
        with pytest.raises(ValueError):
            DegreeBand(0.6, 0.4)
        with pytest.raises(ValueError):
            DegreeBand(-0.1, 0.5)


class TestPlanGrammar:
    def test_empty_plan_rejected(self):
        with pytest.raises(ValueError):
            SweepPlan(())

    def test_serial_segment_cannot_batch(self):
        with pytest.raises(ValueError):
            SweepSegment(AllVertices(), SegmentMode.SERIAL_INPLACE, batches=2)

    def test_barriers_per_sweep(self):
        plan = SweepPlan(
            (
                SweepSegment(DegreeTop(0.1), SegmentMode.SERIAL_INPLACE),
                SweepSegment(
                    DegreeBand(0.1, 0.5), SegmentMode.FROZEN_PARALLEL, batches=3
                ),
                SweepSegment(DegreeBand(0.5, 1.0), SegmentMode.FROZEN_PARALLEL),
            )
        )
        assert plan.barriers_per_sweep == 4

    def test_serial_plan_has_no_barriers(self):
        assert build_plan(SBPConfig(variant="sbp")).barriers_per_sweep == 0

    def test_describe_mentions_every_segment(self):
        plan = build_plan(SBPConfig(variant="tiered"))
        text = plan.describe()
        assert "serial" in text and "frozen" in text and "batches" in text


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
class TestVariantRegistry:
    def test_builtins_registered(self):
        assert {"sbp", "a-sbp", "b-sbp", "h-sbp", "tiered"} <= set(
            available_variants()
        )

    def test_unknown_variant_rejected(self):
        with pytest.raises(ReproError):
            get_variant_spec("nope")
        with pytest.raises(ReproError):
            SBPConfig(variant="nope")

    def test_duplicate_registration_rejected(self):
        spec = get_variant_spec("sbp")
        with pytest.raises(ReproError):
            register_variant(spec)

    def test_config_accepts_registered_string(self):
        config = SBPConfig(variant="tiered")
        assert str(config.variant) == "tiered"
        # digest-able and replace-able like enum variants
        assert str(config.replace(seed=7).variant) == "tiered"

    def test_new_variant_needs_only_a_registry_entry(self, graph):
        """Acceptance criterion: a new variant = plan builder + register."""
        name = "test-reverse-hybrid"
        if name not in available_variants():
            register_variant(VariantSpec(
                name=name,
                summary="frozen tail first, then serial top (test-only)",
                build_plan=lambda config: SweepPlan(
                    (
                        SweepSegment(
                            DegreeBand(config.vstar_fraction, 1.0),
                            SegmentMode.FROZEN_PARALLEL,
                        ),
                        SweepSegment(
                            DegreeTop(config.vstar_fraction),
                            SegmentMode.SERIAL_INPLACE,
                        ),
                    ),
                    name=name,
                ),
            ))
        # No engine or driver edits: the stock phase driver runs it.
        config = gu.make_config(name, "incremental", "vectorized", seed=3,
                                max_sweeps=3)
        bm = Blockmodel.from_assignment(
            graph, gu.start_assignment(graph), gu.START_BLOCKS
        )
        backend = get_backend(config.backend)
        try:
            stats = run_mcmc_phase(
                bm, graph, config, backend, 1, 0.0, StopwatchPool()
            )
        finally:
            backend.close()
        assert len(stats) == 3
        bm.check_consistency(graph)


# ----------------------------------------------------------------------
# H-SBP fraction boundaries (the bug-surface satellite)
# ----------------------------------------------------------------------
class TestHybridBoundaries:
    @pytest.mark.parametrize("strategy", ["rebuild", "incremental"])
    @pytest.mark.parametrize("seed", gu.GOLDEN_SEEDS)
    def test_fraction_zero_is_asbp(self, graph, strategy, seed):
        h = gu.trace_phase(graph, "h-sbp", strategy, "vectorized", seed,
                           vstar_fraction=0.0)
        a = gu.trace_phase(graph, "a-sbp", strategy, "vectorized", seed)
        assert_array_equal(h[0], a[0])
        assert_array_equal(h[1], a[1])

    @pytest.mark.parametrize("strategy", ["rebuild", "incremental"])
    @pytest.mark.parametrize("seed", gu.GOLDEN_SEEDS)
    def test_fraction_one_is_sbp(self, graph, strategy, seed):
        h = gu.trace_phase(graph, "h-sbp", strategy, "vectorized", seed,
                           vstar_fraction=1.0)
        s = gu.trace_phase(graph, "sbp", strategy, "vectorized", seed)
        assert_array_equal(h[0], s[0])
        assert_array_equal(h[1], s[1])

    def test_boundary_plans_degenerate_structurally(self):
        zero = build_plan(SBPConfig(variant="h-sbp", vstar_fraction=0.0))
        one = build_plan(SBPConfig(variant="h-sbp", vstar_fraction=1.0))
        # f=1.0 must *be* the serial plan (ascending-id traversal), not a
        # degree-ordered serial pass over "all" vertices.
        assert len(one.segments) == 1
        assert one.segments[0].mode is SegmentMode.SERIAL_INPLACE
        assert isinstance(one.segments[0].selector, AllVertices)
        # f=0.0 keeps the two-segment shape; the empty serial segment is
        # dropped at bind time, which skips its RNG draw and barrier.
        assert zero.segments[0].mode is SegmentMode.SERIAL_INPLACE


# ----------------------------------------------------------------------
# Tiered plan (engine-only variant)
# ----------------------------------------------------------------------
class TestTieredVariant:
    def test_plan_shape(self):
        config = SBPConfig(variant="tiered", vstar_fraction=0.15,
                           tier_split=0.5, num_batches=4)
        plan = build_plan(config)
        assert len(plan.segments) == 3
        assert [s.mode for s in plan.segments] == [
            SegmentMode.SERIAL_INPLACE,
            SegmentMode.FROZEN_PARALLEL,
            SegmentMode.FROZEN_PARALLEL,
        ]
        assert plan.barriers_per_sweep == 5

    def test_smoke_phase_converges_and_stays_consistent(self, graph):
        config = gu.make_config("tiered", "incremental", "vectorized", seed=3,
                                max_sweeps=4, record_work=True)
        bm = Blockmodel.from_assignment(
            graph, gu.start_assignment(graph), gu.START_BLOCKS
        )
        before = bm.mdl(graph)
        backend = get_backend(config.backend)
        try:
            stats = run_mcmc_phase(
                bm, graph, config, backend, 1, 0.0, StopwatchPool()
            )
        finally:
            backend.close()
        bm.check_consistency(graph)
        assert len(stats) == 4
        assert bm.mdl(graph) < before
        # Work split: serial top tier + parallel middle/tail tiers, and
        # the recorded parallel work vector covers exactly the frozen
        # vertices (V - |V*|).
        vstar, _ = split_vertices_by_degree(graph, config.vstar_fraction)
        for s in stats:
            assert s.serial_work > 0
            assert s.parallel_work > 0
            assert s.work_per_vertex is not None
            assert s.work_per_vertex.shape == (
                graph.num_vertices - len(vstar),
            )

    def test_tier_split_below_vstar_collapses_middle(self, graph):
        config = SBPConfig(variant="tiered", vstar_fraction=0.3,
                           tier_split=0.1)
        plan = build_plan(config)
        engine = SweepEngine(
            plan, config, get_backend("serial"), StopwatchPool()
        )
        bound = engine.bind(graph)
        # middle band [0.3, max(0.3, 0.1)) is empty -> dropped at bind
        assert len(bound) == 2

    def test_tier_split_validation(self):
        with pytest.raises(ValueError):
            SBPConfig(tier_split=1.2)


# ----------------------------------------------------------------------
# Stats plumbing
# ----------------------------------------------------------------------
class TestStatsPlumbing:
    def test_without_work_drops_only_the_vector(self):
        from repro.types import SweepStats

        stats = SweepStats(
            proposals=10, accepted=4, delta_mdl=-1.5, serial_work=3.0,
            parallel_work=7.0, barrier_moved=2,
            work_per_vertex=np.ones(5, dtype=np.int64),
        )
        stripped = stats.without_work()
        assert stripped.work_per_vertex is None
        assert stripped == SweepStats(
            proposals=10, accepted=4, delta_mdl=-1.5, serial_work=3.0,
            parallel_work=7.0, barrier_moved=2,
        )
        # original untouched
        assert stats.work_per_vertex is not None

    def test_phase_strips_work_unless_recorded(self, graph):
        for record_work, expect_vector in ((False, False), (True, True)):
            config = gu.make_config(
                "h-sbp", "incremental", "vectorized", seed=3,
                max_sweeps=2, record_work=record_work,
            )
            bm = Blockmodel.from_assignment(
                graph, gu.start_assignment(graph), gu.START_BLOCKS
            )
            backend = get_backend(config.backend)
            try:
                stats = run_mcmc_phase(
                    bm, graph, config, backend, 1, 0.0, StopwatchPool()
                )
            finally:
                backend.close()
            assert all(
                (s.work_per_vertex is not None) == expect_vector
                for s in stats
            )

    def test_one_mdl_call_per_sweep(self, graph):
        """The tracing probe's contract: start + one MDL call per sweep."""
        assignments, mdls = gu.trace_phase(
            graph, "tiered", "incremental", "vectorized", 3
        )
        assert assignments.shape == (gu.PHASE_SWEEPS + 1, graph.num_vertices)
        assert mdls.shape == (gu.PHASE_SWEEPS + 1,)
