"""Unit tests for the bench harness and reporting layers."""

from __future__ import annotations

import pytest

from repro import DCSBMParams, SBPConfig, Variant, generate_dcsbm
from repro.bench.harness import (
    BenchScale,
    current_scale,
    run_variant_suite,
    speedup_rows,
)
from repro.bench.reporting import format_series, format_table, write_report


@pytest.fixture(scope="module")
def small_suite():
    graph, truth = generate_dcsbm(
        DCSBMParams(num_vertices=70, num_communities=3,
                    within_between_ratio=8.0, mean_degree=7.0),
        seed=3,
    )
    config = SBPConfig(max_sweeps=10)
    suite = run_variant_suite(
        "toy", graph, [Variant.SBP, Variant.HSBP], runs=2, seed=4, config=config
    )
    return graph, truth, suite


class TestScale:
    def test_default_smoke(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert current_scale() is BenchScale.SMOKE

    def test_paper_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "paper")
        assert current_scale() is BenchScale.PAPER
        assert BenchScale.PAPER.runs > BenchScale.SMOKE.runs

    def test_bad_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "galactic")
        with pytest.raises(ValueError):
            current_scale()


@pytest.mark.slow
class TestVariantSuite:
    def test_best_of_selection(self, small_suite):
        _, _, suite = small_suite
        for run in suite.values():
            assert len(run.all_results) == 2
            assert run.best.mdl == min(r.mdl for r in run.all_results)

    def test_aggregate_times_sum_runs(self, small_suite):
        _, _, suite = small_suite
        run = suite["sbp"]
        assert run.total_mcmc_seconds == pytest.approx(
            sum(r.mcmc_seconds for r in run.all_results)
        )
        assert run.total_sweeps == sum(r.mcmc_sweeps for r in run.all_results)

    def test_row_fields(self, small_suite):
        graph, truth, suite = small_suite
        row = suite["h-sbp"].row(graph, truth)
        assert row["algorithm"] == "H-SBP"
        assert "NMI" in row and "MDL_norm" in row and "modularity" in row

    def test_speedup_rows(self, small_suite):
        _, _, suite = small_suite
        rows = speedup_rows({"toy": suite})
        assert len(rows) == 1
        assert rows[0]["H-SBP_speedup"] > 0

    def test_speedup_missing_baseline(self, small_suite):
        _, _, suite = small_suite
        trimmed = {k: v for k, v in suite.items() if k != "sbp"}
        with pytest.raises(KeyError):
            speedup_rows({"toy": trimmed})


class TestReporting:
    def test_format_table_alignment(self):
        rows = [
            {"graph": "S1", "NMI": 0.923456, "sweeps": 120},
            {"graph": "S22", "NMI": 0.1, "sweeps": 7},
        ]
        text = format_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "graph" in lines[1]
        assert len(lines) == 5

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="t")

    def test_format_table_column_subset(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_format_values(self):
        text = format_table([{"x": float("nan"), "y": True, "z": 12345.6}])
        assert "nan" in text
        assert "yes" in text
        assert "1.23e+04" in text

    def test_format_series_bars(self):
        text = format_series({1: 10.0, 2: 5.0, 4: 2.5}, title="scaling", unit="s")
        lines = text.splitlines()
        assert lines[0] == "scaling"
        assert lines[1].count("#") > lines[2].count("#") > lines[3].count("#")

    def test_format_series_empty(self):
        assert "(empty)" in format_series({})

    def test_write_report(self, tmp_path, capsys):
        out = write_report("unit", "hello\n", directory=tmp_path)
        assert out.read_text() == "hello\n"
        assert "hello" in capsys.readouterr().out


class TestExperimentHelpers:
    def test_table1_shape(self):
        from repro.bench.experiments import table1_rows

        rows = table1_rows(seed=0)
        assert len(rows) == 24
        assert rows[0]["ID"] == "S1"
        assert {r["r"] for r in rows} == {1.0, 3.0, 5.0}

    def test_table2_shape(self):
        from repro.bench.experiments import table2_rows

        rows = table2_rows(seed=0)
        assert len(rows) == 14
        for row in rows:
            assert row["standin_V"] < row["paper_V"]

    def test_smoke_ids_valid(self):
        from repro.bench.experiments import SMOKE_REAL_WORLD_IDS, SMOKE_SYNTHETIC_IDS
        from repro.generators.corpus import SYNTHETIC_SPECS
        from repro.generators.realworld import REAL_WORLD_SPECS

        assert set(SMOKE_SYNTHETIC_IDS) <= set(SYNTHETIC_SPECS)
        assert set(SMOKE_REAL_WORLD_IDS) <= set(REAL_WORLD_SPECS)


class TestGroupedBars:
    def test_structure_and_scale(self):
        from repro.bench.reporting import format_grouped_bars

        rows = [
            {"graph": "S2", "a": 1.0, "b": 0.5},
            {"graph": "S4", "a": 0.25, "b": 0.0},
        ]
        text = format_grouped_bars(rows, "graph", ["a", "b"], bar_width=20)
        lines = text.splitlines()
        assert lines[0] == "S2"
        # full-scale bar has 20 marks, half-scale 10
        assert lines[1].count("#") == 20
        assert lines[2].count("#") == 10
        assert lines[4].count("#") == 5
        assert lines[5].count("#") == 0

    def test_handles_nan_and_missing(self):
        from repro.bench.reporting import format_grouped_bars

        rows = [{"graph": "g", "a": float("nan")}]
        text = format_grouped_bars(rows, "graph", ["a", "b"])
        assert text.count("(n/a)") == 2

    def test_empty_rows(self):
        from repro.bench.reporting import format_grouped_bars

        assert "(no rows)" in format_grouped_bars([], "graph", ["a"])

    def test_vmax_caps_bars(self):
        from repro.bench.reporting import format_grouped_bars

        rows = [{"graph": "g", "a": 5.0}]
        text = format_grouped_bars(rows, "graph", ["a"], bar_width=10, vmax=1.0)
        assert text.splitlines()[1].count("#") == 10


class TestDisplayNames:
    def test_every_registered_variant_has_a_display_name(self):
        from repro.bench.harness import _display_name
        from repro.mcmc.engine import available_variants

        for variant in available_variants():
            name = _display_name(variant)
            assert name  # never empty
            # Registered variants render a styled label, not the raw key.
            assert name != variant or variant.isupper()

    def test_tiered_display_name(self):
        from repro.bench.harness import _display_name

        assert _display_name("tiered") == "Tiered-SBP"
        assert _display_name("b-sbp") == "B-SBP"
        assert _display_name("unregistered-thing") == "unregistered-thing"


class TestSuiteStore:
    def test_rebench_hits_store(self):
        import numpy as np

        from repro.service.store import MemoryResultStore

        graph, truth = generate_dcsbm(
            DCSBMParams(num_vertices=60, num_communities=3,
                        within_between_ratio=8.0, mean_degree=7.0),
            seed=3,
        )
        config = SBPConfig(max_sweeps=8)
        store = MemoryResultStore()
        first = run_variant_suite(
            "toy", graph, [Variant.SBP], runs=1, seed=4, config=config,
            store=store,
        )
        again = run_variant_suite(
            "toy", graph, [Variant.SBP], runs=1, seed=4, config=config,
            store=store,
        )
        assert store.stats.hits == 1 and store.stats.puts == 1
        a, b = first["sbp"], again["sbp"]
        assert a.best.mdl == b.best.mdl
        assert np.array_equal(a.best.assignment, b.best.assignment)
        # Cached rows report the original run's clock, bit-identically.
        assert a.total_mcmc_seconds == b.total_mcmc_seconds
