"""Unit tests for graph statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro import summarize
from repro.graph.properties import degree_histogram, estimate_power_law_exponent
from tests.conftest import make_line_graph


class TestSummarize:
    def test_fields(self, tiny_graph):
        s = summarize(tiny_graph)
        assert s.num_vertices == 8
        assert s.num_edges == 14
        assert s.self_loop_count == 1
        assert s.mean_degree == pytest.approx(2 * 14 / 8)
        assert s.max_out_degree >= 1

    def test_as_row_keys(self, tiny_graph):
        row = summarize(tiny_graph).as_row()
        assert {"V", "E", "density", "mean_degree"} <= set(row)


class TestPowerLawEstimator:
    def test_recovers_exponent_roughly(self):
        rng = np.random.default_rng(0)
        # discrete sampling from p(k) ~ k^-2.5 on [1, 1000]
        support = np.arange(1, 1001)
        pmf = support.astype(float) ** -2.5
        pmf /= pmf.sum()
        degrees = rng.choice(support, size=20000, p=pmf)
        alpha = estimate_power_law_exponent(degrees, d_min=1)
        assert 2.2 < alpha < 2.8

    def test_too_few_points_nan(self):
        assert np.isnan(estimate_power_law_exponent(np.array([5])))

    def test_all_below_dmin_nan(self):
        assert np.isnan(estimate_power_law_exponent(np.array([0, 0, 0]), d_min=1))


class TestDegreeHistogram:
    def test_pmf_sums_to_fraction(self, tiny_graph):
        values, pmf = degree_histogram(tiny_graph, "total")
        assert pmf.sum() == pytest.approx(1.0)
        assert (values >= 0).all()

    def test_out_histogram(self):
        g = make_line_graph(4)
        values, pmf = degree_histogram(g, "out")
        # three vertices with out-degree 1, one with 0
        assert dict(zip(values.tolist(), pmf.tolist())) == {0: 0.25, 1: 0.75}

    def test_bad_kind(self, tiny_graph):
        with pytest.raises(ValueError):
            degree_histogram(tiny_graph, "sideways")
