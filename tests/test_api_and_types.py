"""Public API surface, shared types, errors and logging tests."""

from __future__ import annotations

import logging

import numpy as np
import pytest

import repro
from repro import errors
from repro.types import PhaseTimings, SweepStats
from repro.utils.log import configure_logging, get_logger


class TestPublicAPI:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_key_entry_points_exported(self):
        for name in (
            "Graph", "Blockmodel", "run_sbp", "run_best_of", "SBPConfig",
            "Variant", "generate_dcsbm", "generate_synthetic",
            "normalized_mutual_information", "adjusted_rand_index",
            "save_result", "load_result",
        ):
            assert name in repro.__all__, name

    def test_error_hierarchy(self):
        for name in (
            "GraphFormatError", "GraphValidationError", "GeneratorError",
            "BlockmodelError", "ConvergenceError", "BackendError",
            "ExperimentError",
        ):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)
            assert issubclass(cls, Exception)

    def test_variant_values(self):
        assert {v.value for v in repro.Variant} == {"sbp", "a-sbp", "h-sbp", "b-sbp"}


class TestPhaseTimings:
    def test_total(self):
        t = PhaseTimings(block_merge=1.0, mcmc=2.0, rebuild=0.5, other=0.5)
        assert t.total == 4.0

    def test_mcmc_fraction_includes_rebuild(self):
        t = PhaseTimings(block_merge=1.0, mcmc=2.0, rebuild=1.0, other=0.0)
        assert t.mcmc_fraction == pytest.approx(0.75)

    def test_mcmc_fraction_empty(self):
        assert PhaseTimings().mcmc_fraction == 0.0

    def test_merged_with(self):
        a = PhaseTimings(block_merge=1.0, mcmc=2.0)
        b = PhaseTimings(mcmc=3.0, rebuild=1.0)
        merged = a.merged_with(b)
        assert merged.block_merge == 1.0
        assert merged.mcmc == 5.0
        assert merged.rebuild == 1.0
        # originals untouched
        assert a.mcmc == 2.0


class TestSweepStats:
    def test_acceptance_rate(self):
        stats = SweepStats(proposals=10, accepted=4)
        assert stats.acceptance_rate == pytest.approx(0.4)

    def test_acceptance_rate_zero_proposals(self):
        assert SweepStats().acceptance_rate == 0.0

    def test_work_vector_optional(self):
        stats = SweepStats(work_per_vertex=np.arange(3))
        assert stats.work_per_vertex.shape == (3,)


class TestLogging:
    def test_logger_hierarchy(self):
        assert get_logger("core.sbp").name == "repro.core.sbp"
        assert get_logger("repro.x").name == "repro.x"
        assert get_logger().name == "repro"

    def test_silent_by_default(self):
        root = logging.getLogger("repro")
        assert any(isinstance(h, logging.NullHandler) for h in root.handlers)

    def test_configure_idempotent(self):
        logger = configure_logging("DEBUG")
        before = len(logger.handlers)
        configure_logging("INFO")
        assert len(logger.handlers) == before
        assert logger.level == logging.INFO

    def test_driver_emits_progress(self, planted_graph, caplog):
        from repro import SBPConfig, run_sbp

        graph, _ = planted_graph
        with caplog.at_level(logging.INFO, logger="repro"):
            run_sbp(graph, SBPConfig(seed=3, max_sweeps=5))
        messages = [r.message for r in caplog.records]
        assert any(m.startswith("iter") for m in messages)
        assert any(m.startswith("done") for m in messages)
