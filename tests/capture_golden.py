"""Capture the golden-trajectory fixture for the sweep-engine refactor.

Run ONCE at the pre-refactor commit (the last commit where
``run_mcmc_phase`` still dispatched through the hand-written
``metropolis_sweep`` / ``async_gibbs_sweep`` / ``batched_gibbs_sweep`` /
``hybrid_sweep`` chain)::

    PYTHONPATH=src python tests/capture_golden.py

The written ``tests/fixtures/golden_trajectories.npz`` is the refactor's
contract: ``test_golden_trajectories.py`` replays the same probes on the
live code and requires byte-equal assignments and identical MDL floats.
Regenerating the fixture on post-refactor code would make the test
vacuous — never rerun this script unless the *chain definition itself*
is deliberately changed (and say so loudly in the PR).
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

import golden_utils as gu  # noqa: E402


def main() -> int:
    graph = gu.golden_graph()
    payload: dict[str, np.ndarray] = {}
    for variant, strategy, backend, seed in gu.matrix():
        key = gu.combo_key(variant, strategy, backend, seed)
        assignments, mdls = gu.trace_phase(graph, variant, strategy, backend, seed)
        payload[f"phase/{key}/assignments"] = assignments
        payload[f"phase/{key}/mdl"] = mdls
        full = gu.run_full(graph, variant, strategy, backend, seed)
        for name, array in full.items():
            payload[f"full/{key}/{name}"] = array
        print(f"captured {key}: phase sweeps={len(mdls) - 1} "
              f"run sweeps={len(full['delta_mdl'])} "
              f"final C={int(full['assignment'].max()) + 1}")
    out = Path(__file__).resolve().parent / gu.FIXTURE_NAME
    out.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(out, **payload)
    print(f"wrote {out} ({out.stat().st_size} bytes, {len(payload)} arrays)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
