"""Unit tests for the simulated thread executor (Fig. 7 substrate)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.parallel.simulate import SimulatedThreadModel, simulate_sweep_seconds
from repro.types import SweepStats


def _sweep(parallel_work=1000.0, serial_work=0.0, per_vertex=None):
    return SweepStats(
        proposals=100,
        accepted=50,
        serial_work=serial_work,
        parallel_work=parallel_work,
        work_per_vertex=per_vertex,
    )


class TestSimulateSweepSeconds:
    def test_one_thread_is_full_work(self):
        stats = _sweep(parallel_work=1000.0)
        t = simulate_sweep_seconds(stats, 1, seconds_per_unit=1e-3)
        assert t == pytest.approx(1.0)

    def test_ideal_scaling_without_vector(self):
        stats = _sweep(parallel_work=1000.0)
        t4 = simulate_sweep_seconds(stats, 4, seconds_per_unit=1e-3)
        assert t4 == pytest.approx(0.25)

    def test_serial_section_is_amdahl_floor(self):
        stats = _sweep(parallel_work=1000.0, serial_work=500.0)
        t = simulate_sweep_seconds(stats, 1000, seconds_per_unit=1e-3)
        assert t >= 0.5

    def test_static_imbalance_slows_scaling(self):
        rng = np.random.default_rng(0)
        skewed = (rng.pareto(1.2, 512) * 20 + 1).astype(np.int64)
        stats = _sweep(parallel_work=float(skewed.sum()), per_vertex=skewed)
        ideal = float(skewed.sum()) / 8 * 1e-3
        modeled = simulate_sweep_seconds(stats, 8, 1e-3, schedule="static")
        assert modeled >= ideal

    def test_balanced_beats_static(self):
        rng = np.random.default_rng(1)
        skewed = (rng.pareto(1.2, 512) * 20 + 1).astype(np.int64)
        stats = _sweep(parallel_work=float(skewed.sum()), per_vertex=skewed)
        static = simulate_sweep_seconds(stats, 16, 1e-3, schedule="static")
        balanced = simulate_sweep_seconds(stats, 16, 1e-3, schedule="balanced")
        assert balanced <= static

    def test_fork_join_grows_with_threads(self):
        stats = _sweep(parallel_work=100.0)
        cheap = simulate_sweep_seconds(stats, 2, 1e-6, fork_join_seconds=1e-3)
        pricey = simulate_sweep_seconds(stats, 64, 1e-6, fork_join_seconds=1e-3)
        assert pricey > cheap

    def test_rebuild_parallel_fraction(self):
        stats = _sweep(parallel_work=0.0)
        serial_rb = simulate_sweep_seconds(
            stats, 8, 1e-3, rebuild_seconds=1.0, rebuild_parallel_fraction=0.0
        )
        parallel_rb = simulate_sweep_seconds(
            stats, 8, 1e-3, rebuild_seconds=1.0, rebuild_parallel_fraction=1.0
        )
        assert serial_rb == pytest.approx(1.0)
        assert parallel_rb == pytest.approx(1.0 / 8)

    def test_bad_threads(self):
        with pytest.raises(ValueError):
            simulate_sweep_seconds(_sweep(), 0, 1e-3)


class TestSimulatedThreadModel:
    def _model(self):
        rng = np.random.default_rng(2)
        sweeps = []
        for _ in range(10):
            work = (rng.pareto(1.3, 256) * 10 + 1).astype(np.int64)
            sweeps.append(
                SweepStats(
                    proposals=256,
                    accepted=100,
                    serial_work=float(work.sum()) * 0.15,
                    parallel_work=float(work.sum()),
                    work_per_vertex=work,
                )
            )
        return SimulatedThreadModel.calibrated(
            sweeps, measured_mcmc_seconds=10.0, measured_rebuild_seconds=1.0
        )

    def test_calibration_matches_measurement(self):
        model = self._model()
        # 1-thread time must be close to the measured total (work + rebuild)
        assert model.mcmc_seconds(1) == pytest.approx(11.0, rel=0.2)

    def test_speedup_monotone_until_taper(self):
        model = self._model()
        curve = model.speedup_curve([1, 2, 4, 8, 16, 32, 64, 128])
        assert curve[1] == pytest.approx(1.0)
        assert curve[2] > 1.2
        # Fig. 7 shape: still improving at 128, but sub-linear
        assert curve[128] > curve[8]
        assert curve[128] < 128 * 0.8

    def test_tapering_past_16(self):
        """Relative gains shrink: 8->16 gain exceeds 64->128 gain."""
        model = self._model()
        s = model.speedup_curve([8, 16, 64, 128])
        assert (s[16] / s[8]) > (s[128] / s[64])

    def test_empty_sweeps_rejected(self):
        with pytest.raises(ValueError):
            SimulatedThreadModel.calibrated([], measured_mcmc_seconds=1.0)

    def test_record_and_extend(self):
        model = SimulatedThreadModel(seconds_per_unit=1e-3)
        model.record(_sweep(parallel_work=100.0))
        model.extend([_sweep(parallel_work=200.0)])
        assert model.mcmc_seconds(1) == pytest.approx(0.3, rel=0.3)


class TestPlanAwareModel:
    def test_sync_term_charges_per_barrier(self):
        stats = _sweep(parallel_work=1000.0)
        base = simulate_sweep_seconds(stats, 4, seconds_per_unit=1e-3)
        batched = simulate_sweep_seconds(
            stats, 4, seconds_per_unit=1e-3,
            barriers=5, sync_seconds_per_barrier=0.01,
        )
        assert batched == pytest.approx(base + 0.05)

    def test_defaults_preserve_legacy_numbers(self):
        stats = _sweep(parallel_work=1000.0, serial_work=100.0)
        legacy = simulate_sweep_seconds(
            stats, 8, seconds_per_unit=1e-3, rebuild_seconds=0.02,
        )
        explicit = simulate_sweep_seconds(
            stats, 8, seconds_per_unit=1e-3, rebuild_seconds=0.02,
            barriers=1, sync_seconds_per_barrier=0.0,
        )
        assert legacy == explicit

    def test_for_plan_uses_plan_barriers(self):
        from repro import SBPConfig
        from repro.mcmc.engine import build_plan

        plan = build_plan(SBPConfig(variant="b-sbp", num_batches=6))
        model = SimulatedThreadModel.for_plan(
            plan, seconds_per_unit=1e-3, sync_seconds_per_barrier=0.01,
        )
        assert model.barriers_per_sweep == 6
        model.record(_sweep(parallel_work=1000.0))
        flat = SimulatedThreadModel(
            seconds_per_unit=1e-3, sync_seconds_per_barrier=0.01,
        )
        flat.record(_sweep(parallel_work=1000.0))
        assert model.mcmc_seconds(4) == pytest.approx(
            flat.mcmc_seconds(4) + 5 * 0.01
        )

    def test_bad_barriers_rejected(self):
        with pytest.raises(ValueError):
            simulate_sweep_seconds(
                _sweep(), 2, seconds_per_unit=1e-3, barriers=-1
            )

    def test_idealized_removes_load_imbalance(self):
        rng = np.random.default_rng(4)
        work = rng.integers(1, 200, size=512).astype(np.int64)
        stats = SweepStats(
            proposals=512, accepted=100,
            parallel_work=float(work.sum()), work_per_vertex=work,
        )
        model = SimulatedThreadModel(seconds_per_unit=1e-4, schedule="static")
        model.record(stats)
        ideal = model.idealized()
        # perfect balance is a lower bound on the static-chunk makespan
        assert ideal.mcmc_seconds(16) < model.mcmc_seconds(16)
        assert ideal.mcmc_seconds(1) == pytest.approx(model.mcmc_seconds(1))
        # the original keeps its recorded vectors
        assert model.sweeps[0].work_per_vertex is not None
        assert ideal.sweeps[0].work_per_vertex is None
