"""Property tests: SparseBlockMatrix vs the dense oracle."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Blockmodel, Graph
from repro.errors import BlockmodelError
from repro.sbm.delta import vertex_move_context
from repro.sbm.sparse import SparseBlockMatrix


def _random_dense(seed: int, size: int = 6) -> np.ndarray:
    rng = np.random.default_rng(seed)
    dense = rng.integers(0, 5, (size, size)).astype(np.int64)
    dense[rng.random((size, size)) < 0.5] = 0
    return dense


class TestConstruction:
    def test_from_dense_roundtrip(self):
        dense = _random_dense(0)
        sparse = SparseBlockMatrix.from_dense(dense)
        np.testing.assert_array_equal(sparse.to_dense(), dense)
        sparse.check_mirror_consistency()

    def test_from_edges_matches_bincount(self):
        rng = np.random.default_rng(1)
        src = rng.integers(0, 4, 50)
        dst = rng.integers(0, 4, 50)
        sparse = SparseBlockMatrix.from_edges(src, dst, 4)
        dense = np.zeros((4, 4), dtype=np.int64)
        np.add.at(dense, (src, dst), 1)
        np.testing.assert_array_equal(sparse.to_dense(), dense)

    def test_bad_size(self):
        with pytest.raises(BlockmodelError):
            SparseBlockMatrix(0)

    def test_non_square_rejected(self):
        with pytest.raises(BlockmodelError):
            SparseBlockMatrix.from_dense(np.zeros((2, 3)))


class TestElementOps:
    def test_add_and_evict(self):
        m = SparseBlockMatrix(3)
        m.add(0, 1, 5)
        assert m.get(0, 1) == 5
        assert m.nnz == 1
        m.add(0, 1, -5)
        assert m.get(0, 1) == 0
        assert m.nnz == 0  # zero entries are evicted

    def test_negative_total_rejected(self):
        m = SparseBlockMatrix(2)
        with pytest.raises(BlockmodelError):
            m.add(0, 0, -1)

    def test_out_of_range(self):
        m = SparseBlockMatrix(2)
        with pytest.raises(BlockmodelError):
            m.add(2, 0, 1)

    def test_row_col_items_sorted(self):
        dense = _random_dense(2)
        sparse = SparseBlockMatrix.from_dense(dense)
        for r in range(dense.shape[0]):
            cols, vals = sparse.row_items(r)
            assert (np.diff(cols) > 0).all() if cols.size > 1 else True
            np.testing.assert_array_equal(vals, dense[r, cols])
        for c in range(dense.shape[0]):
            rows, vals = sparse.col_items(c)
            np.testing.assert_array_equal(vals, dense[rows, c])

    def test_gather(self):
        dense = _random_dense(3)
        sparse = SparseBlockMatrix.from_dense(dense)
        rows = np.array([0, 1, 2, 5])
        cols = np.array([5, 4, 2, 0])
        np.testing.assert_array_equal(sparse.gather(rows, cols), dense[rows, cols])

    def test_sums(self):
        dense = _random_dense(4)
        sparse = SparseBlockMatrix.from_dense(dense)
        for i in range(dense.shape[0]):
            assert sparse.row_sum(i) == dense[i].sum()
            assert sparse.col_sum(i) == dense[:, i].sum()
        assert sparse.total == dense.sum()


class TestMoveAndMerge:
    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_apply_move_matches_dense(self, seed):
        """Sparse move updates equal the dense Blockmodel's."""
        rng = np.random.default_rng(seed)
        n, blocks = 20, 5
        graph = Graph(n, rng.integers(0, n, (50, 2)).astype(np.int64))
        assignment = rng.integers(0, blocks, n).astype(np.int64)
        bm = Blockmodel.from_assignment(graph, assignment, blocks)
        sparse = SparseBlockMatrix.from_dense(bm.B)

        v = int(rng.integers(n))
        s = int(rng.integers(blocks))
        ctx = vertex_move_context(bm, graph, v)
        if s == ctx.r:
            return
        bm.apply_move(v, s, ctx.t_out, ctx.c_out, ctx.t_in, ctx.c_in,
                      ctx.loops, ctx.deg_out, ctx.deg_in)
        sparse.apply_move(ctx.r, s, ctx.t_out, ctx.c_out, ctx.t_in, ctx.c_in,
                          ctx.loops)
        np.testing.assert_array_equal(sparse.to_dense(), bm.B)
        sparse.check_mirror_consistency()

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 2**31 - 1), st.integers(0, 4), st.integers(0, 4))
    def test_merge_matches_dense(self, seed, r, s):
        if r == s:
            return
        rng = np.random.default_rng(seed)
        n, blocks = 18, 5
        graph = Graph(n, rng.integers(0, n, (60, 2)).astype(np.int64))
        assignment = rng.integers(0, blocks, n).astype(np.int64)
        bm = Blockmodel.from_assignment(graph, assignment, blocks)
        sparse = SparseBlockMatrix.from_dense(bm.B)
        bm.merge_blocks(r, s)
        sparse.merge_into(r, s)
        np.testing.assert_array_equal(sparse.to_dense(), bm.B)
        sparse.check_mirror_consistency()

    def test_merge_self_rejected(self):
        m = SparseBlockMatrix(3)
        with pytest.raises(BlockmodelError):
            m.merge_into(1, 1)


class TestStats:
    def test_fill_fraction(self):
        m = SparseBlockMatrix(10)
        m.add(0, 0, 1)
        assert m.fill_fraction == pytest.approx(0.01)

    def test_memory_scales_with_support(self):
        small = SparseBlockMatrix(100)
        small.add(0, 0, 1)
        big = SparseBlockMatrix.from_dense(_random_dense(5, 30))
        assert big.memory_bytes() > small.memory_bytes()
