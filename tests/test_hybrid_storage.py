"""Hybrid-engine internals: LRU eviction, write-behind journal, policy.

The equivalence matrices (``test_block_storage.py``,
``test_storage_equivalence.py``) prove the hybrid engine replays dense
chains end-to-end; this module attacks the machinery those matrices can
miss by luck — evictions racing journaled writes, deferred audits,
memory accounting, the row-granular :class:`ProposalCache` protocol and
the ``auto`` storage policy.
"""

from __future__ import annotations

import numpy as np
import pytest
from numpy.testing import assert_array_equal

from repro import SBPConfig, run_sbp
from repro.errors import BlockmodelError
from repro.resilience.checkpoint import RunCheckpointer, config_digest
from repro.sbm.block_storage import (
    AUTO_STORAGE,
    STORAGE_BUDGET_ENV,
    DenseBlockState,
    HybridBlockState,
    SparseBlockState,
    resolve_block_storage,
)
from repro.sbm.blockmodel import Blockmodel
from repro.sbm.incremental import ProposalCache


def _ref_matrix(C: int = 8, seed: int = 3) -> np.ndarray:
    rng = np.random.default_rng(seed)
    B = rng.integers(0, 5, size=(C, C)).astype(np.int64)
    B[rng.random((C, C)) < 0.4] = 0
    return B


def _tiny_hybrid(C: int = 8, cache_lines: int = 2, seed: int = 3):
    """A hybrid state with an adversarially small cache + its dense twin."""
    ref = _ref_matrix(C, seed)
    state = HybridBlockState(SparseBlockState.from_dense(ref), cache_lines)
    return state, DenseBlockState.from_dense(ref)


class TestLRUEviction:
    def test_default_cache_budget(self):
        state = HybridBlockState(SparseBlockState.from_dense(_ref_matrix()))
        assert state.cache_lines == 8  # min(max(256, C // 16), C): capped at C
        src = np.asarray([0], dtype=np.int64)
        dst = np.asarray([1], dtype=np.int64)
        mid = HybridBlockState.from_edges(src, dst, 4096)
        assert mid.cache_lines == 256  # the floor
        big = HybridBlockState.from_edges(src, dst, 8192)
        assert big.cache_lines == 512  # C // 16

    def test_evict_then_reread_equals_fresh_gather(self):
        """An evicted line that had journaled writes re-reads correctly.

        The journal chunk for the evicted line must survive the eviction
        (only the materialized array is dropped) and be replayed on the
        next materialization.
        """
        state, dense = _tiny_hybrid(cache_lines=2)
        # Materialize rows 0 and 1, then journal a write into row 0.
        state.dense_row(0)
        state.dense_row(1)
        src = np.asarray([0], dtype=np.int64)
        dst = np.asarray([3], dtype=np.int64)
        state.scatter_edges(src, dst, src, np.asarray([5], dtype=np.int64))
        dense.scatter_edges(src, dst, src, np.asarray([5], dtype=np.int64))
        # Churn the cache so row 0 (oldest) is evicted, then re-read it.
        state.dense_row(2)
        state.dense_row(3)
        assert 0 not in state._row_lru
        assert state._pending > 0  # no flush happened along the way
        assert_array_equal(state.dense_row(0), dense.dense_row(0))
        assert_array_equal(
            state.row_gather(0, np.arange(8)), dense.dense_row(0)
        )

    def test_write_through_during_pending_eviction(self):
        """Writes landing while the cache is full stay coherent.

        A batch touching both cached lines (write-through) and the line
        about to evict them (miss → materialize → evict) must leave
        every read equal to the dense oracle.
        """
        state, dense = _tiny_hybrid(cache_lines=2)
        state.dense_row(0)
        state.dense_row(1)  # cache full: {0, 1}
        old_src = np.asarray([0, 1, 2], dtype=np.int64)
        old_dst = np.asarray([1, 2, 3], dtype=np.int64)
        new_src = np.asarray([0, 1, 2], dtype=np.int64)
        new_dst = np.asarray([4, 5, 6], dtype=np.int64)
        state.scatter_edges(old_src, old_dst, new_src, new_dst)
        dense.scatter_edges(old_src, old_dst, new_src, new_dst)
        # Touching row 2 evicts row 0 *after* the write-through landed.
        assert_array_equal(state.dense_row(2), dense.dense_row(2))
        assert 0 not in state._row_lru
        for r in range(8):
            assert_array_equal(state.dense_row(r), dense.dense_row(r))
            assert_array_equal(state.dense_col(r), dense.dense_col(r))

    def test_adversarial_access_fuzz(self):
        """Fixed-seed op soup on a 2-line cache stays byte-equal to dense."""
        C = 12
        rng = np.random.default_rng(20240807)
        ref = rng.integers(0, 6, size=(C, C)).astype(np.int64)
        state = HybridBlockState(SparseBlockState.from_dense(ref), 2)
        dense = DenseBlockState.from_dense(ref)
        for step in range(300):
            op = rng.integers(0, 5)
            if op == 0:  # move an edge endpoint between live cells
                r, c = (int(x) for x in rng.integers(0, C, 2))
                row = dense.dense_row(r)
                if row.sum() == 0:
                    continue
                old_c = int(rng.choice(np.nonzero(row)[0]))
                args = (
                    np.asarray([r], dtype=np.int64),
                    np.asarray([old_c], dtype=np.int64),
                    np.asarray([r], dtype=np.int64),
                    np.asarray([c], dtype=np.int64),
                )
                state.scatter_edges(*args)
                dense.scatter_edges(*args)
            elif op == 1:
                u = int(rng.integers(0, C))
                assert_array_equal(
                    state.sym_row_cdf(u).cdf,
                    dense.sym_row_cdf(u).cdf,
                    err_msg=f"sym_row_cdf({u}) diverged at step {step}",
                )
            elif op == 2:
                r = int(rng.integers(0, C))
                assert_array_equal(state.dense_row(r), dense.dense_row(r))
            elif op == 3:
                c = int(rng.integers(0, C))
                assert_array_equal(state.dense_col(c), dense.dense_col(c))
            else:
                r, c = (int(x) for x in rng.integers(0, C, 2))
                assert state.get(r, c) == dense.get(r, c)
        assert_array_equal(state.to_dense(), dense.to_dense())


class TestJournal:
    def test_threshold_triggers_flush(self):
        state, dense = _tiny_hybrid()
        state._flush_threshold = 4  # shrink for the test
        empty = np.empty(0, dtype=np.int64)
        src = np.asarray([0, 1], dtype=np.int64)
        dst = np.asarray([3, 4], dtype=np.int64)
        state.scatter_edges(empty, empty, src, dst)  # 2 pending, no flush
        dense.scatter_edges(empty, empty, src, dst)
        assert state._pending == 2
        new_dst = np.asarray([5, 6], dtype=np.int64)
        state.scatter_edges(src, dst, src, new_dst)  # 4 entries -> flush
        dense.scatter_edges(src, dst, src, new_dst)
        assert state._pending == 0
        assert not state._jrow and not state._jcol
        # The backing saw the deltas without any whole-matrix read.
        assert_array_equal(state._backing.to_dense(), dense.to_dense())

    def test_reads_never_flush(self):
        state, _ = _tiny_hybrid()
        src = np.asarray([0], dtype=np.int64)
        state.scatter_edges(
            src, np.asarray([3], dtype=np.int64),
            src, np.asarray([5], dtype=np.int64),
        )
        pending = state._pending
        assert pending > 0
        state.get(0, 5)
        state.dense_row(0)
        state.dense_col(5)
        state.sym_row_cdf(0)
        assert state._pending == pending
        state.to_dense()  # whole-matrix read is the flush point
        assert state._pending == 0

    def test_negative_count_surfaces_at_flush(self):
        """The deferred audit still fires: going negative raises."""
        C = 6
        state = HybridBlockState(
            SparseBlockState.from_dense(np.zeros((C, C), dtype=np.int64)), 2
        )
        src = np.asarray([1], dtype=np.int64)
        dst = np.asarray([2], dtype=np.int64)
        empty = np.empty(0, dtype=np.int64)
        state.scatter_edges(src, dst, empty, empty)  # remove a phantom edge
        with pytest.raises(BlockmodelError, match="negative count"):
            state.to_dense()


class TestMemoryAccounting:
    def test_sparse_counts_flat_cache(self):
        state = SparseBlockState.from_dense(_ref_matrix(32, seed=9))
        before = state.memory_bytes()
        state.gather(
            np.asarray([0, 1, 2], dtype=np.int64),
            np.asarray([3, 4, 5], dtype=np.int64),
        )  # materializes the lazy flat-CSR cache
        assert state._flat is not None
        assert state.memory_bytes() > before

    def test_sparse_covers_line_payloads(self):
        state = SparseBlockState.from_dense(_ref_matrix(16, seed=5))
        payload = sum(
            int(arr.nbytes)
            for store in (state._row_cols, state._row_vals,
                          state._col_rows, state._col_vals)
            for arr in store
        )
        assert state.memory_bytes() >= payload

    def test_hybrid_counts_cache_and_journal(self):
        state, _ = _tiny_hybrid(C=16, cache_lines=4)
        base = state.memory_bytes()
        assert base >= state._backing.memory_bytes()
        state.dense_row(0)
        state.dense_col(1)
        cached = state.memory_bytes()
        assert cached > base
        src = np.asarray([0], dtype=np.int64)
        state.scatter_edges(
            src, np.asarray([2], dtype=np.int64),
            src, np.asarray([3], dtype=np.int64),
        )
        assert state.memory_bytes() > cached
        assert state._pending > 0  # memory_bytes must not flush

    def test_hybrid_cache_is_bounded(self):
        state, _ = _tiny_hybrid(C=32, cache_lines=3)
        for r in range(32):
            state.dense_row(r)
            state.dense_col(r)
        assert len(state._row_lru) == 3
        assert len(state._col_lru) == 3


class TestProposalCacheRowGranular:
    def _blockmodel(self, graph, storage):
        rng = np.random.default_rng(8)
        assignment = rng.integers(0, 6, graph.num_vertices)
        return Blockmodel.from_assignment(graph, assignment, 6, storage=storage)

    def test_untouched_rows_survive_a_move(self, planted_graph):
        """Versioned protocol: a move rebuilds only rows it wrote.

        Under the eager dirty-set protocol the ``{r, s} ∪ t_out ∪ t_in``
        entries are dropped wholesale; the versioned protocol must keep
        the *object-identical* CDF for every block whose line the move
        did not touch, and rebuild exactly the touched ones.
        """
        graph, _ = planted_graph
        bm = self._blockmodel(graph, "hybrid")
        cache = ProposalCache(bm)
        assert cache._versioned
        before = {u: cache.row_cdf(u) for u in range(bm.num_blocks)}
        t_out = np.asarray([2], dtype=np.int64)
        t_in = np.asarray([3], dtype=np.int64)
        ones = np.asarray([1], dtype=np.int64)
        bm.state.apply_move(0, 1, t_out, ones, t_in, ones, 0)
        cache.invalidate_move(0, 1, t_out, t_in)  # no-op when versioned
        touched = {0, 1, 2, 3}
        for u in range(bm.num_blocks):
            after = cache.row_cdf(u)
            if u in touched:
                assert after is not before[u], f"block {u} served stale CDF"
                assert_array_equal(after.cdf, bm.state.sym_row_cdf(u).cdf)
            else:
                assert after is before[u], f"block {u} rebuilt needlessly"

    def test_eager_protocol_unchanged_for_dense(self, planted_graph):
        graph, _ = planted_graph
        bm = self._blockmodel(graph, "dense")
        cache = ProposalCache(bm)
        assert not cache._versioned
        cache.row_cdf(0)
        cache.row_cdf(4)
        cache.invalidate_move(
            0, 1, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        )
        assert 0 not in cache._cdfs
        assert 4 in cache._cdfs

    def test_state_swap_clears_stamps(self, planted_graph):
        """Fresh state objects restart version counters at zero.

        Without the identity guard a stamp recorded against the old
        state could falsely validate against the new one.
        """
        graph, _ = planted_graph
        bm = self._blockmodel(graph, "hybrid")
        cache = ProposalCache(bm)
        stale = cache.row_cdf(0)
        bm.state = bm.state.copy()  # e.g. a rebuild barrier swapped states
        src = np.asarray([0], dtype=np.int64)
        bm.state.scatter_edges(
            src, np.asarray([1], dtype=np.int64),
            src, np.asarray([2], dtype=np.int64),
        )
        fresh = cache.row_cdf(0)
        assert fresh is not stale
        assert_array_equal(fresh.cdf, bm.state.sym_row_cdf(0).cdf)

    def test_merge_bumps_every_line(self):
        state, _ = _tiny_hybrid()
        versions = [state.line_version(u) for u in range(state.num_blocks)]
        state.merge_into(0, 1)
        for u in range(state.num_blocks):
            assert state.line_version(u) > versions[u]


class TestAutoPolicy:
    def test_explicit_names_pass_through(self):
        for name in ("dense", "sparse", "hybrid"):
            engine, reason = resolve_block_storage(name, 10**6, 10**7)
            assert engine == name
            assert reason == "explicit"

    def test_small_graphs_go_dense(self):
        engine, reason = resolve_block_storage(AUTO_STORAGE, 500, 4000)
        assert engine == "dense"
        assert "fits" in reason

    def test_large_sparse_graphs_go_hybrid(self):
        # C = 2^16 would need 32 GiB dense; way past any default budget.
        engine, _ = resolve_block_storage(AUTO_STORAGE, 1 << 16, 10**6)
        assert engine == "hybrid"

    def test_near_dense_within_budget_stays_dense(self):
        # 8 * 4096^2 = 128 MiB <= 512 MiB default budget, density ~ 0.06.
        c = 4096
        engine, reason = resolve_block_storage(AUTO_STORAGE, c, c * c // 16)
        assert engine == "dense"
        assert "density" in reason

    def test_budget_env_override(self, monkeypatch):
        c = 4096
        monkeypatch.setenv(STORAGE_BUDGET_ENV, str(10**6))
        engine, _ = resolve_block_storage(AUTO_STORAGE, c, c * c // 16)
        assert engine == "hybrid"
        monkeypatch.delenv(STORAGE_BUDGET_ENV)
        engine, _ = resolve_block_storage(AUTO_STORAGE, c, c * c // 16)
        assert engine == "dense"

    def test_explicit_budget_beats_env(self, monkeypatch):
        monkeypatch.setenv(STORAGE_BUDGET_ENV, str(10**12))
        engine, _ = resolve_block_storage(
            AUTO_STORAGE, 4096, 4096 * 4096 // 16, budget_bytes=10**6
        )
        assert engine == "hybrid"

    def test_config_accepts_auto(self):
        config = SBPConfig(block_storage=AUTO_STORAGE)
        assert config.block_storage == AUTO_STORAGE

    @pytest.mark.slow
    def test_run_records_resolved_engine(self, planted_graph):
        graph, _ = planted_graph
        config = SBPConfig(seed=9, block_storage=AUTO_STORAGE, max_sweeps=8)
        result = run_sbp(graph, config)
        # 80 vertices → dense fits comfortably.
        assert result.block_storage == "dense"
        explicit = run_sbp(
            graph, SBPConfig(seed=9, block_storage="dense", max_sweeps=8)
        )
        assert_array_equal(result.assignment, explicit.assignment)
        assert result.mdl == explicit.mdl

    @pytest.mark.slow
    def test_auto_checkpoint_interops_with_resolved_name(
        self, planted_graph, tmp_path
    ):
        """Digests record the *resolved* engine, so auto and its
        resolution share checkpoints instead of refusing each other."""
        graph, _ = planted_graph
        ck = RunCheckpointer(tmp_path / "ckpt")
        auto = SBPConfig(seed=5, block_storage=AUTO_STORAGE, max_sweeps=8)
        first = run_sbp(graph, auto, checkpointer=ck)
        resumed = run_sbp(
            graph,
            SBPConfig(seed=5, block_storage="dense", max_sweeps=8),
            checkpointer=ck,
        )
        assert_array_equal(resumed.assignment, first.assignment)
        assert resumed.mdl == first.mdl

    def test_digest_requires_resolution_first(self):
        """A digest of an unresolved auto config differs from dense's —
        the run loop must resolve before digesting (and does)."""
        auto = SBPConfig(seed=1, block_storage=AUTO_STORAGE)
        dense = SBPConfig(seed=1, block_storage="dense")
        assert config_digest(auto) != config_digest(dense)
        assert config_digest(auto.replace(block_storage="dense")) == (
            config_digest(dense)
        )
