"""Unit tests for graph transforms (symmetrize, weights, components)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Graph
from repro.errors import GraphValidationError
from repro.graph.transforms import (
    expand_weighted_edges,
    induced_subgraph,
    largest_weak_component,
    remove_self_loops,
    symmetrize,
    weak_components,
)


class TestSymmetrize:
    def test_doubles_off_diagonal(self, tiny_graph):
        sym = symmetrize(tiny_graph)
        loops = int(tiny_graph.self_loops.sum())
        assert sym.num_edges == 2 * (tiny_graph.num_edges - loops) + loops
        np.testing.assert_array_equal(sym.out_degree, sym.in_degree)

    def test_collapse_deduplicates(self):
        g = Graph(3, np.array([[0, 1], [1, 0], [1, 2]]))
        sym = symmetrize(g, collapse=True)
        assert sym.num_edges == 4  # {01, 10, 12, 21}

    def test_self_loops_kept_single(self):
        g = Graph(2, np.array([[0, 0], [0, 1]]))
        sym = symmetrize(g)
        assert sym.self_loops[0] == 1
        assert sym.num_edges == 3

    def test_sbp_runs_on_symmetrized(self, planted_graph):
        """The §6 undirected pathway: symmetrize then infer."""
        from repro import SBPConfig, run_sbp
        from repro.metrics import normalized_mutual_information

        graph, truth = planted_graph
        sym = symmetrize(graph)
        result = run_sbp(sym, SBPConfig(variant="h-sbp", seed=2, max_sweeps=15))
        assert normalized_mutual_information(truth, result.assignment) > 0.6


class TestSelfLoops:
    def test_removal(self, tiny_graph):
        clean = remove_self_loops(tiny_graph)
        assert clean.self_loops.sum() == 0
        assert clean.num_edges == tiny_graph.num_edges - 1


class TestWeightedExpansion:
    def test_integer_weights(self):
        edges = np.array([[0, 1], [1, 2]])
        g = expand_weighted_edges(edges, np.array([3, 1]), 3)
        assert g.num_edges == 4
        assert g.out_degree[0] == 3

    def test_zero_weight_dropped(self):
        g = expand_weighted_edges(np.array([[0, 1], [1, 0]]), np.array([0, 2]), 2)
        assert g.num_edges == 2
        assert g.out_degree[0] == 0

    def test_float_integral_weights_ok(self):
        g = expand_weighted_edges(np.array([[0, 1]]), np.array([2.0]), 2)
        assert g.num_edges == 2

    def test_fractional_weights_rejected(self):
        with pytest.raises(GraphValidationError):
            expand_weighted_edges(np.array([[0, 1]]), np.array([1.5]), 2)

    def test_negative_weights_rejected(self):
        with pytest.raises(GraphValidationError):
            expand_weighted_edges(np.array([[0, 1]]), np.array([-1]), 2)

    def test_length_mismatch(self):
        with pytest.raises(GraphValidationError):
            expand_weighted_edges(np.array([[0, 1]]), np.array([1, 2]), 2)

    def test_weighted_mdl_matches_multigraph(self):
        """A weight-w edge and w parallel edges are the same model."""
        from repro.metrics import partition_mdl

        edges = np.array([[0, 1], [1, 2], [2, 0], [2, 3]])
        weights = np.array([2, 3, 1, 4])
        weighted = expand_weighted_edges(edges, weights, 4)
        manual = Graph(4, np.repeat(edges, weights, axis=0))
        labels = np.array([0, 0, 1, 1])
        assert partition_mdl(weighted, labels) == pytest.approx(
            partition_mdl(manual, labels)
        )


class TestComponents:
    def test_two_islands(self):
        g = Graph(6, np.array([[0, 1], [1, 2], [3, 4]]))
        labels = weak_components(g)
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4]
        assert labels[0] != labels[3]
        assert labels[5] not in (labels[0], labels[3])

    def test_direction_ignored(self):
        g = Graph(3, np.array([[2, 0], [1, 2]]))
        labels = weak_components(g)
        assert len(set(labels.tolist())) == 1

    def test_matches_networkx(self, medium_graph):
        nx = pytest.importorskip("networkx")
        graph, _ = medium_graph
        ours = weak_components(graph)
        G = nx.MultiDiGraph()
        G.add_nodes_from(range(graph.num_vertices))
        G.add_edges_from(map(tuple, graph.edges))
        theirs = list(nx.weakly_connected_components(G))
        assert len(set(ours.tolist())) == len(theirs)
        for comp in theirs:
            comp = list(comp)
            assert len(set(ours[comp].tolist())) == 1

    def test_largest_component_extraction(self):
        g = Graph(7, np.array([[0, 1], [1, 2], [2, 0], [3, 4]]))
        sub, mapping = largest_weak_component(g)
        assert sub.num_vertices == 3
        assert sorted(mapping.tolist()) == [0, 1, 2]
        assert sub.num_edges == 3


class TestInducedSubgraph:
    def test_keeps_internal_edges(self, tiny_graph):
        sub, mapping = induced_subgraph(tiny_graph, np.array([0, 1, 2, 3]))
        assert sub.num_vertices == 4
        # cluster edges among {0..3}: 7 of them (incl. self-loop + parallel)
        assert sub.num_edges == 7
        np.testing.assert_array_equal(mapping, [0, 1, 2, 3])

    def test_out_of_range_rejected(self, tiny_graph):
        with pytest.raises(GraphValidationError):
            induced_subgraph(tiny_graph, np.array([99]))

    def test_empty_rejected(self, tiny_graph):
        with pytest.raises(GraphValidationError):
            induced_subgraph(tiny_graph, np.array([], dtype=np.int64))
