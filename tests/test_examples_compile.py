"""Examples stay runnable: compile checks plus structural assertions.

Full executions live in the examples themselves (they take seconds to
minutes); here we guarantee every script at least parses, imports only
public API, and exposes a ``main()`` entry point.
"""

from __future__ import annotations

import ast
import py_compile
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_exist():
    names = {p.name for p in EXAMPLE_FILES}
    assert "quickstart.py" in names
    assert len(names) >= 3  # the deliverable floor; we ship six


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
def test_example_compiles(path, tmp_path):
    py_compile.compile(str(path), cfile=str(tmp_path / "out.pyc"), doraise=True)


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
def test_example_structure(path):
    tree = ast.parse(path.read_text())
    # a module docstring explaining the scenario
    assert ast.get_docstring(tree), f"{path.name} lacks a docstring"
    # a main() function and the __main__ guard
    func_names = {n.name for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)}
    assert "main" in func_names, f"{path.name} lacks main()"
    assert "__main__" in path.read_text(), f"{path.name} lacks entry guard"


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.name)
def test_example_imports_resolve(path):
    """Every `from repro... import X` in an example must resolve."""
    import importlib

    tree = ast.parse(path.read_text())
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module and (
            node.module == "repro" or node.module.startswith("repro.")
        ):
            module = importlib.import_module(node.module)
            for alias in node.names:
                assert hasattr(module, alias.name), (
                    f"{path.name}: {node.module}.{alias.name} missing"
                )
