"""Unit tests for the Table 1 corpus and Table 2 stand-ins."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    REAL_WORLD_SPECS,
    SYNTHETIC_SPECS,
    corpus_ids,
    generate_real_world_standin,
    generate_synthetic,
    real_world_ids,
)
from repro.errors import GeneratorError
from repro.generators.corpus import REDACTED_IDS


class TestCorpusStructure:
    def test_twenty_four_graphs(self):
        assert len(SYNTHETIC_SPECS) == 24
        assert corpus_ids(include_redacted=True) == [f"S{i}" for i in range(1, 25)]

    def test_r_groups(self):
        """S1-S8: r=5, S9-S16: r=3, S17-S24: r=1 (Table 1 layout)."""
        for i in range(1, 25):
            spec = SYNTHETIC_SPECS[f"S{i}"]
            expected_r = 5.0 if i <= 8 else 3.0 if i <= 16 else 1.0
            assert spec.r == expected_r, f"S{i}"

    def test_density_split(self):
        """Within each group of 8: first 4 sparse, last 4 dense."""
        for i in range(1, 25):
            spec = SYNTHETIC_SPECS[f"S{i}"]
            assert spec.dense == (((i - 1) % 8) >= 4), f"S{i}"

    def test_redacted_matches_paper(self):
        assert REDACTED_IDS == {"S1", "S3", "S17", "S18", "S19", "S20"}
        assert len(corpus_ids()) == 18

    def test_generation_deterministic(self):
        g1, t1 = generate_synthetic("S5", seed=3)
        g2, t2 = generate_synthetic("S5", seed=3)
        assert g1 == g2
        np.testing.assert_array_equal(t1, t2)

    def test_distinct_graphs_per_id(self):
        g1, _ = generate_synthetic("S5", seed=3)
        g2, _ = generate_synthetic("S6", seed=3)
        assert g1 != g2

    def test_dense_graphs_denser(self):
        sparse, _ = generate_synthetic("S2", seed=1)
        dense, _ = generate_synthetic("S6", seed=1)
        assert dense.num_edges / dense.num_vertices > 2 * (
            sparse.num_edges / sparse.num_vertices
        )

    def test_unknown_id_rejected(self):
        with pytest.raises(GeneratorError):
            generate_synthetic("S99")


class TestRealWorldStandins:
    def test_fourteen_graphs_in_paper_order(self):
        assert len(REAL_WORLD_SPECS) == 14
        assert real_world_ids()[0] == "rajat01"
        assert real_world_ids()[-1] == "flickr"

    def test_paper_scale_recorded(self):
        spec = REAL_WORLD_SPECS["web-BerkStan"]
        assert spec.paper_vertices == 685230
        assert spec.paper_edges == 7600595

    def test_density_preserved_capped(self):
        for name, spec in REAL_WORLD_SPECS.items():
            paper_density = spec.paper_edges / spec.paper_vertices
            assert spec.mean_degree == pytest.approx(min(paper_density, 20.0)), name

    def test_standin_density_close_to_spec(self):
        g = generate_real_world_standin("soc-Slashdot0902", seed=0)
        spec = REAL_WORLD_SPECS["soc-Slashdot0902"]
        assert g.num_edges / g.num_vertices == pytest.approx(
            spec.mean_degree, rel=0.2
        )

    def test_p2p_structureless(self):
        assert REAL_WORLD_SPECS["p2p-Gnutella31"].r == 1.0

    def test_mesh_near_regular(self):
        g = generate_real_world_standin("barth5", seed=0)
        # near-regular: degree spread should be modest
        cv = g.degree.std() / g.degree.mean()
        assert cv < 0.8

    def test_deterministic(self):
        a = generate_real_world_standin("wiki-Vote", seed=5)
        b = generate_real_world_standin("wiki-Vote", seed=5)
        assert a == b

    def test_unknown_name_rejected(self):
        with pytest.raises(GeneratorError):
            generate_real_world_standin("facebook")
