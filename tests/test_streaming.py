"""Streaming layer: edge batches, edge deltas, FitSession, StreamSession.

Covers ISSUE 9's acceptance surface:

* ``EdgeBatch`` validation / multiset normalization and the deterministic
  ``apply_edge_batch`` rule (earliest-occurrence removal, order-stable
  survivors, growth-only vertex counts).
* ``apply_edge_delta`` vs the full ``from_assignment`` recount —
  bit-identical on all three storage engines against adversarial batches
  (self-loops, duplicate edges, removals to degree 0, block emptying).
* ``ProposalCache`` epoch invalidation after an edge delta.
* ``FitSession``: ``cold_fit`` ≡ ``run_sbp``, warm-refit bracket floor,
  ``partition_result`` packaging.
* ``StreamSession``: warm/cold accounting, drift-triggered cold fits,
  mid-stream checkpoint/resume bit-identity, digest refusal, vertex
  growth, serialization roundtrip.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    Blockmodel,
    Graph,
    SBPConfig,
    normalized_mutual_information,
    run_sbp,
)
from repro.core.fit_session import FitSession
from repro.errors import CheckpointError, GraphValidationError, ReproError
from repro.graph.stream import EdgeBatch, apply_edge_batch
from repro.io.serialize import load_stream_result, save_stream_result
from repro.metrics.alignment import consecutive_stability
from repro.resilience import RunCheckpointer
from repro.sbm.entropy import normalized_description_length
from repro.sbm.incremental import ProposalCache, apply_edge_delta
from repro.streaming import (
    EdgeStream,
    StreamSession,
    available_drift_policies,
    available_stream_sources,
    drift_value,
    get_drift_policy,
    get_stream_source,
    register_drift_policy,
    synthetic_churn_stream,
)
from repro.streaming.drift import DriftPolicy
from repro.streaming.source import edgelist_dir_stream

STORAGES = ["dense", "sparse", "hybrid"]
_FAST = dict(max_sweeps=8)


# ---------------------------------------------------------------------------
# EdgeBatch
# ---------------------------------------------------------------------------
class TestEdgeBatch:
    def test_empty_default(self):
        batch = EdgeBatch()
        assert batch.is_empty
        assert batch.add.shape == (0, 2)
        assert batch.remove.shape == (0, 2)

    def test_list_coercion(self):
        batch = EdgeBatch(add=[[0, 1], [2, 3]], remove=[[1, 2]])
        assert batch.add.dtype == np.int64
        assert batch.add.shape == (2, 2)
        assert not batch.is_empty

    def test_bad_shape_rejected(self):
        with pytest.raises(GraphValidationError):
            EdgeBatch(add=[[0, 1, 2]])
        with pytest.raises(GraphValidationError):
            EdgeBatch(remove=[0, 1, 2])

    def test_negative_endpoint_rejected(self):
        with pytest.raises(GraphValidationError):
            EdgeBatch(add=[[-1, 2]])

    def test_nonpositive_num_vertices_rejected(self):
        with pytest.raises(GraphValidationError):
            EdgeBatch(num_vertices=0)

    def test_normalized_cancels_multiset_pairs(self):
        # Two adds + one remove of (0, 1) leave one net add; (4, 5)
        # survives on the remove side untouched.
        batch = EdgeBatch(
            add=[[0, 1], [0, 1], [2, 3]], remove=[[0, 1], [4, 5]]
        )
        norm = batch.normalized()
        assert norm.add.tolist() == [[0, 1], [2, 3]]
        assert norm.remove.tolist() == [[4, 5]]

    def test_normalized_noop_returns_self(self):
        batch = EdgeBatch(add=[[0, 1]], remove=[[2, 3]])
        assert batch.normalized() is batch

    def test_normalized_preserves_num_vertices(self):
        batch = EdgeBatch(add=[[0, 1]], remove=[[0, 1]], num_vertices=9)
        assert batch.normalized().num_vertices == 9


# ---------------------------------------------------------------------------
# apply_edge_batch
# ---------------------------------------------------------------------------
class TestApplyEdgeBatch:
    def test_removes_earliest_occurrence(self, tiny_graph):
        # tiny_graph holds (1, 0) twice, at edge positions 4 and 5.
        out = apply_edge_batch(tiny_graph, EdgeBatch(remove=[[1, 0]]))
        expected = np.delete(tiny_graph.edges, 4, axis=0)
        np.testing.assert_array_equal(out.edges, expected)
        assert out.num_edges == tiny_graph.num_edges - 1

    def test_survivors_keep_order_adds_appended(self, tiny_graph):
        batch = EdgeBatch(add=[[7, 0], [0, 7]], remove=[[2, 2]])
        out = apply_edge_batch(tiny_graph, batch)
        keep = [i for i, e in enumerate(tiny_graph.edges.tolist())
                if e != [2, 2]]
        expected = np.concatenate(
            [tiny_graph.edges[keep], np.array([[7, 0], [0, 7]])], axis=0
        )
        np.testing.assert_array_equal(out.edges, expected)

    def test_multiset_removal_shortfall_raises(self, tiny_graph):
        # Three copies of (1, 0) requested, only two present.
        with pytest.raises(GraphValidationError, match=r"cannot remove"):
            apply_edge_batch(
                tiny_graph, EdgeBatch(remove=[[1, 0], [1, 0], [1, 0]])
            )

    def test_missing_edge_removal_raises(self, tiny_graph):
        with pytest.raises(GraphValidationError, match=r"cannot remove"):
            apply_edge_batch(tiny_graph, EdgeBatch(remove=[[0, 7]]))

    def test_add_endpoint_out_of_range_raises(self, tiny_graph):
        with pytest.raises(GraphValidationError):
            apply_edge_batch(tiny_graph, EdgeBatch(add=[[0, 8]]))

    def test_shrinking_num_vertices_raises(self, tiny_graph):
        with pytest.raises(GraphValidationError, match="only grow"):
            apply_edge_batch(tiny_graph, EdgeBatch(num_vertices=4))

    def test_vertex_growth(self, tiny_graph):
        out = apply_edge_batch(
            tiny_graph, EdgeBatch(add=[[8, 9], [9, 0]], num_vertices=10)
        )
        assert out.num_vertices == 10
        assert out.num_edges == tiny_graph.num_edges + 2

    def test_original_graph_untouched(self, tiny_graph):
        before = tiny_graph.edges.copy()
        apply_edge_batch(tiny_graph, EdgeBatch(remove=[[1, 0]], add=[[0, 5]]))
        np.testing.assert_array_equal(tiny_graph.edges, before)

    def test_add_and_remove_same_edge_is_noop(self, tiny_graph):
        out = apply_edge_batch(
            tiny_graph, EdgeBatch(add=[[0, 7]], remove=[[0, 7]])
        )
        np.testing.assert_array_equal(out.edges, tiny_graph.edges)


# ---------------------------------------------------------------------------
# apply_edge_delta vs rebuild oracle — bit-identity on all three engines
# ---------------------------------------------------------------------------
def _adversarial_batches(graph: Graph) -> dict[str, EdgeBatch]:
    """Named edge batches stressing each hazard class on ``tiny_graph``."""
    return {
        # Self-loop adds (incl. a duplicate pair) and a loop removal.
        "self_loops": EdgeBatch(
            add=[[0, 0], [0, 0], [5, 5]], remove=[[2, 2]]
        ),
        # Duplicate parallel adds and a duplicate-edge removal.
        "duplicates": EdgeBatch(
            add=[[5, 0], [5, 1], [5, 1]],
            remove=[[1, 0], [1, 0]],
        ),
        # Strip vertex 7 bare: removals drive its degree to zero.
        "degree_zero": EdgeBatch(remove=[[6, 7], [7, 4]]),
        # Remove every edge incident to vertex 3 — under the 3-block
        # assignment {3} is its own block, so its block-degree empties.
        "block_empty": EdgeBatch(remove=[[2, 3], [3, 0], [3, 4]]),
        # Everything at once, plus fresh adds.
        "mixed": EdgeBatch(
            add=[[0, 0], [7, 1], [7, 1], [4, 4]],
            remove=[[1, 0], [2, 2], [6, 7]],
        ),
    }


_THREE_BLOCKS = np.array([0, 0, 0, 2, 1, 1, 1, 1], dtype=np.int64)


_BATCH_CASES = [
    "self_loops", "duplicates", "degree_zero", "block_empty", "mixed",
]


@pytest.mark.parametrize("storage", STORAGES)
@pytest.mark.parametrize("case", _BATCH_CASES)
class TestEdgeDeltaBitIdentity:
    def test_delta_equals_rebuild(self, tiny_graph, storage, case):
        batch = _adversarial_batches(tiny_graph)[case]
        bm = Blockmodel.from_assignment(
            tiny_graph, _THREE_BLOCKS, 3, storage=storage
        )
        apply_edge_delta(bm, batch)

        new_graph = apply_edge_batch(tiny_graph, batch)
        oracle = Blockmodel.from_assignment(
            new_graph, _THREE_BLOCKS, 3, storage=storage
        )
        np.testing.assert_array_equal(
            bm.state.to_dense(), oracle.state.to_dense()
        )
        np.testing.assert_array_equal(bm.d_out, oracle.d_out)
        np.testing.assert_array_equal(bm.d_in, oracle.d_in)
        np.testing.assert_array_equal(bm.d, oracle.d)
        bm.check_consistency(new_graph)
        assert bm.mdl(new_graph) == oracle.mdl(new_graph)


@pytest.mark.parametrize("storage", STORAGES)
class TestEdgeDelta:
    def test_randomized_batch_on_planted_graph(self, planted_graph, storage):
        graph, truth = planted_graph
        rng = np.random.default_rng(17)
        remove = graph.edges[rng.choice(graph.num_edges, 15, replace=False)]
        add = rng.integers(0, graph.num_vertices, size=(15, 2))
        add[0] = [0, 0]          # self-loop
        add[1] = add[2]          # duplicate pair
        batch = EdgeBatch(add=add, remove=remove)

        num_blocks = int(truth.max()) + 1
        bm = Blockmodel.from_assignment(graph, truth, num_blocks, storage=storage)
        epoch_before = bm.delta_epoch
        apply_edge_delta(bm, batch)
        assert bm.delta_epoch == epoch_before + 1

        new_graph = apply_edge_batch(graph, batch)
        oracle = Blockmodel.from_assignment(
            new_graph, truth, num_blocks, storage=storage
        )
        np.testing.assert_array_equal(
            bm.state.to_dense(), oracle.state.to_dense()
        )
        np.testing.assert_array_equal(bm.d, oracle.d)
        bm.check_consistency(new_graph)

    def test_endpoint_beyond_assignment_raises(self, tiny_graph, storage):
        bm = Blockmodel.from_assignment(
            tiny_graph, _THREE_BLOCKS, 3, storage=storage
        )
        with pytest.raises(ValueError, match="extend the assignment"):
            apply_edge_delta(bm, EdgeBatch(add=[[0, 12]]))

    def test_blockmodel_method_delegates(self, tiny_graph, storage):
        bm = Blockmodel.from_assignment(
            tiny_graph, _THREE_BLOCKS, 3, storage=storage
        )
        bm.apply_edge_delta(EdgeBatch(add=[[0, 4]], remove=[[3, 4]]))
        new_graph = apply_edge_batch(
            tiny_graph, EdgeBatch(add=[[0, 4]], remove=[[3, 4]])
        )
        bm.check_consistency(new_graph)

    def test_proposal_cache_invalidated_by_delta(self, tiny_graph, storage):
        """A cached CDF must not survive an edge delta stale."""
        bm = Blockmodel.from_assignment(
            tiny_graph, _THREE_BLOCKS, 3, storage=storage
        )
        cache = ProposalCache(bm)
        before = {
            u: cache.row_cdf(u).cdf.copy() for u in range(bm.num_blocks)
        }
        # Shift weight between blocks 0 and 1 without moving any vertex.
        batch = EdgeBatch(add=[[0, 4], [4, 0], [0, 4]], remove=[[3, 4]])
        apply_edge_delta(bm, batch)
        changed = False
        for u in range(bm.num_blocks):
            got = cache.row_cdf(u)
            fresh = bm.state.sym_row_cdf(u)
            np.testing.assert_array_equal(got.cdf, fresh.cdf)
            if got.cols is None or fresh.cols is None:
                assert got.cols is None and fresh.cols is None
            else:
                np.testing.assert_array_equal(got.cols, fresh.cols)
            if (
                got.cdf.shape != before[u].shape
                or not np.array_equal(got.cdf, before[u])
            ):
                changed = True
        assert changed, "batch was supposed to dirty at least one row"

    def test_proposal_cache_invalidated_by_rebuild(self, tiny_graph, storage):
        bm = Blockmodel.from_assignment(
            tiny_graph, _THREE_BLOCKS, 3, storage=storage
        )
        cache = ProposalCache(bm)
        for u in range(bm.num_blocks):
            cache.row_cdf(u)
        # Rebuild under a relabelled assignment (block ids stay 0..2).
        bm.rebuild(tiny_graph, np.roll(_THREE_BLOCKS, 1))
        for u in range(bm.num_blocks):
            fresh = bm.state.sym_row_cdf(u)
            np.testing.assert_array_equal(cache.row_cdf(u).cdf, fresh.cdf)


# ---------------------------------------------------------------------------
# FitSession
# ---------------------------------------------------------------------------
class TestFitSession:
    def test_cold_fit_matches_run_sbp(self, planted_graph):
        graph, _ = planted_graph
        config = SBPConfig(seed=11, **_FAST)
        via_session = FitSession(graph, config).cold_fit()
        via_driver = run_sbp(graph, config)
        np.testing.assert_array_equal(
            via_session.assignment, via_driver.assignment
        )
        assert via_session.mdl == via_driver.mdl
        assert via_session.num_blocks == via_driver.num_blocks
        assert via_session.mcmc_sweeps == via_driver.mcmc_sweeps
        assert via_session.search_history == via_driver.search_history

    def test_narrowed_min_blocks(self):
        assert FitSession.narrowed_min_blocks(10, 0.5) == 5
        assert FitSession.narrowed_min_blocks(1, 0.5) == 1
        assert FitSession.narrowed_min_blocks(4, 0.5) == 2
        assert FitSession.narrowed_min_blocks(2, 0.1) == 1

    def test_partition_result_packaging(self, tiny_graph):
        session = FitSession(tiny_graph, SBPConfig(seed=3))
        bm = Blockmodel.from_assignment(
            tiny_graph, _THREE_BLOCKS, 3,
            storage=session.config.block_storage,
        )
        result = session.partition_result(bm)
        assert result.interrupted
        assert not result.converged
        assert result.mcmc_sweeps == 0
        assert result.num_blocks == 3
        assert result.mdl == bm.mdl(tiny_graph)
        assert result.normalized_mdl == normalized_description_length(
            result.mdl, tiny_graph.num_edges, tiny_graph.num_vertices
        )
        np.testing.assert_array_equal(result.assignment, _THREE_BLOCKS)

    def test_warm_refit_quality_floor(self):
        """A warm refit on a churned snapshot must not degrade quality.

        Floored both against the carried partition (warming never throws
        away the structure it was handed) and against an independent
        cold fit of the churned snapshot.
        """
        stream = synthetic_churn_stream(
            num_vertices=150, num_communities=4, num_snapshots=2,
            churn=0.05, mean_degree=12.0, seed=3,
        )
        config = SBPConfig(seed=13, **_FAST)
        cold0 = FitSession(stream.graph, config).cold_fit()

        g1 = apply_edge_batch(stream.graph, stream.batches[0])
        carried = Blockmodel.from_assignment(
            stream.graph, cold0.assignment, cold0.num_blocks,
            storage=cold0.block_storage,
        )
        carried.apply_edge_delta(stream.batches[0].normalized())
        warm = FitSession(g1, config).warm_refit(carried)
        cold1 = FitSession(g1, config).cold_fit()

        truth = stream.truth
        nmi_warm = normalized_mutual_information(truth, warm.assignment)
        nmi_prior = normalized_mutual_information(truth, cold0.assignment)
        nmi_cold = normalized_mutual_information(truth, cold1.assignment)
        assert nmi_warm >= nmi_prior - 0.05
        assert nmi_warm >= nmi_cold - 0.05
        # The whole point of warming: far fewer sweeps than from scratch.
        assert warm.mcmc_sweeps < cold1.mcmc_sweeps


# ---------------------------------------------------------------------------
# Drift policies
# ---------------------------------------------------------------------------
class TestDrift:
    def test_drift_value(self):
        assert drift_value(0.0, 0.0) == 0.0
        assert drift_value(0.0, 0.5) == float("inf")
        assert drift_value(2.0, 2.5) == pytest.approx(0.25)
        assert drift_value(2.0, 1.5) == pytest.approx(-0.25)

    def test_builtin_policies(self):
        names = available_drift_policies()
        assert {"mdl-ratio", "always-warm", "always-cold"} <= set(names)
        ratio = get_drift_policy("mdl-ratio")
        assert ratio.should_cold_fit(0.10, 0.05)
        assert not ratio.should_cold_fit(0.01, 0.05)
        assert not get_drift_policy("always-warm").should_cold_fit(9.9, 0.0)
        assert get_drift_policy("always-cold").should_cold_fit(-1.0, 9.9)

    def test_unknown_policy_raises(self):
        with pytest.raises(ReproError, match="unknown drift policy"):
            get_drift_policy("nope")

    def test_duplicate_registration_raises(self):
        with pytest.raises(ReproError, match="already registered"):
            register_drift_policy(DriftPolicy(
                name="mdl-ratio", summary="dup",
                should_cold_fit=lambda d, t: False,
            ))


# ---------------------------------------------------------------------------
# Stream sources
# ---------------------------------------------------------------------------
class TestStreamSources:
    def test_registry(self):
        names = available_stream_sources()
        assert {"synthetic-churn", "edgelist-dir"} <= set(names)
        assert get_stream_source("synthetic-churn").build is synthetic_churn_stream
        with pytest.raises(ReproError, match="unknown stream source"):
            get_stream_source("nope")

    def test_synthetic_churn_deterministic(self):
        kwargs = dict(
            num_vertices=60, num_communities=3, num_snapshots=4,
            churn=0.1, mean_degree=8.0, seed=9,
        )
        a = synthetic_churn_stream(**kwargs)
        b = synthetic_churn_stream(**kwargs)
        np.testing.assert_array_equal(a.graph.edges, b.graph.edges)
        np.testing.assert_array_equal(a.truth, b.truth)
        assert len(a.batches) == len(b.batches) == 3
        for x, y in zip(a.batches, b.batches):
            np.testing.assert_array_equal(x.add, y.add)
            np.testing.assert_array_equal(x.remove, y.remove)

    def test_synthetic_churn_keeps_edge_count(self):
        stream = synthetic_churn_stream(
            num_vertices=60, num_communities=3, num_snapshots=3,
            churn=0.1, mean_degree=8.0, seed=9,
        )
        graph = stream.graph
        for batch in stream.batches:
            assert batch.add.shape[0] == batch.remove.shape[0]
            graph = apply_edge_batch(graph, batch)
            assert graph.num_edges == stream.graph.num_edges

    def test_synthetic_churn_validation(self):
        with pytest.raises(ReproError, match="churn"):
            synthetic_churn_stream(churn=0.0)
        with pytest.raises(ReproError, match="num_snapshots"):
            synthetic_churn_stream(num_snapshots=0)

    def test_edgelist_dir_stream(self, tmp_path):
        (tmp_path / "00.txt").write_text("0 1\n1 2\n2 0\n")
        (tmp_path / "01.txt").write_text("0 1\n2 0\n3 0\n")
        stream = edgelist_dir_stream(tmp_path)
        assert stream.num_snapshots == 2
        assert stream.graph.num_edges == 3
        batch = stream.batches[0]
        assert batch.remove.tolist() == [[1, 2]]
        assert batch.add.tolist() == [[3, 0]]
        assert batch.num_vertices == 4
        final = apply_edge_batch(stream.graph, batch)
        assert final.num_vertices == 4
        assert final.num_edges == 3

    def test_edgelist_dir_empty_raises(self, tmp_path):
        with pytest.raises(ReproError, match="no snapshot files"):
            edgelist_dir_stream(tmp_path)


# ---------------------------------------------------------------------------
# consecutive_stability
# ---------------------------------------------------------------------------
class TestConsecutiveStability:
    def test_identical_partitions(self):
        a = np.array([0, 0, 1, 1, 2], dtype=np.int64)
        stab = consecutive_stability(a, a)
        assert stab.nmi == pytest.approx(1.0)
        assert stab.accuracy == pytest.approx(1.0)
        assert stab.num_compared == 5

    def test_label_permutation_is_stable(self):
        a = np.array([0, 0, 1, 1], dtype=np.int64)
        b = np.array([1, 1, 0, 0], dtype=np.int64)
        stab = consecutive_stability(a, b)
        assert stab.nmi == pytest.approx(1.0)
        assert stab.accuracy == pytest.approx(1.0)

    def test_newborn_vertices_excluded(self):
        prev = np.array([0, 0, 1, 1], dtype=np.int64)
        curr = np.array([0, 0, 1, 1, 2, 2], dtype=np.int64)
        stab = consecutive_stability(prev, curr)
        assert stab.num_compared == 4
        assert stab.accuracy == pytest.approx(1.0)

    def test_empty(self):
        empty = np.empty(0, dtype=np.int64)
        stab = consecutive_stability(empty, empty)
        assert (stab.nmi, stab.accuracy, stab.num_compared) == (1.0, 1.0, 0)


# ---------------------------------------------------------------------------
# StreamSession
# ---------------------------------------------------------------------------
def _small_stream(num_snapshots: int = 3) -> EdgeStream:
    return synthetic_churn_stream(
        num_vertices=120, num_communities=4, num_snapshots=num_snapshots,
        churn=0.04, mean_degree=12.0, seed=5,
    )


_STREAM_CONFIG = SBPConfig(seed=13, **_FAST)


class TestStreamSession:
    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError, match="drift_threshold"):
            StreamSession(_STREAM_CONFIG, drift_threshold=-0.1)

    def test_grown_assignment_joins_largest_block(self):
        grown = StreamSession._grown_assignment(
            np.array([0, 1, 1, 2], dtype=np.int64), 6, 3
        )
        assert grown.tolist() == [0, 1, 1, 2, 1, 1]
        # Tie between blocks 0 and 1 -> lowest id wins.
        tied = StreamSession._grown_assignment(
            np.array([0, 0, 1, 1], dtype=np.int64), 5, 2
        )
        assert tied.tolist() == [0, 0, 1, 1, 0]
        same = np.array([0, 1], dtype=np.int64)
        assert StreamSession._grown_assignment(same, 2, 2) is same

    def test_end_to_end_churn_stream(self):
        stream = _small_stream()
        result = StreamSession(_STREAM_CONFIG).run(stream)
        assert len(result.snapshots) == 3
        assert result.warm_refits + result.cold_fits == 3
        assert not result.interrupted

        first = result.snapshots[0].result
        assert first.refit_mode == "cold"
        assert first.nmi_prev == -1.0
        assert first.drift == 0.0
        for snap in result.snapshots[1:]:
            assert snap.result.refit_mode in ("warm", "cold")
            assert 0.0 <= snap.result.nmi_prev <= 1.0
            assert np.isfinite(snap.result.drift)
        assert result.final is result.snapshots[-1].result

        rows = result.summary_rows()
        assert len(rows) == 3
        assert {
            "snapshot", "mode", "drift", "nmi_prev", "blocks",
            "MDL_norm", "E", "+edges", "-edges", "seconds", "sweeps",
        } <= set(rows[0])

    def test_always_cold_policy(self):
        stream = _small_stream(num_snapshots=2)
        result = StreamSession(
            _STREAM_CONFIG, drift_policy="always-cold"
        ).run(stream)
        assert result.cold_fits == 2
        assert result.warm_refits == 0
        assert all(s.result.refit_mode == "cold" for s in result.snapshots)

    def test_low_churn_refits_warm(self):
        result = StreamSession(
            _STREAM_CONFIG, drift_policy="always-warm"
        ).run(_small_stream(num_snapshots=2))
        assert result.cold_fits == 1  # snapshot 0 is always cold
        assert result.warm_refits == 1
        assert result.snapshots[1].result.refit_mode == "warm"

    def test_scramble_batch_triggers_cold_fit(self):
        """Destroying the structure spikes drift past a zero threshold."""
        stream = _small_stream(num_snapshots=1)
        graph = stream.graph
        rng = np.random.default_rng(99)
        k = graph.num_edges // 2
        remove = graph.edges[rng.choice(graph.num_edges, k, replace=False)]
        add = rng.integers(0, graph.num_vertices, size=(k, 2))
        scrambled = EdgeStream(
            graph=graph,
            batches=[EdgeBatch(add=add, remove=remove)],
            truth=stream.truth,
        )
        result = StreamSession(
            _STREAM_CONFIG, drift_policy="mdl-ratio", drift_threshold=0.0
        ).run(scrambled)
        second = result.snapshots[1].result
        assert second.drift > 0.0
        assert second.refit_mode == "cold"

    def test_vertex_growth_snapshot(self):
        stream = _small_stream(num_snapshots=1)
        grow_batch = EdgeBatch(
            add=[[120, 0], [0, 121], [120, 121]], num_vertices=122
        )
        grown = EdgeStream(graph=stream.graph, batches=[grow_batch])
        result = StreamSession(_STREAM_CONFIG).run(grown)
        assert len(result.snapshots) == 2
        final = result.final
        assert final.num_vertices == 122
        assert final.assignment.shape == (122,)

    def test_checkpoint_resume_bit_identical(self, tmp_path):
        stream = _small_stream()
        reference = StreamSession(_STREAM_CONFIG).run(stream)

        # Pass A: a zero time budget interrupts snapshot 0 immediately;
        # nothing completed is persisted, the stream ends interrupted.
        ck = RunCheckpointer(tmp_path / "stream")
        cut = StreamSession(
            _STREAM_CONFIG.replace(time_budget=0.0), checkpointer=ck
        ).run(stream)
        assert cut.interrupted
        assert len(cut.snapshots) == 1

        # Pass B: the full budget resumes through the same checkpointer
        # (time_budget is digest-neutral) and must equal the
        # checkpoint-free reference bit for bit.
        resumed = StreamSession(_STREAM_CONFIG, checkpointer=ck).run(stream)
        assert len(resumed.snapshots) == len(reference.snapshots)
        for ref, got in zip(reference.snapshots, resumed.snapshots):
            np.testing.assert_array_equal(
                ref.result.assignment, got.result.assignment
            )
            assert ref.result.mdl == got.result.mdl
            assert ref.result.refit_mode == got.result.refit_mode
            assert ref.result.drift == got.result.drift
            assert ref.result.nmi_prev == got.result.nmi_prev

        # Pass C: a rerun restores every snapshot from disk (seconds=0).
        restored = StreamSession(_STREAM_CONFIG, checkpointer=ck).run(stream)
        assert all(s.seconds == 0.0 for s in restored.snapshots)
        for ref, got in zip(reference.snapshots, restored.snapshots):
            np.testing.assert_array_equal(
                ref.result.assignment, got.result.assignment
            )
            assert ref.result.nmi_prev == got.result.nmi_prev

    def test_checkpoint_refuses_changed_stream_params(self, tmp_path):
        stream = _small_stream(num_snapshots=1)
        ck = RunCheckpointer(tmp_path / "stream")
        StreamSession(_STREAM_CONFIG, checkpointer=ck).run(stream)
        with pytest.raises(CheckpointError, match="incompatible"):
            StreamSession(
                _STREAM_CONFIG, drift_threshold=0.25, checkpointer=ck
            ).run(stream)

    def test_stream_result_roundtrip(self, tmp_path):
        result = StreamSession(_STREAM_CONFIG).run(
            _small_stream(num_snapshots=2)
        )
        path = tmp_path / "stream.json"
        save_stream_result(result, path)
        loaded = load_stream_result(path)
        assert loaded.warm_refits == result.warm_refits
        assert loaded.cold_fits == result.cold_fits
        assert loaded.drift_policy == result.drift_policy
        assert loaded.drift_threshold == result.drift_threshold
        assert len(loaded.snapshots) == len(result.snapshots)
        for ref, got in zip(result.snapshots, loaded.snapshots):
            assert got.index == ref.index
            assert got.edges_added == ref.edges_added
            assert got.edges_removed == ref.edges_removed
            np.testing.assert_array_equal(
                got.result.assignment, ref.result.assignment
            )
            assert got.result.refit_mode == ref.result.refit_mode
            assert got.result.drift == ref.result.drift
            assert got.result.nmi_prev == ref.result.nmi_prev
