"""Unit/integration tests for the simulated distributed substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Blockmodel
from repro.distributed.comm import CommSpec, SimCommWorld
from repro.distributed.dsbp import distributed_async_sweep, model_distributed_scaling
from repro.distributed.graphdist import DistributedGraph
from repro.distributed.partition import edge_cut, partition_stats, partition_vertices
from repro.errors import BackendError
from repro.mcmc.async_gibbs import async_gibbs_sweep
from repro.parallel.vectorized import VectorizedBackend
from repro.utils.rng import SweepRandomness


class TestCommWorld:
    def test_send_recv_roundtrip(self):
        world = SimCommWorld(3)
        payload = np.arange(10)
        world.send(payload, source=0, dest=2)
        out = world.recv(source=0, dest=2)
        np.testing.assert_array_equal(out, payload)
        assert world.ledger.point_to_point_messages == 1
        assert world.ledger.point_to_point_bytes == payload.nbytes

    def test_recv_without_send(self):
        world = SimCommWorld(2)
        with pytest.raises(BackendError):
            world.recv(source=0, dest=1)

    def test_send_to_self_rejected(self):
        world = SimCommWorld(2)
        with pytest.raises(BackendError):
            world.send(b"x", source=1, dest=1)

    def test_receiver_waits_for_arrival(self):
        world = SimCommWorld(2, CommSpec(latency_seconds=1.0,
                                         bandwidth_bytes_per_second=1e9))
        world.send(b"x", source=0, dest=1)
        world.recv(source=0, dest=1)
        assert world.clock(1) >= 1.0

    def test_allgather_synchronizes_clocks(self):
        world = SimCommWorld(4)
        world.advance_compute(2, 5.0)
        world.allgather([np.zeros(1)] * 4)
        for rank in range(4):
            assert world.clock(rank) >= 5.0
        assert world.clock(0) == world.clock(3)

    def test_allreduce_sum(self):
        world = SimCommWorld(3)
        assert world.allreduce_sum([1.0, 2.0, 3.5]) == 6.5

    def test_allgather_wrong_arity(self):
        world = SimCommWorld(2)
        with pytest.raises(BackendError):
            world.allgather([1])

    def test_collective_cost_grows_with_ranks(self):
        spec = CommSpec(latency_seconds=1e-5)
        small = SimCommWorld(2, spec)
        large = SimCommWorld(64, spec)
        small.barrier()
        large.barrier()
        assert large.makespan > small.makespan

    def test_single_rank_collectives_free(self):
        world = SimCommWorld(1)
        world.barrier()
        assert world.makespan == 0.0

    def test_bad_rank_count(self):
        with pytest.raises(BackendError):
            SimCommWorld(0)


class TestPartitioning:
    @pytest.mark.parametrize("strategy", ["contiguous", "hash", "degree_balanced"])
    def test_partition_covers_all(self, medium_graph, strategy):
        graph, _ = medium_graph
        owner = partition_vertices(graph, 4, strategy)
        assert owner.shape == (graph.num_vertices,)
        assert set(np.unique(owner)) <= set(range(4))

    def test_contiguous_is_ranges(self, medium_graph):
        graph, _ = medium_graph
        owner = partition_vertices(graph, 3, "contiguous")
        assert (np.diff(owner) >= 0).all()

    def test_degree_balanced_beats_contiguous_on_balance(self, medium_graph):
        graph, _ = medium_graph
        balanced = partition_stats(
            graph, partition_vertices(graph, 8, "degree_balanced"), "degree_balanced"
        )
        contiguous = partition_stats(
            graph, partition_vertices(graph, 8, "contiguous"), "contiguous"
        )
        assert balanced.degree_imbalance <= contiguous.degree_imbalance + 1e-9

    def test_edge_cut_single_rank_zero(self, medium_graph):
        graph, _ = medium_graph
        owner = partition_vertices(graph, 1, "hash")
        assert edge_cut(graph, owner) == 0

    def test_unknown_strategy(self, medium_graph):
        graph, _ = medium_graph
        with pytest.raises(ValueError):
            partition_vertices(graph, 2, "metis")


class TestDistributedGraph:
    def test_cover_invariant(self, medium_graph):
        graph, _ = medium_graph
        for ranks in (1, 2, 5):
            owner = partition_vertices(graph, ranks, "degree_balanced")
            dgraph = DistributedGraph(graph, owner)
            dgraph.check_cover()

    def test_ghosts_are_cut_endpoints(self, medium_graph):
        graph, _ = medium_graph
        owner = partition_vertices(graph, 3, "hash")
        dgraph = DistributedGraph(graph, owner)
        for shard in dgraph.shards:
            assert np.intersect1d(shard.owned, shard.ghosts).size == 0
            # every ghost is adjacent to an owned vertex
            endpoints = np.unique(shard.local_edges)
            assert np.isin(shard.ghosts, endpoints).all()

    def test_single_rank_no_ghosts(self, medium_graph):
        graph, _ = medium_graph
        dgraph = DistributedGraph(graph, np.zeros(graph.num_vertices, dtype=np.int64))
        assert dgraph.total_ghosts == 0
        assert dgraph.replication_factor == 1.0

    def test_hash_partition_worst_replication(self, medium_graph):
        """Hash scattering should inflate ghosts vs contiguous ranges."""
        graph, _ = medium_graph
        hash_dg = DistributedGraph(graph, partition_vertices(graph, 4, "hash"))
        cont_dg = DistributedGraph(graph, partition_vertices(graph, 4, "contiguous"))
        assert hash_dg.total_ghosts >= cont_dg.total_ghosts * 0.5  # sanity floor
        assert hash_dg.replication_factor > 1.0

    def test_bad_owner_shape(self, medium_graph):
        graph, _ = medium_graph
        with pytest.raises(ValueError):
            DistributedGraph(graph, np.zeros(3, dtype=np.int64))


class TestDistributedSweep:
    def _state(self, medium_graph):
        graph, _ = medium_graph
        rng = np.random.default_rng(13)
        assignment = rng.integers(0, 7, graph.num_vertices)
        return graph, assignment

    @pytest.mark.parametrize("ranks", [1, 2, 4, 7])
    @pytest.mark.parametrize("strategy", ["contiguous", "degree_balanced"])
    def test_identical_to_single_node(self, medium_graph, ranks, strategy):
        """The distribution invariant: results never depend on ranks."""
        graph, assignment = self._state(medium_graph)
        rand = SweepRandomness.draw(3, 5, 0, graph.num_vertices)

        reference = Blockmodel.from_assignment(graph, assignment, 7)
        async_gibbs_sweep(
            reference, graph, np.arange(graph.num_vertices, dtype=np.int64),
            rand, 3.0, VectorizedBackend(),
        )

        bm = Blockmodel.from_assignment(graph, assignment, 7)
        owner = partition_vertices(graph, ranks, strategy)
        dgraph = DistributedGraph(graph, owner)
        world = SimCommWorld(ranks)
        distributed_async_sweep(bm, dgraph, world, rand, 3.0, VectorizedBackend())

        np.testing.assert_array_equal(bm.assignment, reference.assignment)
        np.testing.assert_array_equal(bm.B, reference.B)

    def test_report_fields(self, medium_graph):
        graph, assignment = self._state(medium_graph)
        bm = Blockmodel.from_assignment(graph, assignment, 7)
        owner = partition_vertices(graph, 4, "degree_balanced")
        dgraph = DistributedGraph(graph, owner)
        world = SimCommWorld(4)
        rand = SweepRandomness.draw(5, 5, 0, graph.num_vertices)
        report = distributed_async_sweep(
            bm, dgraph, world, rand, 3.0, VectorizedBackend(),
            seconds_per_unit=1e-6, rebuild_seconds=1e-3,
        )
        assert report.num_ranks == 4
        assert report.makespan_seconds > 0
        assert report.communication_bytes > 0
        bm.check_consistency(graph)

    def test_incremental_updater_barrier_identical(self, medium_graph):
        """The shared-memory barrier engine drops in for the replica."""
        from repro.parallel.backend import get_update_strategy
        from repro.utils.timer import StopwatchPool

        graph, assignment = self._state(medium_graph)
        rand = SweepRandomness.draw(7, 5, 0, graph.num_vertices)
        owner = partition_vertices(graph, 3, "degree_balanced")

        legacy = Blockmodel.from_assignment(graph, assignment, 7)
        distributed_async_sweep(
            legacy, DistributedGraph(graph, owner), SimCommWorld(3),
            rand, 3.0, VectorizedBackend(),
        )

        bm = Blockmodel.from_assignment(graph, assignment, 7)
        updater = get_update_strategy("incremental", timers=StopwatchPool())
        distributed_async_sweep(
            bm, DistributedGraph(graph, owner), SimCommWorld(3),
            rand, 3.0, VectorizedBackend(), updater=updater,
        )
        np.testing.assert_array_equal(bm.assignment, legacy.assignment)
        np.testing.assert_array_equal(bm.B, legacy.B)

    def test_report_carries_sweep_stats(self, medium_graph):
        graph, assignment = self._state(medium_graph)
        bm = Blockmodel.from_assignment(graph, assignment, 7)
        owner = partition_vertices(graph, 4, "degree_balanced")
        rand = SweepRandomness.draw(9, 5, 0, graph.num_vertices)
        report = distributed_async_sweep(
            bm, DistributedGraph(graph, owner), SimCommWorld(4),
            rand, 3.0, VectorizedBackend(), record_work=True,
        )
        stats = report.stats
        assert stats is not None
        assert stats.proposals == graph.num_vertices
        assert stats.accepted == report.accepted_moves
        assert stats.barrier_moved == report.accepted_moves
        assert stats.work_per_vertex is not None
        assert stats.work_per_vertex.shape == (graph.num_vertices,)
        assert stats.work_per_vertex.sum() == stats.parallel_work

        # without record_work the O(V) vector is stripped via without_work
        bm2 = Blockmodel.from_assignment(graph, assignment, 7)
        report2 = distributed_async_sweep(
            bm2, DistributedGraph(graph, owner), SimCommWorld(4),
            rand, 3.0, VectorizedBackend(),
        )
        assert report2.stats is not None
        assert report2.stats.work_per_vertex is None
        assert report2.stats.parallel_work == stats.parallel_work

    def test_rank_mismatch_rejected(self, medium_graph):
        graph, assignment = self._state(medium_graph)
        bm = Blockmodel.from_assignment(graph, assignment, 7)
        dgraph = DistributedGraph(graph, partition_vertices(graph, 2, "hash"))
        world = SimCommWorld(3)
        rand = SweepRandomness.draw(5, 5, 0, graph.num_vertices)
        with pytest.raises(ValueError):
            distributed_async_sweep(bm, dgraph, world, rand, 3.0, VectorizedBackend())


class TestScalingModel:
    def test_rows_and_invariance(self, medium_graph):
        graph, _ = medium_graph
        rng = np.random.default_rng(17)
        assignment = rng.integers(0, 6, graph.num_vertices)
        rows = model_distributed_scaling(
            graph, assignment, rank_counts=[1, 2, 4], sweeps=2
        )
        assert [r["ranks"] for r in rows] == [1, 2, 4]
        assert all(r["result_matches_1rank"] for r in rows)
        # compute shrinks with ranks: modeled makespan improves
        assert rows[-1]["makespan_s"] < rows[0]["makespan_s"]
        # the allgather payload (moved vertices) is rank-count invariant;
        # only its *time* cost varies (zero at 1 rank).
        assert rows[0]["comm_bytes"] == rows[1]["comm_bytes"] == rows[2]["comm_bytes"]
        # edge cut grows as the graph is split finer
        assert rows[0]["edge_cut"] == 0.0
        assert rows[1]["edge_cut"] < rows[2]["edge_cut"]
