"""Property tests: sparse delta-MDL kernels vs the full-recompute oracle."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Blockmodel, Graph
from repro.sbm.delta import (
    hastings_correction,
    merge_delta,
    vertex_move_context,
    vertex_move_delta,
)
from repro.sbm.entropy import dcsbm_log_likelihood


def _random_state(seed: int, n: int = 24, m: int = 70, blocks: int = 5):
    rng = np.random.default_rng(seed)
    edges = rng.integers(0, n, (m, 2)).astype(np.int64)
    graph = Graph(n, edges)
    assignment = rng.integers(0, blocks, n).astype(np.int64)
    return graph, Blockmodel.from_assignment(graph, assignment, blocks), rng


class TestVertexMoveDelta:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_matches_full_recompute(self, seed):
        graph, bm, rng = _random_state(seed)
        v = int(rng.integers(graph.num_vertices))
        s = int(rng.integers(bm.num_blocks))
        ctx = vertex_move_context(bm, graph, v)
        if s == ctx.r:
            assert vertex_move_delta(bm, ctx, s) == 0.0
            return
        delta = vertex_move_delta(bm, ctx, s)
        before = dcsbm_log_likelihood(bm.B, bm.d_out, bm.d_in)
        bm.apply_move(v, s, ctx.t_out, ctx.c_out, ctx.t_in, ctx.c_in,
                      ctx.loops, ctx.deg_out, ctx.deg_in)
        after = dcsbm_log_likelihood(bm.B, bm.d_out, bm.d_in)
        assert delta == pytest.approx(-(after - before), abs=1e-9)

    def test_self_loop_heavy_vertex(self):
        edges = np.array([[0, 0], [0, 0], [0, 1], [1, 2], [2, 0]], dtype=np.int64)
        graph = Graph(3, edges)
        bm = Blockmodel.from_assignment(graph, np.array([0, 1, 1]), 2)
        ctx = vertex_move_context(bm, graph, 0)
        assert ctx.loops == 2
        delta = vertex_move_delta(bm, ctx, 1)
        before = dcsbm_log_likelihood(bm.B, bm.d_out, bm.d_in)
        bm.apply_move(0, 1, ctx.t_out, ctx.c_out, ctx.t_in, ctx.c_in,
                      ctx.loops, ctx.deg_out, ctx.deg_in)
        after = dcsbm_log_likelihood(bm.B, bm.d_out, bm.d_in)
        assert delta == pytest.approx(-(after - before), abs=1e-9)

    def test_isolated_vertex_move(self):
        graph = Graph(3, np.array([[0, 1]], dtype=np.int64))
        bm = Blockmodel.from_assignment(graph, np.array([0, 0, 1]), 2)
        ctx = vertex_move_context(bm, graph, 2)
        # moving an isolated vertex changes nothing in the likelihood
        assert vertex_move_delta(bm, ctx, 0) == pytest.approx(0.0)

    def test_move_context_counts(self, tiny_graph, tiny_truth):
        bm = Blockmodel.from_assignment(tiny_graph, tiny_truth)
        ctx = vertex_move_context(bm, tiny_graph, 3)
        # vertex 3: out-edges to 0 (block 0) and 4 (block 1); in from 2.
        assert dict(zip(ctx.t_out.tolist(), ctx.c_out.tolist())) == {0: 1, 1: 1}
        assert dict(zip(ctx.t_in.tolist(), ctx.c_in.tolist())) == {0: 1}
        assert dict(zip(ctx.t_all.tolist(), ctx.c_all.tolist())) == {0: 2, 1: 1}


class TestHastings:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_reverse_state_reconstruction(self, seed):
        """The O(degree) reverse-state rebuild must match applying the move."""
        graph, bm, rng = _random_state(seed)
        v = int(rng.integers(graph.num_vertices))
        s = int(rng.integers(bm.num_blocks))
        ctx = vertex_move_context(bm, graph, v)
        if s == ctx.r or ctx.t_all.size == 0:
            assert hastings_correction(bm, ctx, s) == 1.0
            return
        h = hastings_correction(bm, ctx, s)

        # Oracle: apply the move, compute both proposal masses directly.
        C = float(bm.num_blocks)
        t = ctx.t_all
        k = ctx.c_all.astype(np.float64)
        fwd = (k * (bm.B[t, s] + bm.B[s, t] + 1.0) / (bm.d[t] + C)).sum()
        moved = bm.copy()
        moved.apply_move(v, s, ctx.t_out, ctx.c_out, ctx.t_in, ctx.c_in,
                         ctx.loops, ctx.deg_out, ctx.deg_in)
        r = ctx.r
        bwd = (k * (moved.B[t, r] + moved.B[r, t] + 1.0) / (moved.d[t] + C)).sum()
        assert h == pytest.approx(bwd / fwd, rel=1e-9)

    def test_positive(self, random_blockmodel):
        graph, bm = random_blockmodel
        for v in range(0, graph.num_vertices, 13):
            ctx = vertex_move_context(bm, graph, v)
            s = (ctx.r + 1) % bm.num_blocks
            assert hastings_correction(bm, ctx, s) > 0.0


class TestMergeDelta:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_matches_full_recompute(self, seed):
        graph, bm, rng = _random_state(seed)
        r = int(rng.integers(bm.num_blocks))
        s = int(rng.integers(bm.num_blocks))
        if r == s:
            assert merge_delta(bm, r, s) == 0.0
            return
        delta = merge_delta(bm, r, s)
        before = dcsbm_log_likelihood(bm.B, bm.d_out, bm.d_in)
        bm.merge_blocks(r, s)
        after = dcsbm_log_likelihood(bm.B, bm.d_out, bm.d_in)
        assert delta == pytest.approx(-(after - before), abs=1e-9)

    def test_merging_empty_block_free(self, tiny_graph, tiny_truth):
        bm = Blockmodel.from_assignment(tiny_graph, tiny_truth, num_blocks=3)
        # block 2 is empty: merging it anywhere costs nothing
        assert merge_delta(bm, 2, 0) == pytest.approx(0.0)

    def test_merge_identical_blocks_symmetric(self):
        """Merging r into s or s into r gives the same delta."""
        rng = np.random.default_rng(9)
        edges = rng.integers(0, 20, (60, 2)).astype(np.int64)
        graph = Graph(20, edges)
        assignment = rng.integers(0, 4, 20).astype(np.int64)
        bm = Blockmodel.from_assignment(graph, assignment, 4)
        assert merge_delta(bm, 0, 2) == pytest.approx(merge_delta(bm, 2, 0), abs=1e-9)


class TestMergeDeltaBatch:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 2**31 - 1))
    def test_bit_identical_to_scalar(self, seed):
        from repro.sbm.delta import merge_delta_batch

        graph, bm, rng = _random_state(seed)
        C = bm.num_blocks
        r = rng.integers(0, C, 40).astype(np.int64)
        s = rng.integers(0, C, 40).astype(np.int64)
        batch = merge_delta_batch(bm, r, s)
        for i in range(40):
            scalar = merge_delta(bm, int(r[i]), int(s[i]))
            # bitwise equality is the backend-equivalence contract
            assert np.float64(scalar).tobytes() == batch[i].tobytes(), (
                r[i], s[i], scalar, batch[i]
            )

    def test_self_merge_zero(self, tiny_graph, tiny_truth):
        from repro.sbm.delta import merge_delta_batch

        bm = Blockmodel.from_assignment(tiny_graph, tiny_truth)
        r = np.array([0, 1, 0], dtype=np.int64)
        out = merge_delta_batch(bm, r, r)
        np.testing.assert_array_equal(out, np.zeros(3))

    def test_duplicate_pairs_share_value(self, tiny_graph, tiny_truth):
        from repro.sbm.delta import merge_delta_batch

        bm = Blockmodel.from_assignment(tiny_graph, tiny_truth)
        r = np.array([0, 0, 0], dtype=np.int64)
        s = np.array([1, 1, 1], dtype=np.int64)
        out = merge_delta_batch(bm, r, s)
        assert out[0] == out[1] == out[2] == merge_delta(bm, 0, 1)

    def test_shape_mismatch_rejected(self, tiny_graph, tiny_truth):
        from repro.sbm.delta import merge_delta_batch

        bm = Blockmodel.from_assignment(tiny_graph, tiny_truth)
        with pytest.raises(ValueError):
            merge_delta_batch(
                bm, np.zeros(3, dtype=np.int64), np.zeros(2, dtype=np.int64)
            )
