"""Shared helpers for the golden-trajectory equivalence suite.

The sweep-plan engine refactor (mcmc/engine.py) is only safe because the
repo holds it to the established bar: **byte-equal trajectories** against
the pre-refactor sweep dispatch. These helpers define the exact probe
used both by ``capture_golden.py`` (run once, at the pre-refactor commit,
to write ``tests/fixtures/golden_trajectories.npz``) and by
``test_golden_trajectories.py`` (run forever after, to compare the live
code against that fixture). Keeping the probe in one module guarantees
capture and verification exercise the same code path.

Two probe families:

``trace_phase``
    One MCMC phase from a fixed random blockmodel, recording the
    assignment vector and full MDL after *every sweep* (run_mcmc_phase
    computes the MDL exactly once per sweep, so wrapping
    ``Blockmodel.mdl`` yields the per-sweep trajectory without touching
    driver internals).

``run_full``
    One end-to-end ``run_sbp`` (agglomerative search included),
    recording the final assignment, the (C, MDL) search history and the
    per-sweep delta-MDL / acceptance sequences.
"""

from __future__ import annotations

import numpy as np

from repro import Blockmodel, DCSBMParams, SBPConfig, generate_dcsbm
from repro.core.sbp import run_mcmc_phase, run_sbp
from repro.parallel.backend import get_backend
from repro.utils.timer import StopwatchPool

#: The pre-refactor equivalence matrix: every variant x update strategy
#: x execution backend x seed must reproduce the fixture byte-for-byte.
GOLDEN_VARIANTS = ("sbp", "a-sbp", "b-sbp", "h-sbp")
GOLDEN_STRATEGIES = ("rebuild", "incremental")
GOLDEN_BACKENDS = ("serial", "vectorized")
GOLDEN_SEEDS = (3, 17)

#: Phase-probe shape: sweeps per traced phase, the (arbitrary, non-zero)
#: outer-iteration index — it exercises the per-iteration RNG tag stride
#: — and the block count of the deliberately-wrong starting assignment.
PHASE_SWEEPS = 6
PHASE_ITERATION = 2
START_BLOCKS = 12

#: Non-default knobs pinned by the fixture so config plumbing drifts are
#: caught too (B-SBP batch count; H-SBP V* fraction stays at the paper's
#: default 0.15).
NUM_BATCHES = 3

FIXTURE_NAME = "fixtures/golden_trajectories.npz"


def golden_graph():
    """The small, deterministic DCSBM graph every probe runs on."""
    graph, _ = generate_dcsbm(
        DCSBMParams(
            num_vertices=48,
            num_communities=3,
            within_between_ratio=8.0,
            mean_degree=7.0,
            d_max=14,
        ),
        seed=909,
    )
    return graph


def start_assignment(graph) -> np.ndarray:
    """Deterministic deliberately-wrong assignment for the phase probe."""
    rng = np.random.default_rng(5)
    return rng.integers(0, START_BLOCKS, graph.num_vertices)


class TracingBlockmodel(Blockmodel):
    """Blockmodel that snapshots (assignment, MDL) at every ``mdl()`` call.

    The phase driver computes the full MDL exactly once before the first
    sweep and once after every sweep, so the snapshots *are* the
    per-sweep assignment trajectory and MDL sequence.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.trace_assignments: list[np.ndarray] = []
        self.trace_mdl: list[float] = []

    def mdl(self, graph) -> float:
        value = super().mdl(graph)
        self.trace_assignments.append(self.assignment.copy())
        self.trace_mdl.append(value)
        return value


def make_config(variant: str, strategy: str, backend: str, seed: int,
                **overrides) -> SBPConfig:
    kwargs = dict(
        variant=variant,
        seed=seed,
        update_strategy=strategy,
        backend=backend,
        num_batches=NUM_BATCHES,
    )
    kwargs.update(overrides)
    return SBPConfig(**kwargs)


def trace_phase(graph, variant: str, strategy: str, backend_name: str,
                seed: int, **overrides) -> tuple[np.ndarray, np.ndarray]:
    """Run one traced MCMC phase; return (assignments, mdls).

    ``assignments`` has shape ``(PHASE_SWEEPS + 1, V)`` — the starting
    state plus one row per sweep; ``mdls`` is the matching MDL sequence.
    A zero threshold plus ``max_sweeps=PHASE_SWEEPS`` pins the sweep
    count (the windowed mean |dMDL| is never strictly below 0).
    """
    config = make_config(variant, strategy, backend_name, seed,
                         max_sweeps=PHASE_SWEEPS, **overrides)
    bm = TracingBlockmodel.from_assignment(
        graph, start_assignment(graph), START_BLOCKS,
        storage=config.block_storage,
    )
    backend = get_backend(config.backend)
    try:
        run_mcmc_phase(
            bm, graph, config, backend, PHASE_ITERATION, 0.0, StopwatchPool()
        )
    finally:
        backend.close()
    return np.stack(bm.trace_assignments), np.asarray(bm.trace_mdl)


def run_full(graph, variant: str, strategy: str, backend_name: str,
             seed: int, **overrides) -> dict[str, np.ndarray]:
    """Run one end-to-end ``run_sbp``; return the trajectory summary."""
    config = make_config(variant, strategy, backend_name, seed,
                         record_work=True, **overrides)
    result = run_sbp(graph, config)
    return {
        "assignment": np.asarray(result.assignment, dtype=np.int64),
        "mdl": np.asarray([result.mdl], dtype=np.float64),
        "history_blocks": np.asarray(
            [c for c, _ in result.search_history], dtype=np.int64
        ),
        "history_mdl": np.asarray(
            [m for _, m in result.search_history], dtype=np.float64
        ),
        "delta_mdl": np.asarray(
            [s.delta_mdl for s in result.sweep_stats], dtype=np.float64
        ),
        "accepted": np.asarray(
            [s.accepted for s in result.sweep_stats], dtype=np.int64
        ),
    }


def matrix():
    """Yield every (variant, strategy, backend, seed) fixture combo."""
    for variant in GOLDEN_VARIANTS:
        for strategy in GOLDEN_STRATEGIES:
            for backend in GOLDEN_BACKENDS:
                for seed in GOLDEN_SEEDS:
                    yield variant, strategy, backend, seed


def combo_key(variant: str, strategy: str, backend: str, seed: int) -> str:
    return f"{variant}|{strategy}|{backend}|{seed}"
