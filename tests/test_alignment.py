"""Unit tests for partition alignment."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics.alignment import align_partitions


class TestAlignment:
    def test_permuted_labels_fully_recovered(self):
        ref = np.array([0, 0, 1, 1, 2, 2])
        pred = np.array([2, 2, 0, 0, 1, 1])  # pure relabeling
        out = align_partitions(ref, pred)
        np.testing.assert_array_equal(out.relabeled, ref)
        assert out.accuracy == 1.0
        assert out.mapping == {2: 0, 0: 1, 1: 2}

    def test_partial_agreement(self):
        ref = np.array([0, 0, 0, 1, 1, 1])
        pred = np.array([5, 5, 9, 9, 9, 9])
        out = align_partitions(ref, pred)
        assert out.overlap == 5
        assert out.accuracy == pytest.approx(5 / 6)

    def test_extra_predicted_labels_get_fresh_ids(self):
        ref = np.array([0, 0, 0, 0])
        pred = np.array([3, 3, 7, 8])
        out = align_partitions(ref, pred)
        # best match maps 3 -> 0; 7 and 8 must not collide with 0
        assert out.mapping[3] == 0
        assert out.mapping[7] != 0 and out.mapping[8] != 0
        assert out.mapping[7] != out.mapping[8]

    def test_confusion_shape(self):
        ref = np.array([0, 1, 2, 0])
        pred = np.array([1, 1, 0, 0])
        out = align_partitions(ref, pred)
        assert out.confusion.shape == (3, 2)
        assert out.confusion.sum() == 4

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            align_partitions(np.array([0, 1]), np.array([0]))

    def test_accuracy_bounds_random(self):
        rng = np.random.default_rng(0)
        ref = rng.integers(0, 4, 500)
        pred = rng.integers(0, 4, 500)
        out = align_partitions(ref, pred)
        # aligned accuracy of independent labelings stays near chance
        assert 0.15 < out.accuracy < 0.5

    def test_alignment_improves_raw_agreement(self):
        rng = np.random.default_rng(1)
        ref = rng.integers(0, 3, 300)
        perm = np.array([2, 0, 1])
        noisy = np.where(rng.random(300) < 0.9, perm[ref], rng.integers(0, 3, 300))
        raw = float((noisy == ref).mean())
        out = align_partitions(ref, noisy)
        assert out.accuracy > raw
        assert out.accuracy > 0.8

    def test_sbp_result_alignment(self, planted_graph):
        """End-to-end: align an inferred partition with the ground truth."""
        from repro import SBPConfig, run_sbp

        graph, truth = planted_graph
        result = run_sbp(graph, SBPConfig(variant="h-sbp", seed=5))
        out = align_partitions(truth, result.assignment)
        assert out.accuracy > 0.7
