"""Unit/property tests for work partitioning strategies."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.partitioner import balanced_chunks, chunk_loads, contiguous_chunks


class TestContiguousChunks:
    def test_even_split(self):
        assert contiguous_chunks(10, 2) == [(0, 5), (5, 10)]

    def test_uneven_split_front_loaded(self):
        chunks = contiguous_chunks(10, 3)
        sizes = [stop - start for start, stop in chunks]
        assert sizes == [4, 3, 3]

    def test_more_parts_than_items(self):
        chunks = contiguous_chunks(3, 8)
        assert len(chunks) == 3
        assert chunks == [(0, 1), (1, 2), (2, 3)]

    def test_zero_items(self):
        assert contiguous_chunks(0, 4) == []

    def test_bad_parts(self):
        with pytest.raises(ValueError):
            contiguous_chunks(5, 0)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(0, 500), st.integers(1, 64))
    def test_partition_properties(self, count, parts):
        chunks = contiguous_chunks(count, parts)
        covered = [i for start, stop in chunks for i in range(start, stop)]
        assert covered == list(range(count))
        sizes = [stop - start for start, stop in chunks]
        if sizes:
            assert max(sizes) - min(sizes) <= 1


class TestBalancedChunks:
    def test_covers_all_items(self):
        weights = np.array([5.0, 1.0, 3.0, 2.0, 4.0])
        bins = balanced_chunks(weights, 2)
        all_items = sorted(int(i) for b in bins for i in b)
        assert all_items == [0, 1, 2, 3, 4]

    def test_better_than_static_on_skew(self):
        """LPT must beat contiguous chunking on a power-law-ish skew."""
        rng = np.random.default_rng(0)
        weights = rng.pareto(1.5, 200) + 1.0
        static_makespan = chunk_loads(weights, 8, "static").max()
        balanced_makespan = chunk_loads(weights, 8, "balanced").max()
        assert balanced_makespan <= static_makespan

    def test_single_bin(self):
        weights = np.array([1.0, 2.0])
        bins = balanced_chunks(weights, 1)
        assert len(bins) == 1
        assert sorted(bins[0].tolist()) == [0, 1]

    def test_bad_parts(self):
        with pytest.raises(ValueError):
            balanced_chunks(np.ones(3), 0)


class TestChunkLoads:
    def test_total_preserved(self):
        weights = np.arange(1, 11, dtype=np.float64)
        for schedule in ("static", "balanced"):
            loads = chunk_loads(weights, 4, schedule)
            assert loads.sum() == pytest.approx(weights.sum())
            assert loads.shape == (4,)

    def test_empty_bins_padded(self):
        loads = chunk_loads(np.ones(2), 5, "static")
        assert loads.shape == (5,)
        assert (loads == 0).sum() == 3

    def test_unknown_schedule(self):
        with pytest.raises(ValueError):
            chunk_loads(np.ones(4), 2, "dynamic")

    def test_makespan_decreases_with_threads(self):
        rng = np.random.default_rng(1)
        weights = rng.pareto(2.0, 500) + 1.0
        makespans = [chunk_loads(weights, p, "static").max() for p in (1, 2, 4, 8)]
        assert all(b <= a for a, b in zip(makespans, makespans[1:]))
