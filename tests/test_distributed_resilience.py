"""Fault-tolerant distributed runtime: transports, chaos, shard recovery.

The acceptance gate for ``--backend distributed:<transport>:<ranks>``:

* byte-equal results across every transport x rank-count combination,
  with and without seeded wire chaos (the chain is a pure function of
  the seed, so no execution layout or maskable fault may perturb it);
* a shard killed mid-run is detected at the sweep barrier, its vertices
  re-leased to survivors, and the run recovers bit-identically
  (``recover``), degrades to a flagged best-so-far (``degrade``), or
  raises (``fail``);
* the frame codec, reliable delivery layer, and deterministic chaos
  schedule each hold their local contracts.
"""

from __future__ import annotations

import dataclasses
import os
import threading

import numpy as np
import pytest

from repro.core.sbp import run_sbp
from repro.core.variants import SBPConfig
from repro.diagnostics import run_health
from repro.distributed.chaos import FAULT_KINDS, ChaosSchedule, ChaosTransport
from repro.distributed.comm import (
    FRAME_HEADER_BYTES,
    SimTransport,
    _payload_bytes,
    available_transports,
    decode_frame,
    decode_payload,
    encode_frame,
    encode_payload,
    get_transport,
)
from repro.distributed.graphdist import DistributedGraph
from repro.distributed.halo import (
    build_halo_plan,
    halo_exchange_frames,
    halo_exchange_moves,
)
from repro.distributed.partition import partition_vertices
from repro.distributed.reliable import ReliableComm
from repro.distributed.runtime import SHARD_LOSS_POLICIES, DistributedBackend
from repro.errors import ChannelTimeout, FrameError, ShardLost, TransportError
from repro.graph.graph import Graph
from repro.io.serialize import load_result, save_result
from repro.parallel.backend import get_backend
from repro.resilience.resilient import RetryPolicy

TRANSPORTS = ("sim", "inproc", "pipes")

CHAOS_RATES = dict(
    drop=0.05, duplicate=0.04, delay=0.04, truncate=0.03, bitflip=0.03
)


def _run(graph, backend, seed=7, **cfg_kwargs):
    config = SBPConfig(
        variant="a-sbp", seed=seed, backend=backend, **cfg_kwargs
    )
    return run_sbp(graph, config)


def _assert_same_chain(result, reference):
    np.testing.assert_array_equal(result.assignment, reference.assignment)
    assert result.mdl == reference.mdl
    assert result.num_blocks == reference.num_blocks
    assert result.mcmc_sweeps == reference.mcmc_sweeps
    assert result.outer_iterations == reference.outer_iterations


@pytest.fixture(scope="module")
def oracle(planted_graph):
    graph, _ = planted_graph
    return _run(graph, "vectorized")


# ---------------------------------------------------------------------------
# The equivalence matrix: transports x ranks x chaos
# ---------------------------------------------------------------------------
class TestEquivalenceMatrix:
    @pytest.mark.parametrize("transport", TRANSPORTS)
    @pytest.mark.parametrize("ranks", [1, 2, 4])
    def test_clean_wire_bit_identical(self, planted_graph, oracle, transport, ranks):
        graph, _ = planted_graph
        result = _run(graph, f"distributed:{transport}:{ranks}")
        _assert_same_chain(result, oracle)
        assert not result.interrupted
        if ranks > 1:
            assert result.timings.comm_messages > 0
            assert result.timings.comm_bytes > 0

    @pytest.mark.parametrize("transport", TRANSPORTS)
    @pytest.mark.parametrize("ranks", [2, 4])
    def test_chaotic_wire_bit_identical(self, planted_graph, oracle, transport, ranks):
        graph, _ = planted_graph
        result = _run(
            graph,
            f"distributed:{transport}:{ranks}",
            backend_options=dict(chaos=dict(seed=13, **CHAOS_RATES)),
        )
        _assert_same_chain(result, oracle)
        assert not result.interrupted
        # The schedule's rates guarantee faults actually fired and the
        # reliable layer actually masked some of them.
        assert result.timings.comm_retries > 0

    def test_single_rank_needs_no_wire(self, planted_graph, oracle):
        graph, _ = planted_graph
        result = _run(graph, "distributed:sim:1")
        _assert_same_chain(result, oracle)
        assert result.timings.comm_messages == 0


# ---------------------------------------------------------------------------
# Shard loss: detection, re-lease, and the three policies
# ---------------------------------------------------------------------------
class TestShardLoss:
    @pytest.mark.parametrize("transport", ["sim", "pipes"])
    def test_recover_is_bit_identical(self, planted_graph, oracle, transport):
        graph, _ = planted_graph
        result = _run(
            graph,
            f"distributed:{transport}:4",
            backend_options=dict(failures={5: (1,)}),
        )
        _assert_same_chain(result, oracle)
        assert not result.interrupted
        assert result.timings.shard_releases == 1

    def test_recover_under_chaos(self, planted_graph, oracle):
        graph, _ = planted_graph
        result = _run(
            graph,
            "distributed:pipes:4",
            backend_options=dict(
                chaos=dict(seed=13, **CHAOS_RATES), failures={5: (1,)}
            ),
        )
        _assert_same_chain(result, oracle)
        assert result.timings.shard_releases == 1

    def test_recover_two_deaths(self, planted_graph, oracle):
        graph, _ = planted_graph
        result = _run(
            graph,
            "distributed:sim:4",
            backend_options=dict(failures={3: (1,), 9: (3,)}),
        )
        _assert_same_chain(result, oracle)
        assert result.timings.shard_releases == 2

    def test_degrade_returns_flagged_best_so_far(self, planted_graph):
        graph, _ = planted_graph
        result = _run(
            graph,
            "distributed:sim:4",
            shard_loss_policy="degrade",
            backend_options=dict(failures={2: (3,)}),
        )
        assert result.interrupted
        assert result.timings.shard_releases == 1
        health = run_health(result)
        assert not health["ok"]
        assert any("interrupted" in p for p in health["problems"])

    def test_fail_raises_shard_lost(self, planted_graph):
        graph, _ = planted_graph
        with pytest.raises(ShardLost):
            _run(
                graph,
                "distributed:sim:4",
                shard_loss_policy="fail",
                backend_options=dict(failures={2: (2,)}),
            )

    def test_supervisor_cannot_be_scheduled_to_die(self):
        with pytest.raises(TransportError):
            DistributedBackend(transport="sim", ranks=2, failures={1: (0,)})

    def test_policy_names_are_validated(self):
        assert SHARD_LOSS_POLICIES == ("recover", "degrade", "fail")
        with pytest.raises(TransportError):
            DistributedBackend(transport="sim", ranks=2, shard_loss_policy="nope")
        with pytest.raises(ValueError):
            SBPConfig(shard_loss_policy="nope")


# ---------------------------------------------------------------------------
# Backend registry / spec parsing
# ---------------------------------------------------------------------------
class TestBackendSpec:
    def test_get_backend_composes_spec(self):
        backend = get_backend("distributed:inproc:3")
        try:
            assert backend.transport_name == "inproc"
            assert backend.num_ranks == 3
        finally:
            backend.close()

    def test_bad_spec_raises(self):
        with pytest.raises(TransportError):
            DistributedBackend(inner="sim:banana")

    def test_nesting_rejected(self):
        with pytest.raises(TransportError):
            DistributedBackend(inner_backend="distributed")

    def test_registry_lists_all_transports(self):
        assert set(TRANSPORTS) <= set(available_transports())


# ---------------------------------------------------------------------------
# Frame codec
# ---------------------------------------------------------------------------
class TestFrameCodec:
    def test_roundtrip(self):
        payload = {"pos": np.arange(5), "call": 3}
        frame = encode_frame(11, encode_payload(payload))
        seq, raw = decode_frame(frame)
        assert seq == 11
        out = decode_payload(raw)
        np.testing.assert_array_equal(out["pos"], payload["pos"])
        assert out["call"] == 3

    def test_truncation_detected(self):
        frame = encode_frame(0, encode_payload([1, 2, 3]))
        with pytest.raises(FrameError):
            decode_frame(frame[:-2])

    def test_header_truncation_detected(self):
        with pytest.raises(FrameError):
            decode_frame(b"\x00" * (FRAME_HEADER_BYTES - 1))

    def test_bitflip_detected(self):
        frame = bytearray(encode_frame(4, encode_payload("hello")))
        frame[len(frame) // 2] ^= 0x10
        with pytest.raises(FrameError):
            decode_frame(bytes(frame))

    def test_header_bitflip_detected(self):
        # The CRC covers the sequence word: corrupting the header cannot
        # deliver a valid payload under the wrong sequence number.
        frame = bytearray(encode_frame(4, encode_payload("hello")))
        frame[6] ^= 0x01  # inside the seq field
        with pytest.raises(FrameError):
            decode_frame(bytes(frame))

    def test_bad_magic_detected(self):
        frame = bytearray(encode_frame(0, encode_payload(None)))
        frame[0] ^= 0xFF
        with pytest.raises(FrameError):
            decode_frame(bytes(frame))

    def test_unpicklable_garbage_payload(self):
        with pytest.raises(FrameError):
            decode_payload(b"\x00not a pickle")


# ---------------------------------------------------------------------------
# Reliable delivery over each transport
# ---------------------------------------------------------------------------
class TestReliableComm:
    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_in_order_exactly_once(self, transport):
        with get_transport(transport, 2) as raw:
            comm = ReliableComm(raw)
            for i in range(20):
                comm.send({"i": i}, source=0, dest=1)
            for i in range(20):
                assert comm.recv(source=0, dest=1)["i"] == i

    def test_dead_channel_times_out(self):
        with get_transport("sim", 2) as raw:
            comm = ReliableComm(raw, policy=RetryPolicy(retries=2, timeout=0.01))
            with pytest.raises(ChannelTimeout):
                comm.recv(source=1, dest=0)

    def test_duplicates_are_dropped(self):
        raw = SimTransport(2)
        comm = ReliableComm(raw)
        comm.send("a", source=0, dest=1)
        # Replay the exact frame the sender pushed (a network duplicate).
        frame = encode_frame(0, encode_payload("a"))
        raw.push(frame, source=0, dest=1)
        comm.send("b", source=0, dest=1)
        assert comm.recv(source=0, dest=1) == "a"
        assert comm.recv(source=0, dest=1) == "b"

    def test_reordered_frames_delivered_in_order(self):
        raw = SimTransport(2)
        comm = ReliableComm(raw)
        raw.push(encode_frame(1, encode_payload("second")), source=0, dest=1)
        raw.push(encode_frame(0, encode_payload("first")), source=0, dest=1)
        comm._next_send[(0, 1)] = 2  # the sender has already sent both
        assert comm.recv(source=0, dest=1) == "first"
        assert comm.recv(source=0, dest=1) == "second"

    def test_corrupt_frame_quarantined_then_retransmitted(self):
        raw = SimTransport(2)
        comm = ReliableComm(raw, policy=RetryPolicy(retries=4, timeout=0.01))
        comm.send("payload", source=0, dest=1)
        # Corrupt the in-flight copy; the retransmit path must re-push
        # the sender's buffered original.
        frame = bytearray(raw.pull(source=0, dest=1))
        frame[-1] ^= 0xFF
        raw.push(bytes(frame), source=0, dest=1)
        assert comm.recv(source=0, dest=1) == "payload"
        assert comm.ledger.frames_quarantined >= 1
        assert comm.ledger.retries >= 1
        assert comm.quarantine_log

    def test_reuses_resilience_retry_policy(self):
        policy = RetryPolicy(retries=3, backoff=0.0, timeout=0.5)
        comm = ReliableComm(SimTransport(2), policy=policy)
        assert comm.policy is policy
        assert comm.policy.attempts == 4


# ---------------------------------------------------------------------------
# Chaos schedule determinism
# ---------------------------------------------------------------------------
class TestChaos:
    def test_schedule_is_deterministic(self):
        sched = ChaosSchedule(seed=42, **CHAOS_RATES)
        a = [sched.decide(0, 1, i)[0] for i in range(200)]
        b = [sched.decide(0, 1, i)[0] for i in range(200)]
        assert a == b
        assert any(kind is not None for kind in a)

    def test_channels_draw_independently(self):
        sched = ChaosSchedule(seed=42, **CHAOS_RATES)
        a = [sched.decide(0, 1, i)[0] for i in range(200)]
        b = [sched.decide(2, 1, i)[0] for i in range(200)]
        assert a != b

    def test_rates_validated(self):
        with pytest.raises(TransportError):
            ChaosSchedule(drop=1.5)
        with pytest.raises(TransportError):
            ChaosSchedule(drop=0.6, duplicate=0.6)
        with pytest.raises(TransportError):
            ChaosSchedule.from_mapping({"drop": 0.1, "meteor": 0.1})

    def test_fault_kinds_frozen(self):
        assert FAULT_KINDS == ("drop", "duplicate", "delay", "truncate", "bitflip")

    @pytest.mark.parametrize("transport", TRANSPORTS)
    def test_identical_injection_across_transports(self, transport):
        sched = ChaosSchedule(seed=9, **CHAOS_RATES)
        with get_transport(transport, 2) as raw:
            chaos = ChaosTransport(raw, sched)
            comm = ReliableComm(chaos, policy=RetryPolicy(retries=16, timeout=0.05))
            for i in range(40):
                comm.send(i, source=0, dest=1)
            for i in range(40):
                assert comm.recv(source=0, dest=1) == i
            injected = dict(chaos.injected)
            chaos.close()
        # The schedule is a pure function of (seed, channel, push index):
        # a second identical session injects the identical fault set.
        with get_transport(transport, 2) as raw2:
            chaos2 = ChaosTransport(raw2, ChaosSchedule(seed=9, **CHAOS_RATES))
            comm2 = ReliableComm(chaos2, policy=RetryPolicy(retries=16, timeout=0.05))
            for i in range(40):
                comm2.send(i, source=0, dest=1)
            for i in range(40):
                assert comm2.recv(source=0, dest=1) == i
            assert dict(chaos2.injected) == injected
            chaos2.close()


# ---------------------------------------------------------------------------
# Partition / halo edge cases (satellite d)
# ---------------------------------------------------------------------------
class TestPartitionEdgeCases:
    @pytest.mark.parametrize("strategy", ["contiguous", "hash", "degree_balanced"])
    def test_more_ranks_than_vertices(self, strategy):
        graph = Graph(3, np.array([[0, 1], [1, 2]], dtype=np.int64))
        owner = partition_vertices(graph, 8, strategy=strategy)
        assert owner.shape == (3,)
        assert owner.min() >= 0 and owner.max() < 8
        dgraph = DistributedGraph(graph, owner, num_ranks=8)
        assert dgraph.num_ranks == 8
        dgraph.check_cover()
        empty = [s for s in dgraph.shards if s.num_owned == 0]
        assert empty, "8 ranks over 3 vertices must leave empty shards"
        for shard in empty:
            assert shard.num_ghosts == 0
            assert shard.local_edges.shape[0] == 0

    def test_explicit_num_ranks_below_owner_max_rejected(self):
        graph = Graph(3, np.array([[0, 1], [1, 2]], dtype=np.int64))
        with pytest.raises(ValueError):
            DistributedGraph(graph, np.array([0, 1, 2], dtype=np.int64), num_ranks=2)

    def test_zero_vertex_rank_exchanges_nothing(self):
        graph = Graph(4, np.array([[0, 1], [1, 2], [2, 3]], dtype=np.int64))
        owner = np.array([0, 0, 1, 1], dtype=np.int64)
        dgraph = DistributedGraph(graph, owner, num_ranks=3)
        plan = build_halo_plan(dgraph)
        assert plan.peers_of(2) == []
        moves = [
            np.array([[0, 1]], dtype=np.int64),
            np.empty((0, 2), dtype=np.int64),
            np.empty((0, 2), dtype=np.int64),
        ]
        with get_transport("inproc", 3) as raw:
            comm = ReliableComm(raw)
            received = halo_exchange_frames(comm, plan, moves)
        assert received[2].shape == (0, 2)

    def test_isolated_vertices_ghost_nowhere(self):
        # Vertices 3 and 4 have no edges at all.
        graph = Graph(5, np.array([[0, 1], [1, 2]], dtype=np.int64))
        owner = partition_vertices(graph, 2, strategy="contiguous")
        dgraph = DistributedGraph(graph, owner)
        dgraph.check_cover()
        for shard in dgraph.shards:
            assert not np.isin([3, 4], shard.ghosts).any()

    def test_distributed_run_with_more_ranks_than_busy_work(self, tiny_graph):
        # V=8 over 4 ranks: tiny shards, some possibly empty per segment.
        ref = _run(tiny_graph, "vectorized", seed=3)
        result = _run(tiny_graph, "distributed:sim:4", seed=3)
        _assert_same_chain(result, ref)


class TestHaloFrames:
    def test_matches_simworld_exchange(self, planted_graph):
        graph, _ = planted_graph
        owner = partition_vertices(graph, 3)
        dgraph = DistributedGraph(graph, owner)
        plan = build_halo_plan(dgraph)
        rng = np.random.default_rng(5)
        moves = []
        for rank in range(3):
            owned = dgraph.shard(rank).owned
            chosen = owned[rng.random(owned.size) < 0.3]
            moves.append(
                np.stack([chosen, rng.integers(0, 3, chosen.size)], axis=1)
            )
        from repro.distributed.comm import SimCommWorld

        expected = halo_exchange_moves(SimCommWorld(3), plan, moves)
        with get_transport("pipes", 3) as raw:
            comm = ReliableComm(raw)
            got = halo_exchange_frames(comm, plan, moves)
        assert len(got) == len(expected)
        for g, e in zip(got, expected):
            np.testing.assert_array_equal(g, e)


# ---------------------------------------------------------------------------
# Ledger accounting (satellite a)
# ---------------------------------------------------------------------------
class TestPayloadBytes:
    def test_dict_counts_keys_and_values(self):
        arr = np.arange(4)  # 32 bytes
        assert _payload_bytes({"ab": arr}) == 2 + 32

    def test_dataclass_counts_fields(self):
        @dataclasses.dataclass
        class Msg:
            pos: np.ndarray
            tag: str

        assert _payload_bytes(Msg(np.arange(2), "xy")) == 16 + 2

    def test_nested_containers(self):
        assert _payload_bytes([{"k": 1.0}, (2, "abc")]) == (1 + 8) + (8 + 3)


# ---------------------------------------------------------------------------
# Driver plumbing: timings, health, serialization
# ---------------------------------------------------------------------------
class TestPlumbing:
    @pytest.fixture(scope="class")
    def chaotic_result(self, planted_graph):
        graph, _ = planted_graph
        return _run(
            graph,
            "distributed:inproc:2",
            backend_options=dict(
                chaos=dict(seed=13, **CHAOS_RATES), failures={4: (1,)}
            ),
        )

    def test_timings_carry_wire_counters(self, chaotic_result, oracle):
        _assert_same_chain(chaotic_result, oracle)
        t = chaotic_result.timings
        assert t.comm_messages > 0
        assert t.comm_bytes > 0
        assert t.comm_retries > 0
        assert t.shard_releases == 1

    def test_run_health_surfaces_fault_warnings(self, chaotic_result):
        health = run_health(chaotic_result)
        assert health["ok"]  # masked faults never fail the rollup
        assert health["comm_retries"] == chaotic_result.timings.comm_retries
        assert health["shard_releases"] == 1
        assert any("retransmission" in w for w in health["warnings"])
        assert any("re-lease" in w for w in health["warnings"])

    def test_clean_run_has_no_fault_warnings(self, oracle):
        health = run_health(oracle)
        assert health["ok"]
        assert health["warnings"] == []
        assert health["comm_retries"] == 0

    def test_serialize_v5_roundtrip(self, chaotic_result, tmp_path):
        path = os.path.join(tmp_path, "result.json")
        save_result(chaotic_result, path)
        back = load_result(path)
        for name in (
            "comm_messages", "comm_bytes", "comm_retries",
            "frames_quarantined", "shard_releases",
        ):
            assert getattr(back.timings, name) == getattr(
                chaotic_result.timings, name
            ), name

    def test_timings_merge_sums_wire_counters(self, chaotic_result):
        merged = chaotic_result.timings.merged_with(chaotic_result.timings)
        assert merged.comm_retries == 2 * chaotic_result.timings.comm_retries
        assert merged.shard_releases == 2


# ---------------------------------------------------------------------------
# Transport lifecycle hygiene
# ---------------------------------------------------------------------------
class TestTransportLifecycle:
    @pytest.mark.parametrize("transport", ["inproc", "pipes"])
    def test_close_reaps_threads(self, transport):
        before = threading.active_count()
        t = get_transport(transport, 3)
        comm = ReliableComm(t)
        for src in range(3):
            for dst in range(3):
                if src != dst:
                    comm.send((src, dst), source=src, dest=dst)
        for src in range(3):
            for dst in range(3):
                if src != dst:
                    assert comm.recv(source=src, dest=dst) == (src, dst)
        t.close()
        t.close()  # idempotent
        assert threading.active_count() <= before

    def test_self_channel_rejected(self):
        with get_transport("sim", 2) as t:
            with pytest.raises(TransportError):
                t.push(b"x", source=1, dest=1)

    def test_out_of_range_rank_rejected(self):
        with get_transport("sim", 2) as t:
            with pytest.raises(TransportError):
                t.pull(source=0, dest=5)
