"""Kernel dispatch parity: numpy references vs whatever got selected.

``repro.sbm.kernels`` picks its implementations once at import — numba
jits when importable (floats only behind a bitwise parity probe), numpy
otherwise. These tests pin the dispatched callables to the numpy
reference semantics on adversarial inputs, so in an environment with
numba they double as jit/numpy parity gates, and without numba they
pin the references themselves. CI runs this module both ways.
"""

from __future__ import annotations

import os
import subprocess
import sys

import numpy as np
import pytest
from numpy.testing import assert_array_equal

from repro.sbm import kernels as K
from repro.sbm.entropy import xlogx_counts as entropy_xlogx

_NAMES = (
    "sym_cdf_dense", "sym_cdf_lines", "cdf_index", "seq_sum",
    "xlogx_scalar", "xlogx_counts", "apply_move_dense", "scatter_dense",
    "index_add", "index_sub",
)


class TestDispatch:
    def test_table_is_complete(self):
        table = K.kernel_table()
        assert set(table) == set(_NAMES)
        assert set(table.values()) <= {"numpy", "numba"}

    def test_status_shape(self):
        status = K.jit_status()
        assert set(status) >= {
            "disabled_by_env", "numba_importable", "float_parity", "kernels",
        }
        assert status["kernels"] == K.kernel_table()
        assert K.jit_enabled() == ("numba" in K.kernel_table().values())

    def test_disable_env_forces_numpy(self):
        """With the kill switch set, a fresh import selects numpy-only."""
        env = dict(os.environ, **{K.JIT_DISABLE_ENV: "1"})
        env.setdefault("PYTHONPATH", "src")
        code = (
            "from repro.sbm import kernels as K; "
            "assert K.jit_status()['disabled_by_env']; "
            "assert not K.jit_enabled(); "
            "assert set(K.kernel_table().values()) == {'numpy'}"
        )
        subprocess.run(
            [sys.executable, "-c", code], env=env, check=True, timeout=120
        )


class TestCdfKernels:
    def test_sym_cdf_dense_matches_reference(self):
        rng = np.random.default_rng(7)
        B = rng.integers(0, 9, size=(17, 17)).astype(np.int64)
        for u in range(17):
            assert_array_equal(
                K.sym_cdf_dense(B, u), np.cumsum(B[u, :] + B[:, u])
            )

    def test_sym_cdf_lines_matches_reference(self):
        rng = np.random.default_rng(8)
        row = rng.integers(0, 9, 33).astype(np.int64)
        col = rng.integers(0, 9, 33).astype(np.int64)
        assert_array_equal(K.sym_cdf_lines(row, col), np.cumsum(row + col))

    def test_cdf_index_matches_searchsorted(self):
        rng = np.random.default_rng(9)
        counts = rng.integers(0, 4, 64).astype(np.int64)
        counts[rng.random(64) < 0.5] = 0  # force plateaus
        cdf = np.cumsum(counts)
        for q in range(int(cdf[-1])):
            assert K.cdf_index(cdf, q) == int(
                np.searchsorted(cdf, q, side="right")
            )

    def test_cdf_index_never_lands_on_zero_plateau(self):
        """The draw-side bit-identity theorem, checked exhaustively.

        Integer draws ``q = floor(u * total)`` range over ``[0, total)``;
        ``side="right"`` semantics must map every q to a block with a
        nonzero symmetrized count, zero plateaus notwithstanding.
        """
        counts = np.asarray([0, 3, 0, 0, 2, 0, 1, 0], dtype=np.int64)
        cdf = np.cumsum(counts)
        for q in range(int(cdf[-1])):
            idx = K.cdf_index(cdf, q)
            assert counts[idx] > 0, f"draw {q} landed on zero plateau {idx}"
        # Plateau edges explicitly: q = 2 is the last unit of block 1,
        # q = 3 the first unit of block 4.
        assert K.cdf_index(cdf, 2) == 1
        assert K.cdf_index(cdf, 3) == 4
        assert K.cdf_index(cdf, 5) == 6


class TestFloatKernels:
    def test_seq_sum_is_bitwise_cumsum_tail(self):
        rng = np.random.default_rng(12345)
        for size in (0, 1, 2, 7, 63, 1024):
            terms = rng.normal(scale=1e6, size=size) + rng.normal(size=size)
            expect = 0.0 if size == 0 else float(np.cumsum(terms)[-1])
            assert K.seq_sum(terms) == expect  # bitwise, not approx

    def test_xlogx_scalar_matches_reference(self):
        for x in (0.0, -3.0, 1.0, 2.0, 1e4, 12345.0, 87654321.0, 3e15):
            expect = 0.0 if x <= 0 else float(x * np.log(x))
            assert K.xlogx_scalar(x) == expect

    def test_xlogx_counts_matches_entropy_module(self):
        counts = np.concatenate([
            np.arange(0, 2048, dtype=np.int64),
            np.asarray([10**4, 12345, 10**6, 87654321], dtype=np.int64),
        ])
        assert_array_equal(K.xlogx_counts(counts), entropy_xlogx(counts))


class TestScatterKernels:
    def _random_B(self, seed=11, C=13):
        rng = np.random.default_rng(seed)
        return rng.integers(0, 7, size=(C, C)).astype(np.int64), rng

    def test_apply_move_matches_fancy_index_reference(self):
        B, rng = self._random_B()
        expect = B.copy()
        t_out = np.asarray([2, 5, 9], dtype=np.int64)
        c_out = np.asarray([1, 2, 1], dtype=np.int64)
        t_in = np.asarray([3, 5], dtype=np.int64)
        c_in = np.asarray([2, 1], dtype=np.int64)
        r, s, loops = 0, 4, 2
        np.subtract.at(expect[r, :], t_out, c_out)
        np.add.at(expect[s, :], t_out, c_out)
        np.subtract.at(expect[:, r], t_in, c_in)
        np.add.at(expect[:, s], t_in, c_in)
        expect[r, r] -= loops
        expect[s, s] += loops
        K.apply_move_dense(B, r, s, t_out, c_out, t_in, c_in, loops)
        assert_array_equal(B, expect)

    def test_scatter_matches_ufunc_at_reference(self):
        B, rng = self._random_B(seed=12)
        expect = B.copy()
        old_src = rng.integers(0, 13, 20).astype(np.int64)
        old_dst = rng.integers(0, 13, 20).astype(np.int64)
        new_src = rng.integers(0, 13, 20).astype(np.int64)
        new_dst = rng.integers(0, 13, 20).astype(np.int64)
        np.subtract.at(expect, (old_src, old_dst), 1)
        np.add.at(expect, (new_src, new_dst), 1)
        K.scatter_dense(B, old_src, old_dst, new_src, new_dst)
        assert_array_equal(B, expect)

    def test_index_add_sub_handle_duplicates(self):
        target = np.arange(10, dtype=np.int64)
        idx = np.asarray([1, 1, 3, 1], dtype=np.int64)
        vals = np.asarray([2, 2, 5, 1], dtype=np.int64)
        expect = target.copy()
        np.add.at(expect, idx, vals)
        K.index_add(target, idx, vals)
        assert_array_equal(target, expect)
        np.subtract.at(expect, idx, vals)
        K.index_sub(target, idx, vals)
        assert_array_equal(target, expect)


class TestNumbaParity:
    """Only meaningful where numba is installed (the CI ``kernels`` job)."""

    def test_integer_kernels_adopt_numba(self):
        pytest.importorskip("numba")
        if K.jit_status()["disabled_by_env"]:
            pytest.skip("jit disabled via environment")
        table = K.kernel_table()
        # Integer kernels are exact in any implementation and must be
        # jitted unconditionally when numba imports.
        for name in ("sym_cdf_dense", "sym_cdf_lines", "cdf_index",
                     "apply_move_dense", "scatter_dense",
                     "index_add", "index_sub"):
            assert table[name] == "numba", f"{name} not jitted"

    def test_jit_vs_numpy_bitwise_on_mixed_magnitudes(self):
        pytest.importorskip("numba")
        if not K.jit_enabled():
            pytest.skip("jit disabled via environment")
        rng = np.random.default_rng(424242)
        B = rng.integers(0, 50, size=(257, 257)).astype(np.int64)
        for u in (0, 128, 256):
            assert_array_equal(K.sym_cdf_dense(B, u), K._sym_cdf_dense_np(B, u))
        cdf = np.cumsum(rng.integers(0, 3, 999).astype(np.int64))
        for q in rng.integers(0, max(int(cdf[-1]), 1), 200):
            assert K.cdf_index(cdf, int(q)) == K._cdf_index_np(cdf, int(q))
        # Float kernels are only adopted when the import-time probe
        # found them bitwise-identical; spot-check that held.
        terms = rng.normal(scale=1e9, size=513) + rng.normal(size=513)
        assert K.seq_sum(terms) == K._seq_sum_np(terms)
        counts = rng.integers(0, 10**9, 4096).astype(np.int64)
        assert_array_equal(K.xlogx_counts(counts), K._xlogx_counts_np(counts))
