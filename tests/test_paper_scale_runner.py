"""Unit tests for the resumable paper-scale campaign runner."""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent.parent))

from benchmarks.run_paper_scale import _completed  # noqa: E402


class TestResumability:
    def test_completed_empty_when_missing(self, tmp_path):
        assert _completed(tmp_path / "nope.jsonl") == set()

    def test_completed_reads_graph_ids(self, tmp_path):
        path = tmp_path / "synthetic.jsonl"
        path.write_text(
            json.dumps({"graph": "S1", "V": 10}) + "\n"
            + json.dumps({"graph": "S2", "V": 10}) + "\n"
        )
        assert _completed(path) == {"S1", "S2"}

    def test_completed_skips_blank_lines(self, tmp_path):
        path = tmp_path / "synthetic.jsonl"
        path.write_text(json.dumps({"graph": "S3"}) + "\n\n\n")
        assert _completed(path) == {"S3"}


class TestCampaignResults:
    """Sanity over the committed campaign outputs (when present)."""

    RESULTS = Path(__file__).parent.parent / "benchmarks" / "results" / "paper"

    def _load(self, suite):
        path = self.RESULTS / f"{suite}.jsonl"
        if not path.exists():
            pytest.skip(f"{suite} campaign not run")
        return [json.loads(l) for l in path.read_text().splitlines() if l.strip()]

    def test_synthetic_campaign_shape(self):
        rows = self._load("synthetic")
        by_graph = {r["graph"]: r for r in rows}
        assert len(by_graph) == len(rows), "duplicate graphs in campaign file"
        for rec in rows:
            for variant in ("sbp", "a-sbp", "h-sbp"):
                assert variant in rec, rec["graph"]
                assert rec[variant]["mcmc_s"] > 0
        # paper shape on the full corpus: the sparse r=1 family fails
        for gid in ("S17", "S18", "S19", "S20"):
            if gid in by_graph:
                assert by_graph[gid]["sbp"]["nmi"] == pytest.approx(0.0, abs=0.05)

    def test_realworld_campaign_shape(self):
        rows = self._load("realworld")
        for rec in rows:
            assert "sbp" in rec and "h-sbp" in rec
            # H-SBP quality within tolerance of SBP (Fig. 5)
            assert rec["h-sbp"]["mdl_norm"] <= rec["sbp"]["mdl_norm"] + 0.03, rec["graph"]
