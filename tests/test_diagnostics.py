"""Unit tests for run diagnostics (sweep traces)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import SBPConfig, Variant, run_sbp
from repro.diagnostics import SweepTrace, trace_from_result


def _trace(deltas, accepts, serial=None, parallel=None, moved=None):
    n = len(deltas)
    return SweepTrace(
        delta_mdl=np.asarray(deltas, dtype=np.float64),
        acceptance_rate=np.asarray(accepts, dtype=np.float64),
        serial_work=np.asarray(serial if serial is not None else [0.0] * n),
        parallel_work=np.asarray(parallel if parallel is not None else [1.0] * n),
        barrier_moved=np.asarray(moved if moved is not None else [0.0] * n),
        b_nnz=np.asarray([0.0] * n),
        b_density=np.asarray([0.0] * n),
    )


class TestSweepTrace:
    def test_total_improvement_only_counts_descent(self):
        trace = _trace([-5.0, 2.0, -3.0], [0.5, 0.4, 0.3])
        assert trace.total_improvement == -8.0

    def test_parallel_fraction(self):
        trace = _trace([0.0, 0.0], [0.1, 0.1], serial=[1.0, 1.0], parallel=[3.0, 3.0])
        assert trace.parallel_fraction == pytest.approx(0.75)

    def test_parallel_fraction_no_work(self):
        trace = _trace([0.0], [0.0], serial=[0.0], parallel=[0.0])
        assert trace.parallel_fraction == 0.0

    def test_acceptance_decay(self):
        rates = [0.8] * 4 + [0.4] * 4 + [0.2] * 4
        trace = _trace([0.0] * 12, rates)
        assert trace.acceptance_decay() == pytest.approx(0.25)

    def test_acceptance_decay_short_run(self):
        trace = _trace([0.0] * 3, [0.5, 0.4, 0.3])
        assert trace.acceptance_decay() == 1.0

    def test_summary_keys(self):
        trace = _trace([-1.0, -0.5], [0.3, 0.2])
        summary = trace.summary()
        assert set(summary) == {
            "sweeps", "total_improvement", "mean_acceptance",
            "acceptance_decay", "parallel_fraction", "mean_barrier_moved",
            "mean_b_density",
        }


@pytest.mark.slow
class TestTraceFromResult:
    def test_requires_recording(self, planted_graph):
        graph, _ = planted_graph
        result = run_sbp(graph, SBPConfig(seed=1, max_sweeps=5))
        with pytest.raises(ValueError):
            trace_from_result(result)

    def test_real_run_trace(self, planted_graph):
        graph, _ = planted_graph
        result = run_sbp(
            graph, SBPConfig(variant=Variant.HSBP, seed=2, record_work=True)
        )
        trace = trace_from_result(result)
        assert trace.num_sweeps == result.mcmc_sweeps
        # The chain descends overall and the async section dominates work.
        assert trace.total_improvement < 0
        assert trace.parallel_fraction > 0.3
        assert 0.0 <= trace.acceptance_rate.min()
        assert trace.acceptance_rate.max() <= 1.0
        # Matrix gauges: every recorded sweep saw a live blockmodel.
        assert trace.b_nnz.min() > 0
        assert 0.0 < trace.b_density.min() <= 1.0
        assert trace.summary()["mean_b_density"] > 0.0
