"""Unit tests for the batched asynchronous-Gibbs variant (B-SBP)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Blockmodel, SBPConfig, Variant, run_sbp
from repro.mcmc.batched import batched_gibbs_sweep
from repro.parallel.vectorized import VectorizedBackend
from repro.utils.rng import SweepRandomness


@pytest.fixture
def state(medium_graph):
    graph, _ = medium_graph
    rng = np.random.default_rng(31)
    assignment = rng.integers(0, 8, graph.num_vertices)
    return graph, Blockmodel.from_assignment(graph, assignment, 8)


class TestBatchedSweep:
    def test_one_batch_equals_async(self, state):
        graph, bm = state
        other = bm.copy()
        vertices = np.arange(graph.num_vertices, dtype=np.int64)
        rand = SweepRandomness.draw(1, 2, 0, graph.num_vertices)

        from repro.mcmc.async_gibbs import async_gibbs_sweep

        async_gibbs_sweep(bm, graph, vertices, rand, 3.0, VectorizedBackend())
        batched_gibbs_sweep(
            other, graph, vertices, rand, 3.0, VectorizedBackend(), num_batches=1
        )
        np.testing.assert_array_equal(bm.assignment, other.assignment)
        np.testing.assert_array_equal(bm.B, other.B)

    def test_more_batches_changes_trajectory(self, state):
        graph, bm = state
        other = bm.copy()
        vertices = np.arange(graph.num_vertices, dtype=np.int64)
        rand = SweepRandomness.draw(2, 2, 0, graph.num_vertices)
        batched_gibbs_sweep(bm, graph, vertices, rand, 3.0, VectorizedBackend(), 1)
        batched_gibbs_sweep(other, graph, vertices, rand, 3.0, VectorizedBackend(), 4)
        # Fresher state mid-sweep leads to different decisions.
        assert not np.array_equal(bm.assignment, other.assignment)

    def test_consistency_after_sweep(self, state):
        graph, bm = state
        vertices = np.arange(graph.num_vertices, dtype=np.int64)
        rand = SweepRandomness.draw(3, 2, 0, graph.num_vertices)
        stats = batched_gibbs_sweep(
            bm, graph, vertices, rand, 3.0, VectorizedBackend(), 4
        )
        bm.check_consistency(graph)
        assert stats.proposals == graph.num_vertices

    def test_work_recording_concatenates(self, state):
        graph, bm = state
        vertices = np.arange(graph.num_vertices, dtype=np.int64)
        rand = SweepRandomness.draw(4, 2, 0, graph.num_vertices)
        stats = batched_gibbs_sweep(
            bm, graph, vertices, rand, 3.0, VectorizedBackend(), 3, record_work=True
        )
        assert stats.work_per_vertex is not None
        assert stats.work_per_vertex.shape == (graph.num_vertices,)
        assert stats.work_per_vertex.sum() == stats.parallel_work

    def test_bad_batches(self, state):
        graph, bm = state
        vertices = np.arange(graph.num_vertices, dtype=np.int64)
        rand = SweepRandomness.draw(5, 2, 0, graph.num_vertices)
        with pytest.raises(ValueError):
            batched_gibbs_sweep(
                bm, graph, vertices, rand, 3.0, VectorizedBackend(), 0
            )

    def test_more_batches_than_vertices(self, state):
        graph, bm = state
        vertices = np.arange(10, dtype=np.int64)
        rand = SweepRandomness.draw(6, 2, 0, 10)
        stats = batched_gibbs_sweep(
            bm, graph, vertices, rand, 3.0, VectorizedBackend(), 50
        )
        assert stats.proposals == 10
        bm.check_consistency(graph)


@pytest.mark.slow
class TestBSBPDriver:
    def test_full_run_recovers_structure(self, planted_graph):
        from repro.metrics import normalized_mutual_information

        graph, truth = planted_graph
        result = run_sbp(graph, SBPConfig(variant=Variant.BSBP, seed=8))
        assert result.variant == "b-sbp"
        nmi = normalized_mutual_information(truth, result.assignment)
        assert nmi > 0.7

    def test_num_batches_config_validated(self):
        with pytest.raises(ValueError):
            SBPConfig(num_batches=0)
