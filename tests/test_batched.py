"""Unit tests for the batched asynchronous-Gibbs variant (B-SBP).

B-SBP is now a registered sweep plan (one frozen segment split into
``num_batches`` barriers) executed by the generic engine, so these tests
drive :class:`repro.mcmc.engine.SweepEngine` directly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Blockmodel, SBPConfig, Variant, run_sbp
from repro.mcmc.engine import (
    AllVertices,
    SegmentMode,
    SweepEngine,
    SweepPlan,
    SweepSegment,
    build_plan,
)
from repro.parallel.vectorized import VectorizedBackend
from repro.utils.timer import StopwatchPool


@pytest.fixture
def state(medium_graph):
    graph, _ = medium_graph
    rng = np.random.default_rng(31)
    assignment = rng.integers(0, 8, graph.num_vertices)
    return graph, Blockmodel.from_assignment(graph, assignment, 8)


def _sweep(graph, bm, variant, seed, num_batches=4, plan=None, **overrides):
    """Run one engine sweep of ``variant``'s plan, mutating ``bm``."""
    config = SBPConfig(
        variant=variant, seed=seed, num_batches=num_batches, **overrides
    )
    engine = SweepEngine(
        plan or build_plan(config), config, VectorizedBackend(), StopwatchPool()
    )
    bound = engine.bind(graph)
    return engine.run_sweep(bm, graph, bound, iteration=0, sweep=0)


class TestBatchedSweep:
    def test_one_batch_equals_async(self, state):
        graph, bm = state
        other = bm.copy()
        _sweep(graph, bm, "a-sbp", seed=1)
        _sweep(graph, other, "b-sbp", seed=1, num_batches=1)
        np.testing.assert_array_equal(bm.assignment, other.assignment)
        np.testing.assert_array_equal(bm.B, other.B)

    def test_more_batches_changes_trajectory(self, state):
        graph, bm = state
        other = bm.copy()
        _sweep(graph, bm, "b-sbp", seed=2, num_batches=1)
        _sweep(graph, other, "b-sbp", seed=2, num_batches=4)
        # Fresher state mid-sweep leads to different decisions.
        assert not np.array_equal(bm.assignment, other.assignment)

    def test_consistency_after_sweep(self, state):
        graph, bm = state
        stats = _sweep(graph, bm, "b-sbp", seed=3, num_batches=4)
        bm.check_consistency(graph)
        assert stats.proposals == graph.num_vertices

    def test_work_recording_concatenates(self, state):
        graph, bm = state
        stats = _sweep(
            graph, bm, "b-sbp", seed=4, num_batches=3, record_work=True
        )
        assert stats.work_per_vertex is not None
        assert stats.work_per_vertex.shape == (graph.num_vertices,)
        assert stats.work_per_vertex.sum() == stats.parallel_work

    def test_bad_batches(self):
        with pytest.raises(ValueError):
            SweepSegment(AllVertices(), SegmentMode.FROZEN_PARALLEL, batches=0)

    def test_more_batches_than_vertices(self, state):
        graph, bm = state
        plan = SweepPlan(
            (
                SweepSegment(
                    AllVertices(),
                    SegmentMode.FROZEN_PARALLEL,
                    batches=graph.num_vertices + 40,
                ),
            ),
            name="overbatched",
        )
        stats = _sweep(graph, bm, "b-sbp", seed=6, plan=plan)
        assert stats.proposals == graph.num_vertices
        bm.check_consistency(graph)


@pytest.mark.slow
class TestBSBPDriver:
    def test_full_run_recovers_structure(self, planted_graph):
        from repro.metrics import normalized_mutual_information

        graph, truth = planted_graph
        result = run_sbp(graph, SBPConfig(variant=Variant.BSBP, seed=8))
        assert result.variant == "b-sbp"
        nmi = normalized_mutual_information(truth, result.assignment)
        assert nmi > 0.7

    def test_num_batches_config_validated(self):
        with pytest.raises(ValueError):
            SBPConfig(num_batches=0)
