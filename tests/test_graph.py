"""Unit tests for the CSR graph substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Graph
from repro.errors import GraphValidationError
from tests.conftest import make_line_graph


class TestConstruction:
    def test_basic_counts(self, tiny_graph):
        assert tiny_graph.num_vertices == 8
        assert tiny_graph.num_edges == 14

    def test_empty_edges(self):
        g = Graph(3, np.empty((0, 2), dtype=np.int64))
        assert g.num_edges == 0
        assert g.degree.tolist() == [0, 0, 0]

    def test_rejects_bad_shape(self):
        with pytest.raises(GraphValidationError):
            Graph(3, np.array([[0, 1, 2]]))

    def test_rejects_out_of_range(self):
        with pytest.raises(GraphValidationError):
            Graph(2, np.array([[0, 2]]))
        with pytest.raises(GraphValidationError):
            Graph(2, np.array([[-1, 0]]))

    def test_rejects_zero_vertices(self):
        with pytest.raises(GraphValidationError):
            Graph(0, np.empty((0, 2), dtype=np.int64))

    def test_arrays_are_readonly(self, tiny_graph):
        with pytest.raises(ValueError):
            tiny_graph.out_nbrs[0] = 99
        with pytest.raises(ValueError):
            tiny_graph.degree[0] = 99


class TestDegrees:
    def test_degree_sums(self, tiny_graph):
        assert tiny_graph.out_degree.sum() == tiny_graph.num_edges
        assert tiny_graph.in_degree.sum() == tiny_graph.num_edges
        np.testing.assert_array_equal(
            tiny_graph.degree, tiny_graph.out_degree + tiny_graph.in_degree
        )

    def test_specific_degrees(self, tiny_graph):
        # vertex 1 has out-edges to 2, 0, 0 and in-edge from 0.
        assert tiny_graph.out_degree[1] == 3
        assert tiny_graph.in_degree[1] == 1

    def test_self_loops(self, tiny_graph):
        assert tiny_graph.self_loops[2] == 1
        assert tiny_graph.self_loops.sum() == 1

    def test_line_graph_degrees(self):
        g = make_line_graph(5)
        assert g.out_degree.tolist() == [1, 1, 1, 1, 0]
        assert g.in_degree.tolist() == [0, 1, 1, 1, 1]


class TestAdjacencyViews:
    def test_out_neighbors(self, tiny_graph):
        assert sorted(tiny_graph.out_neighbors(1).tolist()) == [0, 0, 2]

    def test_in_neighbors(self, tiny_graph):
        assert sorted(tiny_graph.in_neighbors(0).tolist()) == [1, 1, 3]

    def test_incident_concatenation(self, tiny_graph):
        inc = tiny_graph.incident_neighbors(1)
        assert len(inc) == tiny_graph.degree[1]
        assert sorted(inc.tolist()) == [0, 0, 0, 2]

    def test_incident_counts_self_loops_twice(self, tiny_graph):
        inc = tiny_graph.incident_neighbors(2)
        # degree counts the self loop in both out and in.
        assert len(inc) == tiny_graph.degree[2]
        assert inc.tolist().count(2) == 2

    def test_views_are_views(self, tiny_graph):
        view = tiny_graph.out_neighbors(1)
        assert view.base is tiny_graph.out_nbrs

    def test_isolated_vertex(self):
        g = Graph(3, np.array([[0, 1]]))
        assert len(g.incident_neighbors(2)) == 0

    def test_csr_matches_edge_list(self, medium_graph):
        graph, _ = medium_graph
        for v in range(0, graph.num_vertices, 17):
            expected_out = sorted(
                graph.edges[graph.edges[:, 0] == v][:, 1].tolist()
            )
            assert sorted(graph.out_neighbors(v).tolist()) == expected_out
            expected_in = sorted(
                graph.edges[graph.edges[:, 1] == v][:, 0].tolist()
            )
            assert sorted(graph.in_neighbors(v).tolist()) == expected_in


class TestDerivedGraphs:
    def test_reversed_swaps_degrees(self, tiny_graph):
        rev = tiny_graph.reversed()
        np.testing.assert_array_equal(rev.out_degree, tiny_graph.in_degree)
        np.testing.assert_array_equal(rev.in_degree, tiny_graph.out_degree)

    def test_reversed_twice_is_identity(self, tiny_graph):
        assert tiny_graph.reversed().reversed() == tiny_graph

    def test_equality_ignores_edge_order(self):
        e = np.array([[0, 1], [1, 2]])
        assert Graph(3, e) == Graph(3, e[::-1].copy())

    def test_inequality_different_edges(self):
        assert Graph(3, np.array([[0, 1]])) != Graph(3, np.array([[1, 0]]))

    def test_density(self):
        g = Graph(4, np.array([[0, 1], [2, 3]]))
        assert g.density == pytest.approx(2 / 16)

    def test_to_undirected_edges_canonical(self, tiny_graph):
        und = tiny_graph.to_undirected_edges()
        assert (und[:, 0] <= und[:, 1]).all()
        assert und.shape == tiny_graph.edges.shape


class TestDigest:
    def test_digest_is_stable_and_hex(self, tiny_graph):
        d = tiny_graph.digest()
        assert d == tiny_graph.digest()
        assert len(d) == 64
        int(d, 16)  # valid hex

    def test_digest_invariant_under_edge_order(self):
        edges = np.array([[0, 1], [2, 3], [1, 2], [3, 0], [0, 1]])
        shuffled = edges[[4, 2, 0, 3, 1]]
        assert Graph(4, edges).digest() == Graph(4, shuffled).digest()

    def test_digest_covers_isolated_vertices(self):
        edges = np.array([[0, 1], [1, 2]])
        # Same edge multiset, one extra degree-0 vertex: different graphs,
        # different addresses.
        assert Graph(3, edges).digest() != Graph(4, edges).digest()

    def test_digest_distinguishes_edge_content(self):
        assert (
            Graph(3, np.array([[0, 1]])).digest()
            != Graph(3, np.array([[0, 2]])).digest()
        )

    def test_digest_counts_multiplicity(self):
        once = Graph(3, np.array([[0, 1], [1, 2]]))
        twice = Graph(3, np.array([[0, 1], [0, 1], [1, 2]]))
        assert once.digest() != twice.digest()
