"""Unit tests for the block-merge phase (Alg. 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Blockmodel, SBPConfig
from repro.core.merge import block_merge_phase
from repro.parallel.backend import (
    available_merge_backends,
    get_merge_backend,
)
from repro.parallel.merge import SerialMergeBackend, VectorizedMergeBackend
from repro.utils.rng import philox_stream


@pytest.fixture
def singleton_state(planted_graph):
    graph, truth = planted_graph
    return graph, Blockmodel.singleton(graph), truth


class TestBlockMergePhase:
    def test_halves_blocks(self, singleton_state):
        graph, bm, _ = singleton_state
        C = bm.num_blocks
        merged = block_merge_phase(bm, graph, C // 2, SBPConfig(seed=1), iteration=1)
        assert merged.num_blocks == C - C // 2
        merged.check_consistency(graph)

    def test_original_untouched(self, singleton_state):
        graph, bm, _ = singleton_state
        before = bm.B.copy()
        block_merge_phase(bm, graph, 10, SBPConfig(seed=1), iteration=1)
        np.testing.assert_array_equal(bm.B, before)

    def test_zero_merges_copy(self, singleton_state):
        graph, bm, _ = singleton_state
        out = block_merge_phase(bm, graph, 0, SBPConfig(seed=1), iteration=1)
        assert out is not bm
        assert out.num_blocks == bm.num_blocks

    def test_cannot_merge_below_one(self, tiny_graph, tiny_truth):
        bm = Blockmodel.from_assignment(tiny_graph, tiny_truth)
        out = block_merge_phase(bm, tiny_graph, 99, SBPConfig(seed=1), iteration=1)
        assert out.num_blocks == 1

    def test_deterministic_per_seed(self, singleton_state):
        graph, bm, _ = singleton_state
        a = block_merge_phase(bm, graph, 20, SBPConfig(seed=7), iteration=2)
        b = block_merge_phase(bm, graph, 20, SBPConfig(seed=7), iteration=2)
        np.testing.assert_array_equal(a.assignment, b.assignment)

    def test_different_seeds_differ(self, singleton_state):
        graph, bm, _ = singleton_state
        a = block_merge_phase(bm, graph, 20, SBPConfig(seed=7), iteration=2)
        b = block_merge_phase(bm, graph, 20, SBPConfig(seed=8), iteration=2)
        assert not np.array_equal(a.assignment, b.assignment)

    def test_dense_relabeling(self, singleton_state):
        graph, bm, _ = singleton_state
        merged = block_merge_phase(bm, graph, 30, SBPConfig(seed=3), iteration=1)
        labels = np.unique(merged.assignment)
        np.testing.assert_array_equal(labels, np.arange(merged.num_blocks))

    def test_merges_respect_structure(self, planted_graph):
        """Merging singletons on a planted graph should mostly join
        vertices of the same true community: with min-normalization a
        strict refinement of the truth scores 1.0, so the merged
        partition must stay well above chance."""
        from repro.metrics import normalized_mutual_information

        graph, truth = planted_graph
        bm = Blockmodel.singleton(graph)
        merged = block_merge_phase(
            bm, graph, graph.num_vertices // 2, SBPConfig(seed=5), iteration=1
        )
        homogeneity = normalized_mutual_information(
            truth, merged.assignment, norm="min"
        )
        assert homogeneity > 0.5


class TestMergeBackendEquivalence:
    """The vectorized scan must be bit-identical to the serial oracle."""

    @pytest.mark.parametrize("seed", [0, 3, 11])
    @pytest.mark.parametrize("proposals", [1, 3, 10])
    def test_scan_bit_identical(self, planted_graph, seed, proposals):
        graph, _ = planted_graph
        bm = Blockmodel.singleton(graph)
        C = bm.num_blocks
        uniforms = philox_stream(seed, 0, 1).random((C, proposals, 4))
        delta_s, target_s = SerialMergeBackend().evaluate_merges(bm, uniforms)
        delta_v, target_v = VectorizedMergeBackend().evaluate_merges(bm, uniforms)
        np.testing.assert_array_equal(target_s, target_v)
        # exact float equality, not allclose: decisions must match bitwise
        assert delta_s.tobytes() == delta_v.tobytes()

    @pytest.mark.parametrize("seed", [2, 9])
    def test_scan_bit_identical_partway(self, medium_graph, seed):
        """Equivalence must also hold on a coarsened (non-singleton) state
        where B has multi-count cells and empty rows are possible."""
        graph, _ = medium_graph
        bm = Blockmodel.singleton(graph)
        bm = block_merge_phase(
            bm, graph, bm.num_blocks // 2, SBPConfig(seed=seed), iteration=1
        )
        C = bm.num_blocks
        uniforms = philox_stream(seed, 0, 2).random((C, 5, 4))
        delta_s, target_s = SerialMergeBackend().evaluate_merges(bm, uniforms)
        delta_v, target_v = VectorizedMergeBackend().evaluate_merges(bm, uniforms)
        np.testing.assert_array_equal(target_s, target_v)
        assert delta_s.tobytes() == delta_v.tobytes()

    @pytest.mark.parametrize("seed", [1, 7])
    @pytest.mark.parametrize("num_merges", [1, 20, 10_000])
    def test_phase_assignment_identical(self, planted_graph, seed, num_merges):
        """Full phase (scan + greedy apply) agrees, including the
        ``num_merges > C - 1`` clamp."""
        graph, _ = planted_graph
        bm = Blockmodel.singleton(graph)
        out_s = block_merge_phase(
            bm, graph, num_merges,
            SBPConfig(seed=seed, merge_backend="serial"), iteration=1,
        )
        out_v = block_merge_phase(
            bm, graph, num_merges,
            SBPConfig(seed=seed, merge_backend="vectorized"), iteration=1,
        )
        assert out_s.num_blocks == out_v.num_blocks
        np.testing.assert_array_equal(out_s.assignment, out_v.assignment)

    def test_single_block_is_noop(self, tiny_graph):
        bm = Blockmodel.from_assignment(
            tiny_graph, np.zeros(tiny_graph.num_vertices, dtype=np.int64)
        )
        for backend in ("serial", "vectorized"):
            out = block_merge_phase(
                bm, tiny_graph, 5,
                SBPConfig(seed=1, merge_backend=backend), iteration=1,
            )
            assert out.num_blocks == 1

    def test_registry(self):
        names = available_merge_backends()
        assert "serial" in names and "vectorized" in names
        assert isinstance(get_merge_backend("serial"), SerialMergeBackend)
        assert isinstance(get_merge_backend("vectorized"), VectorizedMergeBackend)
        with pytest.raises(Exception):
            get_merge_backend("no-such-backend")

    def test_timer_sections_populated(self, planted_graph):
        from repro.utils.timer import StopwatchPool

        graph, _ = planted_graph
        bm = Blockmodel.singleton(graph)
        timers = StopwatchPool()
        block_merge_phase(
            bm, graph, 10, SBPConfig(seed=4), iteration=1, timers=timers
        )
        assert timers.elapsed("merge_scan") > 0.0
        assert timers.elapsed("merge_apply") > 0.0
