"""Unit tests for the block-merge phase (Alg. 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Blockmodel, SBPConfig
from repro.core.merge import block_merge_phase


@pytest.fixture
def singleton_state(planted_graph):
    graph, truth = planted_graph
    return graph, Blockmodel.singleton(graph), truth


class TestBlockMergePhase:
    def test_halves_blocks(self, singleton_state):
        graph, bm, _ = singleton_state
        C = bm.num_blocks
        merged = block_merge_phase(bm, graph, C // 2, SBPConfig(seed=1), iteration=1)
        assert merged.num_blocks == C - C // 2
        merged.check_consistency(graph)

    def test_original_untouched(self, singleton_state):
        graph, bm, _ = singleton_state
        before = bm.B.copy()
        block_merge_phase(bm, graph, 10, SBPConfig(seed=1), iteration=1)
        np.testing.assert_array_equal(bm.B, before)

    def test_zero_merges_copy(self, singleton_state):
        graph, bm, _ = singleton_state
        out = block_merge_phase(bm, graph, 0, SBPConfig(seed=1), iteration=1)
        assert out is not bm
        assert out.num_blocks == bm.num_blocks

    def test_cannot_merge_below_one(self, tiny_graph, tiny_truth):
        bm = Blockmodel.from_assignment(tiny_graph, tiny_truth)
        out = block_merge_phase(bm, tiny_graph, 99, SBPConfig(seed=1), iteration=1)
        assert out.num_blocks == 1

    def test_deterministic_per_seed(self, singleton_state):
        graph, bm, _ = singleton_state
        a = block_merge_phase(bm, graph, 20, SBPConfig(seed=7), iteration=2)
        b = block_merge_phase(bm, graph, 20, SBPConfig(seed=7), iteration=2)
        np.testing.assert_array_equal(a.assignment, b.assignment)

    def test_different_seeds_differ(self, singleton_state):
        graph, bm, _ = singleton_state
        a = block_merge_phase(bm, graph, 20, SBPConfig(seed=7), iteration=2)
        b = block_merge_phase(bm, graph, 20, SBPConfig(seed=8), iteration=2)
        assert not np.array_equal(a.assignment, b.assignment)

    def test_dense_relabeling(self, singleton_state):
        graph, bm, _ = singleton_state
        merged = block_merge_phase(bm, graph, 30, SBPConfig(seed=3), iteration=1)
        labels = np.unique(merged.assignment)
        np.testing.assert_array_equal(labels, np.arange(merged.num_blocks))

    def test_merges_respect_structure(self, planted_graph):
        """Merging singletons on a planted graph should mostly join
        vertices of the same true community: with min-normalization a
        strict refinement of the truth scores 1.0, so the merged
        partition must stay well above chance."""
        from repro.metrics import normalized_mutual_information

        graph, truth = planted_graph
        bm = Blockmodel.singleton(graph)
        merged = block_merge_phase(
            bm, graph, graph.num_vertices // 2, SBPConfig(seed=5), iteration=1
        )
        homogeneity = normalized_mutual_information(
            truth, merged.assignment, norm="min"
        )
        assert homogeneity > 0.5
