"""Unit tests for the MDL objective (Eqs. 1-2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Blockmodel
from repro.sbm.entropy import (
    dcsbm_log_likelihood,
    description_length,
    h_binary,
    normalized_description_length,
    null_description_length,
    xlogx,
)


class TestXlogx:
    def test_zero_convention(self):
        assert xlogx(0.0) == 0.0

    def test_scalar(self):
        assert xlogx(np.e) == pytest.approx(np.e)

    def test_array(self):
        out = xlogx(np.array([0.0, 1.0, 2.0]))
        np.testing.assert_allclose(out, [0.0, 0.0, 2 * np.log(2)])

    def test_never_nan(self):
        assert not np.isnan(xlogx(np.array([0, 0, 5]))).any()


class TestHBinary:
    def test_zero(self):
        assert h_binary(0.0) == 0.0

    def test_known_value(self):
        # h(1) = 2 log 2 - 0
        assert h_binary(1.0) == pytest.approx(2 * np.log(2))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            h_binary(-0.1)

    def test_monotone_increasing(self):
        xs = np.linspace(0.01, 10, 50)
        values = [h_binary(float(x)) for x in xs]
        assert all(b > a for a, b in zip(values, values[1:]))


class TestLogLikelihood:
    def test_direct_formula_agreement(self):
        """The g-expansion must equal Eq. 1 computed directly."""
        rng = np.random.default_rng(3)
        B = rng.integers(0, 6, (4, 4)).astype(np.int64)
        d_out = B.sum(axis=1)
        d_in = B.sum(axis=0)
        expected = 0.0
        for i in range(4):
            for j in range(4):
                if B[i, j] > 0 and d_out[i] > 0 and d_in[j] > 0:
                    expected += B[i, j] * np.log(B[i, j] / (d_out[i] * d_in[j]))
        assert dcsbm_log_likelihood(B, d_out, d_in) == pytest.approx(expected)

    def test_single_block(self):
        B = np.array([[10]])
        assert dcsbm_log_likelihood(B, B.sum(1), B.sum(0)) == pytest.approx(
            -10 * np.log(10)
        )

    def test_perfectly_assortative_is_high(self):
        B_struct = np.diag([5, 5]).astype(np.int64)
        B_flat = np.full((2, 2), 5 // 2 + 1)[:2, :2]  # not used; clarity
        ll_struct = dcsbm_log_likelihood(B_struct, B_struct.sum(1), B_struct.sum(0))
        B_mixed = np.array([[3, 2], [2, 3]])
        ll_mixed = dcsbm_log_likelihood(B_mixed, B_mixed.sum(1), B_mixed.sum(0))
        assert ll_struct > ll_mixed


class TestDescriptionLength:
    def test_null_model_formula(self):
        E, V = 100, 30
        B = np.array([[E]])
        mdl = description_length(E, V, B, B.sum(1), B.sum(0), num_blocks=1)
        assert mdl == pytest.approx(null_description_length(E, V))

    def test_zero_edges(self):
        assert description_length(0, 5, np.zeros((2, 2)), np.zeros(2), np.zeros(2)) == 0.0
        assert null_description_length(0, 5) == 0.0

    def test_more_blocks_cost_more_without_structure(self):
        """Splitting a uniform blockmodel should not reduce the MDL."""
        E, V = 200, 40
        one = np.array([[E]])
        mdl1 = description_length(E, V, one, one.sum(1), one.sum(0))
        four = np.full((2, 2), E // 4)
        mdl2 = description_length(E, V, four, four.sum(1), four.sum(0))
        assert mdl2 > mdl1

    def test_blockmodel_method_agrees(self, tiny_graph, tiny_truth):
        bm = Blockmodel.from_assignment(tiny_graph, tiny_truth)
        expected = description_length(
            tiny_graph.num_edges,
            tiny_graph.num_vertices,
            bm.B,
            bm.d_out,
            bm.d_in,
            num_blocks=2,
        )
        assert bm.mdl(tiny_graph) == pytest.approx(expected)


class TestNormalizedMDL:
    def test_null_is_one(self):
        E, V = 150, 50
        assert normalized_description_length(
            null_description_length(E, V), E, V
        ) == pytest.approx(1.0)

    def test_structure_below_one(self, tiny_graph, tiny_truth):
        bm = Blockmodel.from_assignment(tiny_graph, tiny_truth)
        value = normalized_description_length(
            bm.mdl(tiny_graph), tiny_graph.num_edges, tiny_graph.num_vertices
        )
        assert 0.0 < value < 2.0

    def test_zero_edges_nan(self):
        assert np.isnan(normalized_description_length(0.0, 0, 5))
