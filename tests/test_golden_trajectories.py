"""Plan-vs-golden equivalence: the sweep engine must replay history.

``tests/fixtures/golden_trajectories.npz`` was captured at the
pre-engine commit, when ``run_mcmc_phase`` still dispatched through the
hand-written ``metropolis`` / ``async_gibbs`` / ``batched`` / ``hybrid``
sweep chain. Every (variant, update strategy, execution backend, seed)
combination must reproduce those trajectories **byte-for-byte**: same
assignment vector after every sweep, bit-identical MDL floats, same
search history. Any diff means the engine changed the chain, not just
the code.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest
from numpy.testing import assert_array_equal

sys.path.insert(0, str(Path(__file__).resolve().parent))

import golden_utils as gu  # noqa: E402

_FIXTURE_PATH = Path(__file__).resolve().parent / gu.FIXTURE_NAME
_MATRIX = list(gu.matrix())


@pytest.fixture(scope="module")
def fixture():
    if not _FIXTURE_PATH.exists():  # pragma: no cover - setup guard
        pytest.fail(f"golden fixture missing: {_FIXTURE_PATH}")
    with np.load(_FIXTURE_PATH) as data:
        yield {key: data[key] for key in data.files}


@pytest.fixture(scope="module")
def graph():
    return gu.golden_graph()


def _ids(combo):
    return gu.combo_key(*combo)


@pytest.mark.parametrize("combo", _MATRIX, ids=_ids)
def test_phase_trajectory_matches_golden(fixture, graph, combo):
    variant, strategy, backend, seed = combo
    key = gu.combo_key(*combo)
    assignments, mdls = gu.trace_phase(graph, variant, strategy, backend, seed)
    assert_array_equal(
        assignments,
        fixture[f"phase/{key}/assignments"],
        err_msg=f"per-sweep assignment trajectory drifted for {key}",
    )
    assert_array_equal(
        mdls,
        fixture[f"phase/{key}/mdl"],
        err_msg=f"per-sweep MDL sequence drifted for {key}",
    )


@pytest.mark.parametrize("combo", _MATRIX, ids=_ids)
def test_full_run_matches_golden(fixture, graph, combo):
    variant, strategy, backend, seed = combo
    key = gu.combo_key(*combo)
    result = gu.run_full(graph, variant, strategy, backend, seed)
    for name, live in result.items():
        assert_array_equal(
            live,
            fixture[f"full/{key}/{name}"],
            err_msg=f"run_sbp {name} drifted for {key}",
        )


# ----------------------------------------------------------------------
# Alternative storage engines against the *dense-era* fixture: sparse
# and hybrid are only admissible because they replay the exact same
# chains, so both are held to the same golden keys — no per-engine
# re-capture, no second truth.
# ----------------------------------------------------------------------

_STORAGES = ("sparse", "hybrid")


@pytest.mark.parametrize("storage", _STORAGES)
@pytest.mark.parametrize("combo", _MATRIX, ids=_ids)
def test_phase_trajectory_matches_golden_storage(
    fixture, graph, combo, storage
):
    variant, strategy, backend, seed = combo
    key = gu.combo_key(*combo)
    assignments, mdls = gu.trace_phase(
        graph, variant, strategy, backend, seed, block_storage=storage
    )
    assert_array_equal(
        assignments,
        fixture[f"phase/{key}/assignments"],
        err_msg=f"{storage} storage drifted the assignment trajectory for {key}",
    )
    assert_array_equal(
        mdls,
        fixture[f"phase/{key}/mdl"],
        err_msg=f"{storage} storage drifted the MDL sequence for {key}",
    )


@pytest.mark.parametrize("storage", _STORAGES)
@pytest.mark.parametrize("combo", _MATRIX, ids=_ids)
def test_full_run_matches_golden_storage(fixture, graph, combo, storage):
    variant, strategy, backend, seed = combo
    key = gu.combo_key(*combo)
    result = gu.run_full(graph, variant, strategy, backend, seed,
                         block_storage=storage)
    for name, live in result.items():
        assert_array_equal(
            live,
            fixture[f"full/{key}/{name}"],
            err_msg=f"{storage} run_sbp {name} drifted for {key}",
        )
