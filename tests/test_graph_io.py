"""Unit tests for graph readers/writers."""

from __future__ import annotations

import pytest

from repro import (
    read_edge_list,
    read_matrix_market,
    write_edge_list,
    write_matrix_market,
)
from repro.errors import GraphFormatError


class TestEdgeList:
    def test_roundtrip(self, tiny_graph, tmp_path):
        path = tmp_path / "g.txt"
        write_edge_list(tiny_graph, path)
        back = read_edge_list(path)
        assert back == tiny_graph

    def test_comments_and_blank_lines(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# comment\n\n% other comment\n0 1\n1 2\n")
        g = read_edge_list(path)
        assert g.num_edges == 2
        assert g.num_vertices == 3

    def test_explicit_num_vertices(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\n")
        g = read_edge_list(path, num_vertices=10)
        assert g.num_vertices == 10

    def test_bad_line_raises_with_lineno(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("0 1\nnope\n")
        with pytest.raises(GraphFormatError, match=":2"):
            read_edge_list(path)

    def test_negative_id_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("-1 0\n")
        with pytest.raises(GraphFormatError):
            read_edge_list(path)

    def test_empty_without_size_rejected(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("# nothing\n")
        with pytest.raises(GraphFormatError):
            read_edge_list(path)


class TestMatrixMarket:
    def test_roundtrip(self, tiny_graph, tmp_path):
        path = tmp_path / "g.mtx"
        write_matrix_market(tiny_graph, path)
        back = read_matrix_market(path)
        assert back == tiny_graph

    def test_symmetric_expansion(self, tmp_path):
        path = tmp_path / "s.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern symmetric\n"
            "3 3 3\n"
            "2 1\n"
            "3 2\n"
            "1 1\n"
        )
        g = read_matrix_market(path)
        # two off-diagonal entries mirrored + one diagonal kept once
        assert g.num_edges == 5
        assert g.self_loops[0] == 1

    def test_real_field_accepted(self, tmp_path):
        path = tmp_path / "r.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate real general\n"
            "2 2 1\n"
            "1 2 3.5\n"
        )
        g = read_matrix_market(path)
        assert g.num_edges == 1

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("1 1 0\n")
        with pytest.raises(GraphFormatError):
            read_matrix_market(path)

    def test_non_square_rejected(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("%%MatrixMarket matrix coordinate pattern general\n2 3 0\n")
        with pytest.raises(GraphFormatError):
            read_matrix_market(path)

    def test_truncated_entries_rejected(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("%%MatrixMarket matrix coordinate pattern general\n2 2 2\n1 2\n")
        with pytest.raises(GraphFormatError):
            read_matrix_market(path)

    def test_unsupported_symmetry_rejected(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("%%MatrixMarket matrix coordinate pattern hermitian\n2 2 0\n")
        with pytest.raises(GraphFormatError):
            read_matrix_market(path)

    def test_comment_lines_after_header(self, tmp_path):
        path = tmp_path / "c.mtx"
        path.write_text(
            "%%MatrixMarket matrix coordinate pattern general\n"
            "% produced by hand\n"
            "2 2 1\n"
            "1 2\n"
        )
        g = read_matrix_market(path)
        assert g.num_edges == 1


class TestWeightedEdgeList:
    def test_weights_expand(self, tmp_path):
        from repro.graph.io import read_weighted_edge_list

        path = tmp_path / "w.txt"
        path.write_text("0 1 3\n1 2 2\n")
        g = read_weighted_edge_list(path)
        assert g.num_edges == 5
        assert g.out_degree[0] == 3

    def test_missing_weight_defaults_to_one(self, tmp_path):
        from repro.graph.io import read_weighted_edge_list

        path = tmp_path / "w.txt"
        path.write_text("0 1\n1 2 4\n")
        g = read_weighted_edge_list(path)
        assert g.num_edges == 5

    def test_negative_weight_rejected(self, tmp_path):
        from repro.graph.io import read_weighted_edge_list

        path = tmp_path / "w.txt"
        path.write_text("0 1 -2\n")
        with pytest.raises(GraphFormatError):
            read_weighted_edge_list(path)

    def test_non_integer_weight_rejected(self, tmp_path):
        from repro.graph.io import read_weighted_edge_list

        path = tmp_path / "w.txt"
        path.write_text("0 1 x\n")
        with pytest.raises(GraphFormatError):
            read_weighted_edge_list(path)

    def test_plain_edge_list_compatible(self, tiny_graph, tmp_path):
        from repro.graph.io import read_weighted_edge_list

        path = tmp_path / "g.txt"
        write_edge_list(tiny_graph, path)
        assert read_weighted_edge_list(path) == tiny_graph
