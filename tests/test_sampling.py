"""SamBaS sampling front-end: samplers, extension pass, pipeline gates.

Covers the sampler registry contracts (determinism, structure,
isolated-vertex coverage), the argmax-ΔMDL membership extension against
a brute-force oracle, the ``sample_rate=1.0`` bit-identity gate (the
front-end must be a pure bypass), composition with the distributed
backend and all block storages, the config/digest/serialization wiring,
and a small NMI quality smoke at rate 0.3.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.results import SBPResult
from repro.core.sbp import run_sbp
from repro.core.variants import SBPConfig
from repro.errors import ReproError
from repro.generators import DCSBMParams, generate_dcsbm
from repro.graph.graph import Graph
from repro.io.serialize import load_result, save_result
from repro.mcmc.engine import (
    DegreeBand,
    DegreeTop,
    degree_descending_batches,
    split_vertices_by_degree,
)
from repro.metrics.nmi import normalized_mutual_information
from repro.resilience.checkpoint import RunCheckpointer, config_digest
from repro.sampling.extension import extend_assignment
from repro.sampling.samplers import (
    available_samplers,
    sample_graph,
    sample_size,
)
from repro.sbm.entropy import xlogx
from repro.types import PhaseTimings

SAMPLERS = ("uniform-random", "degree-weighted", "expansion-snowball")
RATES = (0.1, 0.3, 0.5, 0.9, 1.0)


def _planted(num_vertices=240, seed=3, **overrides):
    params = dict(
        num_vertices=num_vertices, num_communities=4,
        within_between_ratio=8.0, mean_degree=12.0, d_max=30,
    )
    params.update(overrides)
    return generate_dcsbm(DCSBMParams(**params), seed=seed)


def _with_isolated(num_isolated=7, seed=5):
    """A planted graph plus ``num_isolated`` trailing degree-0 vertices."""
    base, truth = _planted(num_vertices=90, seed=seed)
    V = base.num_vertices + num_isolated
    src, dst = [], []
    for v in range(base.num_vertices):
        for w in base.out_neighbors(v):
            src.append(v)
            dst.append(int(w))
    edges = np.column_stack([src, dst]).astype(np.int64)
    truth = np.concatenate([truth, np.full(num_isolated, -1, dtype=np.int64)])
    return Graph(V, edges), truth


def _weakly_connected(graph: Graph, vertices: np.ndarray) -> bool:
    """BFS over incident (undirected) edges restricted to ``vertices``."""
    members = set(int(v) for v in vertices)
    seen = {int(vertices[0])}
    frontier = [int(vertices[0])]
    while frontier:
        v = frontier.pop()
        for w in graph.incident_neighbors(v):
            w = int(w)
            if w in members and w not in seen:
                seen.add(w)
                frontier.append(w)
    return len(seen) == len(members)


class TestSamplers:
    def test_registry_lists_the_three_samplers(self):
        assert list(available_samplers()) == sorted(SAMPLERS)

    def test_sample_size_ceil_and_clamp(self):
        assert sample_size(100, 0.1) == 10
        assert sample_size(100, 0.101) == 11
        assert sample_size(100, 1.0) == 100
        assert sample_size(3, 0.01) == 1
        with pytest.raises(ReproError):
            sample_size(100, 0.0)
        with pytest.raises(ReproError):
            sample_size(100, 1.5)

    @pytest.mark.parametrize("sampler", SAMPLERS)
    @pytest.mark.parametrize("rate", (0.1, 0.3, 0.7))
    def test_same_seed_identical_sample(self, sampler, rate):
        graph, _ = _planted()
        a = sample_graph(graph, rate, sampler, seed=11)
        b = sample_graph(graph, rate, sampler, seed=11)
        assert np.array_equal(a.vertices, b.vertices)
        assert a.graph == b.graph
        assert a.sampler == sampler
        # sorted ascending, distinct, in range, exact ceil size
        assert np.array_equal(a.vertices, np.unique(a.vertices))
        assert a.num_sampled == sample_size(graph.num_vertices, rate)
        assert 0 <= a.vertices[0] and a.vertices[-1] < graph.num_vertices

    @pytest.mark.parametrize("sampler", SAMPLERS)
    def test_different_seeds_differ(self, sampler):
        graph, _ = _planted()
        a = sample_graph(graph, 0.3, sampler, seed=1)
        b = sample_graph(graph, 0.3, sampler, seed=2)
        assert not np.array_equal(a.vertices, b.vertices)

    def test_samplers_draw_independent_streams(self):
        graph, _ = _planted()
        picks = {
            s: sample_graph(graph, 0.3, s, seed=9).vertices for s in SAMPLERS
        }
        assert not np.array_equal(picks["uniform-random"], picks["degree-weighted"])
        assert not np.array_equal(picks["uniform-random"], picks["expansion-snowball"])

    @pytest.mark.parametrize("sampler", SAMPLERS)
    def test_rate_one_is_every_vertex(self, sampler):
        graph, _ = _planted(num_vertices=60)
        s = sample_graph(graph, 1.0, sampler, seed=3)
        assert np.array_equal(s.vertices, np.arange(graph.num_vertices))
        assert s.realized_rate == 1.0
        assert s.graph == graph

    @pytest.mark.parametrize("rate", (0.2, 0.5, 0.8))
    def test_snowball_connected_on_connected_graph(self, rate):
        # A directed ring plus chords is weakly connected by construction.
        V = 120
        ring = np.column_stack([np.arange(V), (np.arange(V) + 1) % V])
        chords = np.column_stack([np.arange(0, V, 3), (np.arange(0, V, 3) * 7 + 2) % V])
        graph = Graph(V, np.vstack([ring, chords]).astype(np.int64))
        s = sample_graph(graph, rate, "expansion-snowball", seed=13)
        assert _weakly_connected(graph, s.vertices)

    def test_degree_weighted_inclusion_frequencies(self):
        # Star: hub 0 (degree 30), leaves 1..30 (degree 1), isolated
        # 31..39 (degree 0, weight 1 thanks to the +1 smoothing).
        V = 40
        edges = np.column_stack([
            np.zeros(30, dtype=np.int64), np.arange(1, 31, dtype=np.int64)
        ])
        graph = Graph(V, edges)
        hits = np.zeros(V, dtype=np.int64)
        seeds = 400
        for seed in range(seeds):
            hits[sample_graph(graph, 5 / V, "degree-weighted", seed).vertices] += 1
        freq = hits / seeds
        hub, leaf, isolated = freq[0], freq[1:31].mean(), freq[31:].mean()
        assert hub > 0.6, f"hub sampled only {hub:.2f} of the time"
        assert 0.02 < leaf < 0.35
        assert isolated > 0.005, "isolated vertices must keep inclusion mass"
        assert leaf > isolated  # weight 2 vs weight 1

    def test_lift_marks_unsampled_as_minus_one(self):
        graph, _ = _planted(num_vertices=50)
        s = sample_graph(graph, 0.4, "uniform-random", seed=2)
        lifted = s.lift(np.arange(s.num_sampled) % 3)
        assert lifted.shape == (graph.num_vertices,)
        assert np.array_equal(lifted[s.vertices], np.arange(s.num_sampled) % 3)
        mask = np.ones(graph.num_vertices, dtype=bool)
        mask[s.vertices] = False
        assert (lifted[mask] == -1).all()

    def test_unknown_sampler_rejected(self):
        graph, _ = _planted(num_vertices=40)
        with pytest.raises(ReproError, match="unknown sampler"):
            sample_graph(graph, 0.5, "nope", seed=0)


def _oracle_scores(graph, assignment, vertex, C):
    """Brute-force ΔMDL oracle: rebuild the partial blockmodel with
    ``vertex`` placed in each candidate block and return the full
    likelihood Σg(B) − Σg(d_out) − Σg(d_in) per block (higher=better)."""
    lengths = np.diff(graph.out_ptr)
    tails = np.repeat(np.arange(graph.num_vertices), lengths)
    heads = graph.out_nbrs
    scores = np.empty(C, dtype=np.float64)
    for s in range(C):
        trial = assignment.copy()
        trial[vertex] = s
        live = (trial[tails] >= 0) & (trial[heads] >= 0)
        B = np.bincount(
            trial[tails[live]] * C + trial[heads[live]], minlength=C * C
        ).reshape(C, C)
        scores[s] = (
            np.sum(xlogx(B))
            - np.sum(xlogx(B.sum(axis=1)))
            - np.sum(xlogx(B.sum(axis=0)))
        )
    return scores


class TestExtension:
    def _partial(self, graph, truth, rate, seed):
        rng = np.random.default_rng(seed)
        assignment = truth.copy()
        drop = rng.permutation(graph.num_vertices)[
            : int((1 - rate) * graph.num_vertices)
        ]
        assignment[drop] = -1
        return assignment

    @pytest.mark.parametrize("seed", (0, 1, 2))
    def test_matches_brute_force_oracle(self, seed):
        graph, truth = _planted(num_vertices=60, seed=seed)
        C = int(truth.max()) + 1
        partial = self._partial(graph, truth, 0.5, seed)
        # One batch: every vertex scores against the same frozen counts,
        # exactly what the oracle rebuilds per candidate.
        extended = extend_assignment(graph, partial, C, num_batches=1)
        for v in np.nonzero(partial < 0)[0]:
            scores = _oracle_scores(graph, partial, int(v), C)
            chosen = extended[v]
            assert scores[chosen] >= scores.max() - 1e-9, (
                f"vertex {v}: chose block {chosen} "
                f"({scores[chosen]:.12f}) but oracle max is "
                f"{scores.max():.12f} at block {int(scores.argmax())}"
            )

    @pytest.mark.parametrize("num_batches", (1, 2, 8, 64))
    def test_assigns_every_vertex(self, num_batches):
        graph, truth = _planted(num_vertices=80, seed=4)
        C = int(truth.max()) + 1
        partial = self._partial(graph, truth, 0.3, 7)
        extended = extend_assignment(graph, partial, C, num_batches)
        assert (extended >= 0).all() and (extended < C).all()
        assigned = partial >= 0
        assert np.array_equal(extended[assigned], partial[assigned])

    def test_deterministic(self):
        graph, truth = _planted(num_vertices=80, seed=4)
        C = int(truth.max()) + 1
        partial = self._partial(graph, truth, 0.3, 7)
        a = extend_assignment(graph, partial, C, 8)
        b = extend_assignment(graph, partial, C, 8)
        assert np.array_equal(a, b)

    def test_orphans_join_largest_block(self):
        # 0-3 assigned (blocks 0,0,1,0 -> block 0 is largest), vertex 4
        # connects only to unassigned 5; both have no assigned
        # neighbours and must fall back to block 0.
        graph = Graph(6, np.array([[0, 1], [2, 3], [4, 5], [5, 4]], dtype=np.int64))
        partial = np.array([0, 0, 1, 0, -1, -1], dtype=np.int64)
        extended = extend_assignment(graph, partial, 2, num_batches=1)
        assert extended[4] == 0 and extended[5] == 0

    def test_later_batches_see_earlier_assignments(self):
        # Chain anchored at an assigned vertex: with per-vertex batches
        # the chain is absorbed link by link into the anchor's block.
        edges = np.array(
            [[0, 1], [1, 0], [1, 2], [2, 1], [2, 3], [3, 2]], dtype=np.int64
        )
        graph = Graph(5, np.vstack([edges, [[4, 4]]]).astype(np.int64))
        partial = np.array([0, -1, -1, -1, 1], dtype=np.int64)
        extended = extend_assignment(graph, partial, 2, num_batches=4)
        assert extended[1] == 0 and extended[2] == 0 and extended[3] == 0

    def test_rejects_bad_input(self):
        graph, truth = _planted(num_vertices=40)
        with pytest.raises(ReproError):
            extend_assignment(graph, np.full(graph.num_vertices, -1), 3, 1)
        with pytest.raises(ReproError):
            extend_assignment(graph, truth, int(truth.max()), 1)


class TestIsolatedVertexCoverage:
    """Satellite: degree machinery must never drop degree-0 vertices."""

    def test_degree_batches_partition_with_isolated(self):
        graph, _ = _with_isolated()
        vertices = np.arange(graph.num_vertices, dtype=np.int64)
        for num_batches in (1, 3, 8, 200):
            batches = degree_descending_batches(graph, vertices, num_batches)
            merged = np.concatenate([b for b in batches if b.size])
            assert np.array_equal(np.sort(merged), vertices)
            degs = graph.degree[merged]
            assert (np.diff(degs) <= 0).all(), "must be degree-descending"

    def test_degree_selectors_cover_isolated(self):
        graph, _ = _with_isolated()
        everything = np.arange(graph.num_vertices, dtype=np.int64)
        for fraction in (0.0, 0.1, 0.5, 0.9, 1.0):
            vstar, vminus = split_vertices_by_degree(graph, fraction)
            assert np.array_equal(
                np.sort(np.concatenate([vstar, vminus])), everything
            )
            top = DegreeTop(fraction).select(graph)
            band = DegreeBand(fraction, 1.0).select(graph)
            assert np.array_equal(np.sort(np.concatenate([top, band])), everything)

    @pytest.mark.parametrize("sampler", SAMPLERS)
    @pytest.mark.parametrize("rate", RATES)
    def test_pipeline_assigns_isolated_at_every_rate(self, sampler, rate):
        graph, _ = _with_isolated()
        config = SBPConfig(
            variant="a-sbp", seed=7, sample_rate=rate, sampler=sampler,
            max_sweeps=6,
        )
        result = run_sbp(graph, config)
        assert result.assignment.shape == (graph.num_vertices,)
        assert (result.assignment >= 0).all()
        assert (result.assignment < result.num_blocks).all()

    def test_rate_one_bit_identical_on_isolated_graph(self):
        graph, _ = _with_isolated()
        plain = run_sbp(graph, SBPConfig(variant="a-sbp", seed=3))
        sampled = run_sbp(graph, SBPConfig(variant="a-sbp", seed=3, sample_rate=1.0))
        assert np.array_equal(plain.assignment, sampled.assignment)
        assert plain.mdl == sampled.mdl


class TestBitIdentityGate:
    """The CI gate: sample_rate=1.0 must be a pure bypass of the front-end."""

    @pytest.mark.parametrize("variant", ("a-sbp", "h-sbp"))
    @pytest.mark.parametrize("seed", (3, 11))
    @pytest.mark.parametrize("storage", ("dense", "auto"))
    def test_rate_one_matches_plain_pipeline(self, variant, seed, storage):
        graph, _ = _planted(num_vertices=120, seed=1)
        base = SBPConfig(variant=variant, seed=seed, block_storage=storage)
        plain = run_sbp(graph, base)
        sampled = run_sbp(
            graph,
            SBPConfig(
                variant=variant, seed=seed, block_storage=storage,
                sample_rate=1.0, sampler="degree-weighted",
            ),
        )
        assert np.array_equal(plain.assignment, sampled.assignment)
        assert plain.mdl == sampled.mdl
        assert plain.search_history == sampled.search_history
        assert plain.mcmc_sweeps == sampled.mcmc_sweeps
        assert sampled.timings.sampling == 0.0
        assert sampled.timings.extension == 0.0
        assert sampled.timings.finetune == 0.0
        assert sampled.sampler == "" and sampled.sample_rate == 1.0

    def test_sampled_pipeline_is_deterministic(self):
        graph, _ = _planted(num_vertices=160, seed=2)
        config = SBPConfig(variant="a-sbp", seed=5, sample_rate=0.4)
        a = run_sbp(graph, config)
        b = run_sbp(graph, config)
        assert np.array_equal(a.assignment, b.assignment)
        assert a.mdl == b.mdl
        assert a.sampler == "degree-weighted"
        assert a.sample_rate == pytest.approx(0.4, abs=0.01)
        assert a.timings.sampling > 0.0

    def test_timings_total_includes_frontend_stages(self):
        graph, _ = _planted(num_vertices=160, seed=2)
        result = run_sbp(graph, SBPConfig(variant="a-sbp", seed=5, sample_rate=0.4))
        t = result.timings
        assert t.total == pytest.approx(
            t.block_merge + t.mcmc + t.rebuild + t.other + t.sampling + t.extension
        )
        assert t.finetune == pytest.approx(
            t.block_merge + t.mcmc + t.rebuild + t.other
        )


class TestComposition:
    def test_sampled_run_matches_across_storages(self):
        graph, _ = _planted(num_vertices=160, seed=6)
        results = [
            run_sbp(graph, SBPConfig(
                variant="a-sbp", seed=9, sample_rate=0.5,
                block_storage=storage,
            ))
            for storage in ("dense", "sparse", "hybrid")
        ]
        for other in results[1:]:
            assert np.array_equal(results[0].assignment, other.assignment)
            assert results[0].mdl == other.mdl

    def test_sampled_run_matches_on_distributed_backend(self):
        graph, _ = _planted(num_vertices=120, seed=6)
        local = run_sbp(graph, SBPConfig(
            variant="a-sbp", seed=9, sample_rate=0.5, backend="vectorized",
        ))
        dist = run_sbp(graph, SBPConfig(
            variant="a-sbp", seed=9, sample_rate=0.5,
            backend="distributed:inproc:2",
        ))
        assert np.array_equal(local.assignment, dist.assignment)
        assert local.mdl == dist.mdl

    def test_rate_030_matches_on_distributed_backend(self):
        # The CLI composition `--sample-rate 0.3 --backend
        # distributed:inproc:2`: a small sample leaves most vertices to
        # the extension pass, which must still shard bit-identically.
        graph, _ = _planted(num_vertices=120, seed=6)
        local = run_sbp(graph, SBPConfig(
            variant="a-sbp", seed=9, sample_rate=0.3, backend="vectorized",
        ))
        dist = run_sbp(graph, SBPConfig(
            variant="a-sbp", seed=9, sample_rate=0.3,
            backend="distributed:inproc:2",
        ))
        assert np.array_equal(local.assignment, dist.assignment)
        assert local.mdl == dist.mdl
        assert local.sample_rate == dist.sample_rate == 0.3

    def test_sampled_checkpoint_resume_is_bit_identical(self, tmp_path):
        graph, _ = _planted(num_vertices=120, seed=6)
        config = SBPConfig(variant="a-sbp", seed=4, sample_rate=0.5)
        fresh = run_sbp(graph, config)
        first = run_sbp(graph, config, checkpointer=RunCheckpointer(tmp_path))
        resumed = run_sbp(graph, config, checkpointer=RunCheckpointer(tmp_path))
        for result in (first, resumed):
            assert np.array_equal(fresh.assignment, result.assignment)
            assert fresh.mdl == result.mdl


class TestConfigWiring:
    def test_default_block_storage_is_auto(self):
        assert SBPConfig().block_storage == "auto"

    def test_cli_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["detect", "g.txt"])
        assert args.block_storage == "auto"
        assert args.sample_rate == 1.0
        assert args.sampler == "degree-weighted"
        assert args.extension_batches == 8

    def test_sampling_defaults_and_validation(self):
        config = SBPConfig()
        assert config.sample_rate == 1.0
        assert config.sampler == "degree-weighted"
        assert config.extension_batches == 8
        with pytest.raises(ValueError):
            SBPConfig(sample_rate=0.0)
        with pytest.raises(ValueError):
            SBPConfig(sample_rate=1.5)
        with pytest.raises(ValueError):
            SBPConfig(extension_batches=0)
        with pytest.raises(ReproError):
            SBPConfig(sampler="bogus")

    def test_digest_covers_sampling_fields(self):
        base = SBPConfig(block_storage="dense")
        assert config_digest(base) != config_digest(base.replace(sample_rate=0.5))
        assert config_digest(base) != config_digest(
            base.replace(sampler="uniform-random")
        )
        assert config_digest(base) != config_digest(
            base.replace(extension_batches=4)
        )
        assert config_digest(base) == config_digest(base.replace())


class TestSerializationV6:
    def test_round_trip_preserves_sampling_fields(self, tmp_path):
        graph, _ = _planted(num_vertices=120, seed=2)
        result = run_sbp(graph, SBPConfig(variant="a-sbp", seed=5, sample_rate=0.4))
        path = tmp_path / "result.json"
        save_result(result, path)
        loaded = load_result(path)
        assert loaded.sampler == result.sampler
        assert loaded.sample_rate == result.sample_rate
        assert loaded.timings.sampling == result.timings.sampling
        assert loaded.timings.extension == result.timings.extension
        assert loaded.timings.finetune == result.timings.finetune
        assert np.array_equal(loaded.assignment, result.assignment)

    def test_legacy_v5_payload_reads_defaults(self, tmp_path):
        payload = {
            "format": "repro.sbp_result",
            "version": 5,
            "variant": "a-sbp",
            "assignment": [0, 1, 0],
            "num_blocks": 2,
            "mdl": 10.0,
            "normalized_mdl": 0.5,
            "num_vertices": 3,
            "num_edges": 4,
            "timings": {
                "block_merge": 1.0, "mcmc": 2.0, "rebuild": 0.5, "other": 0.1,
            },
            "mcmc_sweeps": 7,
            "outer_iterations": 2,
            "seed": 0,
            "converged": True,
            "interrupted": False,
            "block_storage": "dense",
        }
        path = tmp_path / "legacy.json"
        path.write_text(json.dumps(payload))
        loaded = load_result(path)
        assert loaded.sampler == ""
        assert loaded.sample_rate == 1.0
        assert loaded.timings.sampling == 0.0
        assert loaded.timings.finetune == 0.0

    def test_summary_row_has_sampling_columns(self):
        result = SBPResult(
            variant="a-sbp", assignment=np.zeros(3, dtype=np.int64),
            num_blocks=1, mdl=1.0, normalized_mdl=0.1, num_vertices=3,
            num_edges=2, timings=PhaseTimings(), mcmc_sweeps=0,
            outer_iterations=0, seed=0, converged=True,
            sampler="degree-weighted", sample_rate=0.25,
        )
        row = result.summary_row()
        assert row["sampler"] == "degree-weighted"
        assert row["sample_rate"] == 0.25


class TestQualitySmoke:
    def test_nmi_floor_at_rate_03(self):
        # The CI quality gate: a strongly assortative DCSBM where the
        # rate-0.3 sample still carries the community structure.
        graph, truth = generate_dcsbm(
            DCSBMParams(
                num_vertices=600, num_communities=4,
                within_between_ratio=8.0, mean_degree=16.0, d_max=40,
            ),
            seed=3,
        )
        result = run_sbp(graph, SBPConfig(variant="a-sbp", seed=7, sample_rate=0.3))
        nmi = normalized_mutual_information(truth, result.assignment)
        assert nmi >= 0.85, f"sampled NMI {nmi:.3f} below the 0.85 floor"
        assert result.timings.sampling > 0.0
        assert result.sample_rate == pytest.approx(0.3)
