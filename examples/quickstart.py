#!/usr/bin/env python
"""Quickstart: detect communities in a synthetic graph with all three
SBP variants and compare their accuracy and MCMC runtime.

This is the 60-second tour of the library:

1. generate a directed graph with planted communities (DCSBM),
2. run classic SBP (serial Metropolis-Hastings), A-SBP (asynchronous
   Gibbs) and H-SBP (the paper's hybrid), and
3. score each result against the planted ground truth.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    DCSBMParams,
    SBPConfig,
    Variant,
    generate_dcsbm,
    normalized_mutual_information,
    run_sbp,
)


def main() -> None:
    # A directed multigraph with 4 planted communities: power-law
    # degrees, ~8 edges per vertex, and 8x more within- than
    # between-community edge rate.
    graph, truth = generate_dcsbm(
        DCSBMParams(
            num_vertices=200,
            num_communities=4,
            within_between_ratio=8.0,
            mean_degree=8.0,
            degree_exponent=2.5,
            d_max=24,
        ),
        seed=42,
    )
    print(f"graph: {graph.num_vertices} vertices, {graph.num_edges} edges, "
          f"4 planted communities\n")

    print(f"{'algorithm':8s} {'blocks':>6s} {'NMI':>6s} {'MDL_norm':>9s} "
          f"{'MCMC s':>7s} {'sweeps':>6s}")
    for variant in (Variant.SBP, Variant.ASBP, Variant.HSBP):
        result = run_sbp(graph, SBPConfig(variant=variant, seed=7))
        nmi = normalized_mutual_information(truth, result.assignment)
        print(
            f"{variant.value:8s} {result.num_blocks:6d} {nmi:6.3f} "
            f"{result.normalized_mdl:9.3f} {result.mcmc_seconds:7.2f} "
            f"{result.mcmc_sweeps:6d}"
        )

    print(
        "\nExpected shape (the paper's headline): all variants find the "
        "planted\nstructure; A-SBP and H-SBP finish the MCMC phase much "
        "faster than SBP\nbecause the asynchronous sweeps evaluate all "
        "vertices against a frozen\nblockmodel and can therefore be "
        "executed in parallel (here: batched)."
    )


if __name__ == "__main__":
    main()
