#!/usr/bin/env python
"""Distributed A-SBP prototype on the simulated cluster (paper §6).

Walks through the distribution design the paper leaves as future work:

1. partition a graph's vertices over ranks (three strategies, with
   edge-cut / balance diagnostics),
2. run asynchronous-Gibbs sweeps where each rank evaluates only its
   owned vertices against a replicated blockmodel,
3. verify the result is bit-identical to the single-node run (the
   asynchronous-Gibbs staleness tolerance is what makes that legal), and
4. read the modeled cost: per-rank compute, allgather time, makespan.

Run:  python examples/distributed_prototype.py
"""

from __future__ import annotations

import numpy as np

from repro import Blockmodel, generate_real_world_standin
from repro.distributed import (
    DistributedGraph,
    SimCommWorld,
    distributed_async_sweep,
    model_distributed_scaling,
    partition_vertices,
)
from repro.distributed.partition import partition_stats
from repro.mcmc.async_gibbs import async_gibbs_sweep
from repro.parallel.vectorized import VectorizedBackend
from repro.utils.rng import SweepRandomness


def partitioning_tour(graph) -> None:
    print("=== partitioning strategies (8 ranks) ===")
    print(f"{'strategy':>16s} {'edge cut':>9s} {'degree imbalance':>16s} "
          f"{'ghosts':>7s}")
    for strategy in ("contiguous", "hash", "degree_balanced"):
        owner = partition_vertices(graph, 8, strategy)
        stats = partition_stats(graph, owner, strategy)
        dgraph = DistributedGraph(graph, owner)
        print(f"{strategy:>16s} {stats.edge_cut_fraction:8.1%} "
              f"{stats.degree_imbalance:16.3f} {dgraph.total_ghosts:7d}")
    print()


def equivalence_demo(graph) -> None:
    print("=== distributed == single-node (the correctness invariant) ===")
    rng = np.random.default_rng(3)
    assignment = rng.integers(0, 16, graph.num_vertices)
    rand = SweepRandomness.draw(7, 11, 0, graph.num_vertices)

    single = Blockmodel.from_assignment(graph, assignment, 16)
    async_gibbs_sweep(single, graph,
                      np.arange(graph.num_vertices, dtype=np.int64),
                      rand, 3.0, VectorizedBackend())

    dist = Blockmodel.from_assignment(graph, assignment, 16)
    owner = partition_vertices(graph, 8, "degree_balanced")
    world = SimCommWorld(8)
    report = distributed_async_sweep(
        dist, DistributedGraph(graph, owner), world, rand, 3.0,
        VectorizedBackend(), seconds_per_unit=2e-6, rebuild_seconds=2e-4,
    )
    identical = np.array_equal(single.assignment, dist.assignment)
    print(f"  8-rank sweep == 1-node sweep: {identical}")
    print(f"  modeled makespan: {report.makespan_seconds * 1e3:.2f} ms, "
          f"allgather volume: {report.communication_bytes} bytes\n")


def scaling_demo(graph) -> None:
    print("=== modeled scaling over rank counts ===")
    rng = np.random.default_rng(5)
    assignment = rng.integers(0, 24, graph.num_vertices)
    rows = model_distributed_scaling(
        graph, assignment, rank_counts=[1, 2, 4, 8, 16, 32], sweeps=3,
        seconds_per_unit=2e-6, rebuild_seconds=2e-4,
    )
    print(f"{'ranks':>5s} {'makespan (ms)':>13s} {'edge cut':>9s} "
          f"{'identical':>9s}")
    for row in rows:
        print(f"{row['ranks']:5d} {row['makespan_s'] * 1e3:13.2f} "
              f"{row['edge_cut']:8.1%} "
              f"{'yes' if row['result_matches_1rank'] else 'NO':>9s}")
    print("\ncompute shrinks with ranks while the allgather + rebuild floor")
    print("remains — the distributed analogue of the Fig. 7 taper.")


def main() -> None:
    graph = generate_real_world_standin("soc-Slashdot0902", seed=2)
    print(f"graph: soc-Slashdot0902 stand-in, V={graph.num_vertices} "
          f"E={graph.num_edges}\n")
    partitioning_tour(graph)
    equivalence_demo(graph)
    scaling_demo(graph)


if __name__ == "__main__":
    main()
