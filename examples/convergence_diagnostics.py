#!/usr/bin/env python
"""When does asynchronous Gibbs fail? Influence diagnostics on toy graphs.

The paper's §2.3/§3.2 story, made runnable:

* On a small graph, compute the *total influence* alpha of Eq. 3 (the
  De Sa et al. quantity governing asynchronous-Gibbs mixing) — and watch
  its cost explode with graph size, which is why the paper calls it
  intractable.
* Verify the H-SBP heuristic: influence *exerted* by a vertex correlates
  with its degree, so processing the few high-degree vertices serially
  (V*) protects convergence.
* Demonstrate the failure mode on a weak-structure graph: A-SBP's NMI
  drops below SBP/H-SBP while its MCMC runs much faster.

Run:  python examples/convergence_diagnostics.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import (
    DCSBMParams,
    SBPConfig,
    Variant,
    generate_dcsbm,
    normalized_mutual_information,
    run_sbp,
    total_influence,
)
from repro.metrics import influence_degree_correlation


def influence_cost_demo() -> None:
    print("=== Eq. 3 influence: value and cost ===")
    print(f"{'V':>4s} {'E':>5s} {'alpha':>7s} {'seconds':>8s}")
    for n in (15, 25, 40):
        graph, truth = generate_dcsbm(
            DCSBMParams(num_vertices=n, num_communities=3,
                        within_between_ratio=6.0, mean_degree=5.0),
            seed=n,
        )
        start = time.perf_counter()
        alpha = total_influence(graph, truth, beta=1.0)
        elapsed = time.perf_counter() - start
        print(f"{n:4d} {graph.num_edges:5d} {alpha:7.3f} {elapsed:8.3f}")
    print("cost grows superlinearly -> infeasible at real-graph scale, as")
    print("the paper argues (O(V^2 C^3) naively).\n")


def degree_heuristic_demo() -> None:
    print("=== H-SBP's premise: degree predicts exerted influence ===")
    for seed in (1, 2, 3):
        graph, truth = generate_dcsbm(
            DCSBMParams(num_vertices=30, num_communities=3,
                        within_between_ratio=6.0, mean_degree=5.0),
            seed=seed,
        )
        rho = influence_degree_correlation(graph, truth, beta=1.0)
        print(f"  graph #{seed}: Spearman rho(degree, exerted influence) "
              f"= {rho:+.3f}")
    print("positive on every trial: the high-degree V* set is the right")
    print("set to protect with serial processing.\n")


def failure_mode_demo() -> None:
    print("=== A-SBP failure on weak structure (sparse, low r) ===")
    graph, truth = generate_dcsbm(
        DCSBMParams(num_vertices=300, num_communities=4,
                    within_between_ratio=8.0, mean_degree=6.0,
                    degree_exponent=2.5, d_max=16),
        seed=12,
    )
    print(f"graph: V={graph.num_vertices} E={graph.num_edges}")
    print(f"{'algorithm':8s} {'NMI':>6s} {'MDL_norm':>9s} {'MCMC s':>7s} "
          f"{'sweeps':>6s}")
    for variant in (Variant.SBP, Variant.ASBP, Variant.HSBP):
        result = run_sbp(graph, SBPConfig(variant=variant, seed=4))
        nmi = normalized_mutual_information(truth, result.assignment)
        print(f"{variant.value:8s} {nmi:6.3f} {result.normalized_mdl:9.3f} "
              f"{result.mcmc_seconds:7.2f} {result.mcmc_sweeps:6d}")
    print("typical outcome: H-SBP holds SBP's accuracy; pure A-SBP often")
    print("converges to a worse partition on graphs like this (Fig. 4a).")


def main() -> None:
    np.set_printoptions(precision=3)
    influence_cost_demo()
    degree_heuristic_demo()
    failure_mode_demo()


if __name__ == "__main__":
    main()
