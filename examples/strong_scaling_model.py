#!/usr/bin/env python
"""Strong-scaling what-if analysis with the thread-execution model.

Reproduces the paper's Fig. 7 methodology interactively: run H-SBP once
with per-sweep work recording, calibrate the thread model against the
measured wall-clock, then ask "what if this ran on a 128-core node?" —
including the load-balancing ablation (OpenMP-static vs LPT-balanced
scheduling) the paper leaves as future work.

Run:  python examples/strong_scaling_model.py
"""

from __future__ import annotations

from repro import SBPConfig, Variant, generate_real_world_standin, run_sbp
from repro.parallel.simulate import SimulatedThreadModel

THREADS = [1, 2, 4, 8, 16, 32, 64, 128]


def main() -> None:
    graph = generate_real_world_standin("soc-Slashdot0902", seed=0)
    print(f"soc-Slashdot0902 stand-in: V={graph.num_vertices} "
          f"E={graph.num_edges}")
    print("running H-SBP once with work recording...")

    result = run_sbp(
        graph, SBPConfig(variant=Variant.HSBP, seed=9, record_work=True)
    )
    print(f"measured: mcmc={result.timings.mcmc:.2f}s "
          f"rebuild={result.timings.rebuild:.2f}s "
          f"sweeps={result.mcmc_sweeps}\n")

    curves = {}
    for schedule in ("static", "balanced"):
        model = SimulatedThreadModel.calibrated(
            result.sweep_stats,
            measured_mcmc_seconds=result.timings.mcmc,
            measured_rebuild_seconds=result.timings.rebuild,
            schedule=schedule,
            rebuild_parallel_fraction=0.5,
        )
        curves[schedule] = model.scaling_curve(THREADS)

    print(f"{'threads':>7s} {'static (s)':>11s} {'balanced (s)':>13s} "
          f"{'static speedup':>14s}")
    base = curves["static"][1]
    for p in THREADS:
        print(f"{p:7d} {curves['static'][p]:11.3f} "
              f"{curves['balanced'][p]:13.3f} {base / curves['static'][p]:13.2f}x")

    print(
        "\nReading the curve: the serial V* pass and the rebuild barrier "
        "bound the\nspeedup (Amdahl), and static chunking of power-law "
        "degree work adds\nimbalance — so gains taper around 8-16 threads, "
        "exactly the paper's Fig. 7\nobservation. Balanced (LPT) "
        "scheduling recovers part of the imbalance loss."
    )


if __name__ == "__main__":
    main()
