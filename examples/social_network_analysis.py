#!/usr/bin/env python
"""Community detection on an unlabeled "social network" (Table 2 style).

Real-world graphs have no ground truth, so this example mirrors the
paper's real-world protocol (§4.2):

* analyse a social-media-like graph (the soc-Slashdot0902 stand-in),
* run SBP and H-SBP five times each and keep the lowest-MDL result,
* judge quality by normalized MDL and directed modularity,
* report the MCMC-phase speedup of the hybrid algorithm,
* inspect the detected communities (sizes, internal edge fractions).

Run:  python examples/social_network_analysis.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    Blockmodel,
    SBPConfig,
    Variant,
    directed_modularity,
    generate_real_world_standin,
    run_best_of,
)


def describe_communities(graph, assignment) -> None:
    bm = Blockmodel.from_assignment(graph, assignment)
    bm.compact()
    sizes = bm.block_sizes()
    internal = np.diag(bm.B)
    print(f"  {'community':>9s} {'size':>5s} {'internal edges':>14s} "
          f"{'internal %':>10s}")
    order = np.argsort(-sizes)
    for c in order[:8]:
        total = bm.d_out[c]
        pct = 100.0 * internal[c] / total if total else 0.0
        print(f"  {c:9d} {sizes[c]:5d} {internal[c]:14d} {pct:9.1f}%")
    if len(order) > 8:
        print(f"  ... and {len(order) - 8} more")


def main() -> None:
    graph = generate_real_world_standin("soc-Slashdot0902", seed=1)
    print(f"soc-Slashdot0902 stand-in: {graph.num_vertices} vertices, "
          f"{graph.num_edges} edges (original: 82168 / 948464)\n")

    runs = 5  # the paper's best-of-5 protocol
    outcomes = {}
    for variant in (Variant.SBP, Variant.HSBP):
        best, all_results = run_best_of(
            graph, SBPConfig(variant=variant, seed=3), runs=runs
        )
        total_mcmc = sum(r.mcmc_seconds for r in all_results)
        outcomes[variant] = (best, total_mcmc)
        print(f"{variant.value}: best of {runs} runs")
        print(f"  communities:     {best.num_blocks}")
        print(f"  normalized MDL:  {best.normalized_mdl:.4f}  (< 1 means "
              f"structure beats the null model)")
        print(f"  modularity:      "
              f"{directed_modularity(graph, best.assignment):.4f}")
        print(f"  MCMC time (sum): {total_mcmc:.2f}s over "
              f"{sum(r.mcmc_sweeps for r in all_results)} sweeps")
        describe_communities(graph, best.assignment)
        print()

    sbp_best, sbp_time = outcomes[Variant.SBP]
    hsbp_best, hsbp_time = outcomes[Variant.HSBP]
    print(f"H-SBP MCMC speedup over SBP: {sbp_time / hsbp_time:.2f}x")
    print(f"quality gap (normalized MDL): "
          f"{hsbp_best.normalized_mdl - sbp_best.normalized_mdl:+.4f} "
          f"(the paper finds H-SBP matches SBP)")


if __name__ == "__main__":
    main()
