#!/usr/bin/env python
"""DCSBM generator playground: reproduce Table 1/2-style graph families.

Shows the generator knobs the paper varies (§4.1): within:between ratio
r, degree power-law exponent and bounds, density — plus graph IO
(edge-list and MatrixMarket round trips) and corpus access.

Run:  python examples/generator_playground.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    SYNTHETIC_SPECS,
    DCSBMParams,
    corpus_ids,
    generate_dcsbm,
    generate_real_world_standin,
    generate_synthetic,
    read_edge_list,
    summarize,
    write_edge_list,
    write_matrix_market,
)


def ratio_sweep() -> None:
    print("=== within:between ratio r controls assortativity ===")
    print(f"{'r':>4s} {'within-edge %':>13s} {'truth MDL_norm':>14s}")
    from repro import partition_normalized_mdl

    for r in (1.0, 2.0, 4.0, 8.0):
        graph, truth = generate_dcsbm(
            DCSBMParams(num_vertices=250, num_communities=4,
                        within_between_ratio=r, mean_degree=8.0),
            seed=5,
        )
        src, dst = truth[graph.edges[:, 0]], truth[graph.edges[:, 1]]
        within = 100.0 * float((src == dst).mean())
        mdl_norm = partition_normalized_mdl(graph, truth)
        print(f"{r:4.1f} {within:12.1f}% {mdl_norm:14.3f}")
    print("r=1 is a structure-less degree-corrected random graph; MDL_norm")
    print("above 1 means even the true labels don't beat the null model.\n")


def degree_shape_sweep() -> None:
    print("=== degree exponent controls the tail ===")
    print(f"{'exponent':>8s} {'max degree':>10s} {'mean':>6s} {'p99':>5s}")
    import numpy as np
    for exponent in (1.9, 2.5, 3.5):
        graph, _ = generate_dcsbm(
            DCSBMParams(num_vertices=400, num_communities=4,
                        within_between_ratio=5.0, degree_exponent=exponent,
                        d_min=1, d_max=60, mean_degree=6.0),
            seed=6,
        )
        stats = summarize(graph)
        p99 = int(np.percentile(graph.degree, 99))
        print(f"{exponent:8.1f} {max(stats.max_out_degree, stats.max_in_degree):10d} "
              f"{stats.mean_degree:6.2f} {p99:5d}")
    print("smaller exponents -> heavier tails (hub vertices), the regime")
    print("where H-SBP's degree-based V* split pays off.")
    print()


def corpus_tour() -> None:
    print("=== the paper's corpus (scaled) ===")
    shown = corpus_ids()[:4]
    for gid in shown:
        spec = SYNTHETIC_SPECS[gid]
        graph, truth = generate_synthetic(gid, seed=0)
        print(f"  {gid}: V={graph.num_vertices} E={graph.num_edges} "
              f"r={spec.r} dense={spec.dense} "
              f"communities={int(truth.max()) + 1}")
    standin = generate_real_world_standin("wiki-Vote", seed=0)
    print(f"  wiki-Vote stand-in: V={standin.num_vertices} "
          f"E={standin.num_edges}\n")


def io_roundtrip() -> None:
    print("=== graph IO ===")
    graph, _ = generate_dcsbm(
        DCSBMParams(num_vertices=50, num_communities=3,
                    within_between_ratio=5.0, mean_degree=4.0),
        seed=7,
    )
    with tempfile.TemporaryDirectory() as tmp:
        edge_path = Path(tmp) / "graph.txt"
        mm_path = Path(tmp) / "graph.mtx"
        write_edge_list(graph, edge_path)
        write_matrix_market(graph, mm_path)
        back = read_edge_list(edge_path)
        print(f"  edge list round trip: {back == graph}")
        print(f"  wrote MatrixMarket: {mm_path.name} "
              f"({mm_path.stat().st_size} bytes)")


def main() -> None:
    np.set_printoptions(precision=3)
    ratio_sweep()
    degree_shape_sweep()
    corpus_tour()
    io_roundtrip()


if __name__ == "__main__":
    main()
