"""Legacy setup shim for offline editable installs (see pyproject.toml)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'On the Parallelization of MCMC for Community "
        "Detection' (ICPP 2022): SBP, A-SBP and H-SBP with a DCSBM substrate"
    ),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy>=1.24", "scipy>=1.10"],
    extras_require={"jit": ["numba>=0.59"]},
)
