"""F5 — Figs. 5a/5b: H-SBP vs SBP quality on real-world graphs.

Paper shape: H-SBP matches SBP on all graphs in both normalized MDL and
modularity; p2p-Gnutella31 has no community structure (MDL_norm >= ~1
for both algorithms).
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.bench.experiments import fig5_quality_rows
from repro.bench.harness import current_scale
from repro.bench.reporting import format_grouped_bars, format_table, write_report


def test_fig5_quality(benchmark):
    scale = current_scale()
    rows = run_once(benchmark, fig5_quality_rows, scale, seed=0)
    report = format_table(
        rows,
        title="Figs. 5a/5b: normalized MDL and modularity on real-world graphs",
    ) + "\n" + format_grouped_bars(
        rows, "graph", ["MDLnorm_sbp", "MDLnorm_h-sbp"],
        title="Fig. 5a (bars, common scale 0..1)", vmax=1.0,
    )
    write_report("fig5_quality", report)

    # H-SBP matches SBP's normalized MDL within a small tolerance.
    for row in rows:
        assert row["MDLnorm_h-sbp"] <= row["MDLnorm_sbp"] + 0.03, row

    # p2p-Gnutella31: no structure found by either algorithm.
    p2p = [r for r in rows if r["graph"] == "p2p-Gnutella31"]
    if p2p:
        assert p2p[0]["MDLnorm_sbp"] >= 0.98
        assert p2p[0]["MDLnorm_h-sbp"] >= 0.98
