"""F3 — Fig. 3: NMI vs modularity and NMI vs normalized MDL.

The paper justifies MDL^norm as its unsupervised quality score by showing
it correlates with NMI more strongly (r^2 ~ 0.85) than modularity does
(r^2 ~ 0.75) across all synthetic runs. We fit both regressions over the
same pooled runs.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.bench.experiments import fig3_correlations
from repro.bench.harness import current_scale
from repro.bench.reporting import format_table, write_report


def test_fig3_correlation(benchmark):
    scale = current_scale()
    fit_modularity, fit_mdl, rows = run_once(
        benchmark, fig3_correlations, scale, seed=0
    )
    report = (
        format_table(rows, title="Fig. 3 scatter data (one row per run)")
        + "\n"
        + fit_modularity.describe("NMI ~ Modularity")
        + "\n"
        + fit_mdl.describe("NMI ~ (1 - MDL_norm)")
        + "\n"
    )
    write_report("fig3_correlation", report)

    # Paper shape: both quality proxies correlate strongly with NMI
    # (r^2 ~ 0.75-0.85 in the paper). Which one edges ahead is noise at
    # smoke scale (21 points); the strong-correlation claim is the
    # robust part, so the ordering tolerance is generous.
    assert fit_mdl.r_squared > 0.5
    assert fit_modularity.r_squared > 0.5
    assert fit_mdl.r_squared >= fit_modularity.r_squared - 0.15
    assert fit_mdl.p_value < 0.01
