"""F2 — Fig. 2: SBP execution-time breakdown on synthetic graphs.

The paper's motivation figure: the serial MCMC phase takes up to ~98% of
SBP runtime, which is why parallelizing it matters. We print the same
per-graph percentage split of serial-SBP wall-clock between the MCMC
phase and (block merge + other).
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.bench.experiments import fig2_breakdown_rows
from repro.bench.harness import current_scale
from repro.bench.reporting import format_table, write_report


def test_fig2_breakdown(benchmark):
    scale = current_scale()
    rows = run_once(benchmark, fig2_breakdown_rows, scale, seed=0)
    report = format_table(
        rows,
        title="Fig. 2: percent of SBP execution time in the MCMC phase",
    )
    write_report("fig2_breakdown", report)

    # Paper shape: the MCMC phase dominates on the clear majority of
    # graphs (up to 98% there; the merge phase is relatively heavier at
    # our scale, so the bar is lower but the dominance must hold).
    dominated = sum(1 for r in rows if r["mcmc_pct"] > 50.0)
    assert dominated >= 0.7 * len(rows), [
        (r["graph"], round(r["mcmc_pct"], 1)) for r in rows
    ]
