"""T2 — Table 2: real-world graphs and their synthetic stand-ins.

Prints the original SuiteSparse V/E next to the generated stand-in's,
showing the preserved density (E/V, capped at 20) per graph.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.bench.experiments import table2_rows
from repro.bench.reporting import format_table, write_report


def test_table2_realworld(benchmark):
    rows = run_once(benchmark, table2_rows, seed=0)
    report = format_table(
        rows,
        title="Table 2: real-world graphs -> DCSBM stand-ins",
    )
    write_report("table2_realworld", report)

    assert len(rows) == 14
    for row in rows:
        cap = min(row["paper_E/V"], 20.0)
        # stand-in density within 25% of the (capped) original
        assert abs(row["standin_E/V"] - cap) / cap < 0.25, row["ID"]
