"""EXT — §6 future work: distributed A-SBP scaling (beyond the paper).

The paper's conclusion asks how to distribute A-SBP/H-SBP across nodes.
This extension bench runs the prototype distribution (replicated
blockmodel, owned-vertex evaluation, one allgather per sweep) on the
simulated cluster and reports, per rank count:

* modeled makespan (compute + collectives under the network model),
* communication volume and partition quality (edge cut, imbalance),
* the invariant that the result is bit-identical to 1-rank A-SBP.

The second table swaps the model for the real thing: full
``--backend distributed:<transport>:<ranks>`` runs over the three wire
transports, clean and under seeded chaos, reporting measured wall
clock, wire traffic, and masked-fault counts — all bit-identical to
the single-node oracle.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import run_once
from repro import generate_real_world_standin
from repro.bench.reporting import format_table, write_report
from repro.core.sbp import run_sbp
from repro.core.variants import SBPConfig
from repro.distributed.dsbp import model_distributed_scaling
from repro.generators import DCSBMParams, generate_dcsbm

RANKS = [1, 2, 4, 8, 16, 32]

WIRE_CHAOS = dict(drop=0.04, duplicate=0.03, delay=0.03, truncate=0.02,
                  bitflip=0.02, seed=13)


def distributed_rows(seed: int = 0):
    graph = generate_real_world_standin("soc-Slashdot0902", seed=seed)
    rng = np.random.default_rng(seed + 1)
    # a mid-inference state: a few dozen blocks, as after early merges
    assignment = rng.integers(0, 24, graph.num_vertices)
    return model_distributed_scaling(
        graph,
        assignment,
        rank_counts=RANKS,
        sweeps=3,
        strategy="degree_balanced",
        seconds_per_unit=2e-6,
        rebuild_seconds=2e-4,
        seed=seed,
    )


def test_distributed_scaling(benchmark):
    rows = run_once(benchmark, distributed_rows, seed=0)
    report = format_table(
        rows,
        title="Extension: distributed A-SBP on the simulated cluster "
              "(soc-Slashdot0902 stand-in)",
    )
    write_report("extension_distributed", report)

    # Determinism invariant: ranks never change the chain.
    assert all(r["result_matches_1rank"] for r in rows)
    # Makespan improves from 1 rank and eventually saturates on
    # collectives + rebuild (distributed Amdahl).
    makespans = [r["makespan_s"] for r in rows]
    assert makespans[1] < makespans[0]
    assert min(makespans) == makespans[-1] or makespans[-1] <= makespans[2]
    # Finer partitions cut more edges.
    cuts = [r["edge_cut"] for r in rows]
    assert all(b >= a for a, b in zip(cuts, cuts[1:]))


def transport_rows(seed: int = 7):
    graph, _ = generate_dcsbm(
        DCSBMParams(num_vertices=120, num_communities=4,
                    within_between_ratio=7.0, mean_degree=8.0, d_max=20),
        seed=seed + 100,
    )
    oracle = run_sbp(graph, SBPConfig(variant="a-sbp", seed=seed))
    rows: list[dict[str, object]] = []
    for transport in ("sim", "inproc", "pipes"):
        for ranks in (2, 4):
            for chaos in (None, WIRE_CHAOS):
                config = SBPConfig(
                    variant="a-sbp", seed=seed,
                    backend=f"distributed:{transport}:{ranks}",
                    backend_options=(
                        dict(chaos=chaos) if chaos else {}
                    ),
                )
                start = time.perf_counter()
                result = run_sbp(graph, config)
                elapsed = time.perf_counter() - start
                t = result.timings
                rows.append(
                    {
                        "transport": transport,
                        "ranks": ranks,
                        "chaos": bool(chaos),
                        "wall_s": elapsed,
                        "msgs": t.comm_messages,
                        "wire_bytes": t.comm_bytes,
                        "retries": t.comm_retries,
                        "quarantined": t.frames_quarantined,
                        "bit_identical": bool(
                            np.array_equal(result.assignment, oracle.assignment)
                            and result.mdl == oracle.mdl
                        ),
                    }
                )
    return rows


def test_distributed_transports(benchmark):
    rows = run_once(benchmark, transport_rows, seed=7)
    report = format_table(
        rows,
        title="Extension: distributed A-SBP over real wire transports "
              "(clean vs seeded chaos)",
    )
    write_report("extension_distributed_transports", report)

    # The resilience gate's core invariant, measured not mocked: no
    # transport, rank count, or maskable fault pattern moves the chain.
    assert all(r["bit_identical"] for r in rows)
    # Chaos actually fired and was actually masked on every chaotic row.
    assert all(r["retries"] > 0 for r in rows if r["chaos"])
    assert all(r["retries"] == 0 for r in rows if not r["chaos"])
