"""EXT — §6 future work: distributed A-SBP scaling (beyond the paper).

The paper's conclusion asks how to distribute A-SBP/H-SBP across nodes.
This extension bench runs the prototype distribution (replicated
blockmodel, owned-vertex evaluation, one allgather per sweep) on the
simulated cluster and reports, per rank count:

* modeled makespan (compute + collectives under the network model),
* communication volume and partition quality (edge cut, imbalance),
* the invariant that the result is bit-identical to 1-rank A-SBP.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro import generate_real_world_standin
from repro.bench.reporting import format_table, write_report
from repro.distributed.dsbp import model_distributed_scaling

RANKS = [1, 2, 4, 8, 16, 32]


def distributed_rows(seed: int = 0):
    graph = generate_real_world_standin("soc-Slashdot0902", seed=seed)
    rng = np.random.default_rng(seed + 1)
    # a mid-inference state: a few dozen blocks, as after early merges
    assignment = rng.integers(0, 24, graph.num_vertices)
    return model_distributed_scaling(
        graph,
        assignment,
        rank_counts=RANKS,
        sweeps=3,
        strategy="degree_balanced",
        seconds_per_unit=2e-6,
        rebuild_seconds=2e-4,
        seed=seed,
    )


def test_distributed_scaling(benchmark):
    rows = run_once(benchmark, distributed_rows, seed=0)
    report = format_table(
        rows,
        title="Extension: distributed A-SBP on the simulated cluster "
              "(soc-Slashdot0902 stand-in)",
    )
    write_report("extension_distributed", report)

    # Determinism invariant: ranks never change the chain.
    assert all(r["result_matches_1rank"] for r in rows)
    # Makespan improves from 1 rank and eventually saturates on
    # collectives + rebuild (distributed Amdahl).
    makespans = [r["makespan_s"] for r in rows]
    assert makespans[1] < makespans[0]
    assert min(makespans) == makespans[-1] or makespans[-1] <= makespans[2]
    # Finer partitions cut more edges.
    cuts = [r["edge_cut"] for r in rows]
    assert all(b >= a for a, b in zip(cuts, cuts[1:]))
