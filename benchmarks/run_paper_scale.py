#!/usr/bin/env python
"""Resumable paper-scale experiment runner.

Runs the full evaluation protocol (all corpus graphs / all real-world
stand-ins, best-of-N) graph by graph, appending one JSON line per
(graph, variant) to the output file. Re-running skips completed graphs,
so long campaigns can be chunked across invocations.

Usage:
    python benchmarks/run_paper_scale.py --suite synthetic --runs 3
    python benchmarks/run_paper_scale.py --suite realworld --runs 3
    python benchmarks/run_paper_scale.py --suite synthetic --report
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.bench.harness import run_variant_suite
from repro.bench.reporting import format_table
from repro.core.variants import Variant
from repro.generators.corpus import corpus_ids, generate_synthetic
from repro.generators.realworld import generate_real_world_standin, real_world_ids
from repro.metrics.nmi import normalized_mutual_information

RESULTS_DIR = Path(__file__).parent / "results" / "paper"


def _completed(path: Path) -> set[str]:
    done: set[str] = set()
    if path.exists():
        for line in path.read_text().splitlines():
            if line.strip():
                done.add(json.loads(line)["graph"])
    return done


def run_suite(suite: str, runs: int, seed: int) -> None:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIR / f"{suite}.jsonl"
    done = _completed(path)

    if suite == "synthetic":
        ids = corpus_ids(include_redacted=True)
        variants = [Variant.SBP, Variant.ASBP, Variant.HSBP]
    else:
        ids = real_world_ids()
        variants = [Variant.SBP, Variant.HSBP]

    pending = [g for g in ids if g not in done]
    print(f"{suite}: {len(done)} done, {len(pending)} pending", flush=True)
    with open(path, "a", encoding="utf-8") as fh:
        for gid in pending:
            start = time.perf_counter()
            if suite == "synthetic":
                graph, truth = generate_synthetic(gid, seed=seed)
            else:
                graph = generate_real_world_standin(gid, seed=seed)
                truth = None
            suite_result = run_variant_suite(
                gid, graph, variants, runs=runs,
                seed=seed + (17 if suite == "synthetic" else 29),
            )
            record: dict[str, object] = {
                "graph": gid,
                "V": graph.num_vertices,
                "E": graph.num_edges,
                "runs": runs,
            }
            for name, vrun in suite_result.items():
                entry = {
                    "blocks": vrun.best.num_blocks,
                    "mdl_norm": vrun.best.normalized_mdl,
                    "mcmc_s": vrun.total_mcmc_seconds,
                    "total_s": vrun.total_seconds,
                    "sweeps": vrun.total_sweeps,
                }
                if truth is not None:
                    entry["nmi"] = normalized_mutual_information(
                        truth, vrun.best.assignment
                    )
                record[name] = entry
            fh.write(json.dumps(record) + "\n")
            fh.flush()
            print(f"  {gid}: {time.perf_counter() - start:.0f}s", flush=True)
    print("suite complete" if len(pending) + len(done) == len(ids) else "chunk done")


def report(suite: str) -> None:
    path = RESULTS_DIR / f"{suite}.jsonl"
    if not path.exists():
        print(f"no results at {path}", file=sys.stderr)
        raise SystemExit(1)
    rows = []
    for line in path.read_text().splitlines():
        if not line.strip():
            continue
        rec = json.loads(line)
        row: dict[str, object] = {"graph": rec["graph"], "V": rec["V"], "E": rec["E"]}
        for name in ("sbp", "a-sbp", "h-sbp"):
            if name in rec:
                entry = rec[name]
                if "nmi" in entry:
                    row[f"NMI_{name}"] = entry["nmi"]
                row[f"MDLn_{name}"] = entry["mdl_norm"]
                row[f"sweeps_{name}"] = entry["sweeps"]
                if name != "sbp" and "sbp" in rec:
                    row[f"speedup_{name}"] = (
                        rec["sbp"]["mcmc_s"] / max(entry["mcmc_s"], 1e-12)
                    )
        rows.append(row)
    print(format_table(rows, title=f"paper-scale {suite} results"))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--suite", choices=["synthetic", "realworld"], required=True)
    parser.add_argument("--runs", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--report", action="store_true",
                        help="print the table from existing results and exit")
    args = parser.parse_args()
    if args.report:
        report(args.suite)
    else:
        run_suite(args.suite, args.runs, args.seed)


if __name__ == "__main__":
    main()
