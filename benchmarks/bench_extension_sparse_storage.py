"""EXT — §6 data-structure study: sparse vs dense blockmodel storage.

The paper's conclusion points at "data structures that are more suited
to repeated reconstruction" of B. This bench measures, across block
counts C, the costs the two representations trade:

* full reconstruction from an edge list (the A-SBP per-sweep barrier),
* a burst of O(degree) move updates (the serial MH path),
* live memory footprint,

for the dense numpy matrix vs the mirrored hash-map sparse matrix, at
the fill levels real blockmodels exhibit early (C large, B very sparse)
and late (C small, B dense) in the agglomerative schedule.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks.conftest import run_once
from repro import DCSBMParams, generate_dcsbm
from repro.bench.reporting import format_table, write_report
from repro.sbm.blockmodel import Blockmodel
from repro.sbm.delta import vertex_move_context
from repro.sbm.sparse import SparseBlockMatrix


def storage_rows(seed: int = 0):
    graph, _ = generate_dcsbm(
        DCSBMParams(num_vertices=400, num_communities=8,
                    within_between_ratio=5.0, mean_degree=8.0),
        seed=seed,
    )
    rng = np.random.default_rng(seed + 1)
    rows = []
    for C in (8, 40, 200, 400):
        assignment = rng.integers(0, C, graph.num_vertices)
        src_blocks = assignment[graph.edges[:, 0]]
        dst_blocks = assignment[graph.edges[:, 1]]

        start = time.perf_counter()
        for _ in range(5):
            bm = Blockmodel.from_assignment(graph, assignment, C)
        dense_rebuild = (time.perf_counter() - start) / 5

        start = time.perf_counter()
        for _ in range(5):
            sparse = SparseBlockMatrix.from_edges(src_blocks, dst_blocks, C)
        sparse_rebuild = (time.perf_counter() - start) / 5

        # burst of 200 random move updates on each representation
        moves = []
        for _ in range(200):
            v = int(rng.integers(graph.num_vertices))
            s = int(rng.integers(C))
            ctx = vertex_move_context(bm, graph, v)
            if s != ctx.r:
                moves.append((v, s, ctx))
        start = time.perf_counter()
        bm_work = bm.copy()
        for v, s, ctx in moves:
            # same apply-then-invert protocol as the sparse side below
            bm_work.apply_move(v, s, ctx.t_out, ctx.c_out, ctx.t_in,
                               ctx.c_in, ctx.loops, ctx.deg_out, ctx.deg_in)
            bm_work.apply_move(v, ctx.r, ctx.t_out, ctx.c_out, ctx.t_in,
                               ctx.c_in, ctx.loops, ctx.deg_out, ctx.deg_in)
        dense_moves = time.perf_counter() - start

        start = time.perf_counter()
        for v, s, ctx in moves:
            # apply then invert: contexts were computed against the
            # initial state, so each move is rolled back (cost-only).
            sparse.apply_move(ctx.r, s, ctx.t_out, ctx.c_out,
                              ctx.t_in, ctx.c_in, ctx.loops)
            sparse.apply_move(s, ctx.r, ctx.t_out, ctx.c_out,
                              ctx.t_in, ctx.c_in, ctx.loops)
        sparse_moves = time.perf_counter() - start

        rows.append(
            {
                "C": C,
                "fill": sparse.fill_fraction,
                "dense_rebuild_ms": dense_rebuild * 1e3,
                "sparse_rebuild_ms": sparse_rebuild * 1e3,
                "dense_moves_ms": dense_moves * 1e3,
                "sparse_moves_ms": sparse_moves * 1e3,
                "dense_bytes": C * C * 8,
                "sparse_bytes": sparse.memory_bytes(),
            }
        )
    return rows


def test_sparse_storage_study(benchmark):
    rows = run_once(benchmark, storage_rows, seed=0)
    report = format_table(
        rows,
        title="Extension: sparse vs dense blockmodel storage (paper §6)",
    )
    write_report("extension_sparse_storage", report)

    # The motivating crossover: at singleton-scale C the sparse matrix
    # uses far less memory than the dense one...
    big = rows[-1]
    assert big["sparse_bytes"] < big["dense_bytes"]
    # ...while at small C (post-merge) dense is at worst comparable.
    small = rows[0]
    assert small["dense_bytes"] <= small["sparse_bytes"] * 4
    # Fill fraction drops as C grows (fixed E spread over C^2 cells).
    fills = [r["fill"] for r in rows]
    assert all(b <= a for a, b in zip(fills, fills[1:]))
