"""E4 — §5.6 optimization: relaxed convergence threshold.

The discussion notes the async variants' speedups come "despite an
increase in the number of MCMC iterations", and that relaxing the
threshold ``t`` could trade a few of those extra iterations for more
speed. This ablation sweeps ``t`` for H-SBP on a synthetic graph and
reports quality/sweeps/time at each setting.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro import SBPConfig, Variant, generate_synthetic, run_sbp
from repro.bench.reporting import format_table, write_report
from repro.metrics import normalized_mutual_information

THRESHOLDS = [1e-4, 5e-4, 2e-3, 1e-2]


def threshold_ablation_rows(seed: int = 0, graph_id: str = "S2"):
    graph, truth = generate_synthetic(graph_id, seed=seed)
    rows = []
    for t in THRESHOLDS:
        config = SBPConfig(
            variant=Variant.HSBP,
            mcmc_threshold=t,
            mcmc_threshold_final=t / 5.0,
            seed=seed + 7,
        )
        result = run_sbp(graph, config)
        rows.append(
            {
                "threshold": t,
                "NMI": normalized_mutual_information(truth, result.assignment),
                "MDL_norm": result.normalized_mdl,
                "sweeps": result.mcmc_sweeps,
                "mcmc_s": result.mcmc_seconds,
            }
        )
    return rows


def test_threshold_ablation(benchmark):
    rows = run_once(benchmark, threshold_ablation_rows, seed=0, graph_id="S2")
    report = format_table(
        rows,
        title="Relaxed-threshold ablation for H-SBP on S2 (paper §5.6)",
    )
    write_report("ablation_threshold", report)

    # Relaxing t must reduce the sweep count...
    assert rows[-1]["sweeps"] < rows[0]["sweeps"]
    # ...while the default setting keeps good quality.
    default = next(r for r in rows if r["threshold"] == 5e-4)
    assert default["MDL_norm"] < 1.0
