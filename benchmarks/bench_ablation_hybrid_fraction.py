"""E2 — §4.2 ablation: the H-SBP serial fraction (paper fixes 15%).

Sweeps the V* fraction from 0 (pure A-SBP) to 0.5, reporting the
quality/runtime tradeoff the paper's 15% choice sits on: more serial
processing improves convergence robustness at the cost of MCMC time.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.bench.experiments import hybrid_fraction_ablation_rows
from repro.bench.reporting import format_table, write_report


def test_hybrid_fraction_ablation(benchmark):
    rows = run_once(benchmark, hybrid_fraction_ablation_rows, seed=0, graph_id="S2")
    report = format_table(
        rows,
        title="H-SBP V* fraction ablation on S2 (0 = pure A-SBP)",
    )
    write_report("ablation_hybrid_fraction", report)

    assert [r["vstar_fraction"] for r in rows] == [0.0, 0.05, 0.15, 0.30, 0.50]
    # Runtime grows with the serial fraction (Amdahl): the largest
    # fraction must cost more MCMC time than the pure-async end.
    assert rows[-1]["mcmc_s"] > rows[0]["mcmc_s"]
    # The paper's 15% setting achieves good quality on this graph.
    mid = next(r for r in rows if r["vstar_fraction"] == 0.15)
    assert mid["NMI"] > 0.6
