"""E1 — §2.3/§3.2 ablation: influence alpha and the degree heuristic.

Two of the paper's arguments made measurable:

1. computing total influence (Eq. 3) is intractable at scale — the
   wall-clock of the naive kernel grows superlinearly even on toy
   graphs;
2. H-SBP's premise — high-degree vertices exert the most influence —
   holds empirically: exerted influence correlates positively with
   degree (Spearman rho).
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.bench.experiments import influence_ablation_rows
from repro.bench.reporting import format_table, write_report


def test_influence_ablation(benchmark):
    rows = run_once(benchmark, influence_ablation_rows, seed=0)
    report = format_table(
        rows,
        title="Influence ablation: Eq. 3 alpha, its cost, and the degree heuristic",
    )
    write_report("ablation_influence", report)

    # Intractability: cost grows clearly faster than V.
    t_small, t_large = rows[0]["alpha_seconds"], rows[-1]["alpha_seconds"]
    v_small, v_large = rows[0]["V"], rows[-1]["V"]
    assert t_large / t_small > (v_large / v_small)

    # Degree heuristic: positive rank correlation on every graph.
    for row in rows:
        assert row["degree_spearman_rho"] > 0.2, row
