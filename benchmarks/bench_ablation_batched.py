"""E3 — §6 future work: batched A-SBP (B-SBP) vs A-SBP vs H-SBP.

The paper conjectures that rebuilding the blockmodel several times per
sweep ("batched A-SBP") could match H-SBP's convergence robustness
without any serial processing. This ablation runs A-SBP (staleness = 1
sweep), B-SBP with 2/4/8 batches, and H-SBP on a marginal synthetic
graph and reports quality and cost.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro import SBPConfig, Variant, generate_synthetic, run_sbp
from repro.bench.reporting import format_table, write_report
from repro.metrics import normalized_mutual_information


def batched_ablation_rows(seed: int = 0, graph_id: str = "S2"):
    graph, truth = generate_synthetic(graph_id, seed=seed)
    rows = []
    settings = [
        ("A-SBP", Variant.ASBP, {}),
        ("B-SBP (2 batches)", Variant.BSBP, {"num_batches": 2}),
        ("B-SBP (4 batches)", Variant.BSBP, {"num_batches": 4}),
        ("B-SBP (8 batches)", Variant.BSBP, {"num_batches": 8}),
        ("H-SBP", Variant.HSBP, {}),
    ]
    for label, variant, extra in settings:
        result = run_sbp(graph, SBPConfig(variant=variant, seed=seed + 11, **extra))
        rows.append(
            {
                "algorithm": label,
                "NMI": normalized_mutual_information(truth, result.assignment),
                "MDL_norm": result.normalized_mdl,
                "mcmc_s": result.mcmc_seconds,
                "rebuild_s": result.timings.rebuild,
                "sweeps": result.mcmc_sweeps,
            }
        )
    return rows


def test_batched_ablation(benchmark):
    rows = run_once(benchmark, batched_ablation_rows, seed=0, graph_id="S2")
    report = format_table(
        rows,
        title="Batched A-SBP ablation on S2 (paper §6 future work)",
    )
    write_report("ablation_batched", report)

    by_name = {r["algorithm"]: r for r in rows}
    # More batches -> more rebuild barriers (the cost side of the idea).
    assert (
        by_name["B-SBP (8 batches)"]["rebuild_s"]
        > by_name["A-SBP"]["rebuild_s"]
    )
    # All variants find real structure on this clearly-detectable graph.
    for row in rows:
        assert row["MDL_norm"] < 1.0, row
