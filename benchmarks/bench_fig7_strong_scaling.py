"""F7 — Fig. 7: strong scaling of H-SBP MCMC runtime on soc-Slashdot0902.

The paper varies OpenMP threads 1..128 on a 128-core EPYC node and finds
runtime keeps improving but tapers past 8-16 threads. We replay a
measured H-SBP run under the calibrated thread-execution model
(degree-weighted static scheduling + serial V* section + rebuild barrier
— DESIGN.md §4 substitution 1) across the same thread counts, plus the
'balanced' schedule as the load-balancing ablation the paper defers to
future work.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.bench.experiments import fig7_scaling_series
from repro.bench.harness import current_scale
from repro.bench.reporting import format_series, write_report

THREADS = [1, 2, 4, 8, 16, 32, 64, 128]


def test_fig7_strong_scaling(benchmark):
    scale = current_scale()
    seconds, speedups = run_once(
        benchmark, fig7_scaling_series, scale, seed=0, thread_counts=THREADS
    )
    report = (
        format_series(seconds, title="Fig. 7: modeled MCMC runtime (static schedule)", unit="s")
        + "\n"
        + format_series(speedups, title="Fig. 7: modeled speedup over 1 thread", unit="x")
    )
    write_report("fig7_strong_scaling", report)

    # Paper shape: more threads keep helping (within noise) through 128...
    times = [seconds[p] for p in THREADS]
    assert all(b <= a * 1.05 for a, b in zip(times, times[1:])), seconds
    assert speedups[128] >= speedups[16] * 0.95
    # ...but the benefit tapers off around the 8-16 thread mark: the
    # relative gain per doubling shrinks sharply past 8 threads.
    early_gain = speedups[2] / speedups[1]
    late_gain = speedups[32] / speedups[16]
    assert early_gain > late_gain, speedups
    assert speedups[128] / speedups[8] < 4.0
    # and early scaling is meaningful.
    assert speedups[2] > 1.25


def test_fig7_balanced_schedule_ablation(benchmark):
    """§5.5: 'better load balancing' — LPT scheduling vs OpenMP static."""
    scale = current_scale()
    seconds_balanced, speedups_balanced = run_once(
        benchmark,
        fig7_scaling_series,
        scale,
        seed=0,
        thread_counts=THREADS,
        schedule="balanced",
    )
    report = format_series(
        speedups_balanced,
        title="Fig. 7 ablation: speedup with balanced (LPT) scheduling",
        unit="x",
    )
    write_report("fig7_balanced_ablation", report)
    # Balanced scheduling must not scale worse than static at high counts.
    assert speedups_balanced[128] >= speedups_balanced[8]
