"""Benchmark-suite configuration.

Run with ``pytest benchmarks/ --benchmark-only``. Scale is controlled by
``REPRO_BENCH_SCALE`` (smoke|paper, default smoke — see
repro.bench.harness). Result tables are printed and archived under
``benchmarks/results/``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest


@pytest.fixture(scope="session", autouse=True)
def _results_dir():
    """Anchor the results directory next to this file, not the CWD."""
    results = Path(__file__).parent / "results"
    os.environ.setdefault("REPRO_RESULTS_DIR", str(results))
    return results


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(
        fn, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0
    )
