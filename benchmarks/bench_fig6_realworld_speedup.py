"""F6 — Fig. 6: H-SBP MCMC-phase speedup on real-world graphs.

Paper shape: H-SBP speeds up the MCMC phase on all but one real-world
graph (up to 5.6x on web-BerkStan); barth5 — very sparse with an
exceptional iteration-count increase — is the one slowdown. Overall
(Amdahl) speedups of §5.4 are reported alongside.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.bench.experiments import fig6_speedup_rows
from repro.bench.harness import current_scale
from repro.bench.reporting import format_table, write_report


def test_fig6_realworld_speedup(benchmark):
    scale = current_scale()
    rows = run_once(benchmark, fig6_speedup_rows, scale, seed=0)
    report = format_table(
        rows,
        title="Fig. 6: H-SBP speedup over SBP on real-world graphs",
    )
    write_report("fig6_realworld_speedup", report)

    # H-SBP accelerates the MCMC phase on (nearly) all graphs.
    wins = sum(1 for r in rows if r["HSBP_mcmc_speedup"] > 1.0)
    assert wins >= len(rows) - 1, rows
    assert max(r["HSBP_mcmc_speedup"] for r in rows) > 2.0
