"""SamBaS speed/quality trade-off: full fit vs sample-extend-finetune.

One DCSBM instance per size; for each sample rate in {1.0, 0.3, 0.1}
the whole pipeline runs end to end (rate 1.0 is the stock search — the
baseline row) and the row records wall-clock, the stage splits
(``sampling``/``extension``/``finetune``), the recovered block count,
MDL and NMI against the planted truth, plus the speedup over the
baseline row.

Full mode (default) runs V = 5e4 with mean degree 20 and enforces the
PR-8 acceptance bounds on that entry: **≥ 5x speedup at rate 0.1 with
NMI within 0.05 of the full fit**. ``--quick`` (CI smoke) runs V = 2e3
with no hard quality bound — at that size a 10% sample is only 200
vertices and the induced subgraph too sparse to gate on — asserting
only that the sampled runs win on wall-clock and assign every vertex.

Headline numbers are archived in ``BENCH_sampling.json``.
"""

from __future__ import annotations

import json
import time

from repro.bench.reporting import format_table, write_report
from repro.core.sbp import run_sbp
from repro.core.variants import SBPConfig
from repro.generators import DCSBMParams, generate_dcsbm
from repro.metrics.nmi import normalized_mutual_information

FULL_SIZES = [50_000]
QUICK_SIZES = [2_000]
RATES = [1.0, 0.3, 0.1]
SAMPLER = "degree-weighted"
GRAPH_SEED = 5
FIT_SEED = 7
NUM_COMMUNITIES = 8
WITHIN_BETWEEN = 10.0
MEAN_DEGREE = 20.0
D_MAX = 80
#: PR-8 acceptance bounds, enforced on the V >= 5e4 entry (full mode)
MIN_SPEEDUP_AT_01 = 5.0
MAX_NMI_GAP_AT_01 = 0.05


def sampling_rows(sizes: list[int] | None = None) -> list[dict[str, object]]:
    rows: list[dict[str, object]] = []
    for num_vertices in sizes if sizes is not None else FULL_SIZES:
        graph, truth = generate_dcsbm(
            DCSBMParams(
                num_vertices=num_vertices,
                num_communities=NUM_COMMUNITIES,
                within_between_ratio=WITHIN_BETWEEN,
                mean_degree=MEAN_DEGREE,
                d_max=D_MAX,
            ),
            seed=GRAPH_SEED,
        )
        baseline_s = None
        baseline_nmi = None
        for rate in RATES:
            config = SBPConfig(
                variant="a-sbp", seed=FIT_SEED,
                sample_rate=rate, sampler=SAMPLER,
            )
            start = time.perf_counter()
            result = run_sbp(graph, config)
            elapsed = time.perf_counter() - start
            assert (result.assignment >= 0).all(), "unassigned vertices"
            nmi = normalized_mutual_information(truth, result.assignment)
            if rate == 1.0:
                baseline_s = elapsed
                baseline_nmi = nmi
            rows.append(
                {
                    "V": num_vertices,
                    "E": graph.num_edges,
                    "rate": rate,
                    "C": result.num_blocks,
                    "fit_s": elapsed,
                    "speedup": baseline_s / elapsed,
                    "nmi": nmi,
                    "nmi_gap": baseline_nmi - nmi,
                    "sampling_s": result.timings.sampling,
                    "extension_s": result.timings.extension,
                    "finetune_s": result.timings.finetune,
                    "mdl": result.mdl,
                }
            )
    return rows


def _check_rows(rows: list[dict[str, object]], quick: bool) -> None:
    for row in rows:
        if row["rate"] == 1.0:
            continue
        assert row["speedup"] > 1.0, (
            f"V={row['V']} rate={row['rate']}: sampled pipeline slower than "
            f"the full fit ({row['fit_s']:.1f}s, speedup {row['speedup']:.2f}x)"
        )
    if quick:
        return
    gated = [r for r in rows if r["V"] >= 50_000 and r["rate"] == 0.1]
    assert gated, "full mode must include the V >= 5e4, rate 0.1 entry"
    for row in gated:
        assert row["speedup"] >= MIN_SPEEDUP_AT_01, (
            f"V={row['V']}: rate-0.1 speedup {row['speedup']:.1f}x below the "
            f"{MIN_SPEEDUP_AT_01:.0f}x floor"
        )
        assert row["nmi_gap"] <= MAX_NMI_GAP_AT_01, (
            f"V={row['V']}: rate-0.1 NMI {row['nmi']:.3f} trails the full "
            f"fit by {row['nmi_gap']:.3f} (> {MAX_NMI_GAP_AT_01})"
        )


def _render(rows: list[dict[str, object]]) -> str:
    return format_table(
        rows,
        columns=[
            "V", "E", "rate", "C", "fit_s", "speedup", "nmi", "nmi_gap",
            "sampling_s", "extension_s", "finetune_s",
        ],
        title=(
            f"SamBaS sample-extend-finetune vs full fit "
            f"(DCSBM, C={NUM_COMMUNITIES}, mean degree {MEAN_DEGREE:.0f}, "
            f"sampler {SAMPLER})"
        ),
    )


def test_sampling_speedup(benchmark):
    from benchmarks.conftest import run_once
    from repro.bench.harness import BenchScale, current_scale

    paper = current_scale() is BenchScale.PAPER
    rows = run_once(benchmark, sampling_rows, FULL_SIZES if paper else QUICK_SIZES)
    write_report("sampling", _render(rows))
    _check_rows(rows, quick=not paper)


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help=f"CI smoke: V in {QUICK_SIZES}, no quality bound",
    )
    args = parser.parse_args(argv)
    rows = sampling_rows(QUICK_SIZES if args.quick else FULL_SIZES)
    write_report("sampling", _render(rows))
    print(json.dumps(rows, indent=2))
    _check_rows(rows, quick=args.quick)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
