"""F4b — Fig. 4b: MCMC-phase speedup on the synthetic corpus.

Paper shape: A-SBP speeds up the MCMC phase on every graph (1.7-7.6x on
the authors' 128-core node); H-SBP lands between SBP and A-SBP (up to
~2.7x). Our single-core analogue executes the asynchronous sweeps with
the vectorized batch engine, so the measured ratios are real wall-clock
but reflect batching rather than threading (DESIGN.md §4).
Also reports the overall (Amdahl) speedups of §5.2.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.bench.experiments import fig4b_speedup_rows
from repro.bench.harness import current_scale
from repro.bench.reporting import format_table, write_report


def test_fig4b_speedup(benchmark):
    scale = current_scale()
    rows = run_once(benchmark, fig4b_speedup_rows, scale, seed=0)
    report = format_table(
        rows,
        title="Fig. 4b: MCMC-phase and overall speedup over SBP (synthetic)",
    )
    write_report("fig4b_speedup", report)

    # Paper shape: A-SBP accelerates the MCMC phase everywhere; H-SBP
    # sits between SBP and A-SBP on the clear majority of graphs.
    asbp_wins = sum(1 for r in rows if r["ASBP_mcmc_speedup"] > 1.0)
    assert asbp_wins == len(rows), rows
    ordered = sum(
        1
        for r in rows
        if r["ASBP_mcmc_speedup"] >= r["HSBP_mcmc_speedup"] > 1.0
    )
    assert ordered >= 0.7 * len(rows), rows
