"""Storage crossover: dense vs sparse vs hybrid engines across C.

The agglomerative schedule starts with many blocks (B very sparse: at
C = O(V) only ~E of the C^2 cells are occupied) and ends with few (B
effectively dense). The ``--block-storage`` engines trade costs along
that path; this bench measures, at E = 8C planted edges per size:

* **rebuild** — ``from_edges`` (the per-sweep barrier reconstruction),
* **sweep**   — a barrier ``scatter_edges`` burst plus a proposal-read
  mix (``sym_row_cdf`` + ``row_gather``), the hot per-sweep ops,
* **merge scan** — ``merge_delta_batch`` over every block (the
  nonzero-triplet walk the vectorized merge backend runs),
* **memory** — live ``memory_bytes()`` of each engine; for hybrid both
  cold (fresh) and warm (after a sweep burst populated the LRU line
  caches and journal — the steady-state footprint),

and asserts all engines stay cell-for-cell equal per size. Every row
records whether the ``repro.sbm.kernels`` dispatch selected numba jits
(``jit: true``) or the numpy fallbacks, so checked-in entries are
comparable across environments. The crossover C where each engine
starts winning is recorded in ``BENCH_storage_crossover.json`` and
discussed in DESIGN.md §5.

Run ``python benchmarks/bench_storage_crossover.py`` (full: C up to
8192, enforces the PR-6 acceptance bounds) or ``--quick`` (CI smoke:
C up to 1024, fewer repetitions, no bounds).
"""

from __future__ import annotations

import json
import time
from functools import partial

import numpy as np

from repro.bench.reporting import format_table, write_report
from repro.graph.graph import Graph
from repro.sbm import kernels
from repro.sbm.block_storage import (
    DenseBlockState,
    HybridBlockState,
    SparseBlockState,
)
from repro.sbm.blockmodel import Blockmodel
from repro.sbm.delta import merge_delta_batch

FULL_SIZES = [64, 256, 1024, 4096, 8192]
QUICK_SIZES = [64, 256, 1024]
SEED = 41
EDGES_PER_BLOCK = 8
#: sweep probe: fraction of edges rescattered + proposal reads per burst
MOVED_EDGE_FRACTION = 0.02
PROPOSAL_READS = 200


def _edges(C: int, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """Planted block edges: mostly diagonal-heavy, like a real chain state."""
    E = EDGES_PER_BLOCK * C
    src = rng.integers(0, C, E)
    # ~60% of edges stay within the source block, the rest go anywhere —
    # the diagonal-dominant shape real partitions settle into.
    within = rng.random(E) < 0.6
    dst = np.where(within, src, rng.integers(0, C, E))
    return src.astype(np.int64), dst.astype(np.int64)


def _time(fn, reps: int) -> float:
    best = float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _sweep_burst(state, src, dst, rng) -> None:
    """One barrier scatter + a proposal-read mix on ``state``."""
    m = max(1, int(MOVED_EDGE_FRACTION * len(src)))
    # unique edge indices: removing one edge twice would (correctly) trip
    # the sparse engine's negative-count check
    pick = rng.permutation(len(src))[:m]
    C = state.num_blocks
    new_dst = rng.integers(0, C, m).astype(np.int64)
    state.scatter_edges(src[pick], dst[pick], src[pick], new_dst)
    state.scatter_edges(src[pick], new_dst, src[pick], dst[pick])  # undo
    reads = rng.integers(0, C, PROPOSAL_READS).astype(np.int64)
    for u in reads[:50]:
        state.sym_row_cdf(int(u))
    state.row_gather(int(reads[0]), reads)
    state.col_gather(int(reads[0]), reads)


def _merge_scan_bm(C: int, src, dst, storage: str) -> Blockmodel:
    """A Blockmodel over a vertex-per-block graph for the scan probe."""
    graph = Graph(C, np.stack([src, dst], axis=1))
    assignment = np.arange(C, dtype=np.int64)
    return Blockmodel.from_assignment(graph, assignment, C, storage=storage)


def crossover_rows(sizes: list[int], reps: int) -> list[dict]:
    rows = []
    for C in sizes:
        rng = np.random.default_rng(SEED)
        src, dst = _edges(C, rng)
        row: dict[str, object] = {"C": C, "E": len(src)}

        dense = DenseBlockState.from_edges(src, dst, C)
        sparse = SparseBlockState.from_edges(src, dst, C)
        hybrid = HybridBlockState.from_edges(src, dst, C)
        assert sparse.equals_dense(dense.to_dense()), f"engines diverge at C={C}"
        assert np.array_equal(hybrid.to_dense(), dense.to_dense()), (
            f"hybrid diverges at C={C}"
        )
        row["jit"] = kernels.jit_enabled()
        row["density"] = round(dense.density, 4)
        row["dense_bytes"] = dense.memory_bytes()
        row["sparse_bytes"] = sparse.memory_bytes()
        row["hybrid_bytes"] = hybrid.memory_bytes()  # cold: empty caches

        row["dense_rebuild_s"] = _time(
            partial(DenseBlockState.from_edges, src, dst, C), reps
        )
        row["sparse_rebuild_s"] = _time(
            partial(SparseBlockState.from_edges, src, dst, C), reps
        )
        row["hybrid_rebuild_s"] = _time(
            partial(HybridBlockState.from_edges, src, dst, C), reps
        )

        sweep_rng = np.random.default_rng(SEED + 1)
        row["dense_sweep_s"] = _time(
            partial(_sweep_burst, dense, src, dst, sweep_rng), reps
        )
        sweep_rng = np.random.default_rng(SEED + 1)
        row["sparse_sweep_s"] = _time(
            partial(_sweep_burst, sparse, src, dst, sweep_rng), reps
        )
        sweep_rng = np.random.default_rng(SEED + 1)
        row["hybrid_sweep_s"] = _time(
            partial(_sweep_burst, hybrid, src, dst, sweep_rng), reps
        )
        # Warm footprint: line caches + journal as a sweep leaves them.
        row["hybrid_warm_bytes"] = hybrid.memory_bytes()
        assert sparse.equals_dense(dense.to_dense()), f"sweep diverged at C={C}"
        assert np.array_equal(hybrid.to_dense(), dense.to_dense()), (
            f"hybrid sweep diverged at C={C}"
        )

        blocks = np.arange(C, dtype=np.int64)
        targets = np.roll(blocks, 1)
        bm_dense = _merge_scan_bm(C, src, dst, "dense")
        bm_sparse = _merge_scan_bm(C, src, dst, "sparse")
        bm_hybrid = _merge_scan_bm(C, src, dst, "hybrid")
        row["dense_scan_s"] = _time(
            partial(merge_delta_batch, bm_dense, blocks, targets), reps
        )
        row["sparse_scan_s"] = _time(
            partial(merge_delta_batch, bm_sparse, blocks, targets), reps
        )
        row["hybrid_scan_s"] = _time(
            partial(merge_delta_batch, bm_hybrid, blocks, targets), reps
        )
        scan_d = merge_delta_batch(bm_dense, blocks, targets)
        for name, bm in (("sparse", bm_sparse), ("hybrid", bm_hybrid)):
            scan_x = merge_delta_batch(bm, blocks, targets)
            assert np.array_equal(scan_d, scan_x), (
                f"{name} scan deltas diverge at C={C}"
            )
        rows.append(row)
    return rows


def render(rows: list[dict]) -> str:
    table = [
        {
            "C": r["C"],
            "density": r["density"],
            "dense_MiB": round(r["dense_bytes"] / 2**20, 2),
            "sparse_MiB": round(r["sparse_bytes"] / 2**20, 2),
            "hybrid_warm_MiB": round(r["hybrid_warm_bytes"] / 2**20, 2),
            "sweep_dense_ms": round(r["dense_sweep_s"] * 1e3, 2),
            "sweep_sparse_ms": round(r["sparse_sweep_s"] * 1e3, 2),
            "sweep_hybrid_ms": round(r["hybrid_sweep_s"] * 1e3, 2),
            "rebuild_dense_ms": round(r["dense_rebuild_s"] * 1e3, 2),
            "rebuild_sparse_ms": round(r["sparse_rebuild_s"] * 1e3, 2),
            "scan_dense_ms": round(r["dense_scan_s"] * 1e3, 2),
            "scan_sparse_ms": round(r["sparse_scan_s"] * 1e3, 2),
        }
        for r in rows
    ]
    jit = "numba jits" if rows and rows[0]["jit"] else "numpy kernels"
    return format_table(
        table,
        title=f"dense vs sparse vs hybrid storage across C (E = 8C, {jit})",
    )


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke: C up to 1024, single repetition",
    )
    args = parser.parse_args(argv)
    sizes = QUICK_SIZES if args.quick else FULL_SIZES
    reps = 1 if args.quick else 3
    rows = crossover_rows(sizes, reps)
    write_report("storage_crossover", render(rows))
    print(json.dumps(rows, indent=2))
    # The headline claim the checked-in JSON records: at the largest C
    # the matrix is sparse enough that the sparse engine wins on memory.
    largest = rows[-1]
    assert largest["sparse_bytes"] < largest["dense_bytes"], (
        f"sparse engine lost on memory at C={largest['C']}: "
        f"{largest['sparse_bytes']} >= {largest['dense_bytes']} bytes"
    )
    if not args.quick:
        # PR-6 acceptance bounds (full mode only — --quick runs a single
        # repetition and its timings are too noisy to gate on).
        for r in rows:
            bound = 1.5 * r["dense_sweep_s"]
            assert r["hybrid_sweep_s"] <= bound, (
                f"hybrid sweep burst too slow at C={r['C']}: "
                f"{r['hybrid_sweep_s']:.5f}s > 1.5 x dense "
                f"{r['dense_sweep_s']:.5f}s"
            )
            if r["C"] >= 4096:
                cap = 0.25 * r["dense_bytes"]
                assert r["hybrid_warm_bytes"] <= cap, (
                    f"hybrid warm footprint too big at C={r['C']}: "
                    f"{r['hybrid_warm_bytes']} > 25% of dense "
                    f"{r['dense_bytes']} bytes"
                )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
