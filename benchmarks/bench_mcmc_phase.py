"""MCMC-phase barrier benchmark: rebuild oracle vs incremental engine.

Two hot paths measured on the same state, same moves:

* **Sweep barrier** — reconciling the blockmodel with a sweep's moved
  set in a late-phase, low-acceptance regime (0.2% of vertices move):
  ``RebuildUpdater`` (O(E) recount) vs ``IncrementalUpdater``
  (O(Σ deg(moved)) scatter delta). Byte-equality of the resulting
  state is asserted every barrier.
* **Serial pass** — neighbour-guided proposals with and without the
  :class:`ProposalCache` (the O(C) row add + cumsum per proposal that
  the cache memoizes between dirty-set invalidations).

Sizes default to V in {1e3, 1e4, 1e5}; override with a comma-separated
``REPRO_MCMC_PHASE_SIZES`` or run ``python benchmarks/bench_mcmc_phase.py
--quick`` (CI smoke: V in {1e3, 1e4}, fewer repetitions).
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.bench.reporting import format_table
from repro.graph.graph import Graph
from repro.sbm.blockmodel import Blockmodel
from repro.sbm.incremental import IncrementalUpdater, RebuildUpdater
from repro.sbm.moves import propose_vertex_move
from repro.utils.rng import philox_stream

DEFAULT_SIZES = [1_000, 10_000, 100_000]
QUICK_SIZES = [1_000, 10_000]
SEED = 29
MEAN_DEGREE = 8
#: late-phase regime: fraction of vertices moved per sweep barrier
MOVED_FRACTION = 0.002
BARRIERS = 10
#: serial-pass proposals are capped so the Python loop stays tractable
MAX_PROPOSALS = 20_000
#: acceptance floor for the barrier at the largest benchmarked size
MIN_BARRIER_SPEEDUP_LARGE = 5.0


def _sizes() -> list[int]:
    raw = os.environ.get("REPRO_MCMC_PHASE_SIZES", "")
    if not raw:
        return list(DEFAULT_SIZES)
    return [int(tok) for tok in raw.split(",") if tok.strip()]


def _random_multigraph(num_vertices: int, rng: np.random.Generator) -> Graph:
    """Uniform random multigraph with ~1% self-loops.

    Degree shape is irrelevant for barrier cost (it is O(E) vs
    O(Σ deg(moved)) either way), so a flat multigraph keeps setup cheap
    at V = 1e5 while still exercising loops and parallel edges.
    """
    num_edges = num_vertices * MEAN_DEGREE
    edges = rng.integers(0, num_vertices, size=(num_edges, 2), dtype=np.int64)
    loops = rng.random(num_edges) < 0.01
    edges[loops, 1] = edges[loops, 0]
    return Graph(num_vertices, edges)


def _bench_barrier(
    graph: Graph, num_blocks: int, rng: np.random.Generator, barriers: int
) -> tuple[float, float, int]:
    """Total rebuild vs delta-apply seconds over ``barriers`` moved sets."""
    assignment = rng.integers(0, num_blocks, graph.num_vertices)
    reb_bm = Blockmodel.from_assignment(graph, assignment, num_blocks)
    inc_bm = reb_bm.copy()
    rebuild = RebuildUpdater()
    incremental = IncrementalUpdater()
    moved_count = max(1, int(MOVED_FRACTION * graph.num_vertices))

    reb_s = 0.0
    inc_s = 0.0
    for _ in range(barriers):
        moved = rng.choice(graph.num_vertices, size=moved_count, replace=False)
        targets = rng.integers(0, num_blocks, moved_count)

        start = time.perf_counter()
        rebuild.apply_sweep(reb_bm, graph, moved, targets)
        reb_s += time.perf_counter() - start

        start = time.perf_counter()
        incremental.apply_sweep(inc_bm, graph, moved, targets)
        inc_s += time.perf_counter() - start

        assert np.array_equal(reb_bm.B, inc_bm.B), "barrier states diverge"
        assert np.array_equal(reb_bm.d, inc_bm.d)
        assert np.array_equal(reb_bm.assignment, inc_bm.assignment)
    return reb_s, inc_s, moved_count


def _bench_serial_pass(
    graph: Graph, bm: Blockmodel, proposals: int
) -> tuple[float, float]:
    """Uncached vs cached proposal seconds over ``proposals`` vertices.

    A frozen-state pass (no moves are applied) isolates the row
    add + cumsum cost; identical proposals are asserted per vertex.
    """
    uniforms = philox_stream(SEED, 4242, 0).random((proposals, 5))
    vertices = np.arange(proposals, dtype=np.int64) % graph.num_vertices
    cache = IncrementalUpdater().make_proposal_cache(bm)

    start = time.perf_counter()
    plain = [
        propose_vertex_move(bm, graph, int(v), uniforms[i])
        for i, v in enumerate(vertices)
    ]
    uncached_s = time.perf_counter() - start

    start = time.perf_counter()
    cached = [
        propose_vertex_move(bm, graph, int(v), uniforms[i], cache=cache)
        for i, v in enumerate(vertices)
    ]
    cached_s = time.perf_counter() - start

    assert plain == cached, "cached proposals diverge from the uncached scan"
    return uncached_s, cached_s


def mcmc_phase_rows(
    sizes: list[int] | None = None, barriers: int = BARRIERS
) -> list[dict[str, object]]:
    rows: list[dict[str, object]] = []
    for num_vertices in sizes if sizes is not None else _sizes():
        rng = np.random.default_rng(SEED)
        graph = _random_multigraph(num_vertices, rng)
        num_blocks = max(8, num_vertices // 100)

        reb_s, inc_s, moved = _bench_barrier(graph, num_blocks, rng, barriers)

        proposals = min(num_vertices, MAX_PROPOSALS)
        bm = Blockmodel.from_assignment(
            graph, rng.integers(0, num_blocks, num_vertices), num_blocks
        )
        uncached_s, cached_s = _bench_serial_pass(graph, bm, proposals)

        rows.append(
            {
                "V": num_vertices,
                "E": graph.num_edges,
                "C": num_blocks,
                "moved": moved,
                "rebuild_s": reb_s,
                "apply_s": inc_s,
                "barrier_speedup": reb_s / inc_s if inc_s > 0 else float("inf"),
                "uncached_s": uncached_s,
                "cached_s": cached_s,
                "serial_speedup": (
                    uncached_s / cached_s if cached_s > 0 else float("inf")
                ),
                "bit_identical": True,
            }
        )
    return rows


def _check_rows(rows: list[dict[str, object]]) -> None:
    largest = max(rows, key=lambda r: r["V"])
    if largest["V"] >= 100_000:
        assert largest["barrier_speedup"] >= MIN_BARRIER_SPEEDUP_LARGE, (
            f"V={largest['V']}: barrier speedup "
            f"{largest['barrier_speedup']:.1f}x below the "
            f"{MIN_BARRIER_SPEEDUP_LARGE:.0f}x floor"
        )
    else:  # smoke sizes: equality already asserted, just require a win
        assert largest["barrier_speedup"] > 1.0, largest
    assert largest["serial_speedup"] > 1.0, largest


def test_mcmc_phase_speedup(benchmark):
    from benchmarks.conftest import run_once
    from repro.bench.reporting import write_report

    rows = run_once(benchmark, mcmc_phase_rows)
    report = format_table(
        rows,
        title="MCMC sweep barrier: rebuild oracle vs incremental delta-apply",
    )
    write_report("mcmc_phase", report)
    _check_rows(rows)


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help=f"smoke sizes {QUICK_SIZES} with 3 barriers (CI)",
    )
    args = parser.parse_args(argv)
    if args.quick:
        rows = mcmc_phase_rows(QUICK_SIZES, barriers=3)
    else:
        rows = mcmc_phase_rows()
    print(format_table(
        rows,
        title="MCMC sweep barrier: rebuild oracle vs incremental delta-apply",
    ))
    _check_rows(rows)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
