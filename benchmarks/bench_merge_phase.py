"""Merge-phase kernel benchmark: serial oracle vs vectorized backend.

Alg. 1's candidate scan is the "embarrassingly parallel" part of the
block-merge phase. This benchmark times both merge backends on the same
pre-drawn Philox uniforms at singleton-initialization scale (C = V, the
worst case: the scan is O(C * proposals) scalar calls for the serial
oracle) and asserts the vectorized kernel is bit-identical AND at least
10x faster at the largest size.

Sizes default to C in {64, 256, 1024, 4096}; override with a
comma-separated ``REPRO_MERGE_PHASE_SIZES`` (CI smoke uses "64,256").
"""

from __future__ import annotations

import os
import time

import numpy as np

from benchmarks.conftest import run_once
from repro.bench.reporting import format_table, write_report
from repro.generators.dcsbm import DCSBMParams, generate_dcsbm
from repro.parallel.merge import SerialMergeBackend, VectorizedMergeBackend
from repro.sbm.blockmodel import Blockmodel
from repro.utils.rng import philox_stream

DEFAULT_SIZES = [64, 256, 1024, 4096]
PROPOSALS = 10
SEED = 13
#: acceptance floor for the largest benchmarked size (>= 1024)
MIN_SPEEDUP_LARGE = 10.0


def _sizes() -> list[int]:
    raw = os.environ.get("REPRO_MERGE_PHASE_SIZES", "")
    if not raw:
        return list(DEFAULT_SIZES)
    return [int(tok) for tok in raw.split(",") if tok.strip()]


def _merge_phase_rows() -> list[dict[str, object]]:
    serial = SerialMergeBackend()
    vectorized = VectorizedMergeBackend()
    rows: list[dict[str, object]] = []
    for num_vertices in _sizes():
        graph, _ = generate_dcsbm(
            DCSBMParams(
                num_vertices=num_vertices,
                num_communities=max(4, num_vertices // 128),
                within_between_ratio=5.0,
                mean_degree=8.0,
                d_max=40,
            ),
            seed=SEED,
        )
        bm = Blockmodel.singleton(graph)
        C = bm.num_blocks
        uniforms = philox_stream(SEED, 1701, 0).random((C, PROPOSALS, 4))

        start = time.perf_counter()
        delta_v, target_v = vectorized.evaluate_merges(bm, uniforms)
        vec_s = time.perf_counter() - start

        start = time.perf_counter()
        delta_s, target_s = serial.evaluate_merges(bm, uniforms)
        ser_s = time.perf_counter() - start

        assert np.array_equal(delta_s, delta_v), f"C={C}: deltas diverge"
        assert np.array_equal(target_s, target_v), f"C={C}: targets diverge"
        rows.append(
            {
                "C": C,
                "E": graph.num_edges,
                "proposals": PROPOSALS,
                "serial_s": ser_s,
                "vectorized_s": vec_s,
                "speedup": ser_s / vec_s if vec_s > 0 else float("inf"),
                "bit_identical": True,
            }
        )
    return rows


def test_merge_phase_speedup(benchmark):
    rows = run_once(benchmark, _merge_phase_rows)
    report = format_table(
        rows,
        title="Merge-phase candidate scan: serial oracle vs vectorized kernel",
    )
    write_report("merge_phase", report)

    largest = max(rows, key=lambda r: r["C"])
    if largest["C"] >= 1024:
        assert largest["speedup"] >= MIN_SPEEDUP_LARGE, (
            f"C={largest['C']}: speedup {largest['speedup']:.1f}x "
            f"below the {MIN_SPEEDUP_LARGE:.0f}x floor"
        )
    else:  # smoke sizes: equality already asserted, just require a win
        assert largest["speedup"] > 1.0, largest
