"""F4a — Fig. 4a: NMI of SBP / H-SBP / A-SBP on the synthetic corpus.

Paper shape: H-SBP matches SBP's NMI on every graph where SBP converges;
A-SBP matches on only about half and fails to converge on the rest
(especially sparse, low-r graphs).
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.bench.experiments import fig4a_nmi_rows
from repro.bench.harness import current_scale
from repro.bench.reporting import format_grouped_bars, format_table, write_report


def test_fig4a_nmi(benchmark):
    scale = current_scale()
    rows = run_once(benchmark, fig4a_nmi_rows, scale, seed=0)
    report = format_table(
        rows, title="Fig. 4a: NMI on synthetic graphs (best-of-N runs)"
    ) + "\n" + format_grouped_bars(
        rows, "graph", ["NMI_sbp", "NMI_h-sbp", "NMI_a-sbp"],
        title="Fig. 4a (bars, common scale 0..1)", vmax=1.0,
    )
    write_report("fig4a_nmi", report)

    # H-SBP tracks SBP within a tolerance wherever SBP finds structure.
    converged = [r for r in rows if r["NMI_sbp"] > 0.3]
    assert converged, "SBP should converge on part of the corpus"
    close = sum(
        1 for r in converged if r["NMI_h-sbp"] >= r["NMI_sbp"] - 0.2
    )
    assert close >= 0.75 * len(converged), [
        (r["graph"], round(r["NMI_sbp"], 2), round(r["NMI_h-sbp"], 2))
        for r in converged
    ]
