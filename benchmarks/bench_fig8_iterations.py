"""F8 — Figs. 8a/8b: MCMC iteration counts per algorithm.

Paper shape: on synthetic graphs A-SBP and H-SBP need significantly more
MCMC sweeps to converge than SBP (asynchronous staleness slows mixing);
on real-world graphs the gap between H-SBP and SBP is much smaller
(barth5 being the outlier).
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.bench.experiments import fig8_iteration_rows
from repro.bench.harness import current_scale
from repro.bench.reporting import format_table, write_report


def test_fig8a_synthetic_iterations(benchmark):
    scale = current_scale()
    rows = run_once(benchmark, fig8_iteration_rows, scale, seed=0, real_world=False)
    report = format_table(
        rows, title="Fig. 8a: MCMC sweeps to convergence (synthetic)"
    )
    write_report("fig8a_iterations_synthetic", report)

    # Asynchronous variants need at least as many sweeps on most graphs.
    more = sum(1 for r in rows if r["sweeps_a-sbp"] >= r["sweeps_sbp"])
    assert more >= 0.7 * len(rows), rows


def test_fig8b_realworld_iterations(benchmark):
    scale = current_scale()
    rows = run_once(benchmark, fig8_iteration_rows, scale, seed=0, real_world=True)
    report = format_table(
        rows, title="Fig. 8b: MCMC sweeps to convergence (real-world)"
    )
    write_report("fig8b_iterations_realworld", report)

    # The H-SBP/SBP sweep ratio stays moderate on most real-world graphs.
    ratios = [r["sweeps_h-sbp"] / max(r["sweeps_sbp"], 1) for r in rows]
    moderate = sum(1 for x in ratios if x < 2.5)
    assert moderate >= 0.7 * len(rows), list(zip([r["graph"] for r in rows], ratios))
