"""Streaming warm refit vs per-snapshot cold fit on a churning DCSBM.

One synthetic-churn stream per size (fixed ground truth, 5% of the edge
multiset turning over per snapshot). The same stream is fit twice
through :class:`~repro.streaming.session.StreamSession`:

* **cold baseline** — the ``always-cold`` drift policy refits every
  snapshot from the singleton partition (what a user without the
  streaming layer would do: rerun ``repro run`` per snapshot);
* **warm** — the default ``mdl-ratio`` policy carries the previous
  partition through the O(|batch|) edge-delta path and refits with a
  narrowed golden-section bracket.

Each row is one snapshot: wall-clock under both policies, the
per-snapshot speedup, sweep counts, NMI against the planted truth and
the consecutive-snapshot NMI (partition stability).

Full mode (default) runs V = 1e4 with mean degree 20 and enforces the
PR-9 acceptance bound: **≥ 5x mean per-snapshot speedup over snapshots
1..N at 5% churn, with warm NMI within 0.05 of the snapshot-0 fit it
carries forward**. (Independent cold restarts have high NMI variance —
they land anywhere in 0.90..1.00 on this instance — so the quality
floor is against the carried partition, whose quality a warm refit
must preserve; the per-snapshot cold NMI is still reported per row.)
``--quick`` (CI smoke) runs V = 2e3 and asserts only that every warm
snapshot beats its cold twin on wall-clock.

Headline numbers are archived in ``BENCH_streaming.json``.
"""

from __future__ import annotations

import json

from repro.bench.reporting import format_table, write_report
from repro.core.variants import SBPConfig
from repro.metrics.nmi import normalized_mutual_information
from repro.streaming import StreamSession, synthetic_churn_stream

FULL_SIZES = [10_000]
QUICK_SIZES = [2_000]
NUM_SNAPSHOTS = 5
CHURN = 0.05
NUM_COMMUNITIES = 8
WITHIN_BETWEEN = 10.0
MEAN_DEGREE = 20.0
GRAPH_SEED = 5
FIT_SEED = 7
#: PR-9 acceptance bounds, enforced on the V >= 1e4 entry (full mode)
MIN_MEAN_SPEEDUP = 5.0
MAX_NMI_GAP = 0.05


def streaming_rows(sizes: list[int] | None = None) -> list[dict[str, object]]:
    rows: list[dict[str, object]] = []
    for num_vertices in sizes if sizes is not None else FULL_SIZES:
        stream = synthetic_churn_stream(
            num_vertices=num_vertices,
            num_communities=NUM_COMMUNITIES,
            num_snapshots=NUM_SNAPSHOTS,
            churn=CHURN,
            within_between_ratio=WITHIN_BETWEEN,
            mean_degree=MEAN_DEGREE,
            seed=GRAPH_SEED,
        )
        config = SBPConfig(variant="a-sbp", seed=FIT_SEED)
        cold = StreamSession(config, drift_policy="always-cold").run(stream)
        warm = StreamSession(config, drift_policy="mdl-ratio").run(stream)
        for cold_snap, warm_snap in zip(cold.snapshots, warm.snapshots):
            rows.append(
                {
                    "V": num_vertices,
                    "E": stream.graph.num_edges,
                    "snapshot": warm_snap.index,
                    "mode": warm_snap.result.refit_mode,
                    "drift": warm_snap.result.drift,
                    "C": warm_snap.result.num_blocks,
                    "cold_s": cold_snap.seconds,
                    "warm_s": warm_snap.seconds,
                    "speedup": cold_snap.seconds / warm_snap.seconds,
                    "cold_sweeps": cold_snap.result.mcmc_sweeps,
                    "warm_sweeps": warm_snap.result.mcmc_sweeps,
                    "nmi_cold": normalized_mutual_information(
                        stream.truth, cold_snap.result.assignment
                    ),
                    "nmi_warm": normalized_mutual_information(
                        stream.truth, warm_snap.result.assignment
                    ),
                    "nmi_prev": warm_snap.result.nmi_prev,
                }
            )
    return rows


def _check_rows(rows: list[dict[str, object]], quick: bool) -> None:
    refits = [r for r in rows if r["snapshot"] > 0]
    assert refits, "stream must contain at least one refit snapshot"
    for row in refits:
        assert row["speedup"] > 1.0, (
            f"V={row['V']} snapshot {row['snapshot']}: warm refit slower "
            f"than the cold fit ({row['warm_s']:.1f}s vs {row['cold_s']:.1f}s)"
        )
    if quick:
        return
    gated = [r for r in refits if r["V"] >= 10_000]
    assert gated, "full mode must include the V >= 1e4 stream"
    mean_speedup = sum(r["speedup"] for r in gated) / len(gated)
    assert mean_speedup >= MIN_MEAN_SPEEDUP, (
        f"mean per-snapshot speedup {mean_speedup:.1f}x below the "
        f"{MIN_MEAN_SPEEDUP:.0f}x floor at {CHURN:.0%} churn"
    )
    baseline = {
        r["V"]: r["nmi_warm"] for r in rows if r["snapshot"] == 0
    }
    for row in gated:
        gap = baseline[row["V"]] - row["nmi_warm"]
        assert gap <= MAX_NMI_GAP, (
            f"V={row['V']} snapshot {row['snapshot']}: warm NMI "
            f"{row['nmi_warm']:.3f} trails the carried snapshot-0 fit "
            f"by {gap:.3f} (> {MAX_NMI_GAP})"
        )


def _render(rows: list[dict[str, object]]) -> str:
    return format_table(
        rows,
        columns=[
            "V", "E", "snapshot", "mode", "drift", "C", "cold_s", "warm_s",
            "speedup", "cold_sweeps", "warm_sweeps", "nmi_cold", "nmi_warm",
            "nmi_prev",
        ],
        title=(
            f"Streaming warm refit vs cold refit per snapshot "
            f"(DCSBM, C={NUM_COMMUNITIES}, mean degree {MEAN_DEGREE:.0f}, "
            f"{CHURN:.0%} churn, {NUM_SNAPSHOTS} snapshots)"
        ),
    )


def test_streaming_speedup(benchmark):
    from benchmarks.conftest import run_once
    from repro.bench.harness import BenchScale, current_scale

    paper = current_scale() is BenchScale.PAPER
    rows = run_once(
        benchmark, streaming_rows, FULL_SIZES if paper else QUICK_SIZES
    )
    write_report("streaming", _render(rows))
    _check_rows(rows, quick=not paper)


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help=f"CI smoke: V in {QUICK_SIZES}, no speedup floor",
    )
    args = parser.parse_args(argv)
    rows = streaming_rows(QUICK_SIZES if args.quick else FULL_SIZES)
    write_report("streaming", _render(rows))
    print(json.dumps(rows, indent=2))
    _check_rows(rows, quick=args.quick)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
