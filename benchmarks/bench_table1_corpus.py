"""T1 — Table 1: the synthetic corpus (scaled DCSBM graphs S1-S24).

Regenerates the corpus and prints its V/E/r table in the paper's layout.
The absolute scale is reduced (DESIGN.md §4 substitution 3); the grouping
into three r-families with sparse/dense and four degree variants each is
preserved.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.bench.experiments import table1_rows
from repro.bench.reporting import format_table, write_report


def test_table1_corpus(benchmark):
    rows = run_once(benchmark, table1_rows, seed=0)
    report = format_table(
        rows,
        columns=["ID", "V", "E", "r", "dense", "communities", "mean_degree",
                 "plaw_exponent"],
        title="Table 1 (scaled): synthetically generated graphs",
    )
    write_report("table1_corpus", report)

    assert len(rows) == 24
    # density split: dense graphs must have much higher E/V
    sparse = [r for r in rows if not r["dense"]]
    dense = [r for r in rows if r["dense"]]
    assert min(d["E"] / d["V"] for d in dense) > 2 * max(
        s["E"] / s["V"] for s in sparse
    )
