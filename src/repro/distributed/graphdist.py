"""Per-rank graph shards with ghost-vertex tables.

Each rank owns a vertex subset and stores the induced local adjacency:
every edge incident to an owned vertex is kept, and the non-owned
endpoints become *ghosts* whose community memberships must be refreshed
from their owners each sweep. The ghost table size — reported per rank —
is exactly the halo-exchange volume a real distributed A-SBP would pay.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.graph import Graph
from repro.types import IntArray

__all__ = ["RankShard", "DistributedGraph"]


@dataclass
class RankShard:
    """One rank's view of the graph.

    Attributes
    ----------
    rank:
        Owning rank id.
    owned:
        Sorted vertex ids owned by this rank.
    ghosts:
        Sorted non-owned vertex ids adjacent to owned vertices.
    local_edges:
        Edges with at least one owned endpoint, in global vertex ids.
    """

    rank: int
    owned: IntArray
    ghosts: IntArray
    local_edges: IntArray

    @property
    def num_owned(self) -> int:
        return int(self.owned.shape[0])

    @property
    def num_ghosts(self) -> int:
        return int(self.ghosts.shape[0])

    @property
    def halo_bytes(self) -> int:
        """Bytes per sweep to refresh ghost memberships (int64 each)."""
        return self.num_ghosts * 8


class DistributedGraph:
    """A graph partitioned over ``num_ranks`` simulated ranks.

    ``num_ranks`` defaults to the highest rank the ownership map uses,
    but can be given explicitly so a world whose *top* ranks own zero
    vertices (more ranks than vertices, or a freshly re-leased shard) is
    representable — those ranks get empty shards instead of vanishing.
    """

    def __init__(
        self, graph: Graph, owner: IntArray, num_ranks: int | None = None
    ) -> None:
        owner = np.asarray(owner, dtype=np.int64)
        if owner.shape != (graph.num_vertices,):
            raise ValueError(
                f"owner must have shape ({graph.num_vertices},), got {owner.shape}"
            )
        if owner.size and owner.min() < 0:
            raise ValueError("owner ranks must be non-negative")
        implied = int(owner.max()) + 1 if owner.size else 1
        if num_ranks is None:
            num_ranks = implied
        elif num_ranks < implied:
            raise ValueError(
                f"num_ranks={num_ranks} cannot hold owner ranks up to {implied - 1}"
            )
        self.graph = graph
        self.owner = owner
        self.num_ranks = int(num_ranks)
        self.shards = [self._build_shard(r) for r in range(self.num_ranks)]

    def _build_shard(self, rank: int) -> RankShard:
        owned_mask = self.owner == rank
        owned = np.nonzero(owned_mask)[0].astype(np.int64)
        edges = self.graph.edges
        touches = owned_mask[edges[:, 0]] | owned_mask[edges[:, 1]]
        local_edges = edges[touches]
        endpoints = np.unique(local_edges)
        ghosts = endpoints[~owned_mask[endpoints]].astype(np.int64)
        return RankShard(rank=rank, owned=owned, ghosts=ghosts, local_edges=local_edges)

    def shard(self, rank: int) -> RankShard:
        if not 0 <= rank < self.num_ranks:
            raise ValueError(f"rank {rank} out of range [0, {self.num_ranks})")
        return self.shards[rank]

    @property
    def total_ghosts(self) -> int:
        return sum(s.num_ghosts for s in self.shards)

    @property
    def replication_factor(self) -> float:
        """(owned + ghost) vertex slots per real vertex — memory blowup."""
        slots = sum(s.num_owned + s.num_ghosts for s in self.shards)
        return slots / self.graph.num_vertices

    def check_cover(self) -> None:
        """Invariant: every vertex owned exactly once; edges covered."""
        owned_counts = np.zeros(self.graph.num_vertices, dtype=np.int64)
        for shard in self.shards:
            owned_counts[shard.owned] += 1
        if not (owned_counts == 1).all():
            raise AssertionError("ownership is not a partition")
        covered = sum(s.local_edges.shape[0] for s in self.shards)
        cut = int(
            (self.owner[self.graph.edges[:, 0]] != self.owner[self.graph.edges[:, 1]]).sum()
        )
        # cut edges appear in both endpoint shards, internal edges once
        if covered != self.graph.num_edges + cut:
            raise AssertionError("edge coverage mismatch")
