"""Vertex partitioners for distributed SBP.

A good distribution of A-SBP needs (a) balanced per-rank work — which
under power-law degrees means balancing *degree*, not vertex counts —
and (b) a small edge cut, since cut edges turn into ghost lookups. The
three strategies here span that tradeoff:

* ``contiguous`` — vertex-id ranges (what a naive MPI port would do),
* ``hash`` — round-robin by id (balanced counts, terrible cut),
* ``degree_balanced`` — greedy LPT on vertex degrees (balanced work).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.graph import Graph
from repro.parallel.partitioner import balanced_chunks, contiguous_chunks
from repro.types import IntArray

__all__ = ["PartitionStats", "partition_vertices", "edge_cut", "partition_stats"]


@dataclass(frozen=True)
class PartitionStats:
    """Quality summary of a vertex partition."""

    num_ranks: int
    strategy: str
    max_vertices: int
    min_vertices: int
    degree_imbalance: float  #: max rank degree mass / mean rank degree mass
    edge_cut_fraction: float  #: fraction of edges crossing ranks

    def as_row(self) -> dict[str, object]:
        return {
            "ranks": self.num_ranks,
            "strategy": self.strategy,
            "max_V": self.max_vertices,
            "min_V": self.min_vertices,
            "degree_imbalance": self.degree_imbalance,
            "edge_cut": self.edge_cut_fraction,
        }


def partition_vertices(
    graph: Graph, num_ranks: int, strategy: str = "degree_balanced"
) -> IntArray:
    """Return ``owner[v]`` — the rank owning each vertex."""
    if num_ranks < 1:
        raise ValueError(f"num_ranks must be >= 1, got {num_ranks}")
    V = graph.num_vertices
    owner = np.empty(V, dtype=np.int64)
    if strategy == "contiguous":
        for rank, (start, stop) in enumerate(contiguous_chunks(V, num_ranks)):
            owner[start:stop] = rank
    elif strategy == "hash":
        owner[:] = np.arange(V, dtype=np.int64) % num_ranks
    elif strategy == "degree_balanced":
        bins = balanced_chunks(graph.degree.astype(np.float64) + 1.0, num_ranks)
        for rank, members in enumerate(bins):
            owner[members] = rank
    else:
        raise ValueError(
            f"unknown strategy {strategy!r}; use contiguous/hash/degree_balanced"
        )
    return owner


def edge_cut(graph: Graph, owner: IntArray) -> int:
    """Number of edges whose endpoints live on different ranks."""
    src_owner = owner[graph.edges[:, 0]]
    dst_owner = owner[graph.edges[:, 1]]
    return int((src_owner != dst_owner).sum())


def partition_stats(graph: Graph, owner: IntArray, strategy: str) -> PartitionStats:
    """Compute balance and cut statistics for a partition."""
    num_ranks = int(owner.max()) + 1 if owner.size else 1
    counts = np.bincount(owner, minlength=num_ranks)
    degree_mass = np.bincount(
        owner, weights=graph.degree.astype(np.float64), minlength=num_ranks
    )
    mean_mass = degree_mass.mean() if degree_mass.size else 0.0
    imbalance = float(degree_mass.max() / mean_mass) if mean_mass > 0 else 1.0
    cut = edge_cut(graph, owner)
    fraction = cut / graph.num_edges if graph.num_edges else 0.0
    return PartitionStats(
        num_ranks=num_ranks,
        strategy=strategy,
        max_vertices=int(counts.max()),
        min_vertices=int(counts.min()),
        degree_imbalance=imbalance,
        edge_cut_fraction=float(fraction),
    )
