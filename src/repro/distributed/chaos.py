"""Chaos at the wire: seeded fault injection between transport and comm.

The distributed counterpart of the resilience layer's
:class:`~repro.resilience.faults.ChaosBackend`: where that harness makes
a *compute* backend raise/hang/corrupt, :class:`ChaosTransport` wraps
any :class:`~repro.distributed.comm.Transport` and mangles *frames* —
drops, duplicates, delays, truncations and bit-flips.

Determinism is the whole point. Every fault decision is a pure function
of ``(schedule.seed, source, dest, per-channel push index)`` via the
same Philox streams that drive the MCMC chain, so a chaos run is exactly
reproducible regardless of thread timing — and because each
*retransmission* is a new push with a new index, it gets a fresh draw: a
drop rate below 1.0 can never starve the retry loop forever. The
injected-fault counters are the test oracle: a chaos run must report
injections > 0 *and* a trajectory byte-equal to the fault-free oracle,
proving the reliable layer masked every one.
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass, fields

from repro.distributed.comm import Transport
from repro.errors import TransportError
from repro.utils.rng import philox_stream

__all__ = ["FAULT_KINDS", "ChaosSchedule", "ChaosTransport"]

#: Injectable fault kinds, in cumulative-threshold order.
FAULT_KINDS = ("drop", "duplicate", "delay", "truncate", "bitflip")

#: Philox domain tag separating wire-chaos draws from MCMC draws.
_CHAOS_TAG = 0xC4A05


@dataclass(frozen=True)
class ChaosSchedule:
    """Per-kind fault rates plus the seed keying the decision streams.

    Rates are probabilities per pushed frame; their sum must stay <= 1
    (one fault at most per push, picked by cumulative thresholds on a
    single uniform).
    """

    drop: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0
    truncate: float = 0.0
    bitflip: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        total = 0.0
        for kind in FAULT_KINDS:
            rate = getattr(self, kind)
            if not 0.0 <= rate <= 1.0:
                raise TransportError(f"{kind} rate must lie in [0, 1], got {rate}")
            total += rate
        if total > 1.0:
            raise TransportError(f"fault rates sum to {total:.3f} > 1")

    @classmethod
    def from_mapping(cls, mapping: dict) -> "ChaosSchedule":
        """Build from a plain dict (CLI / backend_options friendly)."""
        known = {f.name for f in fields(cls)}
        unknown = set(mapping) - known
        if unknown:
            raise TransportError(f"unknown chaos keys: {sorted(unknown)}")
        return cls(**mapping)

    def decide(self, source: int, dest: int, index: int):
        """Return ``(fault_kind_or_None, generator)`` for one push.

        The generator is handed back so the fault's parameters (delay
        distance, cut length, flipped bit) come from the same keyed
        stream — one draw sequence per (channel, index), untouched by
        any other channel's traffic.
        """
        rng = philox_stream(self.seed, _CHAOS_TAG, (source << 20) | dest, index)
        u = float(rng.random())
        cumulative = 0.0
        for kind in FAULT_KINDS:
            cumulative += getattr(self, kind)
            if u < cumulative:
                return kind, rng
        return None, rng


class ChaosTransport(Transport):
    """Fault-injecting wrapper around any transport.

    Semantics per kind:

    * ``drop`` — the frame never reaches the inner transport (the
      sender's retransmit buffer is the only copy left);
    * ``duplicate`` — delivered twice back-to-back (dedupe must absorb);
    * ``delay`` — held back and released onto the channel only after 1-3
      further operations on it (reordering across the holdback window);
    * ``truncate`` — a suffix is cut (the length prefix catches it);
    * ``bitflip`` — one bit flipped at a seeded position (CRC or magic
      check catches it).

    ``injected`` counts what was actually done, per kind.
    """

    name = "chaos"

    def __init__(self, inner: Transport, schedule: ChaosSchedule) -> None:
        super().__init__(inner.num_ranks)
        self.inner = inner
        self.schedule = schedule
        self.injected: Counter[str] = Counter()
        self._push_index: dict[tuple[int, int], int] = {}
        self._ops: dict[tuple[int, int], int] = {}
        self._held: dict[tuple[int, int], list[tuple[int, bytes]]] = {}
        self._lock = threading.Lock()

    def push(self, frame: bytes, source: int, dest: int) -> None:
        source, dest = self._check_pair(source, dest)
        key = (source, dest)
        with self._lock:
            index = self._push_index.get(key, 0)
            self._push_index[key] = index + 1
            kind, rng = self.schedule.decide(source, dest, index)
            self._tick(key)
            if kind == "drop":
                self.injected["drop"] += 1
                return
            if kind == "duplicate":
                self.injected["duplicate"] += 1
                self.inner.push(frame, source, dest)
                self.inner.push(frame, source, dest)
                return
            if kind == "delay":
                self.injected["delay"] += 1
                release_at = self._ops[key] + 1 + int(rng.integers(0, 3))
                self._held.setdefault(key, []).append((release_at, frame))
                return
            if kind == "truncate":
                self.injected["truncate"] += 1
                cut = 1 + int(rng.integers(0, max(len(frame) - 1, 1)))
                frame = frame[: len(frame) - cut]
            elif kind == "bitflip":
                self.injected["bitflip"] += 1
                mangled = bytearray(frame)
                pos = int(rng.integers(0, len(mangled)))
                mangled[pos] ^= 1 << int(rng.integers(0, 8))
                frame = bytes(mangled)
            self.inner.push(frame, source, dest)

    def pull(self, source: int, dest: int, timeout: float = 0.0) -> bytes | None:
        source, dest = self._check_pair(source, dest)
        with self._lock:
            self._tick((source, dest))
        return self.inner.pull(source, dest, timeout=timeout)

    def _tick(self, key: tuple[int, int]) -> None:
        """Advance the channel op counter; release due held frames."""
        ops = self._ops.get(key, 0) + 1
        self._ops[key] = ops
        held = self._held.get(key)
        if not held:
            return
        due = [frame for release_at, frame in held if release_at <= ops]
        if due:
            self._held[key] = [
                (release_at, frame) for release_at, frame in held if release_at > ops
            ]
            for frame in due:
                self.inner.push(frame, *key)

    def close(self) -> None:
        # Flush still-held frames so close never loses data silently.
        with self._lock:
            for key, held in self._held.items():
                for _, frame in held:
                    self.inner.push(frame, *key)
            self._held.clear()
        self.inner.close()
