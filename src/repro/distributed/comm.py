"""Message-passing primitives for distributed SBP.

Two layers live here. The *simulated world* (:class:`SimCommWorld`)
mirrors the mpi4py surface the design would use on a real cluster
(send/recv, broadcast, allgather, allreduce, barrier), executed inside
one process: every rank owns a virtual clock, point-to-point messages
carry payload bytes, and collectives are charged with the standard
log2(P) tree model

    T_collective = ceil(log2 P) * (latency + bytes / bandwidth).

The ledger (message counts, bytes by operation) is what the distributed
SBP bench reports; the virtual clocks drive the modeled scaling curves.

The *wire layer* is the :class:`Transport` protocol: one-way framed byte
channels between ranks, behind a registry (``sim`` here — frames riding
the virtual-clock world — plus ``inproc`` and ``pipes`` in
:mod:`repro.distributed.wire`). Every frame is length-prefixed and
CRC32-checksummed (:func:`encode_frame`/:func:`decode_frame`) so a
truncated or bit-flipped delta is *detected* and quarantined, never
silently applied to a replica. Reliability (retry, dedupe, reordering)
is layered on top by :mod:`repro.distributed.reliable`.
"""

from __future__ import annotations

import dataclasses
import math
import pickle
import struct
import zlib
from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import BackendError, FrameError, TransportError

__all__ = [
    "CommSpec",
    "CommLedger",
    "SimCommWorld",
    "FRAME_MAGIC",
    "FRAME_HEADER_BYTES",
    "encode_payload",
    "decode_payload",
    "encode_frame",
    "decode_frame",
    "Transport",
    "SimTransport",
    "register_transport",
    "get_transport",
    "available_transports",
    "transport_registry",
]


@dataclass(frozen=True)
class CommSpec:
    """Network parameters of the simulated cluster.

    Defaults approximate a commodity 100 Gb/s fabric: 2 microseconds
    one-way latency, 12.5 GB/s effective per-rank bandwidth.
    """

    latency_seconds: float = 2e-6
    bandwidth_bytes_per_second: float = 12.5e9

    def transfer_seconds(self, num_bytes: int) -> float:
        return self.latency_seconds + num_bytes / self.bandwidth_bytes_per_second

    def collective_seconds(self, num_ranks: int, num_bytes: int) -> float:
        if num_ranks <= 1:
            return 0.0
        rounds = math.ceil(math.log2(num_ranks))
        return rounds * self.transfer_seconds(num_bytes)


@dataclass
class CommLedger:
    """Accumulated communication accounting for one world or channel set.

    ``retries`` counts frame retransmissions (each also re-charged to
    the byte counters — retransmitted bytes really cross the wire) and
    ``frames_quarantined`` counts received frames that failed structural
    or CRC validation and were discarded instead of applied.
    """

    point_to_point_messages: int = 0
    point_to_point_bytes: int = 0
    collective_calls: int = 0
    collective_bytes: int = 0
    retries: int = 0
    frames_quarantined: int = 0

    @property
    def total_bytes(self) -> int:
        return self.point_to_point_bytes + self.collective_bytes

    def as_row(self) -> dict[str, int]:
        return {
            "p2p_messages": self.point_to_point_messages,
            "p2p_bytes": self.point_to_point_bytes,
            "collective_calls": self.collective_calls,
            "collective_bytes": self.collective_bytes,
            "total_bytes": self.total_bytes,
            "retries": self.retries,
            "frames_quarantined": self.frames_quarantined,
        }


def _payload_bytes(payload: object) -> int:
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, (int, float, bool, np.integer, np.floating)):
        return 8
    if isinstance(payload, str):
        return len(payload.encode("utf-8"))
    if isinstance(payload, (list, tuple)):
        return sum(_payload_bytes(x) for x in payload)
    if isinstance(payload, dict):
        return sum(
            _payload_bytes(k) + _payload_bytes(v) for k, v in payload.items()
        )
    if dataclasses.is_dataclass(payload) and not isinstance(payload, type):
        return sum(
            _payload_bytes(getattr(payload, f.name))
            for f in dataclasses.fields(payload)
        )
    if payload is None:
        return 0
    # fall back to a conservative struct estimate
    return 64


class SimCommWorld:
    """A fixed-size communicator of simulated ranks.

    Rank code runs round-robin inside the caller's process; the world
    tracks one virtual clock per rank and advances them according to the
    compute time each rank reports (:meth:`advance_compute`) and the
    modeled cost of every communication call.
    """

    def __init__(self, num_ranks: int, spec: CommSpec | None = None) -> None:
        if num_ranks < 1:
            raise BackendError(f"num_ranks must be >= 1, got {num_ranks}")
        self.num_ranks = num_ranks
        self.spec = spec or CommSpec()
        self.ledger = CommLedger()
        self._clocks = np.zeros(num_ranks, dtype=np.float64)
        self._queues: dict[tuple[int, int], deque] = {}

    # ------------------------------------------------------------------
    # Virtual time
    # ------------------------------------------------------------------
    def advance_compute(self, rank: int, seconds: float) -> None:
        """Charge ``seconds`` of local computation to ``rank``'s clock."""
        if seconds < 0:
            raise ValueError("compute time cannot be negative")
        self._clocks[self._check_rank(rank)] += seconds

    def clock(self, rank: int) -> float:
        return float(self._clocks[self._check_rank(rank)])

    @property
    def makespan(self) -> float:
        """The slowest rank's clock — the simulated wall-clock."""
        return float(self._clocks.max())

    # ------------------------------------------------------------------
    # Point-to-point
    # ------------------------------------------------------------------
    def send(self, payload: object, source: int, dest: int) -> None:
        """Queue a message; cost charged to the sender's clock."""
        source = self._check_rank(source)
        dest = self._check_rank(dest)
        if source == dest:
            raise BackendError("send to self; use local state instead")
        nbytes = _payload_bytes(payload)
        self.ledger.point_to_point_messages += 1
        self.ledger.point_to_point_bytes += nbytes
        self._clocks[source] += self.spec.transfer_seconds(nbytes)
        self._queues.setdefault((source, dest), deque()).append(
            (payload, float(self._clocks[source]))
        )

    def recv(self, source: int, dest: int) -> object:
        """Dequeue the next message; receiver waits for its arrival."""
        source = self._check_rank(source)
        dest = self._check_rank(dest)
        queue = self._queues.get((source, dest))
        if not queue:
            raise BackendError(f"no message pending from rank {source} to {dest}")
        payload, arrival = queue.popleft()
        self._clocks[dest] = max(float(self._clocks[dest]), arrival)
        return payload

    def pending(self, source: int, dest: int) -> bool:
        """True when a message from ``source`` awaits ``dest``."""
        return bool(
            self._queues.get((self._check_rank(source), self._check_rank(dest)))
        )

    # ------------------------------------------------------------------
    # Collectives (synchronizing: all clocks meet, then pay tree cost)
    # ------------------------------------------------------------------
    def barrier(self) -> None:
        self._synchronize(0)

    def broadcast(self, payload: object, root: int) -> list[object]:
        """Every rank receives ``payload`` from ``root``."""
        self._check_rank(root)
        self._synchronize(_payload_bytes(payload))
        return [payload for _ in range(self.num_ranks)]

    def allgather(self, contributions: list[object]) -> list[object]:
        """Each rank contributes one item; all ranks get the full list."""
        if len(contributions) != self.num_ranks:
            raise BackendError(
                f"allgather needs {self.num_ranks} contributions, "
                f"got {len(contributions)}"
            )
        nbytes = sum(_payload_bytes(c) for c in contributions)
        self._synchronize(nbytes)
        return list(contributions)

    def allreduce_sum(self, values: list[float]) -> float:
        """Sum-reduce one scalar per rank; all ranks get the total."""
        if len(values) != self.num_ranks:
            raise BackendError(
                f"allreduce needs {self.num_ranks} values, got {len(values)}"
            )
        self._synchronize(8)
        return float(sum(values))

    # ------------------------------------------------------------------
    def _synchronize(self, nbytes: int) -> None:
        self.ledger.collective_calls += 1
        self.ledger.collective_bytes += nbytes
        meet = self.makespan
        cost = self.spec.collective_seconds(self.num_ranks, nbytes)
        self._clocks[:] = meet + cost

    def _check_rank(self, rank: int) -> int:
        rank = int(rank)
        if not 0 <= rank < self.num_ranks:
            raise BackendError(
                f"rank {rank} out of range [0, {self.num_ranks})"
            )
        return rank

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimCommWorld(ranks={self.num_ranks}, makespan={self.makespan:.3g}s)"


# ----------------------------------------------------------------------
# Wire frames
# ----------------------------------------------------------------------
#: Frame header magic ("SBPF" little-endian) — rejects foreign byte blobs.
FRAME_MAGIC = 0x46504253

#: Header layout: (magic u32, seq u64, payload_len u64, crc32 u32).
#: The CRC covers the seq and length words *and* the payload, so a bit
#: flip anywhere except the magic itself is caught (a flipped magic is
#: caught by the magic check).
_HEADER = struct.Struct("<IQQI")
FRAME_HEADER_BYTES = _HEADER.size


def encode_payload(obj: object) -> bytes:
    """Pickle a message payload for the wire (protocol 4, self-contained)."""
    return pickle.dumps(obj, protocol=4)


def decode_payload(data: bytes) -> object:
    """Unpickle a wire payload; wraps decode failures in FrameError."""
    try:
        return pickle.loads(data)
    except Exception as exc:  # noqa: BLE001 - decode is a fault barrier
        raise FrameError(f"payload decode failed: {exc!r}") from exc


def _frame_crc(seq: int, payload: bytes) -> int:
    crc = zlib.crc32(struct.pack("<QQ", seq, len(payload)))
    return zlib.crc32(payload, crc) & 0xFFFF_FFFF


def encode_frame(seq: int, payload: bytes) -> bytes:
    """Wrap ``payload`` in a checksummed, length-prefixed wire frame."""
    if seq < 0:
        raise TransportError(f"frame seq must be >= 0, got {seq}")
    header = _HEADER.pack(FRAME_MAGIC, seq, len(payload), _frame_crc(seq, payload))
    return header + payload


def decode_frame(raw: bytes) -> tuple[int, bytes]:
    """Validate a wire frame; return ``(seq, payload)``.

    Raises :class:`~repro.errors.FrameError` on truncation, bad magic,
    length mismatch, or checksum mismatch — the caller quarantines the
    frame and relies on retransmission.
    """
    if len(raw) < FRAME_HEADER_BYTES:
        raise FrameError(
            f"frame truncated: {len(raw)} bytes < {FRAME_HEADER_BYTES}-byte header"
        )
    magic, seq, length, crc = _HEADER.unpack_from(raw)
    if magic != FRAME_MAGIC:
        raise FrameError(f"bad frame magic 0x{magic:08x}")
    payload = raw[FRAME_HEADER_BYTES:]
    if len(payload) != length:
        raise FrameError(
            f"frame length mismatch: header says {length}, got {len(payload)}"
        )
    if _frame_crc(seq, payload) != crc:
        raise FrameError(f"frame CRC mismatch (seq {seq})")
    return int(seq), payload


# ----------------------------------------------------------------------
# Transport protocol + registry
# ----------------------------------------------------------------------
class Transport(ABC):
    """One-way framed byte channels between ranks.

    The contract is deliberately lossy-friendly: ``push`` enqueues an
    opaque frame on the (source, dest) channel and ``pull`` returns the
    next frame or ``None`` when nothing has arrived — transports never
    block indefinitely and never interpret frame contents. Ordering is
    FIFO per channel on the honest transports; the fault wrapper
    (:class:`~repro.distributed.chaos.ChaosTransport`) may drop,
    duplicate, reorder or corrupt frames, which is exactly what the
    reliable layer (:class:`~repro.distributed.reliable.ReliableComm`)
    exists to mask.
    """

    name: str = "abstract"

    def __init__(self, num_ranks: int) -> None:
        if num_ranks < 1:
            raise TransportError(f"num_ranks must be >= 1, got {num_ranks}")
        self.num_ranks = num_ranks

    @abstractmethod
    def push(self, frame: bytes, source: int, dest: int) -> None:
        """Enqueue ``frame`` on the (source, dest) channel."""

    @abstractmethod
    def pull(self, source: int, dest: int, timeout: float = 0.0) -> bytes | None:
        """Dequeue the next frame, or ``None`` if none arrives in time.

        ``timeout`` is a best-effort wait in seconds for in-flight
        frames (0 = non-blocking); the simulated transport delivers
        instantly and ignores it.
        """

    def close(self) -> None:
        """Release channel resources; idempotent."""

    def _check_pair(self, source: int, dest: int) -> tuple[int, int]:
        source, dest = int(source), int(dest)
        for rank in (source, dest):
            if not 0 <= rank < self.num_ranks:
                raise TransportError(
                    f"rank {rank} out of range [0, {self.num_ranks})"
                )
        if source == dest:
            raise TransportError("self-channels are not allowed; use local state")
        return source, dest

    def __enter__(self) -> "Transport":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


class SimTransport(Transport):
    """Frames riding the virtual-clock world — zero OS resources.

    The deterministic default: delivery is instantaneous (a ``push`` is
    ``pull``-able immediately) and every byte is still charged to the
    :class:`SimCommWorld` clocks and ledger, so modeled scaling numbers
    keep working when the sweep runs over the framed wire.
    """

    name = "sim"

    def __init__(self, num_ranks: int, spec: CommSpec | None = None) -> None:
        super().__init__(num_ranks)
        self.world = SimCommWorld(num_ranks, spec)

    def push(self, frame: bytes, source: int, dest: int) -> None:
        source, dest = self._check_pair(source, dest)
        self.world.send(frame, source, dest)

    def pull(self, source: int, dest: int, timeout: float = 0.0) -> bytes | None:
        source, dest = self._check_pair(source, dest)
        if not self.world.pending(source, dest):
            return None
        frame = self.world.recv(source, dest)
        assert isinstance(frame, bytes)
        return frame


_TRANSPORT_REGISTRY: dict[str, Callable[..., Transport]] = {}


def register_transport(name: str, factory: Callable[..., Transport]) -> None:
    """Register a transport factory under ``name`` (used by plugins/tests)."""
    if name in _TRANSPORT_REGISTRY:
        raise TransportError(f"transport {name!r} already registered")
    _TRANSPORT_REGISTRY[name] = factory


def get_transport(name: str, num_ranks: int, **kwargs) -> Transport:
    """Instantiate a transport by name: 'sim', 'inproc' or 'pipes'."""
    from repro.distributed import wire  # noqa: F401  (registers built-ins)

    factory = _TRANSPORT_REGISTRY.get(name)
    if factory is None:
        raise TransportError(
            f"unknown transport {name!r}; available: {sorted(_TRANSPORT_REGISTRY)}"
        )
    return factory(num_ranks=num_ranks, **kwargs)


def available_transports() -> list[str]:
    from repro.distributed import wire  # noqa: F401

    return sorted(_TRANSPORT_REGISTRY)


def transport_registry() -> dict[str, Callable[..., Transport]]:
    """Name → factory snapshot of the transport registry."""
    available_transports()  # import side effect registers the built-ins
    return dict(_TRANSPORT_REGISTRY)


register_transport("sim", SimTransport)
