"""Simulated message-passing world with a latency/bandwidth cost model.

Mirrors the mpi4py surface the design would use on a real cluster
(send/recv, broadcast, allgather, allreduce, barrier), executed inside
one process: every rank owns a virtual clock, point-to-point messages
carry payload bytes, and collectives are charged with the standard
log2(P) tree model

    T_collective = ceil(log2 P) * (latency + bytes / bandwidth).

The ledger (message counts, bytes by operation) is what the distributed
SBP bench reports; the virtual clocks drive the modeled scaling curves.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.errors import BackendError

__all__ = ["CommSpec", "CommLedger", "SimCommWorld"]


@dataclass(frozen=True)
class CommSpec:
    """Network parameters of the simulated cluster.

    Defaults approximate a commodity 100 Gb/s fabric: 2 microseconds
    one-way latency, 12.5 GB/s effective per-rank bandwidth.
    """

    latency_seconds: float = 2e-6
    bandwidth_bytes_per_second: float = 12.5e9

    def transfer_seconds(self, num_bytes: int) -> float:
        return self.latency_seconds + num_bytes / self.bandwidth_bytes_per_second

    def collective_seconds(self, num_ranks: int, num_bytes: int) -> float:
        if num_ranks <= 1:
            return 0.0
        rounds = math.ceil(math.log2(num_ranks))
        return rounds * self.transfer_seconds(num_bytes)


@dataclass
class CommLedger:
    """Accumulated communication accounting for one world."""

    point_to_point_messages: int = 0
    point_to_point_bytes: int = 0
    collective_calls: int = 0
    collective_bytes: int = 0

    @property
    def total_bytes(self) -> int:
        return self.point_to_point_bytes + self.collective_bytes

    def as_row(self) -> dict[str, int]:
        return {
            "p2p_messages": self.point_to_point_messages,
            "p2p_bytes": self.point_to_point_bytes,
            "collective_calls": self.collective_calls,
            "collective_bytes": self.collective_bytes,
            "total_bytes": self.total_bytes,
        }


def _payload_bytes(payload: object) -> int:
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if isinstance(payload, (int, float, bool, np.integer, np.floating)):
        return 8
    if isinstance(payload, (list, tuple)):
        return sum(_payload_bytes(x) for x in payload)
    if payload is None:
        return 0
    # fall back to a conservative struct estimate
    return 64


class SimCommWorld:
    """A fixed-size communicator of simulated ranks.

    Rank code runs round-robin inside the caller's process; the world
    tracks one virtual clock per rank and advances them according to the
    compute time each rank reports (:meth:`advance_compute`) and the
    modeled cost of every communication call.
    """

    def __init__(self, num_ranks: int, spec: CommSpec | None = None) -> None:
        if num_ranks < 1:
            raise BackendError(f"num_ranks must be >= 1, got {num_ranks}")
        self.num_ranks = num_ranks
        self.spec = spec or CommSpec()
        self.ledger = CommLedger()
        self._clocks = np.zeros(num_ranks, dtype=np.float64)
        self._queues: dict[tuple[int, int], deque] = {}

    # ------------------------------------------------------------------
    # Virtual time
    # ------------------------------------------------------------------
    def advance_compute(self, rank: int, seconds: float) -> None:
        """Charge ``seconds`` of local computation to ``rank``'s clock."""
        if seconds < 0:
            raise ValueError("compute time cannot be negative")
        self._clocks[self._check_rank(rank)] += seconds

    def clock(self, rank: int) -> float:
        return float(self._clocks[self._check_rank(rank)])

    @property
    def makespan(self) -> float:
        """The slowest rank's clock — the simulated wall-clock."""
        return float(self._clocks.max())

    # ------------------------------------------------------------------
    # Point-to-point
    # ------------------------------------------------------------------
    def send(self, payload: object, source: int, dest: int) -> None:
        """Queue a message; cost charged to the sender's clock."""
        source = self._check_rank(source)
        dest = self._check_rank(dest)
        if source == dest:
            raise BackendError("send to self; use local state instead")
        nbytes = _payload_bytes(payload)
        self.ledger.point_to_point_messages += 1
        self.ledger.point_to_point_bytes += nbytes
        self._clocks[source] += self.spec.transfer_seconds(nbytes)
        self._queues.setdefault((source, dest), deque()).append(
            (payload, float(self._clocks[source]))
        )

    def recv(self, source: int, dest: int) -> object:
        """Dequeue the next message; receiver waits for its arrival."""
        source = self._check_rank(source)
        dest = self._check_rank(dest)
        queue = self._queues.get((source, dest))
        if not queue:
            raise BackendError(f"no message pending from rank {source} to {dest}")
        payload, arrival = queue.popleft()
        self._clocks[dest] = max(float(self._clocks[dest]), arrival)
        return payload

    # ------------------------------------------------------------------
    # Collectives (synchronizing: all clocks meet, then pay tree cost)
    # ------------------------------------------------------------------
    def barrier(self) -> None:
        self._synchronize(0)

    def broadcast(self, payload: object, root: int) -> list[object]:
        """Every rank receives ``payload`` from ``root``."""
        self._check_rank(root)
        self._synchronize(_payload_bytes(payload))
        return [payload for _ in range(self.num_ranks)]

    def allgather(self, contributions: list[object]) -> list[object]:
        """Each rank contributes one item; all ranks get the full list."""
        if len(contributions) != self.num_ranks:
            raise BackendError(
                f"allgather needs {self.num_ranks} contributions, "
                f"got {len(contributions)}"
            )
        nbytes = sum(_payload_bytes(c) for c in contributions)
        self._synchronize(nbytes)
        return list(contributions)

    def allreduce_sum(self, values: list[float]) -> float:
        """Sum-reduce one scalar per rank; all ranks get the total."""
        if len(values) != self.num_ranks:
            raise BackendError(
                f"allreduce needs {self.num_ranks} values, got {len(values)}"
            )
        self._synchronize(8)
        return float(sum(values))

    # ------------------------------------------------------------------
    def _synchronize(self, nbytes: int) -> None:
        self.ledger.collective_calls += 1
        self.ledger.collective_bytes += nbytes
        meet = self.makespan
        cost = self.spec.collective_seconds(self.num_ranks, nbytes)
        self._clocks[:] = meet + cost

    def _check_rank(self, rank: int) -> int:
        rank = int(rank)
        if not 0 <= rank < self.num_ranks:
            raise BackendError(
                f"rank {rank} out of range [0, {self.num_ranks})"
            )
        return rank

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimCommWorld(ranks={self.num_ranks}, makespan={self.makespan:.3g}s)"
