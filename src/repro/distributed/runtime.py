"""Fault-tolerant distributed execution backend (``--backend distributed:*``).

:class:`DistributedBackend` plugs the EDiSt-style replicated-blockmodel
layout (paper §3.1, ROADMAP item 2) into the ordinary execution-backend
registry: the sweep engine hands it a frozen blockmodel and a vertex
segment, ownership shards the segment across ``ranks``, every live rank
evaluates its owned share against the replica, and the results flow to
the supervisor (rank 0) as framed, checksummed, sequence-numbered delta
messages over a pluggable transport — ``sim``, ``inproc`` or ``pipes``.

Because asynchronous Gibbs decisions depend only on the frozen
sweep-start state and the pre-drawn per-vertex Philox rows (which the
engine lays out positionally, independent of execution layout), the
union of per-shard evaluations is byte-equal to the single-node sweep —
for any rank count, any transport, and any fault pattern the reliable
layer can mask.

Shard supervision rides the sweep barrier: every live rank reports every
sweep (an owned-vertex delta or an empty heartbeat), so a shard whose
channel exhausts its retry budget is *detected* exactly one barrier
late. Its vertices are then re-leased to the survivors — replication
makes that a pure ownership update — and the configured
``shard_loss_policy`` decides what happens to the sweep that lost it:

* ``recover`` — survivors re-evaluate the orphaned vertices from the
  same frozen state and Philox rows; the chain continues bit-identically
  (the default, and the property the resilience gate pins down);
* ``degrade`` — the orphaned proposals are recorded as rejections, the
  run's stop guard is tripped, and the driver returns the best-so-far
  result flagged ``interrupted=True``;
* ``fail`` — :class:`~repro.errors.ShardLost` propagates to the caller.
"""

from __future__ import annotations

import numpy as np

from repro.distributed.chaos import ChaosSchedule, ChaosTransport
from repro.distributed.comm import CommLedger, Transport, get_transport
from repro.distributed.partition import partition_vertices
from repro.distributed.reliable import ReliableComm
from repro.errors import ChannelTimeout, ShardLost, TransportError
from repro.parallel.backend import ExecutionBackend, get_backend, register_backend
from repro.resilience.resilient import RetryPolicy
from repro.utils.log import get_logger

__all__ = ["SHARD_LOSS_POLICIES", "DistributedBackend"]

_log = get_logger("distributed.runtime")

#: Rank 0 is the supervisor: it drives the sweep, applies its own share
#: locally, and collects every other rank's delta at the barrier. Its
#: death is the driver process dying — the checkpoint layer's job, not
#: this one's — so failure schedules may not target it.
_SUPERVISOR = 0

SHARD_LOSS_POLICIES = ("recover", "degrade", "fail")

_DEFAULT_RANKS = 2


class DistributedBackend(ExecutionBackend):
    """N-rank sharded sweep evaluation over a pluggable framed transport.

    Parameters
    ----------
    inner:
        Spec string ``"<transport>[:<ranks>]"`` (e.g. ``"pipes:4"``) —
        the remainder of a ``--backend distributed:<transport>:<ranks>``
        CLI spec. Overridden by the explicit keywords below.
    transport, ranks:
        Transport registry name and rank count (keyword alternative to
        ``inner``).
    shard_loss_policy:
        ``recover`` (default), ``degrade`` or ``fail`` — see the module
        docstring.
    partition_strategy:
        Vertex partitioner registry name (``degree_balanced`` default).
    chaos:
        Optional :class:`ChaosSchedule` (or mapping) injecting wire
        faults between the reliable layer and the transport.
    retry:
        Optional :class:`RetryPolicy` (or mapping) for per-message
        retransmission; the default allows 8 retries with a short poll.
    failures:
        Optional test schedule ``{sweep_call_index: [ranks]}``: the
        named ranks die silently during that ``evaluate_sweep`` call
        (they never report), exercising the supervision path.
    inner_backend:
        Per-shard evaluator backend name (``vectorized`` default; any
        non-wrapper registered backend works since all are bit-identical).
    transport_options:
        Extra keyword arguments for the transport factory.
    """

    name = "distributed"

    def __init__(
        self,
        inner: str | None = None,
        transport: str | None = None,
        ranks: int | None = None,
        shard_loss_policy: str = "recover",
        partition_strategy: str = "degree_balanced",
        chaos: ChaosSchedule | dict | None = None,
        retry: RetryPolicy | dict | None = None,
        failures: dict | None = None,
        inner_backend: str = "vectorized",
        transport_options: dict | None = None,
    ) -> None:
        spec_transport, spec_ranks = _parse_inner(inner)
        self.transport_name = transport or spec_transport or "sim"
        self.num_ranks = int(ranks if ranks is not None else spec_ranks)
        if self.num_ranks < 1:
            raise TransportError(f"ranks must be >= 1, got {self.num_ranks}")
        if shard_loss_policy not in SHARD_LOSS_POLICIES:
            raise TransportError(
                f"shard_loss_policy must be one of {SHARD_LOSS_POLICIES}, "
                f"got {shard_loss_policy!r}"
            )
        self.shard_loss_policy = shard_loss_policy
        self.partition_strategy = partition_strategy
        if "distributed" in inner_backend:
            raise TransportError("distributed backends cannot nest")
        self.inner = get_backend(inner_backend)

        raw: Transport = get_transport(
            self.transport_name, self.num_ranks, **(transport_options or {})
        )
        if isinstance(chaos, dict):
            chaos = ChaosSchedule.from_mapping(chaos)
        self.chaos: ChaosTransport | None = None
        if chaos is not None:
            self.chaos = ChaosTransport(raw, chaos)
            raw = self.chaos
        if isinstance(retry, dict):
            retry = RetryPolicy(**retry)
        self.comm = ReliableComm(raw, policy=retry)

        self.failures = _parse_failures(failures)
        if any(_SUPERVISOR in ranks_ for ranks_ in self.failures.values()):
            raise TransportError("supervisor rank 0 cannot be scheduled to die")

        self._dead: set[int] = set()
        self._owner: np.ndarray | None = None
        self._graph_key: tuple | None = None
        self._calls = 0
        self._stop_guard = None
        self.degraded = False
        self.shard_releases = 0
        self.vertices_released = 0

    # ------------------------------------------------------------------
    # Driver integration
    # ------------------------------------------------------------------
    def bind_stop_guard(self, stop) -> None:
        """Let the degrade policy stop the run between sweeps."""
        self._stop_guard = stop

    @property
    def ledger(self) -> CommLedger:
        return self.comm.ledger

    def comm_report(self) -> dict[str, object]:
        """Wire + supervision accounting for diagnostics and timings."""
        report: dict[str, object] = {
            "transport": self.transport_name,
            "ranks": self.num_ranks,
            "dead_ranks": sorted(self._dead),
            "shard_releases": self.shard_releases,
            "vertices_released": self.vertices_released,
            "degraded": self.degraded,
            "chaos_injected": dict(self.chaos.injected) if self.chaos else {},
        }
        report.update(self.ledger.as_row())
        return report

    # ------------------------------------------------------------------
    # Sweep evaluation
    # ------------------------------------------------------------------
    def evaluate_sweep(self, bm, graph, vertices, uniforms, beta):
        call = self._calls
        self._calls += 1
        owner = self._ownership(graph)
        vertices = np.asarray(vertices, dtype=np.int64)
        n = vertices.shape[0]
        accepted = np.zeros(n, dtype=bool)
        targets = np.asarray(bm.assignment[vertices], dtype=np.int64).copy()

        dying = {
            r for r in self.failures.get(call, ()) if r not in self._dead
        }
        live = [r for r in range(self.num_ranks) if r not in self._dead]
        vertex_owner = owner[vertices]
        positions = {
            rank: np.nonzero(vertex_owner == rank)[0] for rank in live
        }

        # Evaluation + report: every live rank sends every sweep (an
        # owned delta or an empty heartbeat); a dying rank sends nothing.
        for rank in live:
            if rank in dying:
                continue
            pos = positions[rank]
            acc, tgt = self._evaluate(bm, graph, vertices, uniforms, beta, pos)
            if rank == _SUPERVISOR:
                accepted[pos] = acc
                targets[pos] = tgt
            else:
                self.comm.send(
                    {"rank": rank, "call": call, "pos": pos,
                     "accepted": acc, "targets": tgt},
                    source=rank, dest=_SUPERVISOR,
                )

        # Barrier collection: the heartbeat contract turns an exhausted
        # channel into a death verdict.
        lost: list[int] = []
        for rank in live:
            if rank == _SUPERVISOR:
                continue
            try:
                message = self.comm.recv(source=rank, dest=_SUPERVISOR)
            except ChannelTimeout:
                lost.append(rank)
                continue
            self._check_message(message, rank, call)
            pos = message["pos"]
            accepted[pos] = message["accepted"]
            targets[pos] = message["targets"]

        if lost:
            self._handle_lost(
                lost, call, bm, graph, vertices, uniforms, beta,
                positions, accepted, targets,
            )
        return accepted, targets

    def _evaluate(self, bm, graph, vertices, uniforms, beta, pos):
        """Evaluate one shard's share of the segment.

        ``pos`` indexes into ``vertices``/``uniforms`` positionally, so
        the per-vertex Philox rows stay attached to their vertices no
        matter which rank (or which re-lease epoch) runs them.
        """
        return self.inner.evaluate_sweep(
            bm, graph, vertices[pos], uniforms[pos], beta
        )

    @staticmethod
    def _check_message(message: object, rank: int, call: int) -> None:
        if (
            not isinstance(message, dict)
            or message.get("rank") != rank
            or message.get("call") != call
        ):
            raise TransportError(
                f"rank {rank} sweep-call {call}: out-of-protocol message "
                f"{type(message).__name__}"
            )

    # ------------------------------------------------------------------
    # Shard supervision
    # ------------------------------------------------------------------
    def _handle_lost(
        self, lost, call, bm, graph, vertices, uniforms, beta,
        positions, accepted, targets,
    ) -> None:
        self._dead.update(lost)
        if self.shard_loss_policy == "fail":
            raise ShardLost(
                f"rank(s) {sorted(lost)} lost at sweep call {call} "
                "(shard_loss_policy=fail)"
            )
        _log.warning(
            "sweep call %d: rank(s) %s declared dead; re-leasing to survivors",
            call, sorted(lost),
        )
        orphan_pos = (
            np.concatenate([positions[r] for r in lost])
            if lost else np.empty(0, dtype=np.int64)
        )
        self._release(lost)
        if self.shard_loss_policy == "degrade":
            # Orphaned proposals stay rejections; flag and stop the run.
            self.degraded = True
            if self._stop_guard is not None:
                self._stop_guard.trigger(
                    f"shard(s) {sorted(lost)} lost; degrading to best-so-far"
                )
            return
        # recover: the new owners re-evaluate the orphans from the same
        # frozen state and Philox rows — bit-identical by construction.
        assert self._owner is not None
        new_owner = self._owner[vertices[orphan_pos]]
        for rank in np.unique(new_owner):
            rank = int(rank)
            pos = orphan_pos[new_owner == rank]
            acc, tgt = self._evaluate(bm, graph, vertices, uniforms, beta, pos)
            if rank == _SUPERVISOR:
                accepted[pos] = acc
                targets[pos] = tgt
                continue
            self.comm.send(
                {"rank": rank, "call": call, "pos": pos,
                 "accepted": acc, "targets": tgt},
                source=rank, dest=_SUPERVISOR,
            )
            message = self.comm.recv(source=rank, dest=_SUPERVISOR)
            self._check_message(message, rank, call)
            accepted[message["pos"]] = message["accepted"]
            targets[message["pos"]] = message["targets"]

    def _release(self, lost) -> None:
        """Re-lease every vertex owned by ``lost`` to the survivors."""
        assert self._owner is not None
        survivors = np.asarray(
            [r for r in range(self.num_ranks) if r not in self._dead],
            dtype=np.int64,
        )
        if survivors.size == 0:  # pragma: no cover - rank 0 never dies
            raise ShardLost("no survivors to re-lease to")
        orphans = np.nonzero(np.isin(self._owner, list(lost)))[0]
        if orphans.size:
            # Deterministic round-robin: re-lease depends only on the
            # ownership map and the sorted survivor set.
            self._owner[orphans] = survivors[np.arange(orphans.size) % survivors.size]
        self.shard_releases += len(lost)
        self.vertices_released += int(orphans.size)

    def _ownership(self, graph) -> np.ndarray:
        key = (id(graph), graph.num_vertices, graph.num_edges)
        if self._graph_key != key:
            self._graph_key = key
            self._owner = partition_vertices(
                graph, self.num_ranks, strategy=self.partition_strategy
            )
            if self._dead:
                self._release(set(self._dead))
        assert self._owner is not None
        return self._owner

    def close(self) -> None:
        self.inner.close()
        self.comm.close()


def _parse_inner(inner: str | None) -> tuple[str | None, int]:
    if inner is None:
        return None, _DEFAULT_RANKS
    name, _, count = str(inner).partition(":")
    if not count:
        return name or None, _DEFAULT_RANKS
    try:
        return name or None, int(count)
    except ValueError as exc:
        raise TransportError(
            f"bad distributed spec {inner!r}; expected '<transport>[:<ranks>]'"
        ) from exc


def _parse_failures(failures: dict | None) -> dict[int, tuple[int, ...]]:
    if not failures:
        return {}
    parsed: dict[int, tuple[int, ...]] = {}
    for call, ranks in failures.items():
        parsed[int(call)] = tuple(int(r) for r in ranks)
    return parsed


register_backend("distributed", DistributedBackend)
