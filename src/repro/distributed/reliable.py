"""Reliable delivery over an unreliable framed wire.

:class:`ReliableComm` turns the raw :class:`~repro.distributed.comm.
Transport` contract (frames may be dropped, duplicated, delayed,
reordered or corrupted — see :class:`~repro.distributed.chaos.
ChaosTransport`) into exactly-once, in-order message delivery:

* every payload is pickled, framed with a per-channel **sequence
  number** and CRC32 (:func:`~repro.distributed.comm.encode_frame`),
  and kept in a retransmit buffer until delivered;
* the receive path **quarantines** frames that fail validation (counted
  in the ledger, never applied), **drops duplicates** (seq below the
  cursor), **stashes** early arrivals (seq above it), and otherwise
  hands payloads up strictly in sequence order;
* a missing frame triggers retransmission under a
  :class:`~repro.resilience.resilient.RetryPolicy` — the same
  attempts/backoff/timeout object the resilient execution backend uses —
  and exhausting it raises :class:`~repro.errors.ChannelTimeout`, the
  wire-level symptom the shard supervisor maps to its loss policy.

One ``ReliableComm`` instance holds both endpoints' cursors for all
channels — the honest single-process equivalent of per-rank protocol
state, matching how the transports themselves are process-local.
"""

from __future__ import annotations

import threading

from repro.distributed.comm import (
    CommLedger,
    Transport,
    decode_frame,
    decode_payload,
    encode_frame,
    encode_payload,
)
from repro.errors import ChannelTimeout, FrameError
from repro.resilience.resilient import RetryPolicy
from repro.utils.log import get_logger

__all__ = ["ReliableComm"]

_log = get_logger("distributed.reliable")

#: Default per-pull wait for in-flight frames (seconds). Small on
#: purpose: the honest transports deliver within microseconds, and the
#: retry loop multiplies this by the policy's attempt count.
_DEFAULT_POLL = 0.02

#: Cap on remembered quarantine descriptions (counters never stop).
_QUARANTINE_LOG_CAP = 64


class ReliableComm:
    """Exactly-once in-order messaging over a lossy framed transport."""

    def __init__(
        self,
        transport: Transport,
        policy: RetryPolicy | None = None,
        ledger: CommLedger | None = None,
    ) -> None:
        self.transport = transport
        self.policy = policy or RetryPolicy(retries=8, backoff=0.0)
        self.ledger = ledger or CommLedger()
        self.poll_timeout = (
            self.policy.timeout if self.policy.timeout is not None else _DEFAULT_POLL
        )
        self.quarantine_log: list[str] = []
        self._next_send: dict[tuple[int, int], int] = {}
        self._next_recv: dict[tuple[int, int], int] = {}
        self._sent: dict[tuple[int, int], dict[int, bytes]] = {}
        self._stash: dict[tuple[int, int], dict[int, bytes]] = {}
        self._lock = threading.Lock()

    @property
    def num_ranks(self) -> int:
        return self.transport.num_ranks

    # ------------------------------------------------------------------
    # Send path
    # ------------------------------------------------------------------
    def send(self, payload: object, source: int, dest: int) -> None:
        """Frame and push one message on the (source, dest) channel."""
        key = (source, dest)
        with self._lock:
            seq = self._next_send.get(key, 0)
            self._next_send[key] = seq + 1
            frame = encode_frame(seq, encode_payload(payload))
            self._sent.setdefault(key, {})[seq] = frame
            self.ledger.point_to_point_messages += 1
            self.ledger.point_to_point_bytes += len(frame)
        self.transport.push(frame, source, dest)

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def recv(self, source: int, dest: int) -> object:
        """Return the next in-sequence payload from ``source``.

        Masks drops/dups/reordering/corruption via the stash +
        retransmit protocol; raises :class:`ChannelTimeout` once the
        retry policy is exhausted with the expected frame still missing
        — the caller decides whether that means a dead shard.
        """
        key = (source, dest)
        expected = self._next_recv.get(key, 0)
        stash = self._stash.setdefault(key, {})
        for attempt in range(self.policy.attempts):
            self.policy.sleep_before(attempt)
            self._drain(key, stash)
            if expected in stash:
                raw = stash.pop(expected)
                self._next_recv[key] = expected + 1
                self._ack(key, expected)
                return decode_payload(raw)
            if attempt + 1 < self.policy.attempts:
                self._retransmit(key, expected)
        raise ChannelTimeout(
            f"no frame {expected} from rank {source} to {dest} after "
            f"{self.policy.attempts} attempts"
        )

    def _drain(self, key: tuple[int, int], stash: dict[int, bytes]) -> None:
        """Move every available wire frame into the stash.

        The first pull may wait ``poll_timeout`` for in-flight frames;
        subsequent pulls are non-blocking so an empty wire costs one
        bounded wait per attempt, not one per frame.
        """
        expected = self._next_recv.get(key, 0)
        timeout = 0.0 if expected in stash else self.poll_timeout
        while True:
            raw = self.transport.pull(*key, timeout=timeout)
            timeout = 0.0
            if raw is None:
                return
            try:
                seq, payload = decode_frame(raw)
            except FrameError as exc:
                self.ledger.frames_quarantined += 1
                if len(self.quarantine_log) < _QUARANTINE_LOG_CAP:
                    self.quarantine_log.append(f"{key[0]}->{key[1]}: {exc}")
                _log.warning("quarantined frame on %s->%s: %s", *key, exc)
                continue
            if seq < expected:
                continue  # duplicate of an already-delivered frame
            stash.setdefault(seq, payload)

    def _retransmit(self, key: tuple[int, int], seq: int) -> None:
        """Re-push the buffered frame blocking the sequence, if any.

        A seq the sender never buffered means the peer never sent it —
        the dead-shard case — so there is nothing to re-push and the
        retry loop is left to time out.
        """
        with self._lock:
            frame = self._sent.get(key, {}).get(seq)
            if frame is None:
                return
            self.ledger.retries += 1
            self.ledger.point_to_point_bytes += len(frame)
        _log.debug("retransmitting frame %d on %s->%s", seq, *key)
        self.transport.push(frame, *key)

    def _ack(self, key: tuple[int, int], seq: int) -> None:
        """Drop retransmit buffers at or below the delivered ``seq``."""
        with self._lock:
            sent = self._sent.get(key)
            if sent:
                for old in [s for s in sent if s <= seq]:
                    del sent[old]

    def close(self) -> None:
        self.transport.close()

    def __enter__(self) -> "ReliableComm":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
