"""Distributed asynchronous SBP sweep and its scaling model.

The distribution design the paper's §6 points at, prototyped on the
simulated runtime:

* the blockmodel is **replicated** (the paper's own reasoning in §3.1 —
  per-thread copies of B are memory-prohibitive, and the same holds per
  rank for distinct *partitions*; replication plus one allgather per
  sweep is the communication-minimal layout for the sizes B reaches
  after the first merges);
* each rank evaluates its **owned** vertices against its replica of the
  frozen sweep-start state — legal precisely because asynchronous Gibbs
  tolerates staleness;
* accepted moves are exchanged with one allgather, every replica applies
  them, and the blockmodel is rebuilt locally (no further traffic).

Because decisions depend only on the frozen state and the pre-drawn
per-vertex uniforms, the distributed sweep is bit-identical to
single-node A-SBP regardless of rank count or partitioning strategy —
the key invariant the tests pin down. What *changes* with rank count is
the virtual cost: per-rank compute, the allgather, and the rebuild,
which :func:`model_distributed_scaling` turns into scaling curves.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.distributed.comm import CommSpec, SimCommWorld
from repro.distributed.graphdist import DistributedGraph
from repro.distributed.partition import partition_vertices
from repro.graph.graph import Graph
from repro.mcmc.async_gibbs import apply_frozen_barrier, frozen_moves
from repro.parallel.backend import ExecutionBackend
from repro.sbm.blockmodel import Blockmodel
from repro.types import IntArray, SweepStats
from repro.utils.rng import SweepRandomness

__all__ = [
    "DistributedSweepReport",
    "distributed_async_sweep",
    "model_distributed_scaling",
]


@dataclass
class DistributedSweepReport:
    """Cost accounting for one distributed sweep.

    ``stats`` carries the same per-sweep bookkeeping the shared-memory
    engine emits (scalar counters always; the O(V) per-vertex work
    vector only under ``record_work``), so distributed sweeps feed the
    simulated thread executor and diagnostics unchanged.
    """

    num_ranks: int
    accepted_moves: int
    makespan_seconds: float
    compute_seconds_max: float
    communication_bytes: int
    rebuild_seconds: float
    stats: SweepStats | None = None

    def as_row(self) -> dict[str, object]:
        return {
            "ranks": self.num_ranks,
            "moves": self.accepted_moves,
            "makespan_s": self.makespan_seconds,
            "compute_max_s": self.compute_seconds_max,
            "comm_bytes": self.communication_bytes,
        }


def distributed_async_sweep(
    bm: Blockmodel,
    dgraph: DistributedGraph,
    world: SimCommWorld,
    randomness: SweepRandomness,
    beta: float,
    backend: ExecutionBackend,
    seconds_per_unit: float = 1e-6,
    rebuild_seconds: float = 0.0,
    updater=None,
    record_work: bool = False,
) -> DistributedSweepReport:
    """Run one distributed A-SBP sweep, mutating ``bm`` (the replica).

    ``randomness`` must cover all vertices *by global vertex id* (row v
    drives vertex v), so ownership does not alter the chain.
    ``seconds_per_unit`` and ``rebuild_seconds`` feed the virtual
    clocks; they do not affect results. ``updater``, when given, is the
    same :class:`~repro.parallel.backend.SweepUpdater` the shared-memory
    engine uses for its barrier (``None`` keeps the legacy replica
    copy-and-rebuild); every strategy leaves the replica byte-equal.
    """
    graph = dgraph.graph
    if len(randomness) < graph.num_vertices:
        raise ValueError(
            f"randomness covers {len(randomness)} vertices, need {graph.num_vertices}"
        )
    if world.num_ranks != dgraph.num_ranks:
        raise ValueError(
            f"world has {world.num_ranks} ranks, partition has {dgraph.num_ranks}"
        )

    contributions: list[np.ndarray] = []
    compute_max = 0.0
    total_work = 0.0
    work_parts: list[np.ndarray] = []
    for shard in dgraph.shards:
        owned = shard.owned
        uniforms = randomness.uniforms[owned]
        accepted, targets = backend.evaluate_sweep(bm, graph, owned, uniforms, beta)
        moved_vertices, moved_targets = frozen_moves(bm, owned, accepted, targets)
        contributions.append(
            np.stack([moved_vertices, moved_targets], axis=1)
        )
        units = graph.degree[owned].astype(np.int64) + 1
        if record_work:
            work_parts.append(units)
        work = float(units.sum()) * seconds_per_unit
        total_work += float(units.sum())
        world.advance_compute(shard.rank, work)
        compute_max = max(compute_max, work)

    gathered = world.allgather(contributions)
    all_moves = (
        np.concatenate(gathered) if gathered else np.empty((0, 2), dtype=np.int64)
    )

    apply_frozen_barrier(
        bm, graph, all_moves[:, 0], all_moves[:, 1], updater=updater
    )
    for rank in range(world.num_ranks):
        world.advance_compute(rank, rebuild_seconds)

    stats = SweepStats(
        proposals=graph.num_vertices,
        accepted=int(all_moves.shape[0]),
        parallel_work=total_work,
        barrier_moved=int(all_moves.shape[0]),
        work_per_vertex=np.concatenate(work_parts) if work_parts else None,
    )
    return DistributedSweepReport(
        num_ranks=world.num_ranks,
        accepted_moves=int(all_moves.shape[0]),
        makespan_seconds=world.makespan,
        compute_seconds_max=compute_max,
        communication_bytes=world.ledger.total_bytes,
        rebuild_seconds=rebuild_seconds,
        stats=stats if record_work else stats.without_work(),
    )


def model_distributed_scaling(
    graph: Graph,
    assignment: IntArray,
    rank_counts: list[int],
    sweeps: int = 3,
    strategy: str = "degree_balanced",
    spec: CommSpec | None = None,
    seconds_per_unit: float = 1e-6,
    rebuild_seconds: float = 1e-3,
    beta: float = 3.0,
    seed: int = 0,
) -> list[dict[str, object]]:
    """Modeled distributed A-SBP scaling over ``rank_counts``.

    Runs ``sweeps`` distributed sweeps from the given starting
    ``assignment`` for each rank count and reports per-count makespan,
    communication volume, partition quality and result checksum (which
    must be identical across rank counts — staleness semantics don't
    depend on the partitioning).
    """
    from repro.distributed.partition import partition_stats
    from repro.parallel.vectorized import VectorizedBackend

    backend = VectorizedBackend()
    rows: list[dict[str, object]] = []
    reference: str | None = None
    for ranks in rank_counts:
        bm = Blockmodel.from_assignment(
            graph, np.asarray(assignment, dtype=np.int64)
        )
        owner = partition_vertices(graph, ranks, strategy=strategy)
        dgraph = DistributedGraph(graph, owner)
        world = SimCommWorld(ranks, spec)
        accepted = 0
        for sweep in range(sweeps):
            rand = SweepRandomness.draw(seed, 900, sweep, graph.num_vertices)
            report = distributed_async_sweep(
                bm, dgraph, world, rand, beta, backend,
                seconds_per_unit=seconds_per_unit,
                rebuild_seconds=rebuild_seconds,
            )
            accepted += report.accepted_moves
        # Full-width digest of the final assignment: a cross-rank
        # divergence of any single membership must flip the identity
        # check (the old 16-bit XOR had birthday-trivial collisions).
        digest = hashlib.sha256(
            np.ascontiguousarray(bm.assignment, dtype=np.int64).tobytes()
        ).hexdigest()
        if reference is None:
            reference = digest
        stats = partition_stats(graph, owner, strategy)
        rows.append(
            {
                "ranks": ranks,
                "makespan_s": world.makespan,
                "comm_bytes": world.ledger.total_bytes,
                "edge_cut": stats.edge_cut_fraction,
                "degree_imbalance": stats.degree_imbalance,
                "moves": accepted,
                "assignment_sha256": digest,
                "result_matches_1rank": digest == reference,
            }
        )
    return rows
