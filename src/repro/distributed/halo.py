"""Halo exchange — the point-to-point alternative to the allgather.

The prototype sweep (:mod:`repro.distributed.dsbp`) broadcasts *all*
accepted moves with one allgather, which is simple and optimal when most
moves are relevant to most ranks (the replicated-blockmodel layout needs
every move anyway for its rebuild).

A *partitioned*-blockmodel design — the direction a memory-constrained
deployment must take — only needs each rank to learn the new memberships
of its **ghost** vertices. This module implements that halo exchange:
each owner sends every neighbouring rank exactly the moved vertices that
rank ghosts, via point-to-point messages. The communication ledger then
quantifies the allgather-vs-halo volume tradeoff as a function of the
edge cut, which is the quantitative input the paper's future-work
question needs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distributed.comm import SimCommWorld
from repro.distributed.graphdist import DistributedGraph
from repro.types import IntArray

__all__ = [
    "HaloPlan",
    "build_halo_plan",
    "halo_exchange_moves",
    "halo_exchange_frames",
]


@dataclass
class HaloPlan:
    """Precomputed send lists: which owned vertices each peer ghosts.

    ``sends[a][b]`` is the array of vertices owned by rank ``a`` that
    appear as ghosts on rank ``b`` (empty pairs omitted).
    """

    num_ranks: int
    sends: dict[int, dict[int, IntArray]]

    @property
    def total_send_slots(self) -> int:
        return sum(
            arr.shape[0]
            for per_peer in self.sends.values()
            for arr in per_peer.values()
        )

    def peers_of(self, rank: int) -> list[int]:
        return sorted(self.sends.get(rank, {}))


def build_halo_plan(dgraph: DistributedGraph) -> HaloPlan:
    """Invert the ghost tables into per-owner send lists."""
    sends: dict[int, dict[int, IntArray]] = {r: {} for r in range(dgraph.num_ranks)}
    for shard in dgraph.shards:
        if shard.ghosts.size == 0:
            continue
        owners = dgraph.owner[shard.ghosts]
        for owner_rank in np.unique(owners):
            owner_rank = int(owner_rank)
            ghosts_owned_there = shard.ghosts[owners == owner_rank]
            sends[owner_rank][shard.rank] = ghosts_owned_there.astype(np.int64)
    return HaloPlan(num_ranks=dgraph.num_ranks, sends=sends)


def halo_exchange_moves(
    world: SimCommWorld,
    plan: HaloPlan,
    moves_by_rank: list[np.ndarray],
) -> list[np.ndarray]:
    """Deliver each rank the subset of moves affecting its ghosts.

    ``moves_by_rank[a]`` is rank a's local (vertex, new_block) array for
    the sweep. Returns, per rank, the concatenated remote moves it
    receives (its own moves excluded — it already knows them). Message
    costs are charged to the world's ledger and virtual clocks.
    """
    if len(moves_by_rank) != plan.num_ranks:
        raise ValueError(
            f"need moves for {plan.num_ranks} ranks, got {len(moves_by_rank)}"
        )
    # Post sends: each owner filters its moved vertices per ghosting peer.
    for owner_rank, per_peer in plan.sends.items():
        moves = moves_by_rank[owner_rank]
        moved_vertices = moves[:, 0] if moves.size else np.empty(0, dtype=np.int64)
        for peer, ghosted in per_peer.items():
            if peer == owner_rank:
                continue
            if moves.size:
                relevant = moves[np.isin(moved_vertices, ghosted)]
            else:
                relevant = np.empty((0, 2), dtype=np.int64)
            world.send(relevant, source=owner_rank, dest=peer)

    # Drain receives in the mirrored order.
    received: list[list[np.ndarray]] = [[] for _ in range(plan.num_ranks)]
    for owner_rank, per_peer in plan.sends.items():
        for peer in per_peer:
            if peer == owner_rank:
                continue
            payload = world.recv(source=owner_rank, dest=peer)
            received[peer].append(payload)

    return [
        np.concatenate(parts) if parts else np.empty((0, 2), dtype=np.int64)
        for parts in received
    ]


def halo_exchange_frames(
    comm,
    plan: HaloPlan,
    moves_by_rank: list[np.ndarray],
) -> list[np.ndarray]:
    """:func:`halo_exchange_moves` over a reliable framed channel set.

    Same plan, same per-rank results, but the move arrays cross a real
    :class:`~repro.distributed.reliable.ReliableComm` (any transport,
    optionally chaos-wrapped) instead of the virtual-clock world — so
    the halo pattern inherits checksums, retransmission and dedupe for
    free. Empty send lists still send (they double as heartbeats for a
    supervisor layered on top).
    """
    if len(moves_by_rank) != plan.num_ranks:
        raise ValueError(
            f"need moves for {plan.num_ranks} ranks, got {len(moves_by_rank)}"
        )
    for owner_rank, per_peer in plan.sends.items():
        moves = moves_by_rank[owner_rank]
        moved_vertices = moves[:, 0] if moves.size else np.empty(0, dtype=np.int64)
        for peer, ghosted in per_peer.items():
            if peer == owner_rank:
                continue
            if moves.size:
                relevant = moves[np.isin(moved_vertices, ghosted)]
            else:
                relevant = np.empty((0, 2), dtype=np.int64)
            comm.send(relevant, source=owner_rank, dest=peer)

    received: list[list[np.ndarray]] = [[] for _ in range(plan.num_ranks)]
    for owner_rank, per_peer in plan.sends.items():
        for peer in per_peer:
            if peer == owner_rank:
                continue
            received[peer].append(comm.recv(source=owner_rank, dest=peer))

    return [
        np.concatenate(parts) if parts else np.empty((0, 2), dtype=np.int64)
        for parts in received
    ]
