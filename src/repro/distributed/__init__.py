"""Distributed-memory SBP — the paper's §6 future-work direction.

The conclusion asks "how best to distribute A-SBP and H-SBP in order to
further speed up the algorithms and enable processing of graphs that are
too large to fit in memory on a single computational node." This package
prototypes that design on a *simulated* message-passing runtime
(DESIGN.md §4: no MPI and one core here, so ranks execute round-robin
under virtual clocks):

* :mod:`repro.distributed.comm` — rank-addressed point-to-point and
  collective operations with a latency/bandwidth cost model and
  per-rank virtual time;
* :mod:`repro.distributed.partition` — vertex partitioners (contiguous,
  hash, degree-balanced) with edge-cut accounting;
* :mod:`repro.distributed.graphdist` — per-rank subgraphs with ghost
  vertices;
* :mod:`repro.distributed.dsbp` — the distributed A-SBP sweep: each
  rank evaluates its owned vertices against its blockmodel replica,
  membership updates are allgathered, and the replica is rebuilt.

On top of the simulated world sits the *fault-tolerant runtime* — the
production path of ROADMAP item 2:

* :mod:`repro.distributed.comm` also defines the :class:`Transport`
  protocol (framed, CRC32-checksummed byte channels) with the ``sim``
  engine; :mod:`repro.distributed.wire` adds ``inproc`` (courier
  threads + queues) and ``pipes`` (multiprocessing connections);
* :mod:`repro.distributed.chaos` — seeded wire-fault injection
  (drops, duplicates, delays, truncation, bit-flips);
* :mod:`repro.distributed.reliable` — exactly-once in-order delivery
  via sequence numbers, retransmission under a
  :class:`~repro.resilience.resilient.RetryPolicy`, and a
  poisoned-frame quarantine;
* :mod:`repro.distributed.runtime` — the ``distributed:<transport>:
  <ranks>`` execution backend with sweep-barrier heartbeats, dead-shard
  detection, vertex re-leasing and ``shard_loss_policy``
  recover/degrade/fail.

Because asynchronous Gibbs evaluates against the frozen sweep-start
state with pre-drawn per-vertex randomness, the distributed execution is
*bit-identical* to single-node A-SBP — verified by tests, including
under injected faults and mid-sweep shard death — while the
communication ledger and virtual clocks quantify what a real cluster
run would cost.
"""

from repro.distributed.chaos import FAULT_KINDS, ChaosSchedule, ChaosTransport
from repro.distributed.comm import (
    CommLedger,
    CommSpec,
    SimCommWorld,
    SimTransport,
    Transport,
    available_transports,
    decode_frame,
    encode_frame,
    get_transport,
    register_transport,
)
from repro.distributed.dsbp import (
    DistributedSweepReport,
    distributed_async_sweep,
    model_distributed_scaling,
)
from repro.distributed.graphdist import DistributedGraph
from repro.distributed.halo import (
    HaloPlan,
    build_halo_plan,
    halo_exchange_frames,
    halo_exchange_moves,
)
from repro.distributed.partition import (
    PartitionStats,
    edge_cut,
    partition_vertices,
)
from repro.distributed.reliable import ReliableComm
from repro.distributed.runtime import SHARD_LOSS_POLICIES, DistributedBackend
from repro.distributed.wire import InprocTransport, PipesTransport

__all__ = [
    "CommLedger",
    "CommSpec",
    "SimCommWorld",
    "PartitionStats",
    "partition_vertices",
    "edge_cut",
    "DistributedGraph",
    "HaloPlan",
    "build_halo_plan",
    "halo_exchange_moves",
    "halo_exchange_frames",
    "DistributedSweepReport",
    "distributed_async_sweep",
    "model_distributed_scaling",
    "Transport",
    "SimTransport",
    "InprocTransport",
    "PipesTransport",
    "register_transport",
    "get_transport",
    "available_transports",
    "encode_frame",
    "decode_frame",
    "FAULT_KINDS",
    "ChaosSchedule",
    "ChaosTransport",
    "ReliableComm",
    "SHARD_LOSS_POLICIES",
    "DistributedBackend",
]
