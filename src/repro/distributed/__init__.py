"""Distributed-memory SBP — the paper's §6 future-work direction.

The conclusion asks "how best to distribute A-SBP and H-SBP in order to
further speed up the algorithms and enable processing of graphs that are
too large to fit in memory on a single computational node." This package
prototypes that design on a *simulated* message-passing runtime
(DESIGN.md §4: no MPI and one core here, so ranks execute round-robin
under virtual clocks):

* :mod:`repro.distributed.comm` — rank-addressed point-to-point and
  collective operations with a latency/bandwidth cost model and
  per-rank virtual time;
* :mod:`repro.distributed.partition` — vertex partitioners (contiguous,
  hash, degree-balanced) with edge-cut accounting;
* :mod:`repro.distributed.graphdist` — per-rank subgraphs with ghost
  vertices;
* :mod:`repro.distributed.dsbp` — the distributed A-SBP sweep: each
  rank evaluates its owned vertices against its blockmodel replica,
  membership updates are allgathered, and the replica is rebuilt.

Because asynchronous Gibbs evaluates against the frozen sweep-start
state with pre-drawn per-vertex randomness, the distributed execution is
*bit-identical* to single-node A-SBP — verified by tests — while the
communication ledger and virtual clocks quantify what a real cluster
run would cost.
"""

from repro.distributed.comm import CommSpec, SimCommWorld
from repro.distributed.partition import (
    PartitionStats,
    partition_vertices,
    edge_cut,
)
from repro.distributed.graphdist import DistributedGraph
from repro.distributed.halo import HaloPlan, build_halo_plan, halo_exchange_moves
from repro.distributed.dsbp import (
    DistributedSweepReport,
    distributed_async_sweep,
    model_distributed_scaling,
)

__all__ = [
    "CommSpec",
    "SimCommWorld",
    "PartitionStats",
    "partition_vertices",
    "edge_cut",
    "DistributedGraph",
    "HaloPlan",
    "build_halo_plan",
    "halo_exchange_moves",
    "DistributedSweepReport",
    "distributed_async_sweep",
    "model_distributed_scaling",
]
