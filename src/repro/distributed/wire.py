"""Real-wire transports: courier threads and OS pipes.

Where :class:`~repro.distributed.comm.SimTransport` delivers frames
instantly under virtual clocks, the two engines here move real bytes
through real concurrency machinery, so the reliable layer's timeout /
retry / quarantine behaviour is exercised against genuine races:

* ``inproc`` — per-channel outbox/inbox queues bridged by a daemon
  *courier* thread: a pushed frame is only pull-able after another
  thread has physically moved it, giving true in-flight windows;
* ``pipes`` — ``multiprocessing.Pipe`` connections carrying the frames
  through OS descriptors, each drained by a daemon *reader* thread into
  a bounded-wait inbox queue (draining eagerly sidesteps the classic
  pipe-buffer deadlock a large single-threaded push would hit).

Channels are created lazily on first use: pulling from a channel whose
peer never pushed (a dead shard, precisely) cheaply returns ``None``
after the timeout instead of erroring. Both transports are process-local
by design — "distributed" here means the honest single-process
equivalent CI can run, per ROADMAP item 2 — but every byte crosses a
thread or pipe boundary, so nothing about ordering or timing is
simulated.
"""

from __future__ import annotations

import multiprocessing
import queue
import threading

from repro.distributed.comm import Transport, register_transport

__all__ = ["InprocTransport", "PipesTransport"]

_SENTINEL = object()


class InprocTransport(Transport):
    """Threads-and-queues wire: one courier thread per active channel."""

    name = "inproc"

    def __init__(self, num_ranks: int, poll_timeout: float = 0.05) -> None:
        super().__init__(num_ranks)
        self.poll_timeout = float(poll_timeout)
        self._channels: dict[tuple[int, int], tuple[queue.Queue, queue.Queue]] = {}
        self._couriers: list[threading.Thread] = []
        self._lock = threading.Lock()
        self._closed = False

    def _channel(self, source: int, dest: int) -> tuple[queue.Queue, queue.Queue]:
        key = (source, dest)
        with self._lock:
            chan = self._channels.get(key)
            if chan is None:
                outbox: queue.Queue = queue.Queue()
                inbox: queue.Queue = queue.Queue()
                courier = threading.Thread(
                    target=_courier_loop,
                    args=(outbox, inbox),
                    name=f"inproc-courier-{source}-{dest}",
                    daemon=True,
                )
                courier.start()
                self._couriers.append(courier)
                chan = self._channels[key] = (outbox, inbox)
        return chan

    def push(self, frame: bytes, source: int, dest: int) -> None:
        source, dest = self._check_pair(source, dest)
        outbox, _ = self._channel(source, dest)
        outbox.put(bytes(frame))

    def pull(self, source: int, dest: int, timeout: float = 0.0) -> bytes | None:
        source, dest = self._check_pair(source, dest)
        _, inbox = self._channel(source, dest)
        try:
            if timeout > 0:
                return inbox.get(timeout=timeout)
            return inbox.get_nowait()
        except queue.Empty:
            return None

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            channels = list(self._channels.values())
        for outbox, _ in channels:
            outbox.put(_SENTINEL)
        for courier in self._couriers:
            courier.join(timeout=1.0)


def _courier_loop(outbox: queue.Queue, inbox: queue.Queue) -> None:
    while True:
        item = outbox.get()
        if item is _SENTINEL:
            return
        inbox.put(item)


class PipesTransport(Transport):
    """OS-pipe wire: frames cross ``multiprocessing.Pipe`` descriptors.

    Each channel is a one-way pipe pair plus a daemon reader thread that
    drains ``recv_bytes()`` into an unbounded inbox queue as soon as
    bytes land — the sender can therefore push arbitrarily many frames
    without wedging on the kernel pipe buffer (~64 KiB), and a ``pull``
    is a plain bounded queue wait.
    """

    name = "pipes"

    def __init__(self, num_ranks: int, poll_timeout: float = 0.05) -> None:
        super().__init__(num_ranks)
        self.poll_timeout = float(poll_timeout)
        self._channels: dict[tuple[int, int], tuple[object, queue.Queue]] = {}
        self._readers: list[threading.Thread] = []
        self._recv_conns: list[object] = []
        self._lock = threading.Lock()
        self._closed = False

    def _channel(self, source: int, dest: int) -> tuple[object, queue.Queue]:
        key = (source, dest)
        with self._lock:
            chan = self._channels.get(key)
            if chan is None:
                recv_conn, send_conn = multiprocessing.Pipe(duplex=False)
                inbox: queue.Queue = queue.Queue()
                reader = threading.Thread(
                    target=_reader_loop,
                    args=(recv_conn, inbox),
                    name=f"pipes-reader-{source}-{dest}",
                    daemon=True,
                )
                reader.start()
                self._readers.append(reader)
                self._recv_conns.append(recv_conn)
                chan = self._channels[key] = (send_conn, inbox)
        return chan

    def push(self, frame: bytes, source: int, dest: int) -> None:
        source, dest = self._check_pair(source, dest)
        send_conn, _ = self._channel(source, dest)
        send_conn.send_bytes(bytes(frame))

    def pull(self, source: int, dest: int, timeout: float = 0.0) -> bytes | None:
        source, dest = self._check_pair(source, dest)
        _, inbox = self._channel(source, dest)
        try:
            if timeout > 0:
                return inbox.get(timeout=timeout)
            return inbox.get_nowait()
        except queue.Empty:
            return None

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            channels = list(self._channels.values())
        for send_conn, _ in channels:
            try:
                send_conn.close()  # EOF unblocks the reader thread
            except OSError:  # pragma: no cover - already closed
                pass
        for reader in self._readers:
            reader.join(timeout=1.0)
        for recv_conn in self._recv_conns:
            try:
                recv_conn.close()
            except OSError:  # pragma: no cover - already closed
                pass


def _reader_loop(recv_conn, inbox: queue.Queue) -> None:
    while True:
        try:
            inbox.put(recv_conn.recv_bytes())
        except (EOFError, OSError):
            return


register_transport("inproc", InprocTransport)
register_transport("pipes", PipesTransport)
