"""Run diagnostics: MDL trajectories, acceptance rates, mixing summaries.

Turns the per-sweep :class:`~repro.types.SweepStats` log (collected when
``SBPConfig.record_work=True``) into analysis-ready arrays and human
summaries — the tooling one needs to *see* the convergence behaviour the
paper discusses (asynchronous variants needing more sweeps, acceptance
decaying as the chain settles).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.results import SBPResult
from repro.types import FloatArray

__all__ = ["SweepTrace", "trace_from_result", "run_health"]


@dataclass(frozen=True)
class SweepTrace:
    """Per-sweep arrays extracted from a recorded run.

    ``barrier_moved`` is the per-sweep moved-vertex count at the
    synchronization barrier — the quantity the ``incremental`` update
    engine's cost is proportional to. It decays with acceptance as the
    chain settles, which is exactly why the delta barrier wins in late
    sweeps (paper §3.1's argument for H-SBP's cheap convergence).

    ``b_nnz`` / ``b_density`` gauge the inter-block matrix after each
    sweep: nnz rises as blocks agglomerate while density tracks how far
    the run is from the dense regime — the signal for picking a
    ``--block-storage`` engine.
    """

    delta_mdl: FloatArray
    acceptance_rate: FloatArray
    serial_work: FloatArray
    parallel_work: FloatArray
    barrier_moved: FloatArray
    b_nnz: FloatArray
    b_density: FloatArray

    @property
    def num_sweeps(self) -> int:
        return int(self.delta_mdl.shape[0])

    @property
    def total_improvement(self) -> float:
        """Sum of negative MDL deltas (how much the chain descended)."""
        return float(self.delta_mdl[self.delta_mdl < 0].sum())

    @property
    def parallel_fraction(self) -> float:
        """Share of work units in the parallelizable section (Amdahl)."""
        total = float(self.serial_work.sum() + self.parallel_work.sum())
        if total == 0.0:
            return 0.0
        return float(self.parallel_work.sum()) / total

    def acceptance_decay(self) -> float:
        """Late-phase over early-phase acceptance ratio.

        Values well below 1 indicate the chain settling (healthy
        convergence); values near 1 mean it is still mixing when the
        stopping rule fires.
        """
        n = self.num_sweeps
        if n < 4:
            return 1.0
        early = float(self.acceptance_rate[: n // 4].mean())
        late = float(self.acceptance_rate[-(n // 4):].mean())
        if early == 0.0:
            return 1.0
        return late / early

    def summary(self) -> dict[str, float]:
        return {
            "sweeps": float(self.num_sweeps),
            "total_improvement": self.total_improvement,
            "mean_acceptance": float(self.acceptance_rate.mean()) if self.num_sweeps else 0.0,
            "acceptance_decay": self.acceptance_decay(),
            "parallel_fraction": self.parallel_fraction,
            "mean_barrier_moved": (
                float(self.barrier_moved.mean()) if self.num_sweeps else 0.0
            ),
            "mean_b_density": (
                float(self.b_density.mean()) if self.num_sweeps else 0.0
            ),
        }


def run_health(result: SBPResult, store=None) -> dict[str, object]:
    """Triage summary for a finished (or interrupted) run.

    Flat dict for logs/dashboards: did the search converge, was it cut
    short, and is the reported MDL actually usable (finite, below the
    null model)? ``ok`` is the single rollup bit operators alert on.

    Pass the service's :class:`~repro.service.store.ResultStore` as
    ``store`` to fold its cache accounting (entries, bytes, hits,
    misses, puts, evictions) into the rollup under ``"store"``.

    Distributed runs additionally surface the wire's fault accounting
    (frame retransmissions, quarantined frames, shard re-lease events).
    Retries and quarantines are *masked* faults — the reliable layer
    absorbed them and the chain is intact, so they warn without
    clearing ``ok``; they matter as a canary that the transport is
    degrading. Shard re-leases mean a rank died and its vertices moved
    to survivors; under the ``recover`` policy the result is still
    bit-identical, so that too is a warning, not a failure.
    """
    mdl_finite = bool(np.isfinite(result.mdl))
    beats_null = mdl_finite and result.normalized_mdl < 1.0
    problems: list[str] = []
    warnings: list[str] = []
    if not mdl_finite:
        problems.append("non-finite MDL")
    if result.interrupted:
        problems.append("interrupted (best-so-far result)")
    elif not result.converged:
        problems.append("search hit max_outer_iterations without converging")
    if mdl_finite and not beats_null:
        problems.append("MDL does not beat the null model (no structure found)")
    timings = result.timings
    if timings.comm_retries:
        warnings.append(
            f"{timings.comm_retries} frame retransmission(s) masked by the "
            "reliable comm layer"
        )
    if timings.frames_quarantined:
        warnings.append(
            f"{timings.frames_quarantined} corrupt frame(s) quarantined at "
            "the wire"
        )
    if timings.shard_releases:
        warnings.append(
            f"{timings.shard_releases} shard re-lease event(s): dead rank(s) "
            "had their vertices re-leased to survivors"
        )
    out: dict[str, object] = {
        "ok": not problems,
        "converged": result.converged,
        "interrupted": result.interrupted,
        "mdl_finite": mdl_finite,
        "beats_null": beats_null,
        "outer_iterations": result.outer_iterations,
        "mcmc_sweeps": result.mcmc_sweeps,
        "comm_retries": timings.comm_retries,
        "frames_quarantined": timings.frames_quarantined,
        "shard_releases": timings.shard_releases,
        "problems": problems,
        "warnings": warnings,
    }
    if store is not None:
        out["store"] = store.health()
    return out


def trace_from_result(result: SBPResult) -> SweepTrace:
    """Build a :class:`SweepTrace` from a run with recorded sweep stats.

    Raises ``ValueError`` for results produced without
    ``record_work=True`` (there is nothing to trace).
    """
    if not result.sweep_stats:
        raise ValueError(
            "result has no sweep statistics; run with SBPConfig(record_work=True)"
        )
    stats = result.sweep_stats
    return SweepTrace(
        delta_mdl=np.asarray([s.delta_mdl for s in stats], dtype=np.float64),
        acceptance_rate=np.asarray(
            [s.acceptance_rate for s in stats], dtype=np.float64
        ),
        serial_work=np.asarray([s.serial_work for s in stats], dtype=np.float64),
        parallel_work=np.asarray([s.parallel_work for s in stats], dtype=np.float64),
        barrier_moved=np.asarray([s.barrier_moved for s in stats], dtype=np.float64),
        b_nnz=np.asarray([s.b_nnz for s in stats], dtype=np.float64),
        b_density=np.asarray([s.b_density for s in stats], dtype=np.float64),
    )
