"""Process memory observability helpers.

Backs the storage-engine refactor's memory claims with measurements: the
run drivers sample peak RSS once per completed run and record the block
matrix's nnz/density gauges per sweep (see
:class:`repro.types.PhaseTimings` / :class:`repro.types.SweepStats`).
"""

from __future__ import annotations

import sys

__all__ = ["peak_rss_bytes"]


def peak_rss_bytes() -> int:
    """Peak resident-set size of this process in bytes; 0 if unknown.

    ``ru_maxrss`` is kibibytes on Linux and bytes on macOS. Platforms
    without the ``resource`` module (Windows) report 0 rather than
    failing — the gauge is observability, not a correctness input.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - platform-specific
        return int(peak)
    return int(peak) * 1024
