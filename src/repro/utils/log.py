"""Structured run logging for the inference drivers.

All library logging goes through the ``repro`` logger hierarchy and is
silent by default (a ``NullHandler`` on the root of the hierarchy, per
library best practice). Applications opt in with
:func:`configure_logging` or their own handler configuration.

The drivers emit:

* ``INFO`` — one line per agglomerative iteration (block count, MDL,
  sweeps), and the final result line;
* ``DEBUG`` — per-phase timings.
"""

from __future__ import annotations

import logging

__all__ = ["get_logger", "configure_logging"]

_ROOT_NAME = "repro"

logging.getLogger(_ROOT_NAME).addHandler(logging.NullHandler())


def get_logger(name: str | None = None) -> logging.Logger:
    """Logger under the ``repro`` hierarchy (e.g. ``repro.core.sbp``)."""
    if not name:
        return logging.getLogger(_ROOT_NAME)
    if name.startswith(_ROOT_NAME):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def configure_logging(level: int | str = logging.INFO) -> logging.Logger:
    """Attach a formatted stderr handler to the ``repro`` logger.

    Idempotent: calling again only adjusts the level.
    """
    logger = logging.getLogger(_ROOT_NAME)
    logger.setLevel(level)
    has_stream = any(
        isinstance(h, logging.StreamHandler) and not isinstance(h, logging.NullHandler)
        for h in logger.handlers
    )
    if not has_stream:
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
        )
        logger.addHandler(handler)
    return logger
