"""Small vectorized array helpers shared by the batch kernels."""

from __future__ import annotations

import numpy as np

from repro.types import IntArray

__all__ = ["expand_ranges"]


def expand_ranges(starts: IntArray, lengths: IntArray) -> IntArray:
    """Concatenate ``arange(starts[i], starts[i] + lengths[i])`` for all i.

    The gather primitive of the CSR-walking batch kernels: turns per-row
    (offset, length) pairs into one flat index vector without a Python
    loop.
    """
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    cum = np.zeros(lengths.shape[0], dtype=np.int64)
    np.cumsum(lengths[:-1], out=cum[1:])
    return np.arange(total, dtype=np.int64) + np.repeat(starts - cum, lengths)
