"""Utility layer: seeded RNG streams, timers, logging and validation."""

from repro.utils.arrays import expand_ranges
from repro.utils.rng import SweepRandomness, philox_stream, spawn_seeds
from repro.utils.log import get_logger, configure_logging
from repro.utils.timer import Timer, StopwatchPool
from repro.utils.validation import (
    check_nonnegative_int,
    check_probability,
    check_positive,
)

__all__ = [
    "expand_ranges",
    "SweepRandomness",
    "philox_stream",
    "spawn_seeds",
    "get_logger",
    "configure_logging",
    "Timer",
    "StopwatchPool",
    "check_nonnegative_int",
    "check_probability",
    "check_positive",
]
