"""Lightweight wall-clock timers for phase breakdowns.

The paper's Fig. 2 (execution-time breakdown) and all speedup figures
(Figs. 4b, 6, 7) are computed from accumulated per-phase wall-clock
times; :class:`StopwatchPool` is the accumulator the drivers use.
"""

from __future__ import annotations

import time
from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["Timer", "StopwatchPool"]


@dataclass
class Timer:
    """A single resumable stopwatch accumulating elapsed seconds."""

    elapsed: float = 0.0
    _started_at: float | None = field(default=None, repr=False)

    def start(self) -> None:
        if self._started_at is not None:
            raise RuntimeError("Timer already running")
        self._started_at = time.perf_counter()

    def stop(self) -> float:
        if self._started_at is None:
            raise RuntimeError("Timer not running")
        delta = time.perf_counter() - self._started_at
        self.elapsed += delta
        self._started_at = None
        return delta

    @property
    def running(self) -> bool:
        return self._started_at is not None

    def reset(self) -> None:
        self.elapsed = 0.0
        self._started_at = None

    @contextmanager
    def measure(self) -> Iterator["Timer"]:
        self.start()
        try:
            yield self
        finally:
            self.stop()


class StopwatchPool:
    """A named collection of :class:`Timer` objects.

    Example
    -------
    >>> pool = StopwatchPool()
    >>> with pool.section("mcmc"):
    ...     pass
    >>> pool.elapsed("mcmc") >= 0.0
    True
    """

    def __init__(self) -> None:
        self._timers: dict[str, Timer] = {}

    def timer(self, name: str) -> Timer:
        if name not in self._timers:
            self._timers[name] = Timer()
        return self._timers[name]

    @contextmanager
    def section(self, name: str) -> Iterator[Timer]:
        timer = self.timer(name)
        with timer.measure():
            yield timer

    def elapsed(self, name: str) -> float:
        timer = self._timers.get(name)
        return 0.0 if timer is None else timer.elapsed

    def add(self, name: str, seconds: float) -> None:
        """Credit ``seconds`` to ``name`` without running a stopwatch.

        Used by the simulated thread executor, which computes virtual
        durations instead of measuring them.
        """
        if seconds < 0:
            raise ValueError(f"cannot add negative time: {seconds}")
        self.timer(name).elapsed += seconds

    def snapshot(self) -> dict[str, float]:
        return {name: t.elapsed for name, t in self._timers.items()}

    def reset(self) -> None:
        for t in self._timers.values():
            t.reset()
