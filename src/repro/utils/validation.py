"""Argument validation helpers shared by public API entry points."""

from __future__ import annotations

from typing import Any

__all__ = ["check_nonnegative_int", "check_positive", "check_probability"]


def check_nonnegative_int(value: Any, name: str) -> int:
    """Coerce ``value`` to a non-negative int or raise ``ValueError``."""
    try:
        out = int(value)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"{name} must be an integer, got {value!r}") from exc
    if out != value or out < 0:
        raise ValueError(f"{name} must be a non-negative integer, got {value!r}")
    return out


def check_positive(value: Any, name: str) -> float:
    """Coerce ``value`` to a strictly positive float or raise ``ValueError``."""
    try:
        out = float(value)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"{name} must be a number, got {value!r}") from exc
    if not out > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return out


def check_probability(value: Any, name: str) -> float:
    """Coerce ``value`` to a float in [0, 1] or raise ``ValueError``."""
    try:
        out = float(value)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"{name} must be a number, got {value!r}") from exc
    if not 0.0 <= out <= 1.0:
        raise ValueError(f"{name} must lie in [0, 1], got {value!r}")
    return out
