"""Counter-based random-number streams for reproducible parallel MCMC.

The asynchronous-Gibbs sweeps of A-SBP and H-SBP may run on the serial,
vectorized or process-pool backend. For the backends to be testable
against each other, every backend must make *identical* accept/reject
decisions. We achieve this the way counter-based HPC RNGs (Philox) are
meant to be used: the randomness a sweep needs is a pure function of
``(seed, phase, sweep)`` and is laid out *in vertex order* ahead of time,
so the execution order of the workers cannot change the chain.

Each vertex consumes a fixed budget of uniforms per sweep (see
:class:`SweepRandomness`); slicing the pre-drawn table per worker chunk
is therefore trivial and allocation-free for the consumers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "UNIFORMS_PER_VERTEX",
    "philox_stream",
    "spawn_seeds",
    "SweepRandomness",
]

#: Uniform draws consumed per vertex per sweep:
#: 0: incident-edge pick, 1: uniform-vs-multinomial mixture,
#: 2: multinomial inverse-CDF draw, 3: uniform fallback block,
#: 4: Metropolis-Hastings accept draw.
UNIFORMS_PER_VERTEX = 5


def philox_stream(seed: int, *counters: int) -> np.random.Generator:
    """Return a Generator on a Philox stream keyed by ``seed`` + counters.

    Distinct ``counters`` tuples yield statistically independent streams,
    which is what makes per-(phase, sweep) randomness reproducible no
    matter which backend executes the sweep.
    """
    key = np.uint64(seed & 0xFFFF_FFFF_FFFF_FFFF)
    # Philox-4x64 takes a 2-word key; fold the counters into the second word
    # and the 4-word counter block.
    folded = 0
    for i, c in enumerate(counters):
        folded ^= (int(c) & 0xFFFF_FFFF_FFFF_FFFF) * (0x9E37_79B9_7F4A_7C15 + 2 * i + 1)
        folded &= 0xFFFF_FFFF_FFFF_FFFF
    bitgen = np.random.Philox(key=[key, np.uint64(folded)])
    return np.random.Generator(bitgen)


def spawn_seeds(seed: int, count: int) -> list[int]:
    """Derive ``count`` independent 63-bit seeds from a master seed.

    Used to seed the paper's best-of-N repeated runs (§4.2: 5 runs,
    lowest-MDL result kept).
    """
    rng = philox_stream(seed, 0x5EED)
    return [int(x) for x in rng.integers(0, 2**63 - 1, size=count)]


@dataclass(frozen=True)
class SweepRandomness:
    """Pre-drawn uniforms for one MCMC sweep, laid out in vertex order.

    Attributes
    ----------
    uniforms:
        Array of shape ``(num_vertices, UNIFORMS_PER_VERTEX)`` in [0, 1).
        Row ``i`` belongs to the ``i``-th vertex *processed by the sweep*
        (not vertex id ``i``): callers pass vertex lists alongside.
    """

    uniforms: np.ndarray

    @classmethod
    def draw(cls, seed: int, phase: int, sweep: int, count: int) -> "SweepRandomness":
        """Draw the full uniform table for ``count`` vertices.

        ``phase`` disambiguates the consuming kernel (e.g. serial V* pass
        vs async V⁻ pass within one hybrid sweep) and ``sweep`` is the
        sweep index within the phase.
        """
        rng = philox_stream(seed, phase, sweep)
        table = rng.random((count, UNIFORMS_PER_VERTEX))
        return cls(uniforms=table)

    def slice(self, start: int, stop: int) -> np.ndarray:
        """Rows [start, stop) — a zero-copy view for a worker chunk."""
        return self.uniforms[start:stop]

    def __len__(self) -> int:
        return self.uniforms.shape[0]
