"""Graph samplers for sampling-based SBP (SamBaS, arXiv:2108.06651).

A sampler picks ``ceil(sample_rate * V)`` vertices from the full graph;
the induced subgraph on that set is what the golden-section SBP search
actually fits. Samplers are registered engines, mirroring the execution
backend / block-storage registries: :func:`register_sampler` adds a
:class:`SamplerSpec`, ``SBPConfig.sampler`` accepts any registered name,
and the CLI renders the registry.

Determinism contract
--------------------
Every sampler draws from its own Philox stream keyed by
``(seed, SAMPLER_PHASE, spec.stream)`` — a pure function of the master
seed, so the sample (and therefore the whole sampled pipeline) replays
bit-identically for a given ``(graph, sampler, seed)`` on any platform.
Samplers never consume the sweep streams (``TAG_STRIDE`` tags), so
adding a sampling front-end cannot perturb the MCMC chain itself.

Isolated-vertex contract
------------------------
Degree-0 vertices must remain *sampleable* and must never be silently
dropped downstream: ``degree-weighted`` smooths its weights by +1 so
isolated vertices keep non-zero inclusion mass (a pure
``weight = degree`` scheme gives them probability zero, which at
``sample_rate = 1.0`` cannot even produce a full sample), and
``expansion-snowball`` re-seeds from the highest-degree unvisited vertex
whenever its frontier dries up, so disconnected components and isolated
vertices are reached once the connected mass is exhausted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ReproError
from repro.graph.graph import Graph
from repro.graph.transforms import induced_subgraph
from repro.types import Assignment, IntArray
from repro.utils.rng import philox_stream

__all__ = [
    "SAMPLER_PHASE",
    "SampledGraph",
    "SamplerSpec",
    "register_sampler",
    "get_sampler",
    "available_samplers",
    "sample_size",
    "sample_graph",
]

#: Philox phase namespace for sampler streams. Disjoint from the sweep
#: tags (``iteration * TAG_STRIDE + kind``, small integers) and the
#: best-of spawn tag (0x5EED): sampling randomness can never collide
#: with chain randomness.
SAMPLER_PHASE = 0x5AB5


@dataclass(frozen=True)
class SampledGraph:
    """An induced sample of a graph, with both id maps.

    Attributes
    ----------
    graph:
        The induced subgraph, densely relabeled to ``0..n-1``.
    vertices:
        Ascending full-graph ids; ``vertices[i]`` is the original id of
        sample vertex ``i`` (the sample->full map).
    full_to_sample:
        Length-V inverse map; ``-1`` for unsampled vertices.
    full_num_vertices:
        V of the graph the sample was drawn from.
    sampler:
        Registry name of the sampler that produced this sample.
    """

    graph: Graph
    vertices: IntArray
    full_to_sample: IntArray
    full_num_vertices: int
    sampler: str

    @property
    def num_sampled(self) -> int:
        return int(self.vertices.shape[0])

    @property
    def realized_rate(self) -> float:
        """The rate actually achieved after ceil/clamp (recorded in results)."""
        return self.num_sampled / self.full_num_vertices

    def lift(self, sample_assignment: Assignment) -> Assignment:
        """Map a sample-graph assignment onto the full vertex set.

        Unsampled vertices get ``-1`` — the extension pass
        (:mod:`repro.sampling.extension`) fills them in.
        """
        sample_assignment = np.asarray(sample_assignment, dtype=np.int64)
        if sample_assignment.shape != (self.num_sampled,):
            raise ReproError(
                f"sample assignment must have shape ({self.num_sampled},), "
                f"got {sample_assignment.shape}"
            )
        out = np.full(self.full_num_vertices, -1, dtype=np.int64)
        out[self.vertices] = sample_assignment
        return out


@dataclass(frozen=True)
class SamplerSpec:
    """A named, registered vertex-sampling strategy.

    ``select(graph, size, seed)`` returns exactly ``size`` distinct
    vertex ids in ``[0, V)`` — any order; callers sort. ``stream`` is
    the sampler's private Philox sub-stream id: two samplers given the
    same seed still draw independent randomness, so switching samplers
    re-randomizes the sample instead of aliasing it.
    """

    name: str
    summary: str
    stream: int
    select: Callable[[Graph, int, int], IntArray]


_SAMPLER_REGISTRY: dict[str, SamplerSpec] = {}


def register_sampler(spec: SamplerSpec) -> None:
    """Register a sampler; its name becomes a valid ``SBPConfig.sampler``."""
    if spec.name in _SAMPLER_REGISTRY:
        raise ReproError(f"sampler {spec.name!r} already registered")
    _SAMPLER_REGISTRY[spec.name] = spec


def get_sampler(name: str) -> SamplerSpec:
    spec = _SAMPLER_REGISTRY.get(str(name))
    if spec is None:
        raise ReproError(
            f"unknown sampler {name!r}; registered: {available_samplers()}"
        )
    return spec


def available_samplers() -> list[str]:
    return sorted(_SAMPLER_REGISTRY)


def sample_size(num_vertices: int, rate: float) -> int:
    """``ceil(rate * V)`` clamped to ``[1, V]`` — the SamBaS sample size."""
    if not 0.0 < rate <= 1.0:
        raise ReproError(f"sample rate must lie in (0, 1], got {rate}")
    return max(1, min(num_vertices, int(math.ceil(rate * num_vertices))))


def sample_graph(
    graph: Graph, rate: float, sampler: str = "degree-weighted", seed: int = 0
) -> SampledGraph:
    """Draw a deterministic vertex sample and build its induced subgraph."""
    spec = get_sampler(sampler)
    size = sample_size(graph.num_vertices, rate)
    if size >= graph.num_vertices:
        vertices = np.arange(graph.num_vertices, dtype=np.int64)
    else:
        vertices = np.sort(np.asarray(spec.select(graph, size, seed), dtype=np.int64))
        if vertices.shape != (size,) or np.unique(vertices).shape[0] != size:
            raise ReproError(
                f"sampler {spec.name!r} returned {vertices.shape[0]} vertices "
                f"({np.unique(vertices).shape[0]} distinct); expected {size}"
            )
        if vertices[0] < 0 or vertices[-1] >= graph.num_vertices:
            raise ReproError(f"sampler {spec.name!r} returned out-of-range ids")
    sub, mapping = induced_subgraph(graph, vertices)
    full_to_sample = np.full(graph.num_vertices, -1, dtype=np.int64)
    full_to_sample[mapping] = np.arange(mapping.shape[0], dtype=np.int64)
    return SampledGraph(
        graph=sub,
        vertices=mapping,
        full_to_sample=full_to_sample,
        full_num_vertices=graph.num_vertices,
        sampler=spec.name,
    )


# ----------------------------------------------------------------------
# Built-in samplers
# ----------------------------------------------------------------------
def _uniform_random(graph: Graph, size: int, seed: int) -> IntArray:
    rng = philox_stream(seed, SAMPLER_PHASE, 1)
    return rng.permutation(graph.num_vertices)[:size].astype(np.int64)


def _degree_weighted(graph: Graph, size: int, seed: int) -> IntArray:
    """Weighted sampling without replacement, weight ``degree + 1``.

    Efraimidis-Spirakis reservoir keys: vertex v gets an Exp(w_v)
    variate and the ``size`` smallest keys win — exactly weighted
    sampling without replacement, in one vectorized pass. The +1
    smoothing keeps isolated vertices sampleable (see module docstring).
    """
    rng = philox_stream(seed, SAMPLER_PHASE, 2)
    weights = graph.degree.astype(np.float64) + 1.0
    u = rng.random(graph.num_vertices)
    # -log(1-u) ~ Exp(1); dividing by the weight makes heavy vertices
    # draw small keys more often. log1p(-u) is exact near u = 0.
    keys = -np.log1p(-u) / weights
    order = np.argsort(keys, kind="stable")
    return order[:size].astype(np.int64)


def _expansion_snowball(graph: Graph, size: int, seed: int) -> IntArray:
    """Randomized snowball growth along incident edges.

    Starts from the highest-degree vertex (id tie-break) and repeatedly
    absorbs a uniformly random frontier vertex, pushing its unseen
    neighbours onto the frontier — so on a connected graph the sample is
    connected by construction. When the frontier dries up (component
    exhausted), growth re-seeds at the highest-degree unvisited vertex;
    isolated vertices are therefore reachable and are absorbed last, in
    degree order.
    """
    rng = philox_stream(seed, SAMPLER_PHASE, 3)
    num_vertices = graph.num_vertices
    in_sample = np.zeros(num_vertices, dtype=bool)
    queued = np.zeros(num_vertices, dtype=bool)
    reseed_order = np.argsort(-graph.degree, kind="stable")
    reseed_cursor = 0
    frontier: list[int] = []
    chosen = np.empty(size, dtype=np.int64)
    count = 0

    def absorb(v: int) -> None:
        nonlocal count
        in_sample[v] = True
        chosen[count] = v
        count += 1
        for w in graph.incident_neighbors(v):
            w = int(w)
            if not in_sample[w] and not queued[w]:
                queued[w] = True
                frontier.append(w)

    while count < size:
        if not frontier:
            while in_sample[reseed_order[reseed_cursor]]:
                reseed_cursor += 1
            absorb(int(reseed_order[reseed_cursor]))
            continue
        pick = min(int(rng.random() * len(frontier)), len(frontier) - 1)
        v = frontier[pick]
        frontier[pick] = frontier[-1]
        frontier.pop()
        absorb(v)
    return chosen


register_sampler(SamplerSpec(
    name="uniform-random",
    summary="uniform vertex sample (Philox permutation prefix)",
    stream=1,
    select=_uniform_random,
))
register_sampler(SamplerSpec(
    name="degree-weighted",
    summary="degree+1 weighted sample without replacement "
            "(Efraimidis-Spirakis keys; isolated vertices keep mass)",
    stream=2,
    select=_degree_weighted,
))
register_sampler(SamplerSpec(
    name="expansion-snowball",
    summary="randomized snowball along edges; connected on connected "
            "inputs, re-seeds by degree when the frontier dries up",
    stream=3,
    select=_expansion_snowball,
))
