"""The SamBaS pipeline: fit on a sample, extend, fine-tune.

``run_sbp`` delegates here whenever ``config.sample_rate < 1.0``. The
three stages (Wanye et al., arXiv:2108.06651):

1. **Sample fit** — draw a deterministic vertex sample
   (:func:`repro.sampling.samplers.sample_graph`) and run the existing
   golden-section search on the induced subgraph, completely unchanged.
2. **Membership extension** — lift the sample partition to the full
   graph and assign every unsampled vertex to its argmax-ΔMDL block
   against the frozen blockmodel
   (:func:`repro.sampling.extension.extend_assignment`), in
   degree-descending barrier batches.
3. **Fine-tune** — a short full-graph search warm-started from the
   extended partition via :meth:`repro.core.fit_session.FitSession.\
warm_refit`: the golden-section bracket is floored at
   ``FitSession.narrowed_min_blocks(B_s, block_reduction_rate)`` around
   the sample's block count B_s, so the search refines at B_s,
   evaluates one reduction below it, and stops.

Every search here runs through :class:`~repro.core.fit_session.\
FitSession` — the warm-start mechanics (bracket floor, refinement MCMC
at iteration tag 0, interrupted best-so-far fallback) live on the
session, not in this module.

Accounting: the whole sample stage (sampler + induce + sample-graph
search) lands in ``PhaseTimings.sampling`` and the extension pass in
``PhaseTimings.extension`` — both extra top-level stages counted in
``total``. The fine-tune's own merge/MCMC/rebuild buckets become the
result's standard buckets, with their sum mirrored in the ``finetune``
sub-bucket. Sweep and iteration counters sum across stages; the
per-stage splits, sampler name and realized rate are serialized as
result-format v6 fields.

Resilience: with a checkpointer, the sample fit snapshots under the
``sample_fit`` child directory and the fine-tune under ``finetune`` —
a killed pipeline resumes mid-stage bit-identically (the extension pass
is cheap and deterministic, so it is simply recomputed). A sample fit
cut short by SIGINT or the time budget still extends its best-so-far
partition to the full graph, skips the fine-tune, and returns the
extended partition flagged ``interrupted=True``.
"""

from __future__ import annotations

import time
from dataclasses import replace as dc_replace

from repro.core.fit_session import FitSession
from repro.core.results import SBPResult
from repro.core.variants import SBPConfig
from repro.graph.graph import Graph
from repro.resilience.checkpoint import RunCheckpointer
from repro.sampling.extension import extend_assignment
from repro.sampling.samplers import sample_graph
from repro.sbm.blockmodel import Blockmodel
from repro.types import PhaseTimings
from repro.utils.log import get_logger

__all__ = ["run_sampled_sbp"]

_log = get_logger("sampling.pipeline")


def run_sampled_sbp(
    graph: Graph,
    config: SBPConfig,
    checkpointer: RunCheckpointer | None = None,
) -> SBPResult:
    """Run the three-stage sampled pipeline (see module docstring).

    ``config.sample_rate`` must be below 1.0 (``run_sbp`` bypasses this
    module entirely at 1.0) and ``config.block_storage`` must already be
    resolved to a concrete engine — ``run_sbp`` does both.
    """
    started = time.monotonic()

    # Stage 1: sample + fit. The sample-graph search is the stock
    # golden-section search; its whole wall-clock (including its own
    # merge/MCMC phases) is the front-end's "sampling" bucket.
    stage_start = time.monotonic()
    sampled = sample_graph(
        graph, config.sample_rate, config.sampler, config.seed
    )
    _log.info(
        "sampled %d/%d vertices (%.1f%%, sampler=%s, %d induced edges)",
        sampled.num_sampled, graph.num_vertices,
        100.0 * sampled.realized_rate, sampled.sampler,
        sampled.graph.num_edges,
    )
    fit_checkpointer = (
        checkpointer.child("sample_fit") if checkpointer is not None else None
    )
    fit = FitSession(sampled.graph, config, fit_checkpointer).cold_fit()
    sampling_seconds = time.monotonic() - stage_start

    # Stage 2: membership extension. Cheap, deterministic, recomputed on
    # resume rather than checkpointed.
    stage_start = time.monotonic()
    partial = sampled.lift(fit.assignment)
    extended = extend_assignment(
        graph, partial, fit.num_blocks, config.extension_batches
    )
    warm = Blockmodel.from_assignment(
        graph, extended, fit.num_blocks, storage=config.block_storage
    )
    extension_seconds = time.monotonic() - stage_start
    _log.info(
        "extended %d unsampled vertices into C=%d blocks (%.2fs)",
        graph.num_vertices - sampled.num_sampled, fit.num_blocks,
        extension_seconds,
    )

    remaining = None
    if config.time_budget is not None:
        remaining = max(config.time_budget - (time.monotonic() - started), 0.0)
    if fit.interrupted or remaining == 0.0:
        # Best-so-far: the extended partition, no fine-tune. The session
        # packages it; the sampling-specific accounting rides on top.
        timings = PhaseTimings(
            sampling=sampling_seconds,
            extension=extension_seconds,
            comm_messages=fit.timings.comm_messages,
            comm_bytes=fit.timings.comm_bytes,
            comm_retries=fit.timings.comm_retries,
            frames_quarantined=fit.timings.frames_quarantined,
            shard_releases=fit.timings.shard_releases,
        )
        partial_result = FitSession(graph, config).partition_result(
            warm,
            timings=timings,
            interrupted=True,
            mcmc_sweeps=fit.mcmc_sweeps,
            outer_iterations=fit.outer_iterations,
            sweep_stats=fit.sweep_stats if config.record_work else [],
            search_history=fit.search_history,
        )
        return dc_replace(
            partial_result,
            sampler=sampled.sampler,
            sample_rate=sampled.realized_rate,
        )

    # Stage 3: warm-started fine-tune with the narrowed bracket (the
    # floor rule lives on FitSession.narrowed_min_blocks).
    fine_config = (
        config if remaining is None else config.replace(time_budget=remaining)
    )
    fine_checkpointer = (
        checkpointer.child("finetune") if checkpointer is not None else None
    )
    fine = FitSession(graph, fine_config, fine_checkpointer).warm_refit(warm)

    ft = fine.timings
    timings = PhaseTimings(
        block_merge=ft.block_merge,
        mcmc=ft.mcmc,
        rebuild=ft.rebuild,
        other=ft.other,
        merge_scan=ft.merge_scan,
        merge_apply=ft.merge_apply,
        barrier_rebuild=ft.barrier_rebuild,
        barrier_apply=ft.barrier_apply,
        sampling=sampling_seconds,
        extension=extension_seconds,
        finetune=ft.block_merge + ft.mcmc + ft.rebuild + ft.other,
        peak_rss_bytes=max(fit.timings.peak_rss_bytes, ft.peak_rss_bytes),
        b_nnz=ft.b_nnz,
        b_density=ft.b_density,
        comm_messages=fit.timings.comm_messages + ft.comm_messages,
        comm_bytes=fit.timings.comm_bytes + ft.comm_bytes,
        comm_retries=fit.timings.comm_retries + ft.comm_retries,
        frames_quarantined=(
            fit.timings.frames_quarantined + ft.frames_quarantined
        ),
        shard_releases=fit.timings.shard_releases + ft.shard_releases,
    )
    return SBPResult(
        variant=str(config.variant),
        assignment=fine.assignment,
        num_blocks=fine.num_blocks,
        mdl=fine.mdl,
        normalized_mdl=fine.normalized_mdl,
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        timings=timings,
        mcmc_sweeps=fit.mcmc_sweeps + fine.mcmc_sweeps,
        outer_iterations=fit.outer_iterations + fine.outer_iterations,
        seed=config.seed,
        converged=fit.converged and fine.converged,
        interrupted=fine.interrupted,
        sweep_stats=(
            fit.sweep_stats + fine.sweep_stats if config.record_work else []
        ),
        search_history=fine.search_history,
        block_storage=config.block_storage,
        sampler=sampled.sampler,
        sample_rate=sampled.realized_rate,
    )
