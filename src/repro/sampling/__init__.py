"""Sampling-based SBP front-end (SamBaS, arXiv:2108.06651).

Fit the golden-section search on an induced vertex sample, extend the
partition to the full graph by argmax-ΔMDL insertion, fine-tune with
warm-started full-graph sweeps. Entry point: ``SBPConfig.sample_rate``
(``run_sbp`` delegates to :func:`repro.sampling.pipeline.run_sampled_sbp`
whenever it is below 1.0).

Only the sampler registry is imported eagerly; the extension pass and
the pipeline pull in the MCMC/core stack and load on first attribute
access, keeping this package importable from ``SBPConfig`` validation
without an import cycle.
"""

from __future__ import annotations

from repro.sampling.samplers import (
    SampledGraph,
    SamplerSpec,
    available_samplers,
    get_sampler,
    register_sampler,
    sample_graph,
    sample_size,
)

__all__ = [
    "SampledGraph",
    "SamplerSpec",
    "available_samplers",
    "get_sampler",
    "register_sampler",
    "sample_graph",
    "sample_size",
    "extend_assignment",
    "run_sampled_sbp",
]


def __getattr__(name: str):
    if name == "extend_assignment":
        from repro.sampling.extension import extend_assignment

        return extend_assignment
    if name == "run_sampled_sbp":
        from repro.sampling.pipeline import run_sampled_sbp

        return run_sampled_sbp
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
