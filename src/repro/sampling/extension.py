"""Membership extension: argmax-ΔMDL insertion of unsampled vertices.

After the golden-section search fits the *sample*, every unsampled
vertex must be placed into one of the frozen blocks before the
full-graph fine-tune can start. This pass assigns each such vertex v to

    argmax_s ΔL(v -> s)

where L = Σ g(B_rt) − Σ g(d_out_r) − Σ g(d_in_t) is the DCSBM
log-likelihood of :func:`repro.sbm.entropy.dcsbm_log_likelihood` and the
blockmodel counts only edges whose *both* endpoints are already
assigned. Maximizing ΔL minimizes ΔMDL: the model-cost and label-cost
terms of Eq. 2 do not depend on the chosen block (C is frozen and the
newly activated edge count is the same for every candidate), so they
drop out of the argmax.

Insertion delta (derived from the count increments; ``Δg(x; δ)`` means
``g(x + δ) − g(x)`` and k_out/k_in are v's edge multiplicities into each
assigned block, self-loops excluded):

    ΔL(v -> s) =   Σ_{t ∈ T_out, t≠s} Δg(B[s,t]; k_out[t])
                 + Σ_{t ∈ T_in,  t≠s} Δg(B[t,s]; k_in[t])
                 + Δg(B[s,s]; k_out[s] + k_in[s] + loops)
                 − Δg(d_out[s] + k_in[s]; Σ_t k_out[t] + loops)
                 − Δg(d_in[s]  + k_out[s]; Σ_t k_in[t]  + loops)

(The ``d_out[t] += k_in[t]`` row-sum bumps for t≠s are s-independent and
dropped; the s-row corrections above are what remains.)

Batching contract
-----------------
Vertices are processed in degree-descending batches
(:func:`repro.mcmc.engine.degree_descending_batches`): every vertex in a
batch scores against the same frozen counts (the frozen-segment barrier
semantics of the sweep engine), then the batch is applied and its newly
activated edges are folded into B/d_out/d_in so *later batches see
earlier assignments*. Candidate scoring reuses the batched
neighbour-aggregation kernel of the vectorized backend
(:func:`repro.parallel.vectorized._neighbor_triplets`) on the partially
assigned graph: unassigned endpoints are masked to a sentinel block C
and filtered out.

Degenerate vertices — isolated, or with every neighbour still
unassigned — have an empty candidate set and fall back deterministically
to the largest assigned block (lowest id on ties), so no vertex is ever
silently dropped.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.graph.graph import Graph
from repro.mcmc.engine import degree_descending_batches
from repro.parallel.vectorized import _neighbor_triplets
from repro.sbm.entropy import xlogx_counts as _g
from repro.types import Assignment, IntArray
from repro.utils.arrays import expand_ranges

__all__ = ["extend_assignment"]


def _self_loop_counts(graph: Graph) -> IntArray:
    """Per-vertex self-loop multiplicities, one O(E) pass over the CSR."""
    lengths = np.diff(graph.out_ptr)
    vid = np.repeat(np.arange(graph.num_vertices, dtype=np.int64), lengths)
    return np.bincount(
        vid[graph.out_nbrs == vid], minlength=graph.num_vertices
    ).astype(np.int64)


def _lookup_counts(
    keys_sorted: IntArray, counts: IntArray, queries: IntArray
) -> IntArray:
    """Multiplicity of each query key in a sorted (key, count) table, 0 if absent."""
    out = np.zeros(queries.shape[0], dtype=np.int64)
    if keys_sorted.size == 0:
        return out
    pos = np.searchsorted(keys_sorted, queries)
    pos_c = np.minimum(pos, keys_sorted.shape[0] - 1)
    hit = keys_sorted[pos_c] == queries
    out[hit] = counts[pos_c[hit]]
    return out


def _cross_terms(
    score: np.ndarray,
    B: np.ndarray,
    pair_vertex: IntArray,
    pair_block: IntArray,
    trip_vid: IntArray,
    trip_blk: IntArray,
    trip_cnt: IntArray,
    axis: int,
) -> None:
    """Accumulate Σ_{t≠s} Δg over one edge direction into ``score``.

    ``axis=0`` reads cells ``B[s, t]`` (out-edges), ``axis=1`` reads
    ``B[t, s]`` (in-edges). Triplets are sorted by vertex, so each
    pair's span is located with two binary searches and expanded into
    (pair, triplet) combinations.
    """
    if trip_vid.size == 0 or pair_vertex.size == 0:
        return
    lo = np.searchsorted(trip_vid, pair_vertex, side="left")
    hi = np.searchsorted(trip_vid, pair_vertex, side="right")
    reps = hi - lo
    combo_pair = np.repeat(np.arange(pair_vertex.shape[0], dtype=np.int64), reps)
    combo_trip = expand_ranges(lo, reps)
    if combo_trip.size == 0:
        return
    s = pair_block[combo_pair]
    t = trip_blk[combo_trip]
    keep = t != s
    if not keep.any():
        return
    s, t = s[keep], t[keep]
    cnt = trip_cnt[combo_trip[keep]]
    cells = B[s, t] if axis == 0 else B[t, s]
    terms = _g(cells + cnt) - _g(cells)
    score += np.bincount(
        combo_pair[keep], weights=terms, minlength=score.shape[0]
    )


def extend_assignment(
    graph: Graph,
    assignment: Assignment,
    num_blocks: int,
    num_batches: int,
) -> Assignment:
    """Complete a partial assignment by greedy argmax-ΔMDL insertion.

    Parameters
    ----------
    graph:
        The full graph.
    assignment:
        Length-V int64 vector; assigned vertices hold a block id in
        ``[0, num_blocks)``, unassigned vertices hold ``-1``.
    num_blocks:
        The frozen block count C from the sample fit.
    num_batches:
        Number of degree-descending barrier batches for the unassigned
        vertices (more batches = fresher counts for low-degree vertices,
        at slightly more kernel launches).

    Returns
    -------
    A new length-V assignment with every vertex in ``[0, num_blocks)``.
    Ties in the insertion score break toward the lowest block id;
    vertices with no assigned neighbour join the largest assigned block.
    """
    assignment = np.array(assignment, dtype=np.int64, copy=True)
    if assignment.shape != (graph.num_vertices,):
        raise ReproError(
            f"assignment must have shape ({graph.num_vertices},), "
            f"got {assignment.shape}"
        )
    C = int(num_blocks)
    assigned = assignment >= 0
    if not assigned.any():
        raise ReproError("extension requires at least one assigned vertex")
    if int(assignment.max()) >= C:
        raise ReproError("assignment references a block >= num_blocks")

    unassigned = np.nonzero(~assigned)[0].astype(np.int64)
    if unassigned.size == 0:
        return assignment

    # Partial blockmodel over both-endpoint-assigned edges only.
    lengths = np.diff(graph.out_ptr)
    tails = np.repeat(np.arange(graph.num_vertices, dtype=np.int64), lengths)
    heads = graph.out_nbrs
    live = assigned[tails] & assigned[heads]
    B = np.bincount(
        assignment[tails[live]] * C + assignment[heads[live]], minlength=C * C
    ).astype(np.int64).reshape(C, C)
    d_out = B.sum(axis=1)
    d_in = B.sum(axis=0)
    sizes = np.bincount(assignment[assigned], minlength=C).astype(np.int64)
    loops = _self_loop_counts(graph)

    for batch in degree_descending_batches(graph, unassigned, num_batches):
        m = batch.shape[0]
        # Neighbour-block multiplicities against the *frozen* counts:
        # mask unassigned endpoints to sentinel block C, aggregate with
        # the vectorized backend's kernel, then drop sentinel rows.
        masked = np.where(assignment >= 0, assignment, C)
        vo, bo, co = _neighbor_triplets(
            graph.out_ptr, graph.out_nbrs, masked, batch, C + 1
        )
        keep = bo != C
        vo, bo, co = vo[keep], bo[keep], co[keep]
        vi, bi, ci = _neighbor_triplets(
            graph.in_ptr, graph.in_nbrs, masked, batch, C + 1
        )
        keep = bi != C
        vi, bi, ci = vi[keep], bi[keep], ci[keep]

        ko_tot = np.bincount(vo, weights=co, minlength=m).astype(np.int64)
        ki_tot = np.bincount(vi, weights=ci, minlength=m).astype(np.int64)
        loops_b = loops[batch]

        out_keys = vo * C + bo
        in_keys = vi * C + bi
        pair_keys = np.unique(np.concatenate([out_keys, in_keys]))
        chosen = np.full(m, -1, dtype=np.int64)
        if pair_keys.size:
            pv = pair_keys // C
            ps = pair_keys % C
            k_out_s = _lookup_counts(out_keys, co, pair_keys)
            k_in_s = _lookup_counts(in_keys, ci, pair_keys)

            score = np.zeros(pair_keys.shape[0], dtype=np.float64)
            _cross_terms(score, B, pv, ps, vo, bo, co, axis=0)
            _cross_terms(score, B, pv, ps, vi, bi, ci, axis=1)
            corner = B[ps, ps]
            score += _g(corner + k_out_s + k_in_s + loops_b[pv]) - _g(corner)
            dout_base = d_out[ps] + k_in_s
            score -= _g(dout_base + ko_tot[pv] + loops_b[pv]) - _g(dout_base)
            din_base = d_in[ps] + k_out_s
            score -= _g(din_base + ki_tot[pv] + loops_b[pv]) - _g(din_base)

            # First-maximum per vertex group = lowest block id on ties
            # (pairs are sorted by (vertex, block)).
            uniq_v = np.unique(pv)
            grp_starts = np.searchsorted(pv, uniq_v)
            grp_max = np.maximum.reduceat(score, grp_starts)
            is_best = score == np.repeat(
                grp_max, np.diff(np.append(grp_starts, pv.shape[0]))
            )
            best_pos = np.nonzero(is_best)[0]
            firsts = best_pos[np.searchsorted(pv[best_pos], uniq_v)]
            chosen[uniq_v] = ps[firsts]

        # Fallback: no assigned neighbour at all -> largest block,
        # np.argmax breaks ties toward the lowest id.
        orphan = chosen < 0
        if orphan.any():
            chosen[orphan] = int(np.argmax(sizes))

        # Barrier: apply the batch, then activate its edges. Out-edges
        # of batch vertices count every now-assigned head (self-loops
        # once, within-batch edges once); in-edges add only tails
        # assigned before this batch, so nothing double-counts.
        assignment[batch] = chosen
        sizes += np.bincount(chosen, minlength=C)
        in_batch = np.zeros(graph.num_vertices, dtype=bool)
        in_batch[batch] = True

        o_len = graph.out_ptr[batch + 1] - graph.out_ptr[batch]
        o_idx = expand_ranges(graph.out_ptr[batch], o_len)
        o_tail = np.repeat(batch, o_len)
        o_head = graph.out_nbrs[o_idx]
        sel = assignment[o_head] >= 0
        new_r = assignment[o_tail[sel]]
        new_c = assignment[o_head[sel]]

        i_len = graph.in_ptr[batch + 1] - graph.in_ptr[batch]
        i_idx = expand_ranges(graph.in_ptr[batch], i_len)
        i_head = np.repeat(batch, i_len)
        i_tail = graph.in_nbrs[i_idx]
        sel = (assignment[i_tail] >= 0) & ~in_batch[i_tail]
        new_r = np.concatenate([new_r, assignment[i_tail[sel]]])
        new_c = np.concatenate([new_c, assignment[i_head[sel]]])

        if new_r.size:
            B += np.bincount(new_r * C + new_c, minlength=C * C).reshape(C, C)
            d_out += np.bincount(new_r, minlength=C)
            d_in += np.bincount(new_c, minlength=C)

    return assignment
