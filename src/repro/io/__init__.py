"""Persistence for inference artifacts (results, blockmodels, labelings)."""

from repro.io.serialize import (
    save_result,
    load_result,
    save_assignment,
    load_assignment,
    save_blockmodel,
    load_blockmodel,
)

__all__ = [
    "save_result",
    "load_result",
    "save_assignment",
    "load_assignment",
    "save_blockmodel",
    "load_blockmodel",
]
