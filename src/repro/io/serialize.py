"""Save/load inference artifacts.

Three formats, chosen for the artifact's shape:

* **results** — JSON with the assignment embedded (human-inspectable,
  diff-able, version-tagged);
* **assignments** — ``vertex community`` text lines, interoperable with
  the CLI and with common community-detection tooling;
* **blockmodels** — compressed ``.npz`` (the B matrix is a dense array).
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.core.results import SBPResult
from repro.errors import ReproError
from repro.sbm.blockmodel import Blockmodel
from repro.types import Assignment, PhaseTimings

__all__ = [
    "save_result",
    "load_result",
    "save_assignment",
    "load_assignment",
    "save_blockmodel",
    "load_blockmodel",
]

_RESULT_FORMAT_VERSION = 1


def save_result(result: SBPResult, path: str | os.PathLike[str]) -> None:
    """Serialize an :class:`SBPResult` (sweep stats excluded) as JSON."""
    payload = {
        "format": "repro.sbp_result",
        "version": _RESULT_FORMAT_VERSION,
        "variant": result.variant,
        "assignment": result.assignment.tolist(),
        "num_blocks": result.num_blocks,
        "mdl": result.mdl,
        "normalized_mdl": result.normalized_mdl,
        "num_vertices": result.num_vertices,
        "num_edges": result.num_edges,
        "timings": {
            "block_merge": result.timings.block_merge,
            "mcmc": result.timings.mcmc,
            "rebuild": result.timings.rebuild,
            "other": result.timings.other,
        },
        "mcmc_sweeps": result.mcmc_sweeps,
        "outer_iterations": result.outer_iterations,
        "seed": result.seed,
        "converged": result.converged,
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)


def load_result(path: str | os.PathLike[str]) -> SBPResult:
    """Load a result saved by :func:`save_result`."""
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if payload.get("format") != "repro.sbp_result":
        raise ReproError(f"{path}: not a repro result file")
    if payload.get("version", 0) > _RESULT_FORMAT_VERSION:
        raise ReproError(
            f"{path}: result format v{payload['version']} is newer than "
            f"supported v{_RESULT_FORMAT_VERSION}"
        )
    timings = payload["timings"]
    return SBPResult(
        variant=payload["variant"],
        assignment=np.asarray(payload["assignment"], dtype=np.int64),
        num_blocks=int(payload["num_blocks"]),
        mdl=float(payload["mdl"]),
        normalized_mdl=float(payload["normalized_mdl"]),
        num_vertices=int(payload["num_vertices"]),
        num_edges=int(payload["num_edges"]),
        timings=PhaseTimings(
            block_merge=float(timings["block_merge"]),
            mcmc=float(timings["mcmc"]),
            rebuild=float(timings["rebuild"]),
            other=float(timings["other"]),
        ),
        mcmc_sweeps=int(payload["mcmc_sweeps"]),
        outer_iterations=int(payload["outer_iterations"]),
        seed=int(payload["seed"]),
        converged=bool(payload["converged"]),
    )


def save_assignment(assignment: Assignment, path: str | os.PathLike[str]) -> None:
    """Write ``vertex community`` lines (the CLI's community format)."""
    assignment = np.asarray(assignment, dtype=np.int64)
    with open(path, "w", encoding="utf-8") as fh:
        fh.write("# vertex community\n")
        for v, c in enumerate(assignment):
            fh.write(f"{v} {c}\n")


def load_assignment(
    path: str | os.PathLike[str], num_vertices: int | None = None
) -> Assignment:
    """Read a ``vertex community`` file back into a dense vector.

    Vertices absent from the file get community -1 when ``num_vertices``
    is given; otherwise the file must cover 0..V-1 densely.
    """
    pairs: list[tuple[int, int]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ReproError(f"{path}:{lineno}: expected 'vertex community'")
            pairs.append((int(parts[0]), int(parts[1])))
    if not pairs:
        raise ReproError(f"{path}: no assignments found")
    max_vertex = max(v for v, _ in pairs)
    size = num_vertices if num_vertices is not None else max_vertex + 1
    if max_vertex >= size:
        raise ReproError(
            f"{path}: vertex {max_vertex} out of range for size {size}"
        )
    out = np.full(size, -1, dtype=np.int64)
    for v, c in pairs:
        out[v] = c
    if num_vertices is None and (out < 0).any():
        raise ReproError(f"{path}: sparse assignment needs explicit num_vertices")
    return out


def save_blockmodel(bm: Blockmodel, path: str | os.PathLike[str]) -> None:
    """Persist blockmodel state as compressed ``.npz``."""
    np.savez_compressed(
        path,
        B=bm.B,
        assignment=bm.assignment,
        num_blocks=np.asarray([bm.num_blocks], dtype=np.int64),
    )


def load_blockmodel(path: str | os.PathLike[str]) -> Blockmodel:
    """Load a blockmodel saved by :func:`save_blockmodel`.

    Degree vectors are recomputed from B (cheaper than storing them and
    immune to tampered files disagreeing with the matrix).
    """
    with np.load(path) as data:
        try:
            B = data["B"].astype(np.int64)
            assignment = data["assignment"].astype(np.int64)
            num_blocks = int(data["num_blocks"][0])
        except KeyError as exc:
            raise ReproError(f"{path}: missing blockmodel field {exc}") from exc
    if B.shape != (num_blocks, num_blocks):
        raise ReproError(
            f"{path}: B shape {B.shape} inconsistent with num_blocks {num_blocks}"
        )
    return Blockmodel(
        B=B,
        d_out=B.sum(axis=1),
        d_in=B.sum(axis=0),
        assignment=assignment,
        num_blocks=num_blocks,
    )
