"""Save/load inference artifacts.

Three formats, chosen for the artifact's shape:

* **results** — JSON with the assignment embedded (human-inspectable,
  diff-able, version-tagged);
* **assignments** — ``vertex community`` text lines, interoperable with
  the CLI and with common community-detection tooling;
* **blockmodels** — compressed ``.npz`` (the B matrix is a dense array).

All writers are crash-safe: content is written to a temporary file in
the target directory and atomically :func:`os.replace`-d into place, so
a crash mid-write can never leave a truncated artifact under the final
name. All loaders translate low-level decode failures (truncated JSON,
bad zip members, missing fields, unknown format versions) into
:class:`~repro.errors.SerializationError` naming the offending path.
"""

from __future__ import annotations

import json
import os
import tempfile
import zipfile
from contextlib import contextmanager
from typing import Iterator

import numpy as np

from repro.core.results import SBPResult
from repro.errors import BackendError, ReproError, SerializationError
from repro.sbm.block_storage import get_block_storage
from repro.sbm.blockmodel import Blockmodel
from repro.types import Assignment, PhaseTimings

__all__ = [
    "atomic_write",
    "save_result",
    "load_result",
    "result_payload",
    "result_from_payload",
    "stream_payload",
    "stream_from_payload",
    "save_stream_result",
    "load_stream_result",
    "save_assignment",
    "load_assignment",
    "save_blockmodel",
    "load_blockmodel",
]

#: v3 added the memory gauges (peak_rss_bytes, b_nnz, b_density) to the
#: timings block; v4 the resolved ``block_storage`` engine name; v5 the
#: distributed wire counters (comm_messages, comm_bytes, comm_retries,
#: frames_quarantined, shard_releases); v6 the SamBaS sampling fields
#: (sampler name + realized sample_rate, and the sampling / extension /
#: finetune stage splits in the timings block); v7 the streaming fields
#: (refit_mode, drift, nmi_prev) and the stream-result container format
#: (per-snapshot timings and warm-vs-cold decisions). Older files load
#: the absent fields back as zero / empty (sample_rate as 1.0 — a legacy
#: result is by definition a full-graph fit; nmi_prev as -1.0 — no
#: previous snapshot).
_RESULT_FORMAT_VERSION = 7


@contextmanager
def atomic_write(path: str | os.PathLike[str], mode: str = "w") -> Iterator:
    """Write to ``path`` via a same-directory temp file + :func:`os.replace`.

    Yields an open file handle; on clean exit the temp file replaces
    ``path`` atomically, on error it is removed and the old artifact (if
    any) survives untouched.
    """
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp_path = tempfile.mkstemp(
        dir=directory, prefix=f".{os.path.basename(path)}.", suffix=".tmp"
    )
    try:
        kwargs = {} if "b" in mode else {"encoding": "utf-8"}
        with os.fdopen(fd, mode, **kwargs) as fh:
            yield fh
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def _load_json(path: str | os.PathLike[str], expected_format: str) -> dict:
    """Read a version-tagged JSON artifact, hardened against corruption."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            payload = json.load(fh)
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise SerializationError(f"{path}: corrupt or truncated JSON ({exc})") from exc
    if not isinstance(payload, dict) or payload.get("format") != expected_format:
        raise SerializationError(f"{path}: not a {expected_format} file")
    return payload


def _check_version(path: str | os.PathLike[str], payload: dict, supported: int) -> int:
    version = payload.get("version", 0)
    if isinstance(version, int) and version > supported:
        raise SerializationError(
            f"{path}: {payload.get('format')} version {version} is newer "
            f"than supported v{supported}"
        )
    if not isinstance(version, int) or version < 1:
        raise SerializationError(
            f"{path}: unknown {payload.get('format')} version {version!r} "
            f"(supported: 1..{supported})"
        )
    return version


def result_payload(result: SBPResult) -> dict:
    """The version-free result body shared by every artifact embedding one.

    Used by plain result files, the stream-result container and the
    service result store — all of them tag the payload with the shared
    format version so old files keep loading.
    """
    return {
        "variant": result.variant,
        "assignment": result.assignment.tolist(),
        "num_blocks": result.num_blocks,
        "mdl": result.mdl,
        "normalized_mdl": result.normalized_mdl,
        "num_vertices": result.num_vertices,
        "num_edges": result.num_edges,
        "timings": {
            "block_merge": result.timings.block_merge,
            "mcmc": result.timings.mcmc,
            "rebuild": result.timings.rebuild,
            "other": result.timings.other,
            "merge_scan": result.timings.merge_scan,
            "merge_apply": result.timings.merge_apply,
            "barrier_rebuild": result.timings.barrier_rebuild,
            "barrier_apply": result.timings.barrier_apply,
            "sampling": result.timings.sampling,
            "extension": result.timings.extension,
            "finetune": result.timings.finetune,
            "peak_rss_bytes": result.timings.peak_rss_bytes,
            "b_nnz": result.timings.b_nnz,
            "b_density": result.timings.b_density,
            "comm_messages": result.timings.comm_messages,
            "comm_bytes": result.timings.comm_bytes,
            "comm_retries": result.timings.comm_retries,
            "frames_quarantined": result.timings.frames_quarantined,
            "shard_releases": result.timings.shard_releases,
        },
        "mcmc_sweeps": result.mcmc_sweeps,
        "outer_iterations": result.outer_iterations,
        "seed": result.seed,
        "converged": result.converged,
        "interrupted": result.interrupted,
        "block_storage": result.block_storage,
        "sampler": result.sampler,
        "sample_rate": result.sample_rate,
        "refit_mode": result.refit_mode,
        "drift": result.drift,
        "nmi_prev": result.nmi_prev,
    }


def save_result(result: SBPResult, path: str | os.PathLike[str]) -> None:
    """Serialize an :class:`SBPResult` (sweep stats excluded) as JSON."""
    payload = {
        "format": "repro.sbp_result",
        "version": _RESULT_FORMAT_VERSION,
        **result_payload(result),
    }
    with atomic_write(path) as fh:
        json.dump(payload, fh, indent=2)


def result_from_payload(path, payload: dict) -> SBPResult:
    """Rebuild an :class:`SBPResult` from a :func:`result_payload` dict.

    ``path`` is used only for error messages; decode failures raise
    :class:`SerializationError` naming it.
    """
    try:
        timings = payload["timings"]
        return SBPResult(
            variant=payload["variant"],
            assignment=np.asarray(payload["assignment"], dtype=np.int64),
            num_blocks=int(payload["num_blocks"]),
            mdl=float(payload["mdl"]),
            normalized_mdl=float(payload["normalized_mdl"]),
            num_vertices=int(payload["num_vertices"]),
            num_edges=int(payload["num_edges"]),
            timings=PhaseTimings(
                block_merge=float(timings["block_merge"]),
                mcmc=float(timings["mcmc"]),
                rebuild=float(timings["rebuild"]),
                other=float(timings["other"]),
                # Sub-buckets were not serialized before this format grew
                # them; absent keys read back as zero.
                merge_scan=float(timings.get("merge_scan", 0.0)),
                merge_apply=float(timings.get("merge_apply", 0.0)),
                barrier_rebuild=float(timings.get("barrier_rebuild", 0.0)),
                barrier_apply=float(timings.get("barrier_apply", 0.0)),
                # SamBaS stage splits arrived in v6.
                sampling=float(timings.get("sampling", 0.0)),
                extension=float(timings.get("extension", 0.0)),
                finetune=float(timings.get("finetune", 0.0)),
                # Memory gauges arrived in v3; absent keys read as zero.
                peak_rss_bytes=int(timings.get("peak_rss_bytes", 0)),
                b_nnz=int(timings.get("b_nnz", 0)),
                b_density=float(timings.get("b_density", 0.0)),
                # Distributed wire counters arrived in v5.
                comm_messages=int(timings.get("comm_messages", 0)),
                comm_bytes=int(timings.get("comm_bytes", 0)),
                comm_retries=int(timings.get("comm_retries", 0)),
                frames_quarantined=int(timings.get("frames_quarantined", 0)),
                shard_releases=int(timings.get("shard_releases", 0)),
            ),
            mcmc_sweeps=int(payload["mcmc_sweeps"]),
            outer_iterations=int(payload["outer_iterations"]),
            seed=int(payload["seed"]),
            converged=bool(payload["converged"]),
            interrupted=bool(payload.get("interrupted", False)),  # absent in v1
            block_storage=str(payload.get("block_storage", "")),  # v4
            sampler=str(payload.get("sampler", "")),  # v6
            sample_rate=float(payload.get("sample_rate", 1.0)),  # v6
            refit_mode=str(payload.get("refit_mode", "")),  # v7
            drift=float(payload.get("drift", 0.0)),  # v7
            nmi_prev=float(payload.get("nmi_prev", -1.0)),  # v7
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(f"{path}: malformed result field ({exc!r})") from exc


def load_result(path: str | os.PathLike[str]) -> SBPResult:
    """Load a result saved by :func:`save_result`."""
    payload = _load_json(path, "repro.sbp_result")
    _check_version(path, payload, _RESULT_FORMAT_VERSION)
    return result_from_payload(path, payload)


def stream_payload(stream) -> dict:
    """The version-free body of a stream-result container.

    Embeds one v7 result payload per snapshot (assignment included, so
    any snapshot's partition can be recovered) plus the stream-level
    decisions: warm-vs-cold counts, per-snapshot drift and
    consecutive-snapshot NMI, and the batch sizes that produced each
    snapshot.
    """
    return {
        "num_snapshots": len(stream.snapshots),
        "warm_refits": stream.warm_refits,
        "cold_fits": stream.cold_fits,
        "drift_policy": stream.drift_policy,
        "drift_threshold": stream.drift_threshold,
        "snapshots": [
            {
                "index": snap.index,
                "edges_added": snap.edges_added,
                "edges_removed": snap.edges_removed,
                "seconds": snap.seconds,
                "result": result_payload(snap.result),
            }
            for snap in stream.snapshots
        ],
    }


def stream_from_payload(path, payload: dict):
    """Rebuild a ``StreamResult`` from a :func:`stream_payload` dict."""
    from repro.streaming.session import SnapshotReport, StreamResult

    try:
        snapshots = [
            SnapshotReport(
                index=int(entry["index"]),
                edges_added=int(entry["edges_added"]),
                edges_removed=int(entry["edges_removed"]),
                seconds=float(entry["seconds"]),
                result=result_from_payload(path, entry["result"]),
            )
            for entry in payload["snapshots"]
        ]
        return StreamResult(
            snapshots=snapshots,
            warm_refits=int(payload["warm_refits"]),
            cold_fits=int(payload["cold_fits"]),
            drift_policy=str(payload["drift_policy"]),
            drift_threshold=float(payload["drift_threshold"]),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(
            f"{path}: malformed stream result field ({exc!r})"
        ) from exc


def save_stream_result(stream, path: str | os.PathLike[str]) -> None:
    """Serialize a :class:`~repro.streaming.session.StreamResult` as JSON.

    See :func:`stream_payload` for the container body.
    """
    payload = {
        "format": "repro.stream_result",
        "version": _RESULT_FORMAT_VERSION,
        **stream_payload(stream),
    }
    with atomic_write(path) as fh:
        json.dump(payload, fh, indent=2)


def load_stream_result(path: str | os.PathLike[str]):
    """Load a stream result saved by :func:`save_stream_result`."""
    payload = _load_json(path, "repro.stream_result")
    _check_version(path, payload, _RESULT_FORMAT_VERSION)
    return stream_from_payload(path, payload)


def save_assignment(assignment: Assignment, path: str | os.PathLike[str]) -> None:
    """Write ``vertex community`` lines (the CLI's community format)."""
    assignment = np.asarray(assignment, dtype=np.int64)
    with atomic_write(path) as fh:
        fh.write("# vertex community\n")
        for v, c in enumerate(assignment):
            fh.write(f"{v} {c}\n")


def load_assignment(
    path: str | os.PathLike[str], num_vertices: int | None = None
) -> Assignment:
    """Read a ``vertex community`` file back into a dense vector.

    Vertices absent from the file get community -1 when ``num_vertices``
    is given; otherwise the file must cover 0..V-1 densely.
    """
    pairs: list[tuple[int, int]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ReproError(f"{path}:{lineno}: expected 'vertex community'")
            try:
                pairs.append((int(parts[0]), int(parts[1])))
            except ValueError as exc:
                raise SerializationError(
                    f"{path}:{lineno}: non-integer assignment entry {line!r}"
                ) from exc
    if not pairs:
        raise ReproError(f"{path}: no assignments found")
    max_vertex = max(v for v, _ in pairs)
    size = num_vertices if num_vertices is not None else max_vertex + 1
    if max_vertex >= size:
        raise ReproError(
            f"{path}: vertex {max_vertex} out of range for size {size}"
        )
    out = np.full(size, -1, dtype=np.int64)
    for v, c in pairs:
        out[v] = c
    if num_vertices is None and (out < 0).any():
        raise ReproError(f"{path}: sparse assignment needs explicit num_vertices")
    return out


def save_blockmodel(bm: Blockmodel, path: str | os.PathLike[str]) -> None:
    """Persist blockmodel state as compressed ``.npz``.

    The matrix is densified for the archive regardless of the in-memory
    storage engine (compression flattens the zero runs anyway); the
    engine's registry name rides along so a load reconstructs the same
    engine.
    """
    path = os.fspath(path)
    if not path.endswith(".npz"):  # match np.savez's implicit suffix
        path += ".npz"
    with atomic_write(path, mode="wb") as fh:
        np.savez_compressed(
            fh,
            B=bm.state.to_dense(),
            assignment=bm.assignment,
            num_blocks=np.asarray([bm.num_blocks], dtype=np.int64),
            storage=np.asarray(bm.storage_name),
        )


def load_blockmodel(path: str | os.PathLike[str]) -> Blockmodel:
    """Load a blockmodel saved by :func:`save_blockmodel`.

    Degree vectors are recomputed from B (cheaper than storing them and
    immune to tampered files disagreeing with the matrix). Archives
    written before the storage engines existed carry no ``storage``
    field and load as ``dense``.
    """
    try:
        with np.load(path) as data:
            try:
                B = data["B"].astype(np.int64)
                assignment = data["assignment"].astype(np.int64)
                num_blocks = int(data["num_blocks"][0])
            except KeyError as exc:
                raise SerializationError(
                    f"{path}: missing blockmodel field {exc}"
                ) from exc
            storage = str(data["storage"]) if "storage" in data.files else "dense"
    except (zipfile.BadZipFile, EOFError, ValueError, OSError) as exc:
        if isinstance(exc, FileNotFoundError):
            raise
        raise SerializationError(
            f"{path}: corrupt or truncated blockmodel archive ({exc})"
        ) from exc
    if B.ndim != 2 or B.shape != (num_blocks, num_blocks):
        raise SerializationError(
            f"{path}: B shape {B.shape} inconsistent with num_blocks {num_blocks}"
        )
    try:
        storage_cls = get_block_storage(storage)
    except BackendError as exc:
        raise SerializationError(f"{path}: {exc}") from exc
    state = storage_cls.from_dense(B)
    return Blockmodel(
        B=state,
        d_out=state.row_sums(),
        d_in=state.col_sums(),
        assignment=assignment,
        num_blocks=num_blocks,
    )
