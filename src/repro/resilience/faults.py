"""Fault-injection harness (tests only).

:class:`ChaosBackend` wraps a real execution backend and misbehaves at
configured sweep indices: raise a :class:`~repro.errors.FaultInjected`
worker crash, hang past any reasonable timeout, or hand back a corrupted
decision array. The resilience test suite drives
:class:`~repro.resilience.resilient.ResilientBackend`, the checkpoint
layer and the invariant audits against it; nothing in the library
imports this module on a production path.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.errors import FaultInjected
from repro.graph.graph import Graph
from repro.parallel.backend import ExecutionBackend
from repro.sbm.blockmodel import Blockmodel
from repro.types import IntArray

__all__ = ["ChaosBackend", "RAISE", "HANG", "CORRUPT"]

RAISE = "raise"
HANG = "hang"
CORRUPT = "corrupt"


class ChaosBackend(ExecutionBackend):
    """Injects faults into an otherwise-correct backend.

    Parameters
    ----------
    inner:
        The backend producing correct results between faults.
    faults:
        Map from 0-based sweep-call index to a fault kind (``"raise"``,
        ``"hang"`` or ``"corrupt"``). Calls not listed pass through.
    hang_seconds:
        Upper bound on an injected hang; the wait is released early by
        :meth:`close` so abandoned attempt threads exit promptly, and a
        finished hang raises :class:`FaultInjected` rather than
        returning a result.
    """

    name = "chaos"

    def __init__(
        self,
        inner: ExecutionBackend,
        faults: dict[int, str],
        hang_seconds: float = 30.0,
    ) -> None:
        unknown = {kind for kind in faults.values()} - {RAISE, HANG, CORRUPT}
        if unknown:
            raise ValueError(f"unknown fault kinds: {sorted(unknown)}")
        self.inner = inner
        self.faults = dict(faults)
        self.hang_seconds = hang_seconds
        self.calls = 0
        self._released = threading.Event()

    def evaluate_sweep(
        self,
        bm: Blockmodel,
        graph: Graph,
        vertices: IntArray,
        uniforms: np.ndarray,
        beta: float,
    ) -> tuple[np.ndarray, IntArray]:
        call = self.calls
        self.calls += 1
        fault = self.faults.get(call)
        if fault == RAISE:
            raise FaultInjected(f"injected worker crash at sweep call {call}")
        if fault == HANG:
            self._released.wait(self.hang_seconds)
            raise FaultInjected(f"injected hang at sweep call {call} timed out")
        accepted, targets = self.inner.evaluate_sweep(
            bm, graph, vertices, uniforms, beta
        )
        if fault == CORRUPT:
            # Out-of-range targets: detectable corruption, the kind a
            # half-dead worker writing garbage would produce.
            targets = targets + bm.num_blocks
            accepted = np.ones_like(accepted, dtype=bool)
        return accepted, targets

    def close(self) -> None:
        self._released.set()
        self.inner.close()
