"""Atomic checkpoint/resume of the agglomerative outer loop.

A snapshot captures everything the outer loop needs to continue from the
top of its next iteration: the golden-section anchor triplet (including
their blockmodels), the pending candidate blockmodel and its MDL, the
iteration and sweep counters, accumulated phase timings and the search
history. Because all randomness in a run is a pure function of
``(seed, phase tag, sweep)`` (see :mod:`repro.utils.rng`), no RNG state
needs saving — a resumed run replays the exact uninterrupted chain.

On-disk layout (one directory per run)::

    state_00007.json           # manifest, written last, atomically
    state_00007.current.npz    # candidate blockmodel
    state_00007.anchor0.npz    # golden-section anchors (absent if unset)
    state_00007.anchor1.npz
    run_00.result.json         # best-of-N: completed run results
    run_00.result.digest       # best-of-N: config digest of that run
    run_00/                    # best-of-N: per-run snapshot directory

The manifest is written *after* its ``.npz`` companions via
:func:`~repro.io.serialize.atomic_write`, so a crash mid-save leaves at
worst orphaned ``.npz`` files and the previous snapshot intact; loading
walks snapshots newest-first and skips damaged ones.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.partition_search import GoldenSectionSearch
from repro.core.results import SBPResult
from repro.core.variants import SBPConfig
from repro.errors import CheckpointError, SerializationError
from repro.io.serialize import (
    atomic_write,
    load_blockmodel,
    load_result,
    save_blockmodel,
    save_result,
)
from repro.sbm.blockmodel import Blockmodel
from repro.utils.log import get_logger

__all__ = ["RunCheckpoint", "RunCheckpointer", "config_digest"]

_log = get_logger("resilience.checkpoint")

_CHECKPOINT_FORMAT = "repro.run_checkpoint"
_CHECKPOINT_VERSION = 1
_MANIFEST_RE = re.compile(r"^state_(\d{5})\.json$")

#: Config fields that determine the chain (and therefore the result).
#: Backend choices are deliberately excluded: every execution/merge
#: backend is bit-identical by construction, so a run checkpointed under
#: ``--backend process`` may resume under ``--backend serial``.
#: ``update_strategy`` and ``block_storage`` ARE included even though
#: their engines are bit-identical too: each maintains state through a
#: different code path (delta-apply vs recount; dense vs sparse matrix),
#: so a resume that silently switched engines would mask exactly the
#: class of drift the equivalence tests exist to catch — a mismatch is
#: rejected, not papered over.
_DETERMINISM_FIELDS = (
    "variant",
    "seed",
    "beta",
    "vstar_fraction",
    "num_batches",
    "tier_split",
    "mcmc_threshold",
    "mcmc_threshold_final",
    "max_sweeps",
    "merge_proposals_per_block",
    "block_reduction_rate",
    "update_strategy",
    "block_storage",
    # SamBaS front-end: the sample (and therefore every later chain
    # position) is a pure function of these, so a resume under a
    # different rate/sampler/batching must be refused.
    "sample_rate",
    "sampler",
    "extension_batches",
)


def config_digest(config: SBPConfig) -> str:
    """Hash of the chain-determining config fields (resume compatibility)."""
    payload = {name: getattr(config, name) for name in _DETERMINISM_FIELDS}
    payload["variant"] = str(payload["variant"])
    blob = json.dumps(payload, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()[:16]


@dataclass
class RunCheckpoint:
    """Outer-loop state at the top of iteration ``outer + 1``."""

    outer: int
    total_sweeps: int
    bm: Blockmodel
    mdl: float
    #: golden-section anchor triplet, as ``(blockmodel | None, mdl)``
    anchors: list[tuple[Blockmodel | None, float]]
    search_history: list[tuple[int, float]] = field(default_factory=list)
    timings: dict[str, float] = field(default_factory=dict)
    config_digest: str = ""

    def restore_search(self, search: GoldenSectionSearch) -> None:
        search.restore_anchors(self.anchors)


class RunCheckpointer:
    """Writes and reads :class:`RunCheckpoint` snapshots in a directory.

    Parameters
    ----------
    directory:
        Snapshot directory; created on first save.
    keep_last:
        Completed snapshots retained; older ones are pruned after each
        successful save (>= 1 so a valid snapshot always survives).
    """

    def __init__(self, directory: str | os.PathLike[str], keep_last: int = 2) -> None:
        if keep_last < 1:
            raise ValueError(f"keep_last must be >= 1, got {keep_last}")
        self.directory = Path(directory)
        self.keep_last = keep_last

    def child(self, name: str) -> "RunCheckpointer":
        """A checkpointer for a nested run (best-of-N member runs)."""
        return RunCheckpointer(self.directory / name, keep_last=self.keep_last)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def save(self, state: RunCheckpoint) -> Path:
        """Atomically persist ``state``; returns the manifest path."""
        self.directory.mkdir(parents=True, exist_ok=True)
        stem = f"state_{state.outer:05d}"
        current_file = f"{stem}.current.npz"
        save_blockmodel(state.bm, self.directory / current_file)
        anchors_meta: list[dict[str, object]] = []
        for idx, (bm, mdl) in enumerate(state.anchors):
            entry: dict[str, object] = {"mdl": mdl, "file": None}
            if bm is not None:
                anchor_file = f"{stem}.anchor{idx}.npz"
                save_blockmodel(bm, self.directory / anchor_file)
                entry["file"] = anchor_file
            anchors_meta.append(entry)
        manifest = {
            "format": _CHECKPOINT_FORMAT,
            "version": _CHECKPOINT_VERSION,
            "outer": state.outer,
            "total_sweeps": state.total_sweeps,
            "mdl": state.mdl,
            "current": current_file,
            "anchors": anchors_meta,
            "search_history": [[int(c), float(m)] for c, m in state.search_history],
            "timings": state.timings,
            "config_digest": state.config_digest,
        }
        manifest_path = self.directory / f"{stem}.json"
        with atomic_write(manifest_path) as fh:
            json.dump(manifest, fh, indent=2)
        self._prune()
        return manifest_path

    def load(self) -> RunCheckpoint | None:
        """Return the latest valid snapshot, or None for a fresh directory.

        Damaged snapshots (truncated manifest, unreadable blockmodel,
        unknown version) are skipped with a warning; if snapshots exist
        but none is loadable a :class:`CheckpointError` is raised so a
        half-destroyed checkpoint directory is never silently ignored.
        """
        manifests = self._manifests()
        if not manifests:
            return None
        errors: list[str] = []
        for path in reversed(manifests):
            try:
                return self._load_one(path)
            except SerializationError as exc:
                _log.warning("skipping damaged checkpoint %s: %s", path, exc)
                errors.append(str(exc))
        raise CheckpointError(
            f"{self.directory}: no valid checkpoint among {len(manifests)} "
            f"snapshot(s); last error: {errors[-1]}"
        )

    def has_snapshot(self) -> bool:
        return bool(self._manifests())

    def _load_one(self, path: Path) -> RunCheckpoint:
        try:
            with open(path, "r", encoding="utf-8") as fh:
                manifest = json.load(fh)
        except (json.JSONDecodeError, UnicodeDecodeError, OSError) as exc:
            raise SerializationError(
                f"{path}: corrupt or truncated manifest ({exc})"
            ) from exc
        if not isinstance(manifest, dict) or manifest.get("format") != _CHECKPOINT_FORMAT:
            raise SerializationError(f"{path}: not a run checkpoint manifest")
        version = manifest.get("version", 0)
        if not isinstance(version, int) or version < 1 or version > _CHECKPOINT_VERSION:
            raise SerializationError(
                f"{path}: unsupported checkpoint version {version!r} "
                f"(supported: 1..{_CHECKPOINT_VERSION})"
            )
        try:
            bm = load_blockmodel(self.directory / str(manifest["current"]))
            anchors: list[tuple[Blockmodel | None, float]] = []
            for entry in manifest["anchors"]:
                anchor_bm = (
                    load_blockmodel(self.directory / str(entry["file"]))
                    if entry["file"] is not None
                    else None
                )
                anchors.append((anchor_bm, float(entry["mdl"])))
            return RunCheckpoint(
                outer=int(manifest["outer"]),
                total_sweeps=int(manifest["total_sweeps"]),
                bm=bm,
                mdl=float(manifest["mdl"]),
                anchors=anchors,
                search_history=[
                    (int(c), float(m)) for c, m in manifest["search_history"]
                ],
                timings={
                    str(k): float(v) for k, v in manifest["timings"].items()
                },
                config_digest=str(manifest["config_digest"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SerializationError(
                f"{path}: malformed checkpoint field ({exc!r})"
            ) from exc

    def _manifests(self) -> list[Path]:
        if not self.directory.is_dir():
            return []
        found = [
            p for p in self.directory.iterdir() if _MANIFEST_RE.match(p.name)
        ]
        return sorted(found)

    def _prune(self) -> None:
        for stale in self._manifests()[: -self.keep_last]:
            stem = stale.name[: -len(".json")]
            # Drop the manifest first so a partial prune can't leave a
            # manifest pointing at deleted blockmodels.
            stale.unlink(missing_ok=True)
            for companion in self.directory.glob(f"{stem}.*.npz"):
                companion.unlink(missing_ok=True)

    # ------------------------------------------------------------------
    # Best-of-N bookkeeping
    # ------------------------------------------------------------------
    def _result_path(self, index: int) -> Path:
        return self.directory / f"run_{index:02d}.result.json"

    def _result_digest_path(self, index: int) -> Path:
        return self.directory / f"run_{index:02d}.result.digest"

    def save_completed(
        self, index: int, result: SBPResult, digest: str = ""
    ) -> None:
        """Record a finished best-of-N member run (plus its config digest)."""
        self.directory.mkdir(parents=True, exist_ok=True)
        save_result(result, self._result_path(index))
        if digest:
            with atomic_write(self._result_digest_path(index)) as fh:
                fh.write(digest)

    def load_completed(self, index: int, digest: str = "") -> SBPResult | None:
        """Load a finished member run; None if absent, warn if damaged.

        When ``digest`` is given and the stored run carries a digest
        sidecar, a mismatch raises :class:`CheckpointError` — replaying
        a result computed under a different configuration would
        silently bypass the resume-compatibility check that in-progress
        snapshots already enforce. Results saved without a sidecar
        (older checkpoints) are accepted as before.
        """
        path = self._result_path(index)
        if not path.exists():
            return None
        digest_path = self._result_digest_path(index)
        if digest and digest_path.exists():
            stored = digest_path.read_text(encoding="utf-8").strip()
            if stored != digest:
                raise CheckpointError(
                    f"{path}: completed run was produced by an incompatible "
                    "configuration (seed/variant/chain parameters differ); "
                    "refusing to reuse it"
                )
        try:
            return load_result(path)
        except SerializationError as exc:
            _log.warning("ignoring damaged best-of result %s: %s", path, exc)
            return None
