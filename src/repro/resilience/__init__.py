"""Resilience layer: checkpoint/resume, fault-tolerant backends, audits.

Long agglomerative SBP runs (hours at paper scale, §4) die today from a
killed process, a hung worker or a silent NaN. This package makes them
survivable and auditable:

* :mod:`~repro.resilience.checkpoint` — atomic, versioned snapshots of
  the outer-loop state; ``run_sbp(..., checkpointer=...)`` resumes from
  the latest valid snapshot bit-identically.
* :mod:`~repro.resilience.resilient` — :class:`ResilientBackend`, a
  timeout/retry/fallback wrapper over any execution backend
  (``--backend resilient:<inner>``).
* :mod:`~repro.resilience.audit` — :class:`InvariantAuditor`, the
  configurable consistency/NaN audit with a ``rebuild()`` self-heal.
* :mod:`~repro.resilience.interrupt` — :class:`StopGuard`, cooperative
  SIGINT/time-budget interruption with best-so-far results.
* :mod:`~repro.resilience.faults` — :class:`ChaosBackend`, the
  fault-injection harness used by the resilience test suite.
"""

from repro.resilience.audit import InvariantAuditor
from repro.resilience.checkpoint import RunCheckpoint, RunCheckpointer, config_digest
from repro.resilience.faults import ChaosBackend
from repro.resilience.interrupt import StopGuard
from repro.resilience.resilient import ResilientBackend, RetryPolicy

__all__ = [
    "InvariantAuditor",
    "RunCheckpoint",
    "RunCheckpointer",
    "config_digest",
    "ChaosBackend",
    "StopGuard",
    "ResilientBackend",
    "RetryPolicy",
]
