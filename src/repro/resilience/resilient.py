"""Fault-tolerant wrapper over any execution backend.

:class:`ResilientBackend` runs each sweep through a *chain* of backends:
the configured inner backend first, then declared fallbacks (by default
``vectorized`` then ``serial``). Per attempt it enforces an optional
wall-clock timeout and validates the returned decision arrays; failures
are retried with linear backoff before the chain advances. Because every
registered backend is bit-identical by construction (decisions are a
pure function of the pre-drawn sweep randomness), falling back changes
wall-clock only — never the chain of states.

Registered as ``resilient``; the CLI spec ``--backend resilient:<inner>``
selects the wrapped backend.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

from repro.errors import BackendError
from repro.graph.graph import Graph
from repro.parallel.backend import ExecutionBackend, get_backend, register_backend
from repro.sbm.blockmodel import Blockmodel
from repro.types import IntArray
from repro.utils.log import get_logger

__all__ = ["RetryPolicy", "ResilientBackend"]

_log = get_logger("resilience.backend")

_DEFAULT_FALLBACKS = ("vectorized", "serial")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded attempt/backoff/timeout policy for fault-tolerant calls.

    One object answers "how many attempts, how long between them, and
    when is an attempt abandoned" — shared by the resilient execution
    backend (per-sweep attempts against the fallback chain) and the
    distributed comm layer (per-message retransmission before a channel
    is declared dead).

    Attributes
    ----------
    retries:
        Extra attempts after the first failure (total = retries + 1).
    backoff:
        Sleep ``backoff * attempt`` seconds before retry ``attempt``
        (linear backoff; 0 disables sleeping).
    timeout:
        Per-attempt wall-clock limit in seconds, ``None`` for no limit.
        The resilient backend enforces it around a sweep; the comm layer
        uses it as the per-pull wait for in-flight frames.
    """

    retries: int = 1
    backoff: float = 0.0
    timeout: float | None = None

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise BackendError(f"retries must be >= 0, got {self.retries}")
        if self.backoff < 0:
            raise BackendError(f"backoff must be >= 0, got {self.backoff}")
        if self.timeout is not None and self.timeout <= 0:
            raise BackendError(f"timeout must be > 0, got {self.timeout}")

    @property
    def attempts(self) -> int:
        return self.retries + 1

    def sleep_before(self, attempt: int) -> None:
        """Linear-backoff sleep ahead of retry ``attempt`` (1-based)."""
        if attempt > 0 and self.backoff > 0:
            time.sleep(self.backoff * attempt)


class ResilientBackend(ExecutionBackend):
    """Timeout + bounded-retry + fallback-chain execution wrapper.

    Parameters
    ----------
    inner:
        Backend name or instance to try first.
    fallbacks:
        Backends (names or instances) tried in order once ``inner`` is
        exhausted. Defaults to ``vectorized`` then ``serial`` (minus any
        name already in the chain). Pass ``()`` for no fallback.
    sweep_timeout:
        Per-attempt wall-clock limit in seconds; a sweep still running
        past it is abandoned (the attempt thread is daemonized) and
        counts as a failure. ``None`` disables the timeout.
    retries:
        Extra attempts per chain member after its first failure. Hangs
        are not retried on the same member — a backend that timed out
        once is assumed wedged and the chain advances.
    backoff:
        Sleep ``backoff * attempt`` seconds between retries.
    """

    name = "resilient"

    def __init__(
        self,
        inner: str | ExecutionBackend = "vectorized",
        fallbacks: tuple[str | ExecutionBackend, ...] | list | None = None,
        sweep_timeout: float | None = None,
        retries: int = 1,
        backoff: float = 0.0,
        **inner_options,
    ) -> None:
        self.policy = RetryPolicy(
            retries=retries, backoff=backoff, timeout=sweep_timeout
        )
        chain: list[ExecutionBackend] = [self._resolve(inner, inner_options)]
        if fallbacks is None:
            fallbacks = tuple(
                name for name in _DEFAULT_FALLBACKS if name != chain[0].name
            )
        for entry in fallbacks:
            backend = self._resolve(entry, {})
            if backend.name == "resilient":
                raise BackendError("cannot nest resilient backends")
            chain.append(backend)
        self.chain = chain

    @staticmethod
    def _resolve(entry: str | ExecutionBackend, options: dict) -> ExecutionBackend:
        if isinstance(entry, ExecutionBackend):
            return entry
        return get_backend(entry, **options)

    # Legacy attribute views of the policy (kept for callers and logs).
    @property
    def sweep_timeout(self) -> float | None:
        return self.policy.timeout

    @property
    def retries(self) -> int:
        return self.policy.retries

    @property
    def backoff(self) -> float:
        return self.policy.backoff

    def evaluate_sweep(
        self,
        bm: Blockmodel,
        graph: Graph,
        vertices: IntArray,
        uniforms: np.ndarray,
        beta: float,
    ) -> tuple[np.ndarray, IntArray]:
        failures: list[str] = []
        for backend in self.chain:
            for attempt in range(self.policy.attempts):
                self.policy.sleep_before(attempt)
                try:
                    result = self._attempt(backend, bm, graph, vertices, uniforms, beta)
                except _SweepTimeout as exc:
                    failures.append(f"{backend.name}: {exc}")
                    _log.warning(
                        "backend %r hung (> %.3gs); advancing fallback chain",
                        backend.name, self.sweep_timeout,
                    )
                    break  # a wedged backend is not retried
                except Exception as exc:  # noqa: BLE001 - fault barrier
                    failures.append(f"{backend.name}: {exc!r}")
                    _log.warning(
                        "backend %r failed (attempt %d/%d): %r",
                        backend.name, attempt + 1, self.retries + 1, exc,
                    )
                    continue
                problem = self._validate(result, bm, vertices)
                if problem is None:
                    if failures:
                        _log.info(
                            "sweep recovered on backend %r after: %s",
                            backend.name, "; ".join(failures),
                        )
                    return result
                failures.append(f"{backend.name}: {problem}")
                _log.warning(
                    "backend %r returned a corrupt result (%s); retrying",
                    backend.name, problem,
                )
        raise BackendError(
            "resilient chain exhausted "
            f"({' -> '.join(b.name for b in self.chain)}): "
            + "; ".join(failures)
        )

    def _attempt(
        self,
        backend: ExecutionBackend,
        bm: Blockmodel,
        graph: Graph,
        vertices: IntArray,
        uniforms: np.ndarray,
        beta: float,
    ) -> tuple[np.ndarray, IntArray]:
        if self.sweep_timeout is None:
            return backend.evaluate_sweep(bm, graph, vertices, uniforms, beta)

        box: dict[str, object] = {}

        def _run() -> None:
            try:
                box["result"] = backend.evaluate_sweep(
                    bm, graph, vertices, uniforms, beta
                )
            except BaseException as exc:  # noqa: BLE001 - crossed thread boundary
                box["error"] = exc

        # A plain daemon thread (not a pool): a hung attempt is abandoned
        # and must never block interpreter shutdown.
        thread = threading.Thread(
            target=_run, name=f"resilient-{backend.name}", daemon=True
        )
        thread.start()
        thread.join(self.sweep_timeout)
        if thread.is_alive():
            raise _SweepTimeout(
                f"sweep exceeded timeout of {self.sweep_timeout}s"
            )
        if "error" in box:
            raise box["error"]  # type: ignore[misc]
        return box["result"]  # type: ignore[return-value]

    @staticmethod
    def _validate(
        result: object, bm: Blockmodel, vertices: IntArray
    ) -> str | None:
        """Sanity-check a sweep result; returns a problem description."""
        if not isinstance(result, tuple) or len(result) != 2:
            return f"expected (accepted, targets) tuple, got {type(result).__name__}"
        accepted, targets = result
        n = len(vertices)
        if getattr(accepted, "shape", None) != (n,):
            return f"accepted shape {getattr(accepted, 'shape', None)} != ({n},)"
        if getattr(targets, "shape", None) != (n,):
            return f"targets shape {getattr(targets, 'shape', None)} != ({n},)"
        if n and (int(targets.min()) < 0 or int(targets.max()) >= bm.num_blocks):
            return (
                f"targets outside [0, {bm.num_blocks}): "
                f"range [{int(targets.min())}, {int(targets.max())}]"
            )
        return None

    def close(self) -> None:
        for backend in self.chain:
            try:
                backend.close()
            except Exception as exc:  # noqa: BLE001 - close is best-effort
                _log.warning("error closing backend %r: %r", backend.name, exc)


class _SweepTimeout(BackendError):
    """Internal marker: an attempt exceeded the sweep timeout."""


register_backend("resilient", ResilientBackend)
