"""Invariant auditing with graceful degradation.

Two classes of silent corruption can destroy an hours-long run today:

* a B matrix that drifts out of sync with the assignment (bad worker
  result, memory fault, a future incremental-update bug), and
* a non-finite MDL (the ``float("nan")`` escape in
  :func:`repro.sbm.entropy.normalized_description_length`, or a
  likelihood overflow) that poisons every later comparison because NaN
  never orders.

:class:`InvariantAuditor` runs :meth:`Blockmodel.check_consistency` on a
configurable cadence and guards every outer-loop MDL for finiteness.
Both checks first attempt a ``rebuild()`` self-heal — the assignment
vector is the source of truth, so recomputing B from it repairs any
matrix-side corruption — and raise a diagnosed
:class:`~repro.errors.ConvergenceError` only when the heal fails.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import BlockmodelError, ConvergenceError
from repro.graph.graph import Graph
from repro.sbm.blockmodel import Blockmodel
from repro.utils.log import get_logger

__all__ = ["InvariantAuditor"]

_log = get_logger("resilience.audit")


class InvariantAuditor:
    """Cadence-driven consistency and finiteness checks for one run.

    Parameters
    ----------
    cadence:
        Audit every ``cadence`` agglomerative iterations; 0 disables the
        consistency audit (the cheap MDL finiteness guard always runs).
    self_heal:
        Repair detectable corruption via :meth:`Blockmodel.rebuild`
        instead of raising on first detection.
    """

    def __init__(self, cadence: int = 0, self_heal: bool = True) -> None:
        if cadence < 0:
            raise ValueError(f"cadence must be >= 0, got {cadence}")
        self.cadence = cadence
        self.self_heal = self_heal
        self.audits_run = 0
        self.heals = 0

    def due(self, iteration: int) -> bool:
        return self.cadence > 0 and iteration % self.cadence == 0

    def audit(self, bm: Blockmodel, graph: Graph, iteration: int) -> bool:
        """Check blockmodel invariants; returns True when a heal occurred.

        Raises :class:`ConvergenceError` when the state is corrupt and
        either self-healing is disabled or the heal did not converge to
        a consistent state.
        """
        self.audits_run += 1
        try:
            bm.check_consistency(graph)
            return False
        except BlockmodelError as exc:
            diagnosis = self._diagnose(bm, graph)
            if not self.self_heal:
                raise ConvergenceError(
                    f"invariant audit failed at iteration {iteration}: {exc} "
                    f"({diagnosis})"
                ) from exc
            _log.warning(
                "audit at iteration %d found corrupt state (%s; %s); "
                "rebuilding B from the assignment",
                iteration, exc, diagnosis,
            )
        bm.rebuild(graph)
        try:
            bm.check_consistency(graph)
        except BlockmodelError as exc:
            raise ConvergenceError(
                f"invariant audit at iteration {iteration}: state still "
                f"inconsistent after rebuild ({exc}); assignment itself is "
                "damaged — aborting instead of continuing on garbage"
            ) from exc
        self.heals += 1
        return True

    def guard_mdl(
        self, mdl: float, bm: Blockmodel, graph: Graph, iteration: int
    ) -> float:
        """Return a finite MDL or raise a diagnosed ConvergenceError.

        A non-finite MDL triggers one ``rebuild()`` + recompute attempt
        (healing e.g. a corrupted B cell that sent ``x log x`` to NaN);
        if the recomputed value is still non-finite the run aborts with
        a diagnosis instead of letting NaN poison the search anchors.
        """
        if math.isfinite(mdl):
            return mdl
        _log.warning(
            "non-finite MDL %r at iteration %d; attempting rebuild self-heal",
            mdl, iteration,
        )
        bm.rebuild(graph)
        healed = bm.mdl(graph)
        if math.isfinite(healed):
            self.heals += 1
            return healed
        raise ConvergenceError(
            f"non-finite MDL ({mdl!r}) at iteration {iteration} survived a "
            f"rebuild (recomputed {healed!r}); {self._diagnose(bm, graph)}"
        )

    @staticmethod
    def _diagnose(bm: Blockmodel, graph: Graph) -> str:
        """One-line description of *what* is wrong, for the error message."""
        problems: list[str] = []
        if (bm.B < 0).any():
            problems.append(f"{int((bm.B < 0).sum())} negative B cells")
        if int(bm.B.sum()) != graph.num_edges:
            problems.append(
                f"B sums to {int(bm.B.sum())} edges, graph has {graph.num_edges}"
            )
        if not np.array_equal(bm.B.sum(axis=1), bm.d_out):
            problems.append("d_out drifted from B row sums")
        if not np.array_equal(bm.B.sum(axis=0), bm.d_in):
            problems.append("d_in drifted from B column sums")
        amin = int(bm.assignment.min()) if bm.assignment.size else 0
        amax = int(bm.assignment.max()) if bm.assignment.size else 0
        if amin < 0 or amax >= bm.num_blocks:
            problems.append(
                f"assignment range [{amin}, {amax}] outside [0, {bm.num_blocks})"
            )
        return "; ".join(problems) if problems else "no structural anomaly found"
