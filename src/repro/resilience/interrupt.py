"""Cooperative interruption: SIGINT and wall-clock deadlines.

The drivers poll a :class:`StopGuard` between sweeps and between
agglomerative iterations. A first Ctrl-C (or an expired time budget)
flips the guard, letting the driver finish the current sweep, write its
final checkpoint and return a best-so-far result flagged
``interrupted=True``; a second Ctrl-C falls through to the ordinary
``KeyboardInterrupt`` for users who really mean *now*.
"""

from __future__ import annotations

import signal
import threading
import time
from contextlib import contextmanager
from typing import Iterator

from repro.utils.log import get_logger

__all__ = ["StopGuard"]

_log = get_logger("resilience.interrupt")


class StopGuard:
    """Latch that turns SIGINT / a deadline into a polled stop request."""

    def __init__(self, time_budget: float | None = None) -> None:
        self._stopped = False
        self.reason: str | None = None
        self._deadline = (
            time.monotonic() + time_budget if time_budget is not None else None
        )

    @property
    def triggered(self) -> bool:
        if self._stopped:
            return True
        if self._deadline is not None and time.monotonic() >= self._deadline:
            self.trigger("time budget exhausted")
        return self._stopped

    def trigger(self, reason: str = "stop requested") -> None:
        if not self._stopped:
            self._stopped = True
            self.reason = reason
            _log.info("stopping run gracefully: %s", reason)

    @contextmanager
    def install(self) -> Iterator["StopGuard"]:
        """Route SIGINT into :meth:`trigger` for the duration of a run.

        Signal handlers can only be set from the main thread; from
        worker threads the guard still honours the deadline and manual
        triggers, it just cannot intercept Ctrl-C.
        """
        if threading.current_thread() is not threading.main_thread():
            yield self
            return
        previous = signal.getsignal(signal.SIGINT)

        def _handle(signum: int, frame: object) -> None:
            if self._stopped:
                # Second Ctrl-C: stop being graceful.
                signal.signal(signal.SIGINT, previous)
                raise KeyboardInterrupt
            self.trigger("SIGINT received (press again to abort immediately)")

        try:
            signal.signal(signal.SIGINT, _handle)
        except ValueError:  # non-main interpreter contexts
            yield self
            return
        try:
            yield self
        finally:
            signal.signal(signal.SIGINT, previous)
