"""Exception hierarchy for the :mod:`repro` package.

All library errors derive from :class:`ReproError` so callers can catch a
single base class at API boundaries.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphFormatError",
    "GraphValidationError",
    "GeneratorError",
    "BlockmodelError",
    "ConvergenceError",
    "BackendError",
    "TransportError",
    "FrameError",
    "ChannelTimeout",
    "ShardLost",
    "ExperimentError",
    "SerializationError",
    "CheckpointError",
    "FaultInjected",
    "ServiceError",
    "UnknownJobError",
    "LeaseError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphFormatError(ReproError):
    """Raised when parsing a graph file fails (bad syntax, bad header)."""


class GraphValidationError(ReproError):
    """Raised when graph inputs violate an invariant (e.g. negative ids)."""


class GeneratorError(ReproError):
    """Raised when a synthetic graph generator receives unusable parameters."""


class BlockmodelError(ReproError):
    """Raised when blockmodel state is inconsistent or misused."""


class ConvergenceError(ReproError):
    """Raised when an inference driver cannot make progress at all."""


class BackendError(ReproError):
    """Raised when a parallel execution backend fails or is unavailable."""


class TransportError(BackendError):
    """Raised by the distributed wire layer (transports and channels).

    Subclasses :class:`BackendError` so transport failures flow through
    the same retry/fallback machinery as compute-backend failures.
    """


class FrameError(TransportError):
    """Raised when a wire frame fails structural or checksum validation.

    A frame that raises this is *quarantined* by the reliable comm layer
    (counted, never applied) and recovered via retransmission.
    """


class ChannelTimeout(TransportError):
    """Raised when a reliable channel exhausts its retry budget.

    This is the wire-level symptom of a dead or wedged shard: the shard
    supervisor maps it to the configured ``shard_loss_policy``.
    """


class ShardLost(BackendError):
    """Raised when a shard dies mid-run and the policy is ``fail``.

    Under ``recover`` the dead shard's vertices are re-leased to the
    survivors instead; under ``degrade`` the run continues and returns a
    best-so-far result flagged ``interrupted=True``.
    """


class ExperimentError(ReproError):
    """Raised by the benchmark harness for misconfigured experiments."""


class SerializationError(ReproError):
    """Raised when loading a corrupt, truncated or unsupported artifact.

    The message always names the offending path so batch tooling can
    report which file of a run directory is damaged.
    """


class CheckpointError(SerializationError):
    """Raised when a run checkpoint is unusable (corrupt snapshot set,
    or a snapshot written by an incompatible configuration)."""


class FaultInjected(BackendError):
    """Raised by the fault-injection harness (tests only).

    Subclasses :class:`BackendError` so injected worker crashes flow
    through the same retry/fallback paths as real backend failures.
    """


class ServiceError(ReproError):
    """Raised by the partition service layer (job engine, queue, server)."""


class UnknownJobError(ServiceError):
    """Raised when a job id is not present in the queue or store."""


class LeaseError(ServiceError):
    """Raised on an invalid lease operation: heartbeating or completing a
    job whose lease expired and was re-issued to another worker, or
    leasing in a state that forbids it."""
