"""Exception hierarchy for the :mod:`repro` package.

All library errors derive from :class:`ReproError` so callers can catch a
single base class at API boundaries.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphFormatError",
    "GraphValidationError",
    "GeneratorError",
    "BlockmodelError",
    "ConvergenceError",
    "BackendError",
    "ExperimentError",
    "SerializationError",
    "CheckpointError",
    "FaultInjected",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphFormatError(ReproError):
    """Raised when parsing a graph file fails (bad syntax, bad header)."""


class GraphValidationError(ReproError):
    """Raised when graph inputs violate an invariant (e.g. negative ids)."""


class GeneratorError(ReproError):
    """Raised when a synthetic graph generator receives unusable parameters."""


class BlockmodelError(ReproError):
    """Raised when blockmodel state is inconsistent or misused."""


class ConvergenceError(ReproError):
    """Raised when an inference driver cannot make progress at all."""


class BackendError(ReproError):
    """Raised when a parallel execution backend fails or is unavailable."""


class ExperimentError(ReproError):
    """Raised by the benchmark harness for misconfigured experiments."""


class SerializationError(ReproError):
    """Raised when loading a corrupt, truncated or unsupported artifact.

    The message always names the offending path so batch tooling can
    report which file of a run directory is damaged.
    """


class CheckpointError(SerializationError):
    """Raised when a run checkpoint is unusable (corrupt snapshot set,
    or a snapshot written by an incompatible configuration)."""


class FaultInjected(BackendError):
    """Raised by the fault-injection harness (tests only).

    Subclasses :class:`BackendError` so injected worker crashes flow
    through the same retry/fallback paths as real backend failures.
    """
