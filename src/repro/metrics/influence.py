"""Total influence (paper Eq. 3) and the degree heuristic behind H-SBP.

De Sa et al. showed asynchronous Gibbs mixes rapidly when the total
influence ``alpha < 1``. The paper finds the exact computation
intractable for community detection (O(V^2 C^3) naively, §2.3) and
instead motivates H-SBP with the heuristic that *high-degree vertices
are the most influential*. This module provides

* :func:`pair_influence_matrix` — a faithful (small-graph-only, local)
  evaluation of the Eq. 3 kernel at a given state: ``M[i, j]`` is the
  total-variation shift of vertex i's conditional community distribution
  when vertex j is moved to its most perturbing alternative community;
* :func:`total_influence` — Eq. 3's ``alpha = max_i sum_j M[i, j]``;
* :func:`exerted_influence` — the column aggregation
  ``sum_i M[i, j]``: how much moving j disturbs everyone else, which is
  the quantity the degree heuristic approximates;
* :func:`degree_influence_scores` / :func:`influence_degree_correlation`
  — the heuristic and its empirical validation (influence ablation bench).

Conditionals are the Gibbs distributions induced by the MDL objective:
``P(b_i = c | rest) ~ exp(-beta * MDL(assignment with b_i = c))``.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph
from repro.sbm.blockmodel import Blockmodel
from repro.sbm.delta import vertex_move_context, vertex_move_delta
from repro.types import Assignment, FloatArray

__all__ = [
    "conditional_distribution",
    "pair_influence_matrix",
    "total_influence",
    "exerted_influence",
    "degree_influence_scores",
    "influence_degree_correlation",
]

_MAX_VERTICES = 200  # guardrail: the kernel is O(V^2 C^2 * cost) per state


def conditional_distribution(
    bm: Blockmodel, graph: Graph, v: int, beta: float = 1.0
) -> FloatArray:
    """Gibbs conditional of vertex ``v``'s community given all others.

    Computed from the per-candidate delta-MDL: the softmax of
    ``-beta * dS(v -> c)`` over all C candidate communities.
    """
    ctx = vertex_move_context(bm, graph, v)
    deltas = np.array(
        [vertex_move_delta(bm, ctx, c) for c in range(bm.num_blocks)],
        dtype=np.float64,
    )
    logits = -beta * deltas
    logits -= logits.max()
    probs = np.exp(logits)
    return probs / probs.sum()


def pair_influence_matrix(
    graph: Graph, assignment: Assignment, beta: float = 1.0
) -> FloatArray:
    """``M[i, j]``: max-over-moves TV shift of i's conditional when j moves.

    This is the *local* influence at one state — the paper notes the
    exact sup over all state pairs of Eq. 3 is computationally
    infeasible, which the guardrail here makes tangible. Diagonal
    entries are zero by convention.
    """
    if graph.num_vertices > _MAX_VERTICES:
        raise ValueError(
            f"pair_influence_matrix is O(V^2 C^2); refusing V={graph.num_vertices} "
            f"(max {_MAX_VERTICES}). Use degree_influence_scores instead."
        )
    bm = Blockmodel.from_assignment(graph, np.asarray(assignment, dtype=np.int64))
    bm.compact()
    V = graph.num_vertices
    C = bm.num_blocks

    base = np.stack(
        [conditional_distribution(bm, graph, i, beta) for i in range(V)]
    )
    M = np.zeros((V, V), dtype=np.float64)
    for j in range(V):
        r_j = int(bm.assignment[j])
        ctx_j = vertex_move_context(bm, graph, j)
        for c in range(C):
            if c == r_j:
                continue
            perturbed = bm.copy()
            perturbed.apply_move(
                j, c, ctx_j.t_out, ctx_j.c_out, ctx_j.t_in, ctx_j.c_in,
                ctx_j.loops, ctx_j.deg_out, ctx_j.deg_in,
            )
            for i in range(V):
                if i == j:
                    continue
                cond = conditional_distribution(perturbed, graph, i, beta)
                tv = 0.5 * float(np.abs(cond - base[i]).sum())
                if tv > M[i, j]:
                    M[i, j] = tv
    return M


def total_influence(
    graph: Graph,
    assignment: Assignment,
    beta: float = 1.0,
    per_vertex: bool = False,
) -> float | FloatArray:
    """Eq. 3's total influence ``alpha = max_i sum_j M[i, j]`` at a state.

    With ``per_vertex=True`` returns the row sums (how susceptible each
    vertex is to the rest of the graph) instead of their max.
    """
    M = pair_influence_matrix(graph, assignment, beta)
    received = M.sum(axis=1)
    if per_vertex:
        return received
    return float(received.max(initial=0.0))


def exerted_influence(
    graph: Graph, assignment: Assignment, beta: float = 1.0
) -> FloatArray:
    """Per-vertex exerted influence ``sum_i M[i, j]``.

    This is the quantity H-SBP's degree heuristic targets: vertices
    whose move would disturb many other conditionals should be processed
    serially.
    """
    M = pair_influence_matrix(graph, assignment, beta)
    return M.sum(axis=0)


def degree_influence_scores(graph: Graph) -> FloatArray:
    """The H-SBP heuristic: vertex influence proxied by total degree.

    Normalized to [0, 1]. Justified by Kao et al.'s finding that an
    edge's community information content scales with the product of its
    endpoint degrees (paper §3.2).
    """
    degree = graph.degree.astype(np.float64)
    top = degree.max(initial=0.0)
    if top == 0.0:
        return np.zeros_like(degree)
    return degree / top


def influence_degree_correlation(
    graph: Graph, assignment: Assignment, beta: float = 1.0
) -> float:
    """Spearman rank correlation between *exerted* influence and degree.

    The empirical check of the paper's §3.2 assumption; > 0 means
    high-degree vertices do exert more influence on the rest of the
    chain.
    """
    from scipy import stats

    influence = exerted_influence(graph, assignment, beta=beta)
    degree = graph.degree.astype(np.float64)
    if np.allclose(influence, influence[0]) or np.allclose(degree, degree[0]):
        return 0.0
    rho = stats.spearmanr(degree, influence).statistic
    return float(rho)
