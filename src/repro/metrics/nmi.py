"""Normalized mutual information between two community labelings.

The paper (§4.2) scores synthetic graphs with known ground truth via
``NMI = I(X, Y) / norm(H(X), H(Y))``. Several normalizations are in use
in the community-detection literature; ``max`` is the default here, and
``min``/``sqrt``/``mean`` are provided for comparability with other
toolkits (sklearn's historical default is ``sqrt``).
"""

from __future__ import annotations

import numpy as np

from repro.types import Assignment

__all__ = [
    "contingency_table",
    "entropy",
    "mutual_information",
    "normalized_mutual_information",
]


def contingency_table(x: Assignment, y: Assignment) -> np.ndarray:
    """Joint count matrix N[a, b] = |{i : x_i = a and y_i = b}|.

    Labels are densified internally, so arbitrary non-negative label
    values are accepted.
    """
    x = np.asarray(x)
    y = np.asarray(y)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError(f"label vectors must be 1-D and equal length, got {x.shape} vs {y.shape}")
    _, xi = np.unique(x, return_inverse=True)
    _, yi = np.unique(y, return_inverse=True)
    table = np.zeros((xi.max() + 1, yi.max() + 1), dtype=np.int64)
    np.add.at(table, (xi, yi), 1)
    return table


def entropy(labels: Assignment) -> float:
    """Shannon entropy (nats) of a labeling's empirical distribution."""
    labels = np.asarray(labels)
    if labels.size == 0:
        return 0.0
    counts = np.unique(labels, return_counts=True)[1].astype(np.float64)
    p = counts / counts.sum()
    return float(-(p * np.log(p)).sum())


def mutual_information(x: Assignment, y: Assignment) -> float:
    """Mutual information I(X; Y) in nats."""
    table = contingency_table(x, y).astype(np.float64)
    n = table.sum()
    if n == 0:
        return 0.0
    pxy = table / n
    px = pxy.sum(axis=1, keepdims=True)
    py = pxy.sum(axis=0, keepdims=True)
    mask = pxy > 0
    ratio = np.ones_like(pxy)
    np.divide(pxy, px * py, out=ratio, where=mask)
    terms = np.zeros_like(pxy)
    np.multiply(pxy, np.log(ratio, where=mask, out=np.zeros_like(pxy)), where=mask, out=terms)
    # MI is mathematically >= 0; clip the float residue.
    return max(0.0, float(terms.sum()))


def normalized_mutual_information(
    x: Assignment, y: Assignment, norm: str = "max"
) -> float:
    """NMI in [0, 1]; ``norm`` is one of 'max', 'min', 'sqrt', 'mean'.

    Degenerate cases follow the usual conventions: two constant
    labelings are identical (1.0); one constant labeling carries no
    information about a varying one (0.0).
    """
    hx = entropy(x)
    hy = entropy(y)
    if hx == 0.0 and hy == 0.0:
        return 1.0
    if norm == "max":
        denom = max(hx, hy)
    elif norm == "min":
        denom = min(hx, hy)
    elif norm == "sqrt":
        denom = float(np.sqrt(hx * hy))
    elif norm == "mean":
        denom = 0.5 * (hx + hy)
    else:
        raise ValueError(f"unknown norm {norm!r}; use max/min/sqrt/mean")
    if denom == 0.0:
        return 0.0
    value = mutual_information(x, y) / denom
    return float(min(1.0, max(0.0, value)))
