"""Adjusted Rand index — a permutation-invariant partition similarity.

Complements NMI for scoring against ground truth: ARI is chance-adjusted
(expected value 0 for independent labelings, 1 for identical partitions)
and is the other standard score in the community-detection literature.
Computed from the contingency table in O(|X| * |Y|).
"""

from __future__ import annotations

import numpy as np

from repro.metrics.nmi import contingency_table
from repro.types import Assignment

__all__ = ["adjusted_rand_index"]


def _comb2(x: np.ndarray) -> np.ndarray:
    """Elementwise n-choose-2 as float."""
    x = x.astype(np.float64)
    return x * (x - 1.0) / 2.0


def adjusted_rand_index(x: Assignment, y: Assignment) -> float:
    """ARI between two labelings of the same vertex set.

    Follows Hubert & Arabie:
    ``(index - expected) / (max_index - expected)``. Degenerate cases:
    two identical single-cluster (or all-singleton) labelings score 1.0.
    """
    table = contingency_table(x, y)
    n = table.sum()
    if n < 2:
        return 1.0
    sum_cells = _comb2(table).sum()
    sum_rows = _comb2(table.sum(axis=1)).sum()
    sum_cols = _comb2(table.sum(axis=0)).sum()
    total_pairs = float(n * (n - 1) / 2.0)
    expected = sum_rows * sum_cols / total_pairs
    max_index = 0.5 * (sum_rows + sum_cols)
    denom = max_index - expected
    if denom == 0.0:
        # both labelings are trivial (all-one-cluster or all-singletons):
        # identical by construction of the degenerate case.
        return 1.0
    return float((sum_cells - expected) / denom)
