"""Partition-level MDL metrics (convenience wrappers).

Normalized MDL is the paper's main quality score for graphs without
ground truth (§4.2): the fitted blockmodel's description length divided
by the description length of the structure-less null model (all vertices
in one community). Values near or above 1.0 mean no structure was found.
"""

from __future__ import annotations

from repro.graph.graph import Graph
from repro.sbm.blockmodel import Blockmodel
from repro.sbm.entropy import normalized_description_length
from repro.types import Assignment

__all__ = ["partition_mdl", "partition_normalized_mdl"]


def partition_mdl(graph: Graph, assignment: Assignment) -> float:
    """Full MDL (Eq. 2) of an arbitrary labeling of ``graph``."""
    bm = Blockmodel.from_assignment(graph, assignment)
    bm.compact()
    return bm.mdl(graph)


def partition_normalized_mdl(graph: Graph, assignment: Assignment) -> float:
    """The paper's MDL^norm = MDL / MDL_null for a labeling of ``graph``."""
    return normalized_description_length(
        partition_mdl(graph, assignment), graph.num_edges, graph.num_vertices
    )
