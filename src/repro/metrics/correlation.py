"""Linear correlation fits for the paper's Fig. 3 analysis.

Fig. 3 reports the r^2 and p-value of NMI against modularity (r^2 ~ 0.75)
and against normalized MDL (r^2 ~ 0.85) across all synthetic runs,
arguing that MDL^norm is the better unsupervised quality proxy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

__all__ = ["CorrelationFit", "fit_correlation"]


@dataclass(frozen=True)
class CorrelationFit:
    """Least-squares fit summary between two score vectors."""

    slope: float
    intercept: float
    r_squared: float
    p_value: float
    n: int

    def describe(self, label: str = "fit") -> str:
        return (
            f"{label}: r^2={self.r_squared:.2f}, p={self.p_value:.2g} "
            f"(n={self.n}, slope={self.slope:.3f})"
        )


def fit_correlation(x, y) -> CorrelationFit:
    """Least-squares linear fit of ``y`` on ``x`` with r^2 and p-value."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("x and y must be equal-length 1-D vectors")
    if x.size < 3:
        raise ValueError(f"need at least 3 points for a fit, got {x.size}")
    result = stats.linregress(x, y)
    return CorrelationFit(
        slope=float(result.slope),
        intercept=float(result.intercept),
        r_squared=float(result.rvalue) ** 2,
        p_value=float(result.pvalue),
        n=int(x.size),
    )
