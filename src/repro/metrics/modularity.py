"""Newman's modularity for directed multigraphs.

The paper reports modularity "for the sake of completeness" on the
real-world graphs (Fig. 5b), while cautioning that it correlates with
NMI less strongly than normalized MDL (Fig. 3). The directed form is

    Q = sum_c [ E_cc / E  -  (d_out_c / E) * (d_in_c / E) ]

where E_cc counts intra-community edges.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph
from repro.sbm.blockmodel import Blockmodel
from repro.types import Assignment

__all__ = ["directed_modularity"]


def directed_modularity(graph: Graph, assignment: Assignment) -> float:
    """Directed Newman modularity of ``assignment`` on ``graph``."""
    assignment = np.asarray(assignment, dtype=np.int64)
    if assignment.shape != (graph.num_vertices,):
        raise ValueError(
            f"assignment must have shape ({graph.num_vertices},), got {assignment.shape}"
        )
    E = graph.num_edges
    if E == 0:
        return 0.0
    bm = Blockmodel.from_assignment(graph, assignment)
    intra = bm.state.diagonal().astype(np.float64)
    d_out = bm.d_out.astype(np.float64)
    d_in = bm.d_in.astype(np.float64)
    return float((intra / E - (d_out / E) * (d_in / E)).sum())
