"""Evaluation metrics: NMI, modularity, normalized MDL, influence."""

from repro.metrics.nmi import (
    contingency_table,
    entropy,
    mutual_information,
    normalized_mutual_information,
)
from repro.metrics.modularity import directed_modularity
from repro.metrics.mdl_metrics import partition_mdl, partition_normalized_mdl
from repro.metrics.influence import (
    pair_influence_matrix,
    total_influence,
    exerted_influence,
    degree_influence_scores,
    influence_degree_correlation,
)
from repro.metrics.correlation import CorrelationFit, fit_correlation
from repro.metrics.ari import adjusted_rand_index
from repro.metrics.alignment import (
    PartitionAlignment,
    align_partitions,
    PartitionStability,
    consecutive_stability,
)

__all__ = [
    "contingency_table",
    "entropy",
    "mutual_information",
    "normalized_mutual_information",
    "directed_modularity",
    "partition_mdl",
    "partition_normalized_mdl",
    "pair_influence_matrix",
    "total_influence",
    "exerted_influence",
    "degree_influence_scores",
    "influence_degree_correlation",
    "adjusted_rand_index",
    "PartitionAlignment",
    "align_partitions",
    "PartitionStability",
    "consecutive_stability",
    "CorrelationFit",
    "fit_correlation",
]
