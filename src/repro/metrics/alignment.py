"""Optimal label alignment between two partitions (Hungarian matching).

NMI and ARI are permutation-invariant scores; when one instead needs the
partitions *aligned* — to report per-community precision/recall, to
visualize confusion, or to track communities across runs — the label
correspondence maximizing overlap is the linear assignment problem on
the contingency table, solved exactly with scipy's Hungarian
implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.metrics.nmi import contingency_table
from repro.types import Assignment, IntArray

__all__ = ["PartitionAlignment", "align_partitions"]


@dataclass(frozen=True)
class PartitionAlignment:
    """Result of aligning ``predicted`` onto ``reference`` labels."""

    relabeled: Assignment          #: predicted labels rewritten into reference ids
    mapping: dict[int, int]        #: predicted label -> reference label
    overlap: int                   #: vertices agreeing after alignment
    accuracy: float                #: overlap / n
    confusion: IntArray            #: contingency table (reference x predicted)


def align_partitions(
    reference: Assignment, predicted: Assignment
) -> PartitionAlignment:
    """Relabel ``predicted`` to maximize agreement with ``reference``.

    Labels of ``predicted`` with no matched reference community (when it
    has more communities than the reference) keep fresh ids appended
    after the reference's label range.
    """
    from scipy.optimize import linear_sum_assignment

    reference = np.asarray(reference, dtype=np.int64)
    predicted = np.asarray(predicted, dtype=np.int64)
    if reference.shape != predicted.shape:
        raise ValueError(
            f"label vectors must have equal shape, got {reference.shape} "
            f"vs {predicted.shape}"
        )
    table = contingency_table(reference, predicted)
    ref_ids = np.unique(reference)
    pred_ids = np.unique(predicted)

    # maximize overlap == minimize negative counts
    row_idx, col_idx = linear_sum_assignment(-table)
    mapping: dict[int, int] = {}
    for r, c in zip(row_idx, col_idx):
        mapping[int(pred_ids[c])] = int(ref_ids[r])
    # unmatched predicted labels get fresh ids beyond the reference range
    next_fresh = int(ref_ids.max()) + 1 if ref_ids.size else 0
    for label in pred_ids:
        if int(label) not in mapping:
            mapping[int(label)] = next_fresh
            next_fresh += 1

    relabeled = np.asarray([mapping[int(x)] for x in predicted], dtype=np.int64)
    overlap = int((relabeled == reference).sum())
    return PartitionAlignment(
        relabeled=relabeled,
        mapping=mapping,
        overlap=overlap,
        accuracy=overlap / reference.shape[0] if reference.size else 1.0,
        confusion=table,
    )
