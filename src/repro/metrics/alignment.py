"""Optimal label alignment between two partitions (Hungarian matching).

NMI and ARI are permutation-invariant scores; when one instead needs the
partitions *aligned* — to report per-community precision/recall, to
visualize confusion, or to track communities across runs — the label
correspondence maximizing overlap is the linear assignment problem on
the contingency table, solved exactly with scipy's Hungarian
implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.metrics.nmi import contingency_table
from repro.types import Assignment, IntArray

__all__ = [
    "PartitionAlignment",
    "align_partitions",
    "PartitionStability",
    "consecutive_stability",
]


@dataclass(frozen=True)
class PartitionAlignment:
    """Result of aligning ``predicted`` onto ``reference`` labels."""

    relabeled: Assignment          #: predicted labels rewritten into reference ids
    mapping: dict[int, int]        #: predicted label -> reference label
    overlap: int                   #: vertices agreeing after alignment
    accuracy: float                #: overlap / n
    confusion: IntArray            #: contingency table (reference x predicted)


def align_partitions(
    reference: Assignment, predicted: Assignment
) -> PartitionAlignment:
    """Relabel ``predicted`` to maximize agreement with ``reference``.

    Labels of ``predicted`` with no matched reference community (when it
    has more communities than the reference) keep fresh ids appended
    after the reference's label range.
    """
    from scipy.optimize import linear_sum_assignment

    reference = np.asarray(reference, dtype=np.int64)
    predicted = np.asarray(predicted, dtype=np.int64)
    if reference.shape != predicted.shape:
        raise ValueError(
            f"label vectors must have equal shape, got {reference.shape} "
            f"vs {predicted.shape}"
        )
    table = contingency_table(reference, predicted)
    ref_ids = np.unique(reference)
    pred_ids = np.unique(predicted)

    # maximize overlap == minimize negative counts
    row_idx, col_idx = linear_sum_assignment(-table)
    mapping: dict[int, int] = {}
    for r, c in zip(row_idx, col_idx):
        mapping[int(pred_ids[c])] = int(ref_ids[r])
    # unmatched predicted labels get fresh ids beyond the reference range
    next_fresh = int(ref_ids.max()) + 1 if ref_ids.size else 0
    for label in pred_ids:
        if int(label) not in mapping:
            mapping[int(label)] = next_fresh
            next_fresh += 1

    relabeled = np.asarray([mapping[int(x)] for x in predicted], dtype=np.int64)
    overlap = int((relabeled == reference).sum())
    return PartitionAlignment(
        relabeled=relabeled,
        mapping=mapping,
        overlap=overlap,
        accuracy=overlap / reference.shape[0] if reference.size else 1.0,
        confusion=table,
    )


@dataclass(frozen=True)
class PartitionStability:
    """Consecutive-snapshot stability of a streaming partition."""

    nmi: float          #: permutation-invariant agreement in [0, 1]
    accuracy: float     #: agreement after Hungarian alignment
    num_compared: int   #: vertices present in both snapshots


def consecutive_stability(
    previous: Assignment, current: Assignment
) -> PartitionStability:
    """Stability of ``current`` against the previous snapshot's partition.

    Streams only grow the vertex set, so the comparison runs over the
    common prefix (the vertices both snapshots label); newborn vertices
    are excluded — they have no previous label to be stable against.
    """
    from repro.metrics.nmi import normalized_mutual_information

    previous = np.asarray(previous, dtype=np.int64)
    current = np.asarray(current, dtype=np.int64)
    n = min(previous.shape[0], current.shape[0])
    if n == 0:
        return PartitionStability(nmi=1.0, accuracy=1.0, num_compared=0)
    prev_common = previous[:n]
    curr_common = current[:n]
    aligned = align_partitions(prev_common, curr_common)
    return PartitionStability(
        nmi=normalized_mutual_information(prev_common, curr_common),
        accuracy=aligned.accuracy,
        num_compared=n,
    )
