"""MCMC phase stopping rule (the ``until dMDL < t x MDL or x times`` loop).

All three algorithm variants share the same convergence test (paper
Algs. 2-4): a phase ends when the magnitude of the MDL change, averaged
over a short window of sweeps, falls below ``threshold`` times the
current MDL — or after ``max_sweeps`` sweeps. The windowed average
(GraphChallenge lineage uses 3 sweeps) filters the sweep-to-sweep noise
that asynchronous updates introduce.
"""

from __future__ import annotations

from collections import deque

__all__ = ["ConvergenceMonitor"]


class ConvergenceMonitor:
    """Tracks MDL across sweeps and decides when a phase is converged.

    Parameters
    ----------
    threshold:
        The paper's ``t``: relative MDL-change tolerance.
    max_sweeps:
        The paper's ``x``: hard sweep cap per phase.
    window:
        Number of most recent sweeps whose |dMDL| is averaged.
    """

    def __init__(self, threshold: float, max_sweeps: int, window: int = 3) -> None:
        if threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        if max_sweeps < 1:
            raise ValueError(f"max_sweeps must be >= 1, got {max_sweeps}")
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self.threshold = threshold
        self.max_sweeps = max_sweeps
        self.window = window
        self._deltas: deque[float] = deque(maxlen=window)
        self._last_mdl: float | None = None
        self.sweeps = 0

    def start(self, mdl: float) -> None:
        """Record the MDL before the first sweep of the phase."""
        self._last_mdl = mdl
        self._deltas.clear()
        self.sweeps = 0

    def update(self, mdl: float) -> bool:
        """Record a sweep's resulting MDL; returns True when converged."""
        if self._last_mdl is None:
            raise RuntimeError("ConvergenceMonitor.update() before start()")
        self._deltas.append(mdl - self._last_mdl)
        self._last_mdl = mdl
        self.sweeps += 1
        if self.sweeps >= self.max_sweeps:
            return True
        if len(self._deltas) < self.window:
            return False
        avg_delta = sum(abs(d) for d in self._deltas) / len(self._deltas)
        return avg_delta < self.threshold * abs(mdl)

    @property
    def last_mdl(self) -> float:
        if self._last_mdl is None:
            raise RuntimeError("monitor not started")
        return self._last_mdl
