"""MCMC kernels: serial Metropolis-Hastings, asynchronous Gibbs, hybrid.

These implement the paper's Algorithms 2 (SBP), 3 (A-SBP) and 4 (H-SBP)
MCMC phases. Parallel execution backends are injected (duck-typed) so
this package never depends on :mod:`repro.parallel`.
"""

from repro.mcmc.evaluate import VertexDecision, evaluate_vertex
from repro.mcmc.metropolis import metropolis_sweep
from repro.mcmc.async_gibbs import async_gibbs_sweep
from repro.mcmc.batched import batched_gibbs_sweep
from repro.mcmc.hybrid import hybrid_sweep, split_vertices_by_degree
from repro.mcmc.convergence import ConvergenceMonitor

__all__ = [
    "VertexDecision",
    "evaluate_vertex",
    "metropolis_sweep",
    "async_gibbs_sweep",
    "batched_gibbs_sweep",
    "hybrid_sweep",
    "split_vertices_by_degree",
    "ConvergenceMonitor",
]
