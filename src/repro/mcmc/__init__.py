"""MCMC kernels and the declarative sweep-plan engine.

``metropolis_sweep`` and ``async_gibbs_sweep`` implement the two
primitive segment modes (serial in-place vs frozen-parallel); the
:mod:`~repro.mcmc.engine` composes them into the paper's Algorithms 2
(SBP), 3 (A-SBP) and 4 (H-SBP) — plus batched and tiered schedules —
as registered :class:`~repro.mcmc.engine.SweepPlan` builders. Parallel
execution backends are injected (duck-typed).
"""

from repro.mcmc.async_gibbs import async_gibbs_sweep
from repro.mcmc.convergence import ConvergenceMonitor
from repro.mcmc.engine import (
    AllVertices,
    DegreeBand,
    DegreeTop,
    SegmentMode,
    SweepEngine,
    SweepPlan,
    SweepSegment,
    VariantSpec,
    available_variants,
    build_plan,
    get_variant_spec,
    register_variant,
    split_vertices_by_degree,
)
from repro.mcmc.evaluate import VertexDecision, evaluate_vertex
from repro.mcmc.metropolis import metropolis_sweep

__all__ = [
    "VertexDecision",
    "evaluate_vertex",
    "metropolis_sweep",
    "async_gibbs_sweep",
    "split_vertices_by_degree",
    "ConvergenceMonitor",
    "SegmentMode",
    "AllVertices",
    "DegreeTop",
    "DegreeBand",
    "SweepSegment",
    "SweepPlan",
    "SweepEngine",
    "VariantSpec",
    "register_variant",
    "get_variant_spec",
    "available_variants",
    "build_plan",
]
