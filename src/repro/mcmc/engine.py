"""Declarative sweep-plan engine — one executor for every MCMC variant.

The paper's three algorithms (Algs. 2-4) differ *only* in how a sweep is
scheduled: which vertices move in-place serially (fully fresh state) and
which are evaluated against a frozen blockmodel and reconciled at a
barrier. This module makes that difference a piece of **data** instead
of a fork in control flow:

* a :class:`SweepPlan` is an ordered list of :class:`SweepSegment`\\ s,
  each declaring ``(vertex selector, mode, batches)``;
* a single :class:`SweepEngine` executes any plan — owning randomness
  derivation, the :class:`~repro.parallel.backend.SweepUpdater` barrier,
  timer accounting, stop-guard polling and per-sweep
  :class:`~repro.types.SweepStats` merging;
* the variants are registered :class:`VariantSpec` plan builders:
  ``sbp`` = one serial segment over all vertices, ``a-sbp`` = one frozen
  segment, ``b-sbp`` = one frozen segment split into ``num_batches``
  barriers, ``h-sbp`` = serial(V*) + frozen(V−), and ``tiered`` = the
  paper's §6 multi-tier direction (serial top, frozen-batched middle,
  frozen tail). New variants need only :func:`register_variant` — no
  engine or driver edits.

Randomness-tag compatibility
----------------------------
Bit-identical trajectories against the pre-engine sweep functions hinge
on reproducing their Philox streams exactly. The contract:

=========  =======================  ===========================================
mode       stream tag               uniform-table length
=========  =======================  ===========================================
serial     ``iter*4 + 1``           total vertices over *all* serial segments
frozen     ``iter*4 + 2``           total vertices over *all* frozen segments
=========  =======================  ===========================================

One table is drawn per mode per sweep and sliced across that mode's
segments in plan order; batches within a frozen segment slice further.
This reproduces the legacy streams for all four variants: SBP/A-SBP draw
one full-length table, B-SBP shares the A-SBP table across its batches,
and H-SBP draws a ``len(V*)`` serial table plus a ``len(V−)`` frozen
one. Segments that select no vertices are skipped entirely — they draw
no uniforms and pay no barrier — which is what makes the H-SBP boundary
cases degenerate exactly (``vstar_fraction=0`` ≡ A-SBP; ``=1`` ≡ SBP,
see :func:`_hsbp_plan`).
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Callable, Iterator, Protocol

import numpy as np

from repro.errors import ReproError
from repro.mcmc.async_gibbs import async_gibbs_sweep
from repro.mcmc.convergence import ConvergenceMonitor
from repro.mcmc.metropolis import metropolis_sweep
from repro.parallel.partitioner import contiguous_chunks
from repro.types import IntArray, SweepStats
from repro.utils.rng import SweepRandomness

if TYPE_CHECKING:  # annotation-only; keeps runtime imports cycle-free
    from repro.core.variants import SBPConfig
    from repro.graph.graph import Graph

__all__ = [
    "TAG_STRIDE",
    "KIND_SERIAL",
    "KIND_FROZEN",
    "SegmentMode",
    "VertexSelector",
    "AllVertices",
    "DegreeTop",
    "DegreeBand",
    "split_vertices_by_degree",
    "SweepSegment",
    "SweepPlan",
    "SweepEngine",
    "VariantSpec",
    "register_variant",
    "get_variant_spec",
    "available_variants",
    "build_plan",
]

#: RNG phase-tag layout (moved verbatim from the pre-engine driver):
#: each (outer iteration, mode kind) pair gets its own Philox stream.
TAG_STRIDE = 4
KIND_SERIAL = 1
KIND_FROZEN = 2


class SegmentMode(Enum):
    """How a segment's vertices are processed within a sweep."""

    #: One-at-a-time Metropolis-Hastings; every accepted move updates the
    #: blockmodel in place (Alg. 2 semantics — inherently sequential).
    SERIAL_INPLACE = "serial"
    #: All vertices evaluated against the state frozen at batch start;
    #: accepted moves reconciled at a barrier (Alg. 3 semantics —
    #: embarrassingly parallel evaluation).
    FROZEN_PARALLEL = "frozen"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


_MODE_KIND = {SegmentMode.SERIAL_INPLACE: KIND_SERIAL,
              SegmentMode.FROZEN_PARALLEL: KIND_FROZEN}


# ----------------------------------------------------------------------
# Vertex selectors
# ----------------------------------------------------------------------
class VertexSelector(Protocol):
    """Declarative 'which vertices' half of a segment.

    ``select`` must be a pure function of the graph — deterministic and
    free of mutable state — so a plan resolved twice yields the same
    chain.
    """

    def select(self, graph: Graph) -> IntArray: ...

    def describe(self) -> str: ...


def split_vertices_by_degree(
    graph: Graph, fraction: float
) -> tuple[IntArray, IntArray]:
    """Partition vertices into (V*, V-) by total degree.

    ``V*`` holds the ``ceil(fraction * V)`` highest-degree vertices (the
    paper reserves 15%), sorted by descending degree with vertex id as a
    deterministic tie-break; ``V-`` holds the rest in ascending id order.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must lie in [0, 1], got {fraction}")
    num_vertices = graph.num_vertices
    count = int(np.ceil(fraction * num_vertices))
    if count == 0:
        return (
            np.empty(0, dtype=np.int64),
            np.arange(num_vertices, dtype=np.int64),
        )
    # argsort on (-degree, id): stable sort on ids is implicit since
    # np.argsort(kind="stable") preserves index order within ties.
    order = np.argsort(-graph.degree, kind="stable")
    vstar = order[:count].astype(np.int64)
    vminus = np.setdiff1d(
        np.arange(num_vertices, dtype=np.int64), vstar, assume_unique=True
    )
    return vstar, vminus


def degree_descending_batches(
    graph: Graph, vertices: IntArray, num_batches: int
) -> list[IntArray]:
    """Split ``vertices`` into contiguous degree-descending batches.

    This is the batching contract of the sampling extension pass
    (:mod:`repro.sampling.extension`): batches are barrier segments, so
    every batch scores against counts frozen at the previous barrier and
    later batches see earlier assignments. Ordering is (descending
    degree, input order) — pass ascending ids for an id tie-break —
    split by :func:`repro.parallel.partitioner.contiguous_chunks`.

    Isolated-vertex guarantee: the batches *partition* the input.
    Degree-0 vertices sort to the tail (the last, cheapest barriers) but
    are never dropped — the same contract the degree selectors above
    honour via their ceil-based rank boundaries. Verified explicitly
    here because a silently dropped vertex would surface much later as
    an unassigned ``-1`` in the extended partition.
    """
    if num_batches < 1:
        raise ReproError(f"num_batches must be >= 1, got {num_batches}")
    vertices = np.asarray(vertices, dtype=np.int64)
    order = vertices[np.argsort(-graph.degree[vertices], kind="stable")]
    batches = [
        order[start:stop]
        for start, stop in contiguous_chunks(order.shape[0], num_batches)
    ]
    if sum(b.shape[0] for b in batches) != vertices.shape[0]:
        raise ReproError("degree batches must partition the vertex set")
    return batches


@dataclass(frozen=True)
class AllVertices:
    """Every vertex, in ascending id order (the Alg. 2/3 traversal)."""

    def select(self, graph: Graph) -> IntArray:
        return np.arange(graph.num_vertices, dtype=np.int64)

    def describe(self) -> str:
        return "all vertices"


@dataclass(frozen=True)
class DegreeTop:
    """The top ``ceil(fraction * V)`` vertices by degree, most-influential
    first (descending degree, id tie-break) — H-SBP's V* traversal."""

    fraction: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ValueError(
                f"fraction must lie in [0, 1], got {self.fraction}"
            )

    def select(self, graph: Graph) -> IntArray:
        return split_vertices_by_degree(graph, self.fraction)[0]

    def describe(self) -> str:
        return f"top {self.fraction:.1%} by degree"


@dataclass(frozen=True)
class DegreeBand:
    """Vertices whose degree rank lies in ``[low, high)`` (as fractions
    of V), returned in ascending id order.

    ``DegreeBand(f, 1.0)`` is exactly H-SBP's V− (the complement of the
    top-``f`` set, ascending ids); intermediate bands express the tiered
    plans of the paper's §6.
    """

    low: float
    high: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.low <= self.high <= 1.0:
            raise ValueError(
                f"need 0 <= low <= high <= 1, got [{self.low}, {self.high})"
            )

    def select(self, graph: Graph) -> IntArray:
        num_vertices = graph.num_vertices
        lo = int(np.ceil(self.low * num_vertices))
        hi = int(np.ceil(self.high * num_vertices))
        if lo >= hi:
            return np.empty(0, dtype=np.int64)
        order = np.argsort(-graph.degree, kind="stable")
        return np.sort(order[lo:hi]).astype(np.int64)

    def describe(self) -> str:
        return f"degree ranks {self.low:.1%}..{self.high:.1%}"


# ----------------------------------------------------------------------
# Plans
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepSegment:
    """One scheduling unit of a sweep: which vertices, processed how.

    ``batches`` (frozen mode only) splits the segment into that many
    contiguous barriers per sweep — staleness drops to ``1/batches`` of
    the segment at the cost of proportionally more reconciliations
    (B-SBP's trade, paper §6).
    """

    selector: VertexSelector
    mode: SegmentMode
    batches: int = 1

    def __post_init__(self) -> None:
        if self.batches < 1:
            raise ValueError(f"batches must be >= 1, got {self.batches}")
        if self.mode is SegmentMode.SERIAL_INPLACE and self.batches != 1:
            raise ValueError(
                "serial segments apply moves in place; batches would not "
                f"change the chain (got batches={self.batches})"
            )

    @property
    def kind(self) -> int:
        """The RNG stream kind this segment draws from."""
        return _MODE_KIND[self.mode]

    def describe(self) -> str:
        suffix = f" x{self.batches} batches" if self.batches > 1 else ""
        return f"{self.mode.value}[{self.selector.describe()}]{suffix}"


@dataclass(frozen=True)
class SweepPlan:
    """An ordered tuple of segments; one full pass = one MCMC sweep."""

    segments: tuple[SweepSegment, ...]
    name: str = ""

    def __post_init__(self) -> None:
        if not self.segments:
            raise ValueError("a SweepPlan needs at least one segment")

    @property
    def barriers_per_sweep(self) -> int:
        """Synchronization barriers one sweep pays (frozen batches)."""
        return sum(
            s.batches for s in self.segments
            if s.mode is SegmentMode.FROZEN_PARALLEL
        )

    def describe(self) -> str:
        label = f"{self.name}: " if self.name else ""
        return label + " -> ".join(s.describe() for s in self.segments)


@dataclass(frozen=True)
class _BoundSegment:
    """A segment resolved against a concrete graph."""

    vertices: IntArray
    mode: SegmentMode
    batches: int

    @property
    def kind(self) -> int:
        return _MODE_KIND[self.mode]


# ----------------------------------------------------------------------
# Engine
# ----------------------------------------------------------------------
class _StatsAccumulator:
    """Merges per-segment stats into one per-sweep :class:`SweepStats`.

    ``work_per_vertex`` keeps the legacy meaning of "per-vertex work of
    the *parallel* portion" (what the simulated thread executor models):
    frozen-segment vectors are concatenated in plan order; serial
    vectors are only reported when the plan has no frozen work at all
    (pure-serial SBP, whose vector the recorder has always kept).
    """

    def __init__(self) -> None:
        self._stats = SweepStats()
        self._serial_parts: list[np.ndarray] = []
        self._frozen_parts: list[np.ndarray] = []

    def add(self, stats: SweepStats, mode: SegmentMode) -> None:
        merged = self._stats
        merged.proposals += stats.proposals
        merged.accepted += stats.accepted
        merged.serial_work += stats.serial_work
        merged.parallel_work += stats.parallel_work
        merged.barrier_moved += stats.barrier_moved
        if stats.work_per_vertex is not None:
            if mode is SegmentMode.SERIAL_INPLACE:
                self._serial_parts.append(stats.work_per_vertex)
            else:
                self._frozen_parts.append(stats.work_per_vertex)

    def result(self) -> SweepStats:
        parts = self._frozen_parts or self._serial_parts
        if parts:
            self._stats.work_per_vertex = (
                parts[0] if len(parts) == 1 else np.concatenate(parts)
            )
        return self._stats


class SweepEngine:
    """Executes any :class:`SweepPlan` to convergence.

    The engine owns everything the four hand-written sweep drivers used
    to thread separately: per-(iteration, mode, sweep) randomness
    derivation, the shared :class:`~repro.parallel.backend.SweepUpdater`
    barrier engine, ``mcmc``/``rebuild`` timer accounting (barrier time
    accrued inside a sweep is excluded from the ``mcmc`` bucket), stop
    polling between sweeps, and stats merging.

    Parameters
    ----------
    plan:
        The sweep schedule to execute.
    config:
        Chain parameters (seed, beta, max_sweeps, record_work, ...).
    backend:
        :class:`~repro.parallel.backend.ExecutionBackend` for frozen
        evaluation stages.
    timers:
        :class:`~repro.utils.timer.StopwatchPool` accruing the ``mcmc``
        and ``rebuild`` buckets.
    updater:
        Sweep-barrier engine; defaults to the one named by
        ``config.update_strategy``.
    on_sweep:
        Optional callback ``(sweep_index, stats, mdl)`` invoked after
        every sweep — diagnostics/tracing hook, must not mutate state.
    """

    def __init__(
        self,
        plan: SweepPlan,
        config: SBPConfig,
        backend,
        timers,
        updater=None,
        on_sweep: Callable[[int, SweepStats, float], None] | None = None,
    ) -> None:
        self.plan = plan
        self.config = config
        self.backend = backend
        self.timers = timers
        self.mcmc_timer = timers.timer("mcmc")
        self.rebuild_timer = timers.timer("rebuild")
        if updater is None:
            from repro.parallel.backend import get_update_strategy

            updater = get_update_strategy(config.update_strategy, timers=timers)
        self.updater = updater
        self.on_sweep = on_sweep

    # -- plan resolution ------------------------------------------------
    def bind(self, graph: Graph) -> list[_BoundSegment]:
        """Resolve the plan's selectors against ``graph``.

        Empty segments are dropped here: they would draw no uniforms and
        move no vertices, but skipping them also skips their barrier,
        which is what makes degenerate plans (e.g. H-SBP at the fraction
        boundaries) collapse onto their simpler equivalents exactly.
        """
        bound = []
        for segment in self.plan.segments:
            vertices = np.asarray(segment.selector.select(graph), dtype=np.int64)
            if vertices.size == 0:
                continue
            bound.append(
                _BoundSegment(
                    vertices=vertices, mode=segment.mode, batches=segment.batches
                )
            )
        return bound

    # -- timer accounting ----------------------------------------------
    @contextmanager
    def _mcmc_exclusive(self) -> Iterator[None]:
        """Accrue the enclosed block to ``mcmc``, minus nested barrier time.

        Frozen-segment barriers accrue to the ``rebuild`` timer *while
        the sweep runs*; whatever landed there during the block is
        backed out of the ``mcmc`` bucket so the two phases stay
        disjoint (previously a post-hoc subtraction hack in the driver).
        """
        rebuild_before = self.rebuild_timer.elapsed
        self.mcmc_timer.start()
        try:
            yield
        finally:
            self.mcmc_timer.stop()
            overlap = self.rebuild_timer.elapsed - rebuild_before
            if overlap > 0.0:
                self.mcmc_timer.elapsed -= overlap

    # -- execution ------------------------------------------------------
    def run_sweep(
        self,
        bm,
        graph: Graph,
        bound: list[_BoundSegment],
        iteration: int,
        sweep: int,
    ) -> SweepStats:
        """Execute one full pass over the bound plan, mutating ``bm``."""
        config = self.config
        totals = {KIND_SERIAL: 0, KIND_FROZEN: 0}
        for segment in bound:
            totals[segment.kind] += len(segment.vertices)
        tables = {
            kind: SweepRandomness.draw(
                config.seed, iteration * TAG_STRIDE + kind, sweep, total
            )
            for kind, total in totals.items()
            if total > 0
        }
        cursor = {KIND_SERIAL: 0, KIND_FROZEN: 0}
        merged = _StatsAccumulator()
        for segment in bound:
            start = cursor[segment.kind]
            stop = start + len(segment.vertices)
            cursor[segment.kind] = stop
            rand = SweepRandomness(
                uniforms=tables[segment.kind].uniforms[start:stop]
            )
            if segment.mode is SegmentMode.SERIAL_INPLACE:
                stats = metropolis_sweep(
                    bm, graph, segment.vertices, rand, config.beta,
                    record_work=config.record_work, updater=self.updater,
                )
            else:
                stats = self._run_frozen(bm, graph, segment, rand)
            merged.add(stats, segment.mode)
        return merged.result()

    def _run_frozen(
        self, bm, graph: Graph, segment: _BoundSegment, rand: SweepRandomness
    ) -> SweepStats:
        """Frozen-parallel executor: ``batches`` evaluate+barrier rounds.

        The randomness table is shared across batches — row ``i`` always
        drives the ``i``-th vertex of the segment, so ``batches`` only
        changes *when* state refreshes, never which uniforms pair with
        which vertex.
        """
        config = self.config
        total = SweepStats()
        work_parts: list[np.ndarray] = []
        for start, stop in contiguous_chunks(len(segment.vertices), segment.batches):
            batch_rand = SweepRandomness(uniforms=rand.uniforms[start:stop])
            stats = async_gibbs_sweep(
                bm, graph, segment.vertices[start:stop], batch_rand,
                config.beta, self.backend,
                record_work=config.record_work,
                rebuild_timer=self.rebuild_timer, updater=self.updater,
            )
            total.proposals += stats.proposals
            total.accepted += stats.accepted
            total.parallel_work += stats.parallel_work
            total.barrier_moved += stats.barrier_moved
            if config.record_work and stats.work_per_vertex is not None:
                work_parts.append(stats.work_per_vertex)
        if work_parts:
            total.work_per_vertex = (
                work_parts[0] if len(work_parts) == 1
                else np.concatenate(work_parts)
            )
        return total

    def run_phase(
        self,
        bm,
        graph: Graph,
        iteration: int,
        threshold: float,
        stop=None,
    ) -> list[SweepStats]:
        """Run the plan to convergence, mutating ``bm``.

        The shared loop of Algs. 2-4: sweep until the windowed |dMDL|
        falls below ``threshold * MDL`` or ``config.max_sweeps`` is
        reached. When ``stop`` triggers (SIGINT / time budget) the phase
        returns early *between* sweeps, leaving ``bm`` in a valid
        post-sweep state.
        """
        monitor = ConvergenceMonitor(threshold, self.config.max_sweeps)
        with self.mcmc_timer.measure():
            monitor.start(bm.mdl(graph))
        bound = self.bind(graph)
        stats_log: list[SweepStats] = []
        sweep = 0
        while True:
            if stop is not None and stop.triggered:
                break
            with self._mcmc_exclusive():
                stats = self.run_sweep(bm, graph, bound, iteration, sweep)
                mdl = bm.mdl(graph)
            stats.delta_mdl = mdl - monitor.last_mdl
            stats.b_nnz = bm.state.nnz
            stats.b_density = bm.state.density
            stats_log.append(
                stats if self.config.record_work else stats.without_work()
            )
            if self.on_sweep is not None:
                self.on_sweep(sweep, stats_log[-1], mdl)
            sweep += 1
            if monitor.update(mdl):
                break
        if self.config.validate:
            bm.check_consistency(graph)
        return stats_log


# ----------------------------------------------------------------------
# Variant registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class VariantSpec:
    """A named, registered recipe turning a config into a sweep plan."""

    name: str
    summary: str
    build_plan: Callable[[SBPConfig], SweepPlan]


_VARIANT_REGISTRY: dict[str, VariantSpec] = {}


def register_variant(spec: VariantSpec) -> None:
    """Register a variant; its name becomes a valid ``SBPConfig.variant``."""
    if spec.name in _VARIANT_REGISTRY:
        raise ReproError(f"variant {spec.name!r} already registered")
    _VARIANT_REGISTRY[spec.name] = spec


def get_variant_spec(name: str) -> VariantSpec:
    spec = _VARIANT_REGISTRY.get(str(name))
    if spec is None:
        raise ReproError(
            f"unknown variant {name!r}; registered: {available_variants()}"
        )
    return spec


def available_variants() -> list[str]:
    return sorted(_VARIANT_REGISTRY)


def build_plan(config: SBPConfig) -> SweepPlan:
    """Build the sweep plan for ``config``'s registered variant."""
    return get_variant_spec(str(config.variant)).build_plan(config)


def _sbp_plan(config: SBPConfig) -> SweepPlan:
    return SweepPlan(
        (SweepSegment(AllVertices(), SegmentMode.SERIAL_INPLACE),), name="sbp"
    )


def _asbp_plan(config: SBPConfig) -> SweepPlan:
    return SweepPlan(
        (SweepSegment(AllVertices(), SegmentMode.FROZEN_PARALLEL),), name="a-sbp"
    )


def _bsbp_plan(config: SBPConfig) -> SweepPlan:
    return SweepPlan(
        (
            SweepSegment(
                AllVertices(), SegmentMode.FROZEN_PARALLEL,
                batches=config.num_batches,
            ),
        ),
        name="b-sbp",
    )


def _hsbp_plan(config: SBPConfig) -> SweepPlan:
    """Serial V* pass, then frozen V− pass (paper Alg. 4).

    The boundaries degenerate *by construction*: at ``vstar_fraction=0``
    the serial segment selects nothing and is skipped, leaving exactly
    the A-SBP plan; at ``1.0`` the whole graph is the serial segment and
    the plan must equal SBP's — including SBP's ascending-id traversal
    and uniform pairing, which the historical descending-degree V* order
    silently broke (the pre-engine hybrid at fraction 1.0 walked
    vertices in degree order, so it was *not* bit-identical to SBP).
    """
    fraction = config.vstar_fraction
    if fraction >= 1.0:
        return SweepPlan(
            (SweepSegment(AllVertices(), SegmentMode.SERIAL_INPLACE),),
            name="h-sbp",
        )
    return SweepPlan(
        (
            SweepSegment(DegreeTop(fraction), SegmentMode.SERIAL_INPLACE),
            SweepSegment(DegreeBand(fraction, 1.0), SegmentMode.FROZEN_PARALLEL),
        ),
        name="h-sbp",
    )


def _tiered_plan(config: SBPConfig) -> SweepPlan:
    """Three-tier hybrid (paper §6): serial top, batched middle, frozen tail.

    The top ``vstar_fraction`` of vertices by degree move serially
    against fresh state; the middle band up to ``tier_split`` is frozen
    but re-synchronized every ``num_batches`` barriers (B-SBP-style
    reduced staleness for the moderately influential vertices); the
    low-degree tail is one fully parallel frozen pass. Expressible only
    as a plan — no pre-engine sweep function composed all three modes.
    """
    f1 = config.vstar_fraction
    f2 = max(f1, config.tier_split)
    return SweepPlan(
        (
            SweepSegment(DegreeTop(f1), SegmentMode.SERIAL_INPLACE),
            SweepSegment(
                DegreeBand(f1, f2), SegmentMode.FROZEN_PARALLEL,
                batches=config.num_batches,
            ),
            SweepSegment(DegreeBand(f2, 1.0), SegmentMode.FROZEN_PARALLEL),
        ),
        name="tiered",
    )


register_variant(VariantSpec(
    name="sbp",
    summary="serial Metropolis-Hastings, fully fresh state (Alg. 2)",
    build_plan=_sbp_plan,
))
register_variant(VariantSpec(
    name="a-sbp",
    summary="asynchronous Gibbs, one frozen pass + one barrier (Alg. 3)",
    build_plan=_asbp_plan,
))
register_variant(VariantSpec(
    name="b-sbp",
    summary="batched async Gibbs, num_batches barriers per sweep (§6)",
    build_plan=_bsbp_plan,
))
register_variant(VariantSpec(
    name="h-sbp",
    summary="hybrid: serial top-degree V*, frozen V- (Alg. 4)",
    build_plan=_hsbp_plan,
))
register_variant(VariantSpec(
    name="tiered",
    summary="three-tier hybrid: serial top, batched middle, frozen tail (§6)",
    build_plan=_tiered_plan,
))
