"""Single-vertex proposal evaluation — the shared inner kernel.

Every variant (serial MH, async Gibbs, hybrid) evaluates a vertex the
same way: build the neighbour-block context, propose a block, compute
the delta-MDL and Hastings correction, and draw the accept decision. The
variants differ only in *which state* the evaluation reads (live vs
frozen) and *when* accepted moves are applied.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.graph import Graph
from repro.sbm.blockmodel import Blockmodel
from repro.sbm.delta import (
    VertexMoveContext,
    hastings_correction,
    vertex_move_context,
    vertex_move_delta,
)
from repro.sbm.moves import accept_probability, propose_vertex_move

__all__ = ["VertexDecision", "evaluate_vertex"]


@dataclass
class VertexDecision:
    """Outcome of evaluating one vertex proposal."""

    v: int
    source: int
    target: int
    accepted: bool
    delta_s: float
    context: VertexMoveContext | None

    @property
    def is_move(self) -> bool:
        return self.accepted and self.target != self.source


def evaluate_vertex(
    bm: Blockmodel,
    graph: Graph,
    v: int,
    uniforms: np.ndarray,
    beta: float,
    cache=None,
) -> VertexDecision:
    """Propose and (virtually) accept/reject a move for vertex ``v``.

    Reads but never mutates ``bm``; callers decide whether/when to apply
    the move. ``uniforms`` is the 5-uniform row reserved for ``v`` this
    sweep. ``cache`` is an optional
    :class:`~repro.sbm.incremental.ProposalCache` of symmetrized-row
    CDFs the proposal step may read instead of re-materializing the
    dense row; the caller owns its invalidation.
    """
    ctx = vertex_move_context(bm, graph, v)
    s = propose_vertex_move(bm, graph, v, uniforms, cache=cache)
    if s == ctx.r:
        return VertexDecision(
            v=v, source=ctx.r, target=s, accepted=False, delta_s=0.0, context=ctx
        )
    delta_s = vertex_move_delta(bm, ctx, s)
    hastings = hastings_correction(bm, ctx, s)
    p = accept_probability(delta_s, hastings, beta)
    accepted = bool(uniforms[4] < p)
    return VertexDecision(
        v=v, source=ctx.r, target=s, accepted=accepted, delta_s=delta_s, context=ctx
    )
