"""Batched asynchronous Gibbs — the paper's §6 future-work variant.

The conclusion suggests that "speeding up the graph reconstruction phase
would also make batched A-SBP possible, which could potentially provide
similar benefits to H-SBP without the need for synchronous processing."

B-SBP implements that idea: each sweep splits the vertices into
``num_batches`` contiguous batches; every batch is evaluated in parallel
against the state frozen at *batch* start, and the blockmodel is rebuilt
after each batch. Staleness drops from one full sweep (A-SBP) to
``1/num_batches`` of a sweep, at the cost of proportionally more rebuild
barriers — and unlike H-SBP, every evaluation remains parallel.
``num_batches = 1`` degenerates to A-SBP exactly.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph
from repro.mcmc.async_gibbs import async_gibbs_sweep
from repro.parallel.partitioner import contiguous_chunks
from repro.sbm.blockmodel import Blockmodel
from repro.types import IntArray, SweepStats
from repro.utils.rng import SweepRandomness

__all__ = ["batched_gibbs_sweep"]


def batched_gibbs_sweep(
    bm: Blockmodel,
    graph: Graph,
    vertices: IntArray,
    randomness: SweepRandomness,
    beta: float,
    backend,
    num_batches: int,
    record_work: bool = False,
    rebuild_timer=None,
    updater=None,
) -> SweepStats:
    """Run one batched asynchronous-Gibbs pass over ``vertices``.

    The randomness table is shared with the plain async sweep: row ``i``
    still belongs to the ``i``-th vertex of the sweep, so ``num_batches``
    only changes *when* state is refreshed, not which uniforms drive
    which vertex. ``updater`` is forwarded to every per-batch barrier —
    B-SBP pays ``num_batches`` barriers per sweep, so it benefits the
    most from the ``incremental`` engine's O(Σ deg(moved)) cost.
    """
    if num_batches < 1:
        raise ValueError(f"num_batches must be >= 1, got {num_batches}")
    if len(randomness) < len(vertices):
        raise ValueError(
            f"randomness table has {len(randomness)} rows for {len(vertices)} vertices"
        )

    total = SweepStats()
    work_parts: list[np.ndarray] = []
    for start, stop in contiguous_chunks(len(vertices), num_batches):
        batch_rand = SweepRandomness(uniforms=randomness.uniforms[start:stop])
        stats = async_gibbs_sweep(
            bm,
            graph,
            vertices[start:stop],
            batch_rand,
            beta,
            backend,
            record_work=record_work,
            rebuild_timer=rebuild_timer,
            updater=updater,
        )
        total.proposals += stats.proposals
        total.accepted += stats.accepted
        total.parallel_work += stats.parallel_work
        total.barrier_moved += stats.barrier_moved
        if record_work and stats.work_per_vertex is not None:
            work_parts.append(stats.work_per_vertex)
    if record_work and work_parts:
        total.work_per_vertex = np.concatenate(work_parts)
    return total
