"""Hybrid sweep — the MCMC phase of H-SBP (paper Alg. 4).

The paper's key insight (§3.2): high-degree vertices are the most
influential for community detection, and under power-law degree
distributions there are few of them. H-SBP therefore

1. processes the top-``fraction`` of vertices by degree (``V*``) with a
   serial in-place Metropolis-Hastings pass, giving the influential
   vertices a chance to switch first against fully fresh state, then
2. processes the remaining vertices (``V-``) with the parallel
   asynchronous-Gibbs pass against the state left by step 1, and
3. rebuilds the blockmodel from the combined membership vector.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph
from repro.mcmc.async_gibbs import async_gibbs_sweep
from repro.mcmc.metropolis import metropolis_sweep
from repro.sbm.blockmodel import Blockmodel
from repro.types import IntArray, SweepStats
from repro.utils.rng import SweepRandomness

__all__ = ["split_vertices_by_degree", "hybrid_sweep"]


def split_vertices_by_degree(
    graph: Graph, fraction: float
) -> tuple[IntArray, IntArray]:
    """Partition vertices into (V*, V-) by total degree.

    ``V*`` holds the ``ceil(fraction * V)`` highest-degree vertices (the
    paper reserves 15%), sorted by descending degree with vertex id as a
    deterministic tie-break; ``V-`` holds the rest in ascending id order.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must lie in [0, 1], got {fraction}")
    num_vertices = graph.num_vertices
    count = int(np.ceil(fraction * num_vertices))
    if count == 0:
        return (
            np.empty(0, dtype=np.int64),
            np.arange(num_vertices, dtype=np.int64),
        )
    # argsort on (-degree, id): stable sort on ids is implicit since
    # np.argsort(kind="stable") preserves index order within ties.
    order = np.argsort(-graph.degree, kind="stable")
    vstar = order[:count].astype(np.int64)
    vminus = np.setdiff1d(
        np.arange(num_vertices, dtype=np.int64), vstar, assume_unique=True
    )
    return vstar, vminus


def hybrid_sweep(
    bm: Blockmodel,
    graph: Graph,
    vstar: IntArray,
    vminus: IntArray,
    randomness_serial: SweepRandomness,
    randomness_async: SweepRandomness,
    beta: float,
    backend,
    record_work: bool = False,
    rebuild_timer=None,
    updater=None,
) -> SweepStats:
    """Run one hybrid H-SBP sweep, mutating ``bm``.

    Returns combined statistics; ``serial_work`` covers the V* pass and
    ``parallel_work`` the V- pass, which is what the simulated thread
    executor needs to model Amdahl behaviour (Fig. 7). ``updater`` feeds
    both halves: the serial V* pass uses its proposal cache, the async
    V- pass its barrier reconciliation.
    """
    serial_stats = metropolis_sweep(
        bm, graph, vstar, randomness_serial, beta, record_work=record_work,
        updater=updater,
    )
    async_stats = async_gibbs_sweep(
        bm, graph, vminus, randomness_async, beta, backend,
        record_work=record_work, rebuild_timer=rebuild_timer, updater=updater,
    )
    work = None
    if record_work:
        work = async_stats.work_per_vertex
    return SweepStats(
        proposals=serial_stats.proposals + async_stats.proposals,
        accepted=serial_stats.accepted + async_stats.accepted,
        serial_work=serial_stats.serial_work,
        parallel_work=async_stats.parallel_work,
        barrier_moved=async_stats.barrier_moved,
        work_per_vertex=work,
    )
