"""Serial Metropolis-Hastings sweep — the MCMC phase of classic SBP.

Paper Alg. 2: vertices are visited one at a time; every accepted move
updates the blockmodel *in place*, so each subsequent proposal sees the
fully up-to-date state. This is the inherently serial chain the paper
sets out to parallelize.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph
from repro.mcmc.evaluate import evaluate_vertex
from repro.sbm.blockmodel import Blockmodel
from repro.types import IntArray, SweepStats
from repro.utils.rng import SweepRandomness

__all__ = ["metropolis_sweep"]


def metropolis_sweep(
    bm: Blockmodel,
    graph: Graph,
    vertices: IntArray,
    randomness: SweepRandomness,
    beta: float,
    record_work: bool = False,
    updater=None,
) -> SweepStats:
    """Run one serial MH pass over ``vertices``, mutating ``bm``.

    Returns sweep statistics; ``delta_mdl`` is left at 0 here (the phase
    driver tracks full MDL between sweeps, which also captures the model
    complexity terms).

    ``updater``, when given, is a
    :class:`~repro.parallel.backend.SweepUpdater` consulted for a
    per-sweep :class:`~repro.sbm.incremental.ProposalCache` (the
    ``incremental`` engine provides one, ``rebuild`` does not). The
    cache memoizes the O(C) symmetrized proposal rows; every applied
    move invalidates exactly the blocks whose row changed
    (``{r, s} ∪ t_out ∪ t_in``), so decisions stay bit-identical to the
    uncached scan. There is no barrier here — moves apply in place — so
    ``updater.apply_sweep`` is never called.
    """
    if len(randomness) < len(vertices):
        raise ValueError(
            f"randomness table has {len(randomness)} rows for {len(vertices)} vertices"
        )
    accepted = 0
    work = np.zeros(len(vertices), dtype=np.int64) if record_work else None
    uniforms = randomness.uniforms
    degree = graph.degree
    total_work = 0
    cache = updater.make_proposal_cache(bm) if updater is not None else None
    for i, v in enumerate(vertices):
        v = int(v)
        decision = evaluate_vertex(bm, graph, v, uniforms[i], beta, cache=cache)
        unit = int(degree[v]) + 1
        total_work += unit
        if work is not None:
            work[i] = unit
        if decision.is_move:
            ctx = decision.context
            assert ctx is not None
            bm.apply_move(
                v,
                decision.target,
                ctx.t_out,
                ctx.c_out,
                ctx.t_in,
                ctx.c_in,
                ctx.loops,
                ctx.deg_out,
                ctx.deg_in,
            )
            if cache is not None:
                cache.invalidate_move(ctx.r, decision.target, ctx.t_out, ctx.t_in)
            accepted += 1
    return SweepStats(
        proposals=len(vertices),
        accepted=accepted,
        serial_work=float(total_work),
        parallel_work=0.0,
        work_per_vertex=work,
    )
