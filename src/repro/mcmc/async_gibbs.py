"""Asynchronous-Gibbs sweep — the MCMC phase of A-SBP (paper Alg. 3).

All vertices are evaluated against a *frozen* snapshot of the blockmodel
(the "at most one iteration stale" distribution of §3.1). Accepted moves
are recorded in a membership vector only; the blockmodel is rebuilt once
at the end of the sweep. Because the evaluations are independent given
the frozen state, the evaluation stage is embarrassingly parallel — the
``backend`` argument decides how it is executed (serial loop, vectorized
batch, process pool, or simulated threads).
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph
from repro.sbm.blockmodel import Blockmodel
from repro.types import IntArray, SweepStats
from repro.utils.rng import SweepRandomness

__all__ = ["async_gibbs_sweep", "apply_frozen_barrier", "frozen_moves"]


def frozen_moves(
    bm: Blockmodel,
    vertices: IntArray,
    accepted: np.ndarray,
    targets: IntArray,
) -> tuple[IntArray, IntArray]:
    """Reduce frozen-state decisions to the moved set.

    Filters the accepted proposals down to vertices whose block actually
    changes — the delta the synchronization barrier must reconcile and
    the quantity ``barrier_moved`` counts. Shared by the engine's frozen
    segments and the distributed sweep (whose per-rank shards make the
    same reduction before the allgather).
    """
    moved = accepted & (targets != bm.assignment[vertices])
    return vertices[moved], targets[moved]


def apply_frozen_barrier(
    bm: Blockmodel,
    graph: Graph,
    moved_vertices: IntArray,
    moved_targets: IntArray,
    updater=None,
    rebuild_timer=None,
) -> None:
    """Reconcile ``bm`` with a frozen pass's moved set (the §3.1 barrier).

    ``updater``, when given, is a
    :class:`~repro.parallel.backend.SweepUpdater` (``rebuild`` = O(E)
    recount, ``incremental`` = O(Σ deg(moved)) delta-apply — both leave
    the blockmodel byte-equal). ``None`` keeps the legacy copy-and-
    rebuild barrier. ``rebuild_timer`` accrues the cost either way.
    """
    if updater is not None:
        if rebuild_timer is not None:
            with rebuild_timer.measure():
                updater.apply_sweep(bm, graph, moved_vertices, moved_targets)
        else:
            updater.apply_sweep(bm, graph, moved_vertices, moved_targets)
        return
    new_assignment = bm.assignment.copy()
    new_assignment[moved_vertices] = moved_targets
    if rebuild_timer is not None:
        with rebuild_timer.measure():
            bm.rebuild(graph, new_assignment)
    else:
        bm.rebuild(graph, new_assignment)


def async_gibbs_sweep(
    bm: Blockmodel,
    graph: Graph,
    vertices: IntArray,
    randomness: SweepRandomness,
    beta: float,
    backend,
    record_work: bool = False,
    rebuild_timer=None,
    updater=None,
) -> SweepStats:
    """Run one asynchronous-Gibbs pass over ``vertices``, mutating ``bm``.

    ``backend`` must provide
    ``evaluate_sweep(bm, graph, vertices, uniforms, beta) -> (accepted, targets)``
    where ``accepted`` is a boolean array and ``targets`` the proposed
    block per vertex. The frozen-state semantics hold because the
    evaluation stage completes — against the un-mutated ``bm`` — before
    any update touches the blockmodel; no defensive copy of the
    assignment vector is needed for that guarantee, so none is taken on
    the delta path (the legacy path's O(V) ``assignment.copy()`` existed
    only to feed ``rebuild`` a whole new membership vector).

    ``rebuild_timer``, when given, accrues the per-sweep blockmodel
    reconciliation cost (the A-SBP barrier the paper discusses in §3.1)
    to the umbrella ``rebuild`` bucket, whichever engine pays it.

    ``updater``, when given, is a
    :class:`~repro.parallel.backend.SweepUpdater` that reconciles the
    blockmodel with the moved set (``rebuild`` = O(E) recount,
    ``incremental`` = O(Σ deg(moved)) delta-apply, bit-identical by
    construction). ``None`` keeps the legacy copy-and-rebuild barrier.
    """
    if len(randomness) < len(vertices):
        raise ValueError(
            f"randomness table has {len(randomness)} rows for {len(vertices)} vertices"
        )
    uniforms = randomness.uniforms[: len(vertices)]
    accepted_mask, targets = backend.evaluate_sweep(bm, graph, vertices, uniforms, beta)

    moved_vertices, moved_targets = frozen_moves(bm, vertices, accepted_mask, targets)
    apply_frozen_barrier(
        bm, graph, moved_vertices, moved_targets,
        updater=updater, rebuild_timer=rebuild_timer,
    )

    work = None
    unit = graph.degree[vertices].astype(np.int64) + 1
    if record_work:
        work = unit
    return SweepStats(
        proposals=int(len(vertices)),
        accepted=int(len(moved_vertices)),
        serial_work=0.0,
        parallel_work=float(unit.sum()),
        barrier_moved=int(len(moved_vertices)),
        work_per_vertex=work,
    )
