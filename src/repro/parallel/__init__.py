"""Parallel execution backends for the asynchronous-Gibbs sweep.

The evaluation stage of an A-SBP sweep is embarrassingly parallel given
the frozen blockmodel (paper §3.1). This package provides
interchangeable executors for that stage:

* :class:`SerialBackend` — the reference per-vertex loop,
* :class:`VectorizedBackend` — whole-sweep numpy batch evaluation (the
  fast path on a single core; computationally identical to what OpenMP
  threads do in the authors' C++ implementation),
* :class:`ProcessPoolBackend` — fork-based shared-memory worker pool
  (lock-free reads of the frozen state, as in the paper's design),
* :mod:`repro.parallel.simulate` — a calibrated p-thread execution model
  used to reproduce the strong-scaling experiment (Fig. 7) without a
  128-core machine.

The block-merge phase (Alg. 1) has its own backend pair in
:mod:`repro.parallel.merge` — a serial candidate-scan oracle and a
vectorized batch kernel — selected via ``SBPConfig.merge_backend``.

All backends produce identical accept/reject decisions for a given seed
because the per-sweep randomness is pre-drawn in vertex order
(:mod:`repro.utils.rng`).
"""

from repro.parallel.backend import (
    ExecutionBackend,
    MergeBackend,
    available_backends,
    available_merge_backends,
    get_backend,
    get_merge_backend,
)
from repro.parallel.serial import SerialBackend
from repro.parallel.vectorized import VectorizedBackend
from repro.parallel.processpool import ProcessPoolBackend
from repro.parallel.merge import SerialMergeBackend, VectorizedMergeBackend
from repro.parallel.partitioner import contiguous_chunks, balanced_chunks
from repro.parallel.simulate import SimulatedThreadModel, simulate_sweep_seconds

__all__ = [
    "ExecutionBackend",
    "MergeBackend",
    "get_backend",
    "get_merge_backend",
    "available_backends",
    "available_merge_backends",
    "SerialBackend",
    "VectorizedBackend",
    "ProcessPoolBackend",
    "SerialMergeBackend",
    "VectorizedMergeBackend",
    "contiguous_chunks",
    "balanced_chunks",
    "SimulatedThreadModel",
    "simulate_sweep_seconds",
]
