"""Parallel execution backends for the asynchronous-Gibbs sweep.

The evaluation stage of an A-SBP sweep is embarrassingly parallel given
the frozen blockmodel (paper §3.1). This package provides
interchangeable executors for that stage:

* :class:`SerialBackend` — the reference per-vertex loop,
* :class:`VectorizedBackend` — whole-sweep numpy batch evaluation (the
  fast path on a single core; computationally identical to what OpenMP
  threads do in the authors' C++ implementation),
* :class:`ProcessPoolBackend` — fork-based shared-memory worker pool
  (lock-free reads of the frozen state, as in the paper's design),
* :mod:`repro.parallel.simulate` — a calibrated p-thread execution model
  used to reproduce the strong-scaling experiment (Fig. 7) without a
  128-core machine.

All backends produce identical accept/reject decisions for a given seed
because the per-sweep randomness is pre-drawn in vertex order
(:mod:`repro.utils.rng`).
"""

from repro.parallel.backend import ExecutionBackend, get_backend, available_backends
from repro.parallel.serial import SerialBackend
from repro.parallel.vectorized import VectorizedBackend
from repro.parallel.processpool import ProcessPoolBackend
from repro.parallel.partitioner import contiguous_chunks, balanced_chunks
from repro.parallel.simulate import SimulatedThreadModel, simulate_sweep_seconds

__all__ = [
    "ExecutionBackend",
    "get_backend",
    "available_backends",
    "SerialBackend",
    "VectorizedBackend",
    "ProcessPoolBackend",
    "contiguous_chunks",
    "balanced_chunks",
    "SimulatedThreadModel",
    "simulate_sweep_seconds",
]
