"""Reference backend: evaluate the sweep one vertex at a time.

This is the oracle every other backend is tested against, and also the
1-thread baseline the speedup figures divide by.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph
from repro.mcmc.evaluate import evaluate_vertex
from repro.parallel.backend import ExecutionBackend, register_backend
from repro.sbm.blockmodel import Blockmodel
from repro.types import IntArray

__all__ = ["SerialBackend"]


class SerialBackend(ExecutionBackend):
    """Per-vertex loop over the shared single-vertex evaluator."""

    name = "serial"

    def evaluate_sweep(
        self,
        bm: Blockmodel,
        graph: Graph,
        vertices: IntArray,
        uniforms: np.ndarray,
        beta: float,
    ) -> tuple[np.ndarray, IntArray]:
        count = len(vertices)
        accepted = np.zeros(count, dtype=bool)
        targets = np.empty(count, dtype=np.int64)
        for i in range(count):
            decision = evaluate_vertex(bm, graph, int(vertices[i]), uniforms[i], beta)
            accepted[i] = decision.accepted
            targets[i] = decision.target
        return accepted, targets


register_backend("serial", SerialBackend)
