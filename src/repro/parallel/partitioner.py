"""Work partitioning strategies for sweep execution and simulation.

OpenMP's default ``schedule(static)`` hands each thread one contiguous
range of iterations; with power-law degree distributions the induced
load imbalance is what makes the paper's strong-scaling curve (Fig. 7)
taper past 8-16 threads. We model exactly that here, plus a
weight-balanced alternative used for the load-balancing ablation the
paper calls "a non-trivial endeavor and out of the scope of this paper".
"""

from __future__ import annotations

import numpy as np

from repro.types import IntArray

__all__ = ["contiguous_chunks", "balanced_chunks", "chunk_loads"]


def contiguous_chunks(count: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(count)`` into ``parts`` contiguous (start, stop) spans.

    Matches OpenMP ``schedule(static)``: spans differ in size by at most
    one; empty spans are omitted.
    """
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    base = count // parts
    extra = count % parts
    chunks: list[tuple[int, int]] = []
    start = 0
    for i in range(parts):
        size = base + (1 if i < extra else 0)
        if size == 0:
            continue
        chunks.append((start, start + size))
        start += size
    return chunks


def balanced_chunks(weights: np.ndarray, parts: int) -> list[IntArray]:
    """Greedy longest-processing-time assignment of items to ``parts`` bins.

    Returns per-bin index arrays. Used by the load-balancing ablation:
    items sorted by descending weight, each assigned to the currently
    lightest bin.
    """
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    weights = np.asarray(weights, dtype=np.float64)
    order = np.argsort(-weights, kind="stable")
    loads = np.zeros(parts, dtype=np.float64)
    bins: list[list[int]] = [[] for _ in range(parts)]
    for idx in order:
        target = int(np.argmin(loads))
        bins[target].append(int(idx))
        loads[target] += weights[idx]
    return [np.asarray(b, dtype=np.int64) for b in bins]


def chunk_loads(weights: np.ndarray, parts: int, schedule: str = "static") -> np.ndarray:
    """Total weight per bin under the given schedule.

    ``schedule='static'`` uses contiguous spans, ``'balanced'`` the
    greedy LPT assignment. The max entry is the parallel-section makespan.
    """
    weights = np.asarray(weights, dtype=np.float64)
    if schedule == "static":
        loads = [
            float(weights[start:stop].sum())
            for start, stop in contiguous_chunks(weights.shape[0], parts)
        ]
        loads.extend([0.0] * (parts - len(loads)))
        return np.asarray(loads, dtype=np.float64)
    if schedule == "balanced":
        bins = balanced_chunks(weights, parts)
        return np.asarray([float(weights[b].sum()) for b in bins], dtype=np.float64)
    raise ValueError(f"unknown schedule {schedule!r}")
