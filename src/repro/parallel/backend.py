"""Backend protocol and registry."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Callable

from repro.errors import BackendError

if TYPE_CHECKING:  # annotation-only; keeps this module import-cycle-free
    import numpy as np

    from repro.graph.graph import Graph
    from repro.sbm.blockmodel import Blockmodel
    from repro.types import IntArray

__all__ = [
    "ExecutionBackend",
    "register_backend",
    "get_backend",
    "available_backends",
    "backend_registry",
    "MergeBackend",
    "register_merge_backend",
    "get_merge_backend",
    "available_merge_backends",
    "merge_backend_registry",
    "SweepUpdater",
    "register_update_strategy",
    "get_update_strategy",
    "available_update_strategies",
    "update_strategy_registry",
]


class ExecutionBackend(ABC):
    """Evaluates one asynchronous-Gibbs sweep against a frozen blockmodel.

    Implementations MUST NOT mutate ``bm`` or ``graph``; they return the
    per-vertex decisions and the caller applies them (Alg. 3's
    membership-vector update followed by the rebuild).
    """

    name: str = "abstract"

    @abstractmethod
    def evaluate_sweep(
        self,
        bm: Blockmodel,
        graph: Graph,
        vertices: IntArray,
        uniforms: np.ndarray,
        beta: float,
    ) -> tuple[np.ndarray, IntArray]:
        """Return ``(accepted, targets)`` arrays aligned with ``vertices``.

        ``accepted[i]`` is True when vertex ``vertices[i]`` should move
        to block ``targets[i]``; for rejected proposals ``targets[i]``
        is the proposed (unused) block.
        """

    def close(self) -> None:
        """Release resources (worker pools); idempotent."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


_REGISTRY: dict[str, Callable[..., ExecutionBackend]] = {}


def register_backend(name: str, factory: Callable[..., ExecutionBackend]) -> None:
    """Register a backend factory under ``name`` (used by plugins/tests)."""
    if name in _REGISTRY:
        raise BackendError(f"backend {name!r} already registered")
    _REGISTRY[name] = factory


def get_backend(name: str, **kwargs) -> ExecutionBackend:
    """Instantiate a backend by name: 'serial', 'vectorized', 'process',
    'resilient', ...

    A spec of the form ``wrapper:inner`` (e.g. ``resilient:process``)
    instantiates ``wrapper`` with the remainder passed as its ``inner``
    keyword, so wrapper backends compose from the CLI's single
    ``--backend`` string.
    """
    # Import side registers the built-ins lazily to avoid import cycles.
    from repro.distributed import runtime  # noqa: F401
    from repro.parallel import serial, vectorized, processpool  # noqa: F401
    from repro.resilience import resilient  # noqa: F401

    factory = _REGISTRY.get(name)
    if factory is None and ":" in name:
        base, _, inner = name.partition(":")
        wrapper = _REGISTRY.get(base)
        if wrapper is not None and inner:
            return wrapper(inner=inner, **kwargs)
    if factory is None:
        raise BackendError(
            f"unknown backend {name!r}; available: {sorted(_REGISTRY)}"
        )
    return factory(**kwargs)


def available_backends() -> list[str]:
    from repro.distributed import runtime  # noqa: F401
    from repro.parallel import serial, vectorized, processpool  # noqa: F401
    from repro.resilience import resilient  # noqa: F401

    return sorted(_REGISTRY)


def backend_registry() -> dict[str, Callable[..., ExecutionBackend]]:
    """Name → factory snapshot of the execution-backend registry."""
    available_backends()  # import side effect registers the built-ins
    return dict(_REGISTRY)


class MergeBackend(ABC):
    """Evaluates one block-merge phase's candidate scan (paper Alg. 1).

    The scan is embarrassingly parallel: every candidate merge is scored
    against the *frozen* blockmodel, so implementations only differ in
    how they batch the work. They MUST NOT mutate ``bm`` and MUST return
    decisions bit-identical to the serial oracle — the greedy apply step
    sorts on the returned deltas, so any rounding drift changes which
    merges happen.
    """

    name: str = "abstract"

    @abstractmethod
    def evaluate_merges(
        self, bm: Blockmodel, uniforms: np.ndarray
    ) -> tuple[np.ndarray, IntArray]:
        """Return ``(best_delta, best_target)`` arrays of shape ``(C,)``.

        ``uniforms`` is the ``(C, proposals, 4)`` Philox table; for each
        block ``r`` the lowest-delta candidate among its proposals is
        kept (first proposal wins ties, matching the serial strict-``<``
        scan).
        """


_MERGE_REGISTRY: dict[str, Callable[..., MergeBackend]] = {}


def register_merge_backend(name: str, factory: Callable[..., MergeBackend]) -> None:
    """Register a merge-phase backend factory under ``name``."""
    if name in _MERGE_REGISTRY:
        raise BackendError(f"merge backend {name!r} already registered")
    _MERGE_REGISTRY[name] = factory


def get_merge_backend(name: str, **kwargs) -> MergeBackend:
    """Instantiate a merge backend by name: 'serial' or 'vectorized'."""
    from repro.parallel import merge  # noqa: F401  (registers built-ins)

    factory = _MERGE_REGISTRY.get(name)
    if factory is None:
        raise BackendError(
            f"unknown merge backend {name!r}; available: {sorted(_MERGE_REGISTRY)}"
        )
    return factory(**kwargs)


def available_merge_backends() -> list[str]:
    from repro.parallel import merge  # noqa: F401

    return sorted(_MERGE_REGISTRY)


def merge_backend_registry() -> dict[str, Callable[..., MergeBackend]]:
    """Name → factory snapshot of the merge-backend registry."""
    available_merge_backends()
    return dict(_MERGE_REGISTRY)


class SweepUpdater(ABC):
    """Reconciles the blockmodel with a sweep's accepted moves.

    The per-sweep synchronization barrier of A-SBP/B-SBP/H-SBP (paper
    §3.1): after a frozen-state evaluation stage, the blockmodel must be
    brought back in sync with the moved vertices. Implementations MUST
    leave ``bm`` in exactly the state a full recount would produce —
    counts are integers, so "exactly" means byte-equal ``B`` and degree
    vectors, not approximately equal. The serial Metropolis path asks
    the updater for an optional :class:`~repro.sbm.incremental.
    ProposalCache` instead (no barrier — moves apply in place).
    """

    name: str = "abstract"

    @abstractmethod
    def apply_sweep(
        self,
        bm: Blockmodel,
        graph: Graph,
        moved_vertices: IntArray,
        moved_targets: IntArray,
    ) -> None:
        """Move ``moved_vertices[i]`` to ``moved_targets[i]``, all at once.

        ``moved_vertices`` must be unique vertex ids whose proposed block
        differs from their current one; the update covers ``B``, the
        degree vectors and the assignment.
        """

    def make_proposal_cache(self, bm: Blockmodel):
        """Per-sweep proposal-row cache for serial passes (None = uncached)."""
        return None


_UPDATE_REGISTRY: dict[str, Callable[..., SweepUpdater]] = {}


def register_update_strategy(name: str, factory: Callable[..., SweepUpdater]) -> None:
    """Register a sweep-update strategy factory under ``name``."""
    if name in _UPDATE_REGISTRY:
        raise BackendError(f"update strategy {name!r} already registered")
    _UPDATE_REGISTRY[name] = factory


def get_update_strategy(name: str, **kwargs) -> SweepUpdater:
    """Instantiate an update strategy by name: 'rebuild' or 'incremental'."""
    from repro.sbm import incremental  # noqa: F401  (registers built-ins)

    factory = _UPDATE_REGISTRY.get(name)
    if factory is None:
        raise BackendError(
            f"unknown update strategy {name!r}; "
            f"available: {sorted(_UPDATE_REGISTRY)}"
        )
    return factory(**kwargs)


def available_update_strategies() -> list[str]:
    from repro.sbm import incremental  # noqa: F401

    return sorted(_UPDATE_REGISTRY)


def update_strategy_registry() -> dict[str, Callable[..., SweepUpdater]]:
    """Name → factory snapshot of the update-strategy registry."""
    available_update_strategies()
    return dict(_UPDATE_REGISTRY)
