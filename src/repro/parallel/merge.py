"""Merge-phase backends: the serial oracle and the vectorized kernel.

The paper calls the block-merge phase (Alg. 1) "embarrassingly
parallel": every candidate merge is scored against the frozen
blockmodel, and only the greedy apply step afterwards is sequential.
The serial backend is the reference double loop over
``C x merge_proposals_per_block`` scalar calls; the vectorized backend
evaluates the same candidates with numpy batch kernels —

1. **Propose** all candidates in one shot from the pre-drawn Philox
   table (:func:`repro.sbm.moves.propose_block_merges_batch`): both
   multinomial stages resolve against one compressed row-offset CDF
   built from the non-zeros of ``B + B^T`` with integer-exact
   searchsorted semantics — O(nnz) instead of O(C^2).
2. **Delta-MDL** for all distinct ``(r, s)`` pairs at once
   (:func:`repro.sbm.delta.merge_delta_batch`): only the support
   intersections of the merged rows/columns contribute (all other
   generic terms are exactly ``+0.0``), materialized as sparse triplets
   and reduced in the same sequential-accumulation ordering the serial
   oracle uses (the ``_seq_sum`` discipline of the MCMC path).
3. **Select** each block's best candidate by first-occurrence argmin,
   matching the serial strict-``<`` scan on ties.

Both backends therefore pick bit-identical merges; the equivalence is
asserted in ``tests/test_merge_phase.py``.
"""

from __future__ import annotations

import numpy as np

from repro.parallel.backend import MergeBackend, register_merge_backend
from repro.sbm.blockmodel import Blockmodel
from repro.sbm.delta import merge_delta, merge_delta_batch
from repro.sbm.moves import propose_block_merge, propose_block_merges_batch
from repro.types import IntArray

__all__ = ["SerialMergeBackend", "VectorizedMergeBackend"]


class SerialMergeBackend(MergeBackend):
    """Reference scalar double loop — the correctness oracle."""

    name = "serial"

    def evaluate_merges(
        self, bm: Blockmodel, uniforms: np.ndarray
    ) -> tuple[np.ndarray, IntArray]:
        C = bm.num_blocks
        proposals = uniforms.shape[1]
        best_delta = np.full(C, np.inf, dtype=np.float64)
        best_target = np.full(C, -1, dtype=np.int64)
        # Conceptually `for community c in B do in parallel` — evaluations
        # are independent reads of the frozen blockmodel.
        for r in range(C):
            for j in range(proposals):
                s = propose_block_merge(bm, r, uniforms[r, j])
                delta = merge_delta(bm, r, s)
                if delta < best_delta[r]:
                    best_delta[r] = delta
                    best_target[r] = s
        return best_delta, best_target


class VectorizedMergeBackend(MergeBackend):
    """Numpy batch evaluation of the full candidate scan."""

    name = "vectorized"

    def evaluate_merges(
        self, bm: Blockmodel, uniforms: np.ndarray
    ) -> tuple[np.ndarray, IntArray]:
        C = bm.num_blocks
        targets = propose_block_merges_batch(bm, uniforms)
        proposals = targets.shape[1]
        r = np.repeat(np.arange(C, dtype=np.int64), proposals)
        deltas = merge_delta_batch(bm, r, targets.ravel()).reshape(C, proposals)
        best_j = np.argmin(deltas, axis=1)  # first occurrence, as serial `<`
        rows = np.arange(C)
        return deltas[rows, best_j], targets[rows, best_j]


register_merge_backend("serial", SerialMergeBackend)
register_merge_backend("vectorized", VectorizedMergeBackend)
