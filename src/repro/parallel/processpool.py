"""Fork-based shared-memory worker pool for the async-Gibbs sweep.

This is the closest Python analogue of the paper's OpenMP design: the
frozen blockmodel and the graph CSR arrays live in memory shared by all
workers (copy-on-write pages after ``fork``), workers read them without
locks, and each worker evaluates a contiguous chunk of the sweep's
vertices. Because evaluations never write shared state, the result is
bit-identical to :class:`~repro.parallel.serial.SerialBackend` — which
is exactly the property asynchronous Gibbs exploits.

The GIL prevents *thread*-level speedups in pure Python (the repro
calibration note for this paper says as much), so this backend exists
for fidelity and correctness testing; the measured fast path is the
vectorized backend and the 128-thread figures come from the simulated
executor (DESIGN.md §4).
"""

from __future__ import annotations

import multiprocessing as mp
import os

import numpy as np

from repro.errors import BackendError
from repro.graph.graph import Graph
from repro.parallel.backend import ExecutionBackend, register_backend
from repro.parallel.partitioner import contiguous_chunks
from repro.sbm.blockmodel import Blockmodel
from repro.types import IntArray

__all__ = ["ProcessPoolBackend"]

# Worker-side state, inherited through fork at pool creation time.
_WORKER_STATE: dict[str, object] = {}


def _worker_evaluate(args: tuple[int, int]) -> tuple[np.ndarray, np.ndarray]:
    """Evaluate vertices [start, stop) of the sweep inside a worker."""
    from repro.mcmc.evaluate import evaluate_vertex

    start, stop = args
    bm: Blockmodel = _WORKER_STATE["bm"]  # type: ignore[assignment]
    graph: Graph = _WORKER_STATE["graph"]  # type: ignore[assignment]
    vertices: IntArray = _WORKER_STATE["vertices"]  # type: ignore[assignment]
    uniforms: np.ndarray = _WORKER_STATE["uniforms"]  # type: ignore[assignment]
    beta: float = _WORKER_STATE["beta"]  # type: ignore[assignment]

    accepted = np.zeros(stop - start, dtype=bool)
    targets = np.empty(stop - start, dtype=np.int64)
    for i in range(start, stop):
        decision = evaluate_vertex(bm, graph, int(vertices[i]), uniforms[i], beta)
        accepted[i - start] = decision.accepted
        targets[i - start] = decision.target
    return accepted, targets


class ProcessPoolBackend(ExecutionBackend):
    """Evaluate sweep chunks across forked worker processes.

    Parameters
    ----------
    num_workers:
        Worker process count; defaults to the CPU count.
    min_chunk:
        Sweeps smaller than ``num_workers * min_chunk`` fall back to the
        in-process serial loop — fork/IPC overhead would dominate.
    """

    name = "process"

    def __init__(self, num_workers: int | None = None, min_chunk: int = 64) -> None:
        if "fork" not in mp.get_all_start_methods():
            raise BackendError("ProcessPoolBackend requires the 'fork' start method")
        self.num_workers = num_workers or os.cpu_count() or 1
        if self.num_workers < 1:
            raise BackendError(f"num_workers must be >= 1, got {num_workers}")
        self.min_chunk = min_chunk

    def evaluate_sweep(
        self,
        bm: Blockmodel,
        graph: Graph,
        vertices: IntArray,
        uniforms: np.ndarray,
        beta: float,
    ) -> tuple[np.ndarray, IntArray]:
        count = len(vertices)
        if self.num_workers == 1 or count < self.num_workers * self.min_chunk:
            from repro.parallel.serial import SerialBackend

            return SerialBackend().evaluate_sweep(bm, graph, vertices, uniforms, beta)

        # Publish the frozen state, then fork: children inherit the arrays
        # as shared copy-on-write pages — no pickling of B or the CSR.
        _WORKER_STATE.update(
            bm=bm, graph=graph, vertices=vertices, uniforms=uniforms, beta=beta
        )
        try:
            ctx = mp.get_context("fork")
            chunks = contiguous_chunks(count, self.num_workers)
            with ctx.Pool(processes=self.num_workers) as pool:
                parts = pool.map(_worker_evaluate, chunks)
        finally:
            _WORKER_STATE.clear()

        accepted = np.concatenate([p[0] for p in parts])
        targets = np.concatenate([p[1] for p in parts])
        return accepted, targets


register_backend("process", ProcessPoolBackend)
