"""Fork-based shared-memory worker pool for the async-Gibbs sweep.

This is the closest Python analogue of the paper's OpenMP design: the
graph CSR arrays live in memory shared by all workers (copy-on-write
pages after ``fork``), workers read them without locks, and each worker
evaluates a contiguous chunk of the sweep's vertices. Because
evaluations never write shared state, the result is bit-identical to
:class:`~repro.parallel.serial.SerialBackend` — which is exactly the
property asynchronous Gibbs exploits.

The pool is *persistent*: workers are forked once per graph (inheriting
the CSR arrays at fork time) and reused across every sweep of the run,
instead of paying fork + teardown per sweep. The per-sweep frozen
blockmodel is shipped to workers through the task queue. Failures are
contained: worker exceptions surface as :class:`BackendError` (never a
bare ``multiprocessing`` traceback), and a hung or killed worker is
detected via ``map_async`` + ``sweep_timeout``, after which the pool is
torn down so the next sweep (or a fallback backend) starts clean.

The GIL prevents *thread*-level speedups in pure Python (the repro
calibration note for this paper says as much), so this backend exists
for fidelity and correctness testing; the measured fast path is the
vectorized backend and the 128-thread figures come from the simulated
executor (DESIGN.md §4).
"""

from __future__ import annotations

import multiprocessing as mp
import os

import numpy as np

from repro.errors import BackendError
from repro.graph.graph import Graph
from repro.parallel.backend import ExecutionBackend, register_backend
from repro.parallel.partitioner import contiguous_chunks
from repro.sbm.blockmodel import Blockmodel
from repro.types import IntArray

__all__ = ["ProcessPoolBackend"]

# Worker-side state, inherited through fork at pool creation time. The
# parent only stages the graph here while forking and clears it
# immediately after; each worker keeps the reference it inherited.
_WORKER_STATE: dict[str, object] = {}


def _worker_evaluate(
    args: tuple[np.ndarray, IntArray, IntArray, IntArray, int, IntArray, np.ndarray, float],
) -> tuple[np.ndarray, np.ndarray]:
    """Evaluate one chunk of the sweep inside a worker.

    The frozen blockmodel arrays arrive through the task queue (they
    change every sweep); the graph is read from the fork-inherited
    worker state (it never changes for the pool's lifetime).
    """
    from repro.mcmc.evaluate import evaluate_vertex

    B, d_out, d_in, assignment, num_blocks, vertices, uniforms, beta = args
    graph: Graph = _WORKER_STATE["graph"]  # type: ignore[assignment]
    bm = Blockmodel(B, d_out, d_in, assignment, num_blocks)

    accepted = np.zeros(len(vertices), dtype=bool)
    targets = np.empty(len(vertices), dtype=np.int64)
    for i, v in enumerate(vertices):
        decision = evaluate_vertex(bm, graph, int(v), uniforms[i], beta)
        accepted[i] = decision.accepted
        targets[i] = decision.target
    return accepted, targets


class ProcessPoolBackend(ExecutionBackend):
    """Evaluate sweep chunks across a persistent pool of forked workers.

    Parameters
    ----------
    num_workers:
        Worker process count; defaults to the CPU count.
    min_chunk:
        Sweeps smaller than ``num_workers * min_chunk`` fall back to the
        in-process serial loop — IPC overhead would dominate.
    sweep_timeout:
        Wall-clock limit per sweep in seconds. A sweep still pending
        past it (hung or killed worker) raises :class:`BackendError` and
        tears the pool down. ``None`` waits forever.
    """

    name = "process"

    def __init__(
        self,
        num_workers: int | None = None,
        min_chunk: int = 64,
        sweep_timeout: float | None = None,
    ) -> None:
        if "fork" not in mp.get_all_start_methods():
            raise BackendError("ProcessPoolBackend requires the 'fork' start method")
        self.num_workers = num_workers or os.cpu_count() or 1
        if self.num_workers < 1:
            raise BackendError(f"num_workers must be >= 1, got {num_workers}")
        if sweep_timeout is not None and sweep_timeout <= 0:
            raise BackendError(f"sweep_timeout must be > 0, got {sweep_timeout}")
        self.min_chunk = min_chunk
        self.sweep_timeout = sweep_timeout
        self._pool: mp.pool.Pool | None = None
        # Strong reference to the graph the workers inherited, so an
        # ``is`` identity check can never be confused by id reuse.
        self._pool_graph: Graph | None = None

    def _ensure_pool(self, graph: Graph) -> mp.pool.Pool:
        """Fork the worker pool on first use (or when the graph changes)."""
        if self._pool is not None and self._pool_graph is graph:
            return self._pool
        self._teardown_pool()
        ctx = mp.get_context("fork")
        # Publish the graph, then fork: children inherit the CSR arrays
        # as shared copy-on-write pages — no pickling of the graph, ever.
        _WORKER_STATE["graph"] = graph
        try:
            self._pool = ctx.Pool(processes=self.num_workers)
        finally:
            _WORKER_STATE.clear()
        self._pool_graph = graph
        return self._pool

    def _teardown_pool(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
            self._pool_graph = None

    def evaluate_sweep(
        self,
        bm: Blockmodel,
        graph: Graph,
        vertices: IntArray,
        uniforms: np.ndarray,
        beta: float,
    ) -> tuple[np.ndarray, IntArray]:
        count = len(vertices)
        if self.num_workers == 1 or count < self.num_workers * self.min_chunk:
            from repro.parallel.serial import SerialBackend

            return SerialBackend().evaluate_sweep(bm, graph, vertices, uniforms, beta)

        pool = self._ensure_pool(graph)
        tasks = [
            (
                bm.B, bm.d_out, bm.d_in, bm.assignment, bm.num_blocks,
                vertices[start:stop], uniforms[start:stop], beta,
            )
            for start, stop in contiguous_chunks(count, self.num_workers)
        ]
        try:
            parts = pool.map_async(_worker_evaluate, tasks).get(
                timeout=self.sweep_timeout
            )
        except mp.TimeoutError as exc:
            self._teardown_pool()
            raise BackendError(
                f"process pool sweep exceeded {self.sweep_timeout}s "
                "(hung or dead worker); pool torn down"
            ) from exc
        except BackendError:
            self._teardown_pool()
            raise
        except Exception as exc:  # worker exception re-raised by the pool
            self._teardown_pool()
            raise BackendError(f"process pool worker failed: {exc!r}") from exc

        accepted = np.concatenate([p[0] for p in parts])
        targets = np.concatenate([p[1] for p in parts])
        return accepted, targets

    def close(self) -> None:
        self._teardown_pool()


register_backend("process", ProcessPoolBackend)
