"""Whole-sweep batch evaluation of the asynchronous-Gibbs pass.

Asynchronous Gibbs makes every vertex evaluation independent given the
frozen blockmodel; this backend exploits that independence with numpy
batch operations instead of threads — the single-core analogue of the
paper's 128 OpenMP workers (DESIGN.md §4, substitution 1). The stages:

1. **Propose** for all vertices at once: gather a random incident edge
   per vertex, apply the uniform/multinomial mixture, and perform the
   multinomial draws grouped by neighbour block (one shared CDF per
   block).
2. **Delta-MDL** for all vertices with ``s != r``: the sparse changed
   cells of every vertex are materialized as (vertex, block, count)
   triplets via one ``np.unique`` over the sweep's edge endpoints, then
   reduced per vertex with sequential ``np.add.at`` accumulation —
   exactly the order the serial oracle sums in (see
   ``repro.sbm.delta._seq_sum``), so decisions are bit-comparable.
3. **Hastings correction** from the same triplets.
4. **Accept** decisions from the pre-drawn uniforms.
"""

from __future__ import annotations

import numpy as np

from repro.graph.graph import Graph
from repro.parallel.backend import ExecutionBackend, register_backend
from repro.sbm.blockmodel import Blockmodel
from repro.sbm.entropy import xlogx_counts as _g
from repro.types import IntArray
from repro.utils.arrays import expand_ranges as _expand_ranges

__all__ = ["VectorizedBackend"]

_MAX_EXPONENT = 700.0


class VectorizedBackend(ExecutionBackend):
    """Numpy batch evaluation of a full asynchronous-Gibbs sweep."""

    name = "vectorized"

    def evaluate_sweep(
        self,
        bm: Blockmodel,
        graph: Graph,
        vertices: IntArray,
        uniforms: np.ndarray,
        beta: float,
    ) -> tuple[np.ndarray, IntArray]:
        count = len(vertices)
        if count == 0:
            return np.zeros(0, dtype=bool), np.empty(0, dtype=np.int64)
        vertices = np.asarray(vertices, dtype=np.int64)
        C = bm.num_blocks
        assignment = bm.assignment
        state = bm.state
        r = assignment[vertices]

        targets = self._propose(bm, graph, vertices, uniforms, C)
        movers = targets != r
        accepted = np.zeros(count, dtype=bool)
        if not movers.any():
            return accepted, targets

        idx = np.nonzero(movers)[0]
        vm = vertices[idx]
        rm = r[idx]
        sm = targets[idx]
        M = idx.shape[0]

        # ---- sparse changed-cell triplets (vertex, block, count) -------
        t_out_vid, t_out_blk, t_out_cnt = _neighbor_triplets(
            graph.out_ptr, graph.out_nbrs, assignment, vm, C
        )
        t_in_vid, t_in_blk, t_in_cnt = _neighbor_triplets(
            graph.in_ptr, graph.in_nbrs, assignment, vm, C
        )
        loops = graph.self_loops[vm].astype(np.float64)

        # per-vertex multiplicities towards its own r and the proposed s
        kor = _pick_count(t_out_vid, t_out_blk, t_out_cnt, rm, M)
        kos = _pick_count(t_out_vid, t_out_blk, t_out_cnt, sm, M)
        kir = _pick_count(t_in_vid, t_in_blk, t_in_cnt, rm, M)
        kis = _pick_count(t_in_vid, t_in_blk, t_in_cnt, sm, M)

        delta_g = np.zeros(M, dtype=np.float64)
        _accumulate_generic(delta_g, state, t_out_vid, t_out_blk, t_out_cnt, rm, sm, axis=0)
        _accumulate_generic(delta_g, state, t_in_vid, t_in_blk, t_in_cnt, rm, sm, axis=1)

        # intersection cells, same order as the serial oracle
        brr = state.gather(rm, rm).astype(np.float64)
        brs = state.gather(rm, sm).astype(np.float64)
        bsr = state.gather(sm, rm).astype(np.float64)
        bss = state.gather(sm, sm).astype(np.float64)
        d1 = -kor - kir - loops
        d2 = -kos + kir
        d3 = kor - kis
        d4 = kos + kis + loops
        delta_g += _g(brr + d1) - _g(brr)
        delta_g += _g(brs + d2) - _g(brs)
        delta_g += _g(bsr + d3) - _g(bsr)
        delta_g += _g(bss + d4) - _g(bss)

        ko = graph.out_degree[vm].astype(np.float64)
        ki = graph.in_degree[vm].astype(np.float64)
        dor = bm.d_out[rm].astype(np.float64)
        dos = bm.d_out[sm].astype(np.float64)
        dir_ = bm.d_in[rm].astype(np.float64)
        dis = bm.d_in[sm].astype(np.float64)
        delta_deg = (
            _g(dor - ko) - _g(dor) + _g(dos + ko) - _g(dos)
            + _g(dir_ - ki) - _g(dir_) + _g(dis + ki) - _g(dis)
        )
        delta_s = -(delta_g - delta_deg)

        hastings = _batch_hastings(
            bm, C, M, rm, sm, loops,
            t_out_vid, t_out_blk, t_out_cnt,
            t_in_vid, t_in_blk, t_in_cnt,
            kor, kos, kir, kis, ko + ki,
        )

        # ---- accept decisions ------------------------------------------
        p = np.zeros(M, dtype=np.float64)
        pos = hastings > 0.0
        exponent = np.where(pos, -beta * delta_s + np.log(np.where(pos, hastings, 1.0)), -np.inf)
        p = np.where(exponent >= 0.0, 1.0,
                     np.where(exponent < -_MAX_EXPONENT, 0.0,
                              np.exp(np.clip(exponent, -_MAX_EXPONENT, 0.0))))
        accepted[idx] = uniforms[idx, 4] < p
        return accepted, targets

    # ------------------------------------------------------------------
    def _propose(
        self,
        bm: Blockmodel,
        graph: Graph,
        vertices: IntArray,
        uniforms: np.ndarray,
        C: int,
    ) -> IntArray:
        """Stage 1: batch neighbour-guided proposals (matches moves.py)."""
        count = vertices.shape[0]
        assignment = bm.assignment
        deg = graph.degree[vertices]
        # Floor-and-clamp draws, mirroring moves.py: identical for
        # u ∈ [0, 1), in-range at the u == 1.0 boundary.
        uniform_block = (uniforms[:count, 3] * C).astype(np.int64)
        np.minimum(uniform_block, C - 1, out=uniform_block)
        targets = uniform_block.copy()

        has_edges = deg > 0
        if not has_edges.any():
            return targets
        he = np.nonzero(has_edges)[0]
        edge_pick = (uniforms[he, 0] * deg[he]).astype(np.int64)
        np.minimum(edge_pick, deg[he] - 1, out=edge_pick)
        pick = graph.inc_ptr[vertices[he]] + edge_pick
        nb = graph.inc_nbrs[pick]
        u = assignment[nb]
        exploit = uniforms[he, 1] >= C / (bm.d[u] + C)
        he = he[exploit]
        u = u[exploit]
        if he.size == 0:
            return targets

        order = np.argsort(u, kind="stable")
        he_sorted = he[order]
        u_sorted = u[order]
        boundaries = np.nonzero(np.diff(u_sorted))[0] + 1
        group_starts = np.concatenate([[0], boundaries, [u_sorted.shape[0]]])
        for gi in range(group_starts.shape[0] - 1):
            lo, hi = int(group_starts[gi]), int(group_starts[gi + 1])
            if lo == hi:
                continue
            block = int(u_sorted[lo])
            row_cdf = bm.state.sym_row_cdf(block)
            rows = he_sorted[lo:hi]
            if row_cdf.total <= 0:
                continue  # keep the uniform fallback already in `targets`
            targets[rows] = row_cdf.draw_many(uniforms[rows, 2])
        return targets


def _neighbor_triplets(
    ptr: IntArray,
    nbrs: IntArray,
    assignment: IntArray,
    vm: IntArray,
    C: int,
) -> tuple[IntArray, IntArray, IntArray]:
    """Aggregate neighbour blocks of each mover into sorted triplets.

    Returns arrays (vertex-index, block, multiplicity), sorted by
    (vertex-index, block) ascending; self-loop endpoints are excluded as
    in :func:`repro.sbm.delta.vertex_move_context`.
    """
    starts = ptr[vm]
    lengths = ptr[vm + 1] - starts
    edge_idx = _expand_ranges(starts, lengths)
    if edge_idx.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy()
    vid = np.repeat(np.arange(vm.shape[0], dtype=np.int64), lengths)
    w = nbrs[edge_idx]
    keep = w != vm[vid]
    vid = vid[keep]
    blk = assignment[w[keep]]
    keys = vid * C + blk
    ukeys, counts = np.unique(keys, return_counts=True)
    return ukeys // C, ukeys % C, counts.astype(np.int64)


def _pick_count(
    vid: IntArray, blk: IntArray, cnt: IntArray, wanted: IntArray, M: int
) -> np.ndarray:
    """Per-vertex multiplicity of the block ``wanted[vid]`` (float64)."""
    out = np.zeros(M, dtype=np.float64)
    if vid.size:
        sel = blk == wanted[vid]
        out[vid[sel]] = cnt[sel]
    return out


def _accumulate_generic(
    delta_g: np.ndarray,
    state,
    vid: IntArray,
    blk: IntArray,
    cnt: IntArray,
    rm: IntArray,
    sm: IntArray,
    axis: int,
) -> None:
    """Add the generic (non-intersection) changed-cell terms per vertex.

    ``axis=0`` handles out-edges (cells ``(r, t)`` / ``(s, t)``);
    ``axis=1`` handles in-edges (cells ``(t, r)`` / ``(t, s)``).
    """
    if vid.size == 0:
        return
    mask = (blk != rm[vid]) & (blk != sm[vid])
    if not mask.any():
        return
    v = vid[mask]
    t = blk[mask]
    c = cnt[mask].astype(np.float64)
    if axis == 0:
        cell_r = state.gather(rm[v], t).astype(np.float64)
        cell_s = state.gather(sm[v], t).astype(np.float64)
    else:
        cell_r = state.gather(t, rm[v]).astype(np.float64)
        cell_s = state.gather(t, sm[v]).astype(np.float64)
    terms = _g(cell_r - c) - _g(cell_r) + _g(cell_s + c) - _g(cell_s)
    np.add.at(delta_g, v, terms)


def _batch_hastings(
    bm: Blockmodel,
    C: int,
    M: int,
    rm: IntArray,
    sm: IntArray,
    loops: np.ndarray,
    t_out_vid: IntArray,
    t_out_blk: IntArray,
    t_out_cnt: IntArray,
    t_in_vid: IntArray,
    t_in_blk: IntArray,
    t_in_cnt: IntArray,
    kor: np.ndarray,
    kos: np.ndarray,
    kir: np.ndarray,
    kis: np.ndarray,
    degree: np.ndarray,
) -> np.ndarray:
    """Batch proposal-asymmetry correction over the union support."""
    state = bm.state
    n_out = t_out_vid.shape[0]
    keys = np.concatenate([t_out_vid * C + t_out_blk, t_in_vid * C + t_in_blk])
    if keys.size == 0:
        return np.ones(M, dtype=np.float64)
    cnts = np.concatenate([t_out_cnt, t_in_cnt]).astype(np.float64)
    ukeys, inv = np.unique(keys, return_inverse=True)
    U = ukeys.shape[0]
    k_all = np.zeros(U, dtype=np.float64)
    np.add.at(k_all, inv, cnts)
    c_out_u = np.zeros(U, dtype=np.float64)
    np.add.at(c_out_u, inv[:n_out], cnts[:n_out])
    c_in_u = np.zeros(U, dtype=np.float64)
    np.add.at(c_in_u, inv[n_out:], cnts[n_out:])

    hvid = ukeys // C
    ht = ukeys % C
    rt = rm[hvid]
    st = sm[hvid]
    d_t = bm.d[ht].astype(np.float64)
    Cf = float(C)

    fwd = k_all * (state.gather(ht, st) + state.gather(st, ht) + 1.0) / (d_t + Cf)
    p_fwd = np.zeros(M, dtype=np.float64)
    np.add.at(p_fwd, hvid, fwd)

    b_tr = state.gather(ht, rt).astype(np.float64) - c_in_u
    b_rt = state.gather(rt, ht).astype(np.float64) - c_out_u
    is_r = ht == rt
    is_s = ht == st
    b_tr[is_r] += -kor[hvid[is_r]] - loops[hvid[is_r]]
    b_rt[is_r] += -kir[hvid[is_r]] - loops[hvid[is_r]]
    b_tr[is_s] += kor[hvid[is_s]]
    b_rt[is_s] += kir[hvid[is_s]]
    d_new = d_t.copy()
    d_new[is_r] -= degree[hvid[is_r]]
    d_new[is_s] += degree[hvid[is_s]]
    bwd = k_all * (b_tr + b_rt + 1.0) / (d_new + Cf)
    p_bwd = np.zeros(M, dtype=np.float64)
    np.add.at(p_bwd, hvid, bwd)

    return np.where(p_fwd > 0.0, p_bwd / np.where(p_fwd > 0.0, p_fwd, 1.0), 1.0)


register_backend("vectorized", VectorizedBackend)
