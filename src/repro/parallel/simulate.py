"""Calibrated p-thread execution model for strong-scaling experiments.

The paper runs H-SBP with 1..128 OpenMP threads on a 128-core EPYC node
(Fig. 7). This machine has one core, so we *model* thread execution
instead (DESIGN.md §4, substitution 1): a run is replayed from its
recorded per-sweep work vectors (degree-weighted proposal evaluations),
and each sweep's wall-clock under ``p`` threads is

    T_sweep(p) = serial_work * u            # V* Metropolis-Hastings pass
               + makespan(parallel_work, p) * u   # async pass, static chunks
               + rebuild(p)                 # per-sweep barrier + rebuild
               + p * fork_join_cost         # thread team overhead

where ``u`` is the measured seconds-per-work-unit calibrated from the
actual 1-thread run. Amdahl's law (the serial V* pass), static-schedule
load imbalance under power-law degrees, and the growing fork/join cost
together produce the paper's tapering-past-16-threads shape without any
hand-tuned curve.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.parallel.partitioner import chunk_loads
from repro.types import SweepStats

__all__ = ["SimulatedThreadModel", "simulate_sweep_seconds"]


def simulate_sweep_seconds(
    stats: SweepStats,
    threads: int,
    seconds_per_unit: float,
    rebuild_seconds: float = 0.0,
    fork_join_seconds: float = 0.0,
    schedule: str = "static",
    rebuild_parallel_fraction: float = 0.0,
    barriers: int = 1,
    sync_seconds_per_barrier: float = 0.0,
) -> float:
    """Modeled wall-clock of one sweep under ``threads`` workers.

    ``barriers`` × ``sync_seconds_per_barrier`` charges the per-sweep
    synchronization cost of multi-barrier plans (B-SBP and tiered sweeps
    pay one reconciliation per frozen batch); the defaults keep the
    single-barrier behaviour and numbers unchanged.
    """
    if threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")
    if barriers < 0:
        raise ValueError(f"barriers must be >= 0, got {barriers}")
    serial = stats.serial_work * seconds_per_unit
    if stats.work_per_vertex is not None and stats.work_per_vertex.size:
        loads = chunk_loads(stats.work_per_vertex, threads, schedule=schedule)
        parallel = float(loads.max()) * seconds_per_unit
    else:
        parallel = stats.parallel_work * seconds_per_unit / threads
    rebuild = rebuild_seconds * (
        (1.0 - rebuild_parallel_fraction) + rebuild_parallel_fraction / threads
    )
    sync = barriers * sync_seconds_per_barrier
    return serial + parallel + rebuild + sync + fork_join_seconds * threads


@dataclass
class SimulatedThreadModel:
    """Replays a recorded run under varying thread counts.

    Parameters
    ----------
    seconds_per_unit:
        Calibrated cost of one work unit (one proposal evaluation per
        incident edge, roughly). Calibrate as
        ``measured_mcmc_seconds / total_work_units`` of a real run.
    rebuild_seconds_per_sweep:
        Measured per-sweep blockmodel-rebuild cost (the A-SBP barrier).
    fork_join_seconds:
        Per-thread team start/stop overhead per sweep.
    schedule:
        ``'static'`` (OpenMP default; what the paper used) or
        ``'balanced'`` (the better-load-balancing future work of §5.5).
    barriers_per_sweep:
        Synchronization barriers one sweep pays — 1 for SBP/A-SBP/H-SBP,
        ``num_batches`` for B-SBP, the plan's total for tiered schedules
        (see :attr:`repro.mcmc.engine.SweepPlan.barriers_per_sweep`).
    sync_seconds_per_barrier:
        Fixed cost charged per barrier (thread rendezvous + reconcile
        dispatch); 0 preserves the pre-plan model's numbers.
    """

    seconds_per_unit: float
    rebuild_seconds_per_sweep: float = 0.0
    fork_join_seconds: float = 1e-6
    schedule: str = "static"
    rebuild_parallel_fraction: float = 0.0
    barriers_per_sweep: int = 1
    sync_seconds_per_barrier: float = 0.0
    sweeps: list[SweepStats] = field(default_factory=list)

    def record(self, stats: SweepStats) -> None:
        self.sweeps.append(stats)

    def extend(self, sweeps: list[SweepStats]) -> None:
        self.sweeps.extend(sweeps)

    def mcmc_seconds(self, threads: int) -> float:
        """Total modeled MCMC-phase seconds for the recorded run."""
        return float(
            sum(
                simulate_sweep_seconds(
                    s,
                    threads,
                    self.seconds_per_unit,
                    rebuild_seconds=self.rebuild_seconds_per_sweep,
                    fork_join_seconds=self.fork_join_seconds,
                    schedule=self.schedule,
                    rebuild_parallel_fraction=self.rebuild_parallel_fraction,
                    barriers=self.barriers_per_sweep,
                    sync_seconds_per_barrier=self.sync_seconds_per_barrier,
                )
                for s in self.sweeps
            )
        )

    def scaling_curve(self, thread_counts: list[int]) -> dict[int, float]:
        """Map thread count -> modeled MCMC seconds (the Fig. 7 series)."""
        return {p: self.mcmc_seconds(p) for p in thread_counts}

    def speedup_curve(self, thread_counts: list[int]) -> dict[int, float]:
        base = self.mcmc_seconds(1)
        curve = self.scaling_curve(thread_counts)
        return {p: base / t if t > 0 else float("inf") for p, t in curve.items()}

    @classmethod
    def calibrated(
        cls,
        sweeps: list[SweepStats],
        measured_mcmc_seconds: float,
        measured_rebuild_seconds: float = 0.0,
        **kwargs,
    ) -> "SimulatedThreadModel":
        """Build a model whose 1-thread time matches a measured run."""
        total_work = sum(s.serial_work + s.parallel_work for s in sweeps)
        if total_work <= 0:
            raise ValueError("recorded sweeps contain no work units")
        n_sweeps = max(1, len(sweeps))
        model = cls(
            seconds_per_unit=measured_mcmc_seconds / total_work,
            rebuild_seconds_per_sweep=measured_rebuild_seconds / n_sweeps,
            **kwargs,
        )
        model.extend(sweeps)
        return model

    @classmethod
    def for_plan(
        cls, plan, seconds_per_unit: float, **kwargs
    ) -> "SimulatedThreadModel":
        """Build a model whose barrier count comes from a sweep plan.

        ``plan`` is a :class:`~repro.mcmc.engine.SweepPlan`; its
        ``barriers_per_sweep`` (1 for SBP/A-SBP/H-SBP, ``num_batches``
        for B-SBP, the segment total for tiered schedules) feeds the
        per-sweep synchronization term, so modeled curves reflect the
        schedule actually executed rather than a hard-coded single
        barrier.
        """
        kwargs.setdefault("barriers_per_sweep", plan.barriers_per_sweep)
        return cls(seconds_per_unit=seconds_per_unit, **kwargs)

    def idealized(self) -> "SimulatedThreadModel":
        """A copy modeling perfect load balance (paper §5.5 upper bound).

        Drops the recorded per-vertex work vectors, so the parallel
        portion of every sweep falls back to ``parallel_work / p`` —
        work spread perfectly across threads with no static-chunk
        imbalance. Comparing ``speedup_curve`` between a model and its
        idealized copy isolates how much of the scaling taper is load
        imbalance versus serial fraction and barrier costs.
        """
        clone = SimulatedThreadModel(
            seconds_per_unit=self.seconds_per_unit,
            rebuild_seconds_per_sweep=self.rebuild_seconds_per_sweep,
            fork_join_seconds=self.fork_join_seconds,
            schedule=self.schedule,
            rebuild_parallel_fraction=self.rebuild_parallel_fraction,
            barriers_per_sweep=self.barriers_per_sweep,
            sync_seconds_per_barrier=self.sync_seconds_per_barrier,
        )
        clone.extend([s.without_work() for s in self.sweeps])
        return clone
