"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``detect``    run a registered variant on a graph file, write communities
``compare``   run several variants on one graph, print a comparison table
``generate``  write a corpus graph / custom DCSBM / real-world stand-in
``stream``    fit a snapshot stream with warm refits + drift fallback
``serve``     run the partition service: store + queue + worker pool + HTTP
``info``      print graph statistics (including the content digest)
``registry``  list every pluggable-engine registry and its entries
``variants``  deprecated alias for the variants section of ``registry``

``detect`` and ``compare`` are thin callers of the service job engine
(:func:`repro.service.jobs.execute_job`): the work is described as a
:class:`~repro.service.jobs.JobSpec` and executed through the one shared
path, so an optional ``--store DIR`` turns repeat invocations into
byte-identical cache loads.

Graph files are whitespace edge lists (``src dst`` per line, ``#``
comments) or MatrixMarket ``.mtx``; format is chosen by extension.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro.bench.reporting import format_table
from repro.core.variants import SBPConfig
from repro.generators.corpus import SYNTHETIC_SPECS, generate_synthetic
from repro.generators.dcsbm import DCSBMParams, generate_dcsbm
from repro.generators.realworld import REAL_WORLD_SPECS, generate_real_world_standin
from repro.graph.graph import Graph
from repro.graph.io import (
    read_edge_list,
    read_matrix_market,
    write_edge_list,
    write_matrix_market,
)
from repro.graph.properties import summarize
from repro.mcmc.engine import available_variants, build_plan, get_variant_spec
from repro.metrics.modularity import directed_modularity
from repro.metrics.nmi import normalized_mutual_information
from repro.sampling.samplers import available_samplers, get_sampler
from repro.sbm.block_storage import available_block_storages, get_block_storage
from repro.service import (
    JobSpec,
    available_job_queues,
    available_result_stores,
    execute_job,
    get_job_queue,
    get_result_store,
)
from repro.service.store import DiskResultStore
from repro.streaming.drift import available_drift_policies, get_drift_policy
from repro.streaming.source import available_stream_sources, get_stream_source

__all__ = ["main", "build_parser"]


def _load_graph(path: str) -> Graph:
    if path.endswith(".mtx"):
        return read_matrix_market(path)
    return read_edge_list(path)


def _save_graph(graph: Graph, path: str) -> None:
    if path.endswith(".mtx"):
        write_matrix_market(graph, path)
    else:
        write_edge_list(graph, path)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Stochastic block partitioning (SBP / A-SBP / H-SBP) "
                    "— ICPP'22 reproduction CLI",
    )
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="log per-iteration progress to stderr")
    sub = parser.add_subparsers(dest="command", required=True)

    detect = sub.add_parser("detect", help="detect communities in a graph file")
    detect.add_argument("graph", help="edge-list (.txt) or MatrixMarket (.mtx) file")
    detect.add_argument("--variant", default="h-sbp",
                        choices=available_variants())
    detect.add_argument("--runs", type=int, default=1,
                        help="best-of-N repetitions (paper uses 5)")
    detect.add_argument("--seed", type=int, default=0)
    detect.add_argument("--beta", type=float, default=3.0)
    detect.add_argument("--vstar-fraction", type=float, default=0.15)
    detect.add_argument("--num-batches", type=int, default=4,
                        help="frozen barriers per sweep for b-sbp and the "
                             "tiered middle band")
    detect.add_argument("--tier-split", type=float, default=0.5,
                        help="degree-rank fraction ending the tiered plan's "
                             "batched middle band (tiered variant only)")
    detect.add_argument("--backend", default="vectorized",
                        help="execution backend; 'resilient:<inner>' wraps "
                             "<inner> with timeout/retry/fallback handling; "
                             "'distributed:<transport>:<ranks>' shards sweeps "
                             "over a fault-tolerant wire (transports: sim, "
                             "inproc, pipes)")
    detect.add_argument("--shard-loss-policy", default="recover",
                        choices=["recover", "degrade", "fail"],
                        help="distributed backend's response to a dead shard: "
                             "re-lease its vertices to survivors "
                             "(bit-identical), finish degraded with the "
                             "survivors (interrupted=true), or raise")
    detect.add_argument("--merge-backend", default="vectorized",
                        choices=["serial", "vectorized"],
                        help="block-merge scan kernel (bit-identical results)")
    detect.add_argument("--update-strategy", default="incremental",
                        choices=["rebuild", "incremental"],
                        help="sweep-barrier engine: O(E) full recount or "
                             "O(deg(moved)) delta-apply (bit-identical results)")
    detect.add_argument("--block-storage", default="auto",
                        choices=[*available_block_storages(), "auto"],
                        help="inter-block matrix engine: dense C x C arrays, "
                             "per-row sparse arrays, or the hybrid cached "
                             "engine (bit-identical results; memory/time "
                             "trade-off); 'auto' (the default) picks "
                             "dense/hybrid from the graph size and memory "
                             "budget")
    detect.add_argument("--sample-rate", type=float, default=1.0,
                        metavar="RATE",
                        help="SamBaS front-end: fit on a ceil(RATE*V)-vertex "
                             "sample, extend the partition to the full graph, "
                             "fine-tune (1.0 = full-graph fit, the sampling "
                             "front-end fully bypassed)")
    detect.add_argument("--sampler", default="degree-weighted",
                        choices=available_samplers(),
                        help="vertex sampler for --sample-rate < 1.0")
    detect.add_argument("--extension-batches", type=int, default=8,
                        metavar="N",
                        help="degree-descending barrier batches for the "
                             "membership-extension pass")
    detect.add_argument("--time-budget", type=float, default=None,
                        metavar="SECONDS",
                        help="wall-clock budget for the whole detect; past it "
                             "the best-so-far result is returned "
                             "(interrupted=true)")
    detect.add_argument("--checkpoint", metavar="DIR",
                        help="checkpoint directory; snapshots every "
                             "agglomerative iteration and resumes from the "
                             "latest valid snapshot if DIR already has one")
    detect.add_argument("--audit-every", type=int, default=0, metavar="N",
                        help="run the self-healing invariant audit every N "
                             "agglomerative iterations (0 = off)")
    detect.add_argument("--store", metavar="DIR",
                        help="content-addressed result store directory; a "
                             "prior run of the same (graph, config, runs) "
                             "loads its byte-identical result instead of "
                             "re-running MCMC")
    detect.add_argument("--output", help="write 'vertex community' lines here")
    detect.add_argument("--json", action="store_true",
                        help="print a JSON summary instead of text")

    compare = sub.add_parser("compare", help="run variants side by side")
    compare.add_argument("graph")
    compare.add_argument("--variants", default="sbp,a-sbp,h-sbp",
                         help="comma-separated variant list")
    compare.add_argument("--runs", type=int, default=1)
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument("--truth",
                         help="optional 'vertex community' file for NMI scoring")
    compare.add_argument("--store", metavar="DIR",
                         help="content-addressed result store directory "
                              "(cache hits skip re-running a variant)")

    generate = sub.add_parser("generate", help="generate a synthetic graph")
    source = generate.add_mutually_exclusive_group(required=True)
    source.add_argument("--corpus", metavar="ID",
                        help=f"corpus graph id (S1..S{len(SYNTHETIC_SPECS)})")
    source.add_argument("--standin", metavar="NAME",
                        help=f"real-world stand-in ({', '.join(list(REAL_WORLD_SPECS)[:3])}, ...)")
    source.add_argument("--custom", action="store_true",
                        help="custom DCSBM from the --vertices/... knobs")
    generate.add_argument("--vertices", type=int, default=200)
    generate.add_argument("--communities", type=int, default=4)
    generate.add_argument("--ratio", type=float, default=5.0,
                          help="within:between rate ratio r")
    generate.add_argument("--mean-degree", type=float, default=6.0)
    generate.add_argument("--exponent", type=float, default=2.5)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--output", required=True,
                          help=".txt edge list or .mtx MatrixMarket path")
    generate.add_argument("--truth-output",
                          help="write ground-truth communities here (if known)")

    stream = sub.add_parser(
        "stream",
        help="fit an edge stream: warm refit per snapshot, cold fit on drift",
    )
    stream.add_argument("--source", default="synthetic-churn",
                        choices=available_stream_sources(),
                        help="stream source: a churning planted DCSBM or a "
                             "directory of edge-list snapshot files")
    stream.add_argument("--input", metavar="DIR",
                        help="snapshot directory for --source edgelist-dir")
    stream.add_argument("--vertices", type=int, default=1000,
                        help="synthetic-churn: vertex count")
    stream.add_argument("--communities", type=int, default=8,
                        help="synthetic-churn: planted community count")
    stream.add_argument("--snapshots", type=int, default=5,
                        help="synthetic-churn: snapshots incl. the initial "
                             "graph")
    stream.add_argument("--churn", type=float, default=0.05,
                        help="synthetic-churn: fraction of edges replaced per "
                             "snapshot")
    stream.add_argument("--mean-degree", type=float, default=10.0,
                        help="synthetic-churn: mean degree of the base graph")
    stream.add_argument("--ratio", type=float, default=5.0,
                        help="synthetic-churn: within:between rate ratio")
    stream.add_argument("--variant", default="h-sbp",
                        choices=available_variants())
    stream.add_argument("--seed", type=int, default=0)
    stream.add_argument("--block-storage", default="auto",
                        choices=[*available_block_storages(), "auto"])
    stream.add_argument("--drift-policy", default="mdl-ratio",
                        choices=available_drift_policies(),
                        help="warm-vs-cold rule per snapshot (see "
                             "'repro registry --list')")
    stream.add_argument("--drift-threshold", type=float, default=0.05,
                        help="relative normalized-MDL drift of the carried "
                             "partition above which the snapshot cold-fits")
    stream.add_argument("--time-budget", type=float, default=None,
                        metavar="SECONDS",
                        help="wall-clock budget for the whole stream; past it "
                             "the completed snapshots are reported")
    stream.add_argument("--checkpoint", metavar="DIR",
                        help="checkpoint directory; completed snapshots and "
                             "the in-flight search persist here, and a rerun "
                             "resumes mid-snapshot")
    stream.add_argument("--output", metavar="FILE",
                        help="write the stream result JSON (v7 format) here")
    stream.add_argument("--json", action="store_true",
                        help="print a JSON summary instead of a table")

    serve = sub.add_parser(
        "serve",
        help="run the partition service: content-addressed store, leased "
             "job queue, worker pool and stdlib-HTTP endpoints "
             "(/submit /status /result /report /health)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8642,
                       help="bind port (0 picks an ephemeral port)")
    serve.add_argument("--workers", type=int, default=2,
                       help="orchestrator worker threads")
    serve.add_argument("--store", default="disk",
                       choices=available_result_stores(),
                       help="result store engine (see 'repro registry --list')")
    serve.add_argument("--store-dir", default=".repro-store", metavar="DIR",
                       help="disk store root (ignored by --store memory)")
    serve.add_argument("--store-budget-mb", type=float, default=None,
                       metavar="MB",
                       help="store size budget; least-recently-used results "
                            "are evicted past it (default: unbounded)")
    serve.add_argument("--queue", default="fifo",
                       choices=available_job_queues(),
                       help="job queue pick order")
    serve.add_argument("--lease-ttl", type=float, default=30.0,
                       metavar="SECONDS",
                       help="job lease TTL; a worker that stops heartbeating "
                            "for this long loses its job to a survivor")
    serve.add_argument("--max-attempts", type=int, default=3,
                       help="lease issues before a repeatedly-dying job is "
                            "marked failed")
    serve.add_argument("--checkpoint", metavar="DIR",
                       help="per-job checkpoint root so a re-leased job "
                            "resumes instead of restarting")

    info = sub.add_parser("info", help="print graph statistics")
    info.add_argument("graph")

    variants = sub.add_parser(
        "variants", help="deprecated: use 'repro registry --list'"
    )
    variants.add_argument("--list", action="store_true", dest="list_variants",
                          help="print every registered VariantSpec with its "
                               "plan segments (the default action)")
    variants.add_argument("--vstar-fraction", type=float, default=0.15,
                          help="fraction used when rendering h-sbp/tiered plans")
    variants.add_argument("--num-batches", type=int, default=4)
    variants.add_argument("--tier-split", type=float, default=0.5)

    registry = sub.add_parser(
        "registry",
        help="list every pluggable-engine registry (variants, execution "
             "backends, merge backends, update strategies, samplers, block "
             "storages, transports, drift policies, stream sources, result "
             "stores, job queues)",
    )
    registry.add_argument("--list", action="store_true", dest="list_all",
                          help="print every registry section "
                               "(the default action)")
    registry.add_argument("--vstar-fraction", type=float, default=0.15,
                          help="fraction used when rendering h-sbp/tiered plans")
    registry.add_argument("--num-batches", type=int, default=4)
    registry.add_argument("--tier-split", type=float, default=0.5)

    return parser


def _open_store(directory: str | None) -> DiskResultStore | None:
    return DiskResultStore(directory) if directory else None


def _cmd_detect(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph)
    config = SBPConfig(
        variant=args.variant,
        seed=args.seed,
        beta=args.beta,
        vstar_fraction=args.vstar_fraction,
        num_batches=args.num_batches,
        tier_split=args.tier_split,
        backend=args.backend,
        shard_loss_policy=args.shard_loss_policy,
        merge_backend=args.merge_backend,
        update_strategy=args.update_strategy,
        block_storage=args.block_storage,
        sample_rate=args.sample_rate,
        sampler=args.sampler,
        extension_batches=args.extension_batches,
        time_budget=args.time_budget,
        audit_cadence=args.audit_every,
    )
    checkpointer = None
    if args.checkpoint:
        from repro.resilience import RunCheckpointer

        checkpointer = RunCheckpointer(args.checkpoint)
    spec = JobSpec.for_graph(graph, config, runs=args.runs)
    outcome = execute_job(
        spec, store=_open_store(args.store), checkpointer=checkpointer
    )
    best, all_results = outcome.best, outcome.results
    summary = {
        "graph": args.graph,
        "V": graph.num_vertices,
        "E": graph.num_edges,
        "variant": best.variant,
        "runs": args.runs,
        "communities": best.num_blocks,
        "mdl": best.mdl,
        "normalized_mdl": best.normalized_mdl,
        "modularity": directed_modularity(graph, best.assignment),
        "mcmc_seconds_total": sum(r.mcmc_seconds for r in all_results),
        "sweeps_total": sum(r.mcmc_sweeps for r in all_results),
        "interrupted": outcome.interrupted,
    }
    if best.sample_rate < 1.0:
        summary["sampler"] = best.sampler
        summary["sample_rate"] = best.sample_rate
    if outcome.cache_hit:
        summary["cached"] = True
    if summary["interrupted"]:
        print(
            "note: run interrupted (time budget or SIGINT); reporting the "
            "best partition found so far"
            + (f"; resume with --checkpoint {args.checkpoint}" if args.checkpoint else ""),
            file=sys.stderr,
        )
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        for key, value in summary.items():
            print(f"{key:20s} {value}")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write("# vertex community\n")
            for v, c in enumerate(best.assignment):
                fh.write(f"{v} {c}\n")
        print(f"wrote communities to {args.output}", file=sys.stderr)
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph)
    truth = None
    if args.truth:
        pairs = np.loadtxt(args.truth, dtype=np.int64, comments="#")
        truth = np.full(graph.num_vertices, -1, dtype=np.int64)
        truth[pairs[:, 0]] = pairs[:, 1]
    store = _open_store(args.store)
    rows = []
    for name in args.variants.split(","):
        name = name.strip()
        config = SBPConfig(variant=name, seed=args.seed)
        outcome = execute_job(
            JobSpec.for_graph(graph, config, runs=args.runs), store=store
        )
        best, all_results = outcome.best, outcome.results
        row: dict[str, object] = {
            "variant": name,
            "blocks": best.num_blocks,
            "MDL_norm": best.normalized_mdl,
            "modularity": directed_modularity(graph, best.assignment),
            "mcmc_s": sum(r.mcmc_seconds for r in all_results),
            "sweeps": sum(r.mcmc_sweeps for r in all_results),
        }
        if truth is not None:
            row["NMI"] = normalized_mutual_information(truth, best.assignment)
        rows.append(row)
    print(format_table(rows, title=f"{args.graph} (best of {args.runs})"))
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    truth = None
    if args.corpus:
        graph, truth = generate_synthetic(args.corpus, seed=args.seed)
    elif args.standin:
        graph = generate_real_world_standin(args.standin, seed=args.seed)
    else:
        graph, truth = generate_dcsbm(
            DCSBMParams(
                num_vertices=args.vertices,
                num_communities=args.communities,
                within_between_ratio=args.ratio,
                mean_degree=args.mean_degree,
                degree_exponent=args.exponent,
            ),
            seed=args.seed,
        )
    _save_graph(graph, args.output)
    print(f"wrote {graph.num_vertices} vertices / {graph.num_edges} edges "
          f"to {args.output}")
    if args.truth_output:
        if truth is None:
            print("no ground truth available for this source", file=sys.stderr)
            return 2
        with open(args.truth_output, "w", encoding="utf-8") as fh:
            fh.write("# vertex community\n")
            for v, c in enumerate(truth):
                fh.write(f"{v} {c}\n")
        print(f"wrote ground truth to {args.truth_output}")
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    from repro.streaming import StreamSession

    spec = get_stream_source(args.source)
    if args.source == "edgelist-dir":
        if not args.input:
            print("error: --source edgelist-dir requires --input DIR",
                  file=sys.stderr)
            return 2
        stream = spec.build(args.input)
    else:
        stream = spec.build(
            num_vertices=args.vertices,
            num_communities=args.communities,
            num_snapshots=args.snapshots,
            churn=args.churn,
            within_between_ratio=args.ratio,
            mean_degree=args.mean_degree,
            seed=args.seed,
        )
    config = SBPConfig(
        variant=args.variant,
        seed=args.seed,
        block_storage=args.block_storage,
        time_budget=args.time_budget,
    )
    checkpointer = None
    if args.checkpoint:
        from repro.resilience import RunCheckpointer

        checkpointer = RunCheckpointer(args.checkpoint)
    session = StreamSession(
        config,
        drift_policy=args.drift_policy,
        drift_threshold=args.drift_threshold,
        checkpointer=checkpointer,
    )
    result = session.run(stream)
    summary = {
        "source": args.source,
        "snapshots": len(result.snapshots),
        "warm_refits": result.warm_refits,
        "cold_fits": result.cold_fits,
        "drift_policy": result.drift_policy,
        "drift_threshold": result.drift_threshold,
        "final_blocks": result.final.num_blocks,
        "final_normalized_mdl": result.final.normalized_mdl,
        "interrupted": result.interrupted,
    }
    if stream.truth is not None:
        summary["final_nmi_vs_truth"] = normalized_mutual_information(
            stream.truth, result.final.assignment[: len(stream.truth)]
        )
    if result.interrupted:
        print(
            "note: stream interrupted (time budget or SIGINT); reporting the "
            "completed snapshots"
            + (f"; resume with --checkpoint {args.checkpoint}"
               if args.checkpoint else ""),
            file=sys.stderr,
        )
    if args.json:
        summary["per_snapshot"] = result.summary_rows()
        print(json.dumps(summary, indent=2))
    else:
        print(format_table(
            result.summary_rows(),
            title=f"stream: {args.source} ({args.drift_policy}, "
                  f"threshold {args.drift_threshold})",
        ))
        for key, value in summary.items():
            print(f"{key:22s} {value}")
    if args.output:
        from repro.io.serialize import save_stream_result

        save_stream_result(result, args.output)
        print(f"wrote stream result to {args.output}", file=sys.stderr)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.server import PartitionService

    budget = (
        int(args.store_budget_mb * 1_000_000)
        if args.store_budget_mb is not None
        else None
    )
    store_factory = get_result_store(args.store)
    if args.store == "memory":
        store = store_factory(size_budget_bytes=budget)
    else:
        store = store_factory(args.store_dir, size_budget_bytes=budget)
    queue = get_job_queue(args.queue)(
        lease_ttl=args.lease_ttl, max_attempts=args.max_attempts
    )
    service = PartitionService(
        store,
        queue,
        workers=args.workers,
        host=args.host,
        port=args.port,
        checkpoint_root=args.checkpoint,
    )
    service.serve_forever()
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph)
    stats = summarize(graph)
    for key, value in stats.as_row().items():
        print(f"{key:16s} {value}")
    print(f"{'digest':16s} {graph.digest()}")
    return 0


def _print_variants(args: argparse.Namespace) -> None:
    for name in available_variants():
        spec = get_variant_spec(name)
        config = SBPConfig(
            variant=name,
            vstar_fraction=args.vstar_fraction,
            num_batches=args.num_batches,
            tier_split=args.tier_split,
        )
        plan = build_plan(config)
        print(f"{name:8s} {spec.summary}")
        for segment in plan.segments:
            print(f"         - {segment.describe()}")
        print(f"         barriers/sweep: {plan.barriers_per_sweep}")


def _cmd_variants(args: argparse.Namespace) -> int:
    print(
        "note: 'repro variants' is deprecated; use 'repro registry --list' "
        "to see every engine registry (this section included)",
        file=sys.stderr,
    )
    _print_variants(args)
    return 0


def _first_doc_line(obj: object) -> str:
    """First non-empty docstring line — each registry's entry description."""
    for line in (getattr(obj, "__doc__", None) or "").splitlines():
        if line.strip():
            return line.strip()
    return ""


def _cmd_registry(args: argparse.Namespace) -> int:
    from repro.distributed.comm import transport_registry
    from repro.parallel.backend import (
        backend_registry,
        merge_backend_registry,
        update_strategy_registry,
    )

    # Every pluggable-engine registry, walked the same way: a section
    # title plus name -> one-line description. Variants additionally
    # render their sweep plans (the old ``variants`` command, folded in).
    sections: list[tuple[str, dict[str, str]]] = [
        (
            "execution backends (--backend; 'resilient:<inner>' composes)",
            {n: _first_doc_line(f) for n, f in sorted(backend_registry().items())},
        ),
        (
            "merge backends (--merge-backend)",
            {n: _first_doc_line(f) for n, f in sorted(merge_backend_registry().items())},
        ),
        (
            "update strategies (--update-strategy)",
            {n: _first_doc_line(f) for n, f in sorted(update_strategy_registry().items())},
        ),
        (
            "samplers (--sampler, with --sample-rate < 1.0)",
            {
                n: get_sampler(n).summary for n in available_samplers()
            },
        ),
        (
            "block storages (--block-storage)",
            {
                **{
                    n: _first_doc_line(get_block_storage(n))
                    for n in available_block_storages()
                },
                "auto": "Policy, not an engine: picks dense/hybrid from "
                        "(C, density, memory budget) at run start.",
            },
        ),
        (
            "transports (--backend distributed:<transport>:<ranks>)",
            {
                n: _first_doc_line(f)
                for n, f in sorted(transport_registry().items())
            },
        ),
        (
            "drift policies (stream --drift-policy)",
            {
                n: get_drift_policy(n).summary
                for n in available_drift_policies()
            },
        ),
        (
            "stream sources (stream --source)",
            {
                n: get_stream_source(n).summary
                for n in available_stream_sources()
            },
        ),
        (
            "result stores (serve --store, detect/compare --store)",
            {
                n: _first_doc_line(get_result_store(n))
                for n in available_result_stores()
            },
        ),
        (
            "job queues (serve --queue)",
            {
                n: _first_doc_line(get_job_queue(n))
                for n in available_job_queues()
            },
        ),
    ]
    print(f"variants (--variant): {len(available_variants())} registered")
    _print_variants(args)
    for title, entries in sections:
        print(f"\n{title}: {len(entries)} registered")
        width = max((len(n) for n in entries), default=0)
        for name, desc in entries.items():
            print(f"{name:{max(width, 8)}s} {desc}")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.verbose:
        from repro.utils.log import configure_logging

        configure_logging("INFO")
    handlers = {
        "detect": _cmd_detect,
        "compare": _cmd_compare,
        "generate": _cmd_generate,
        "stream": _cmd_stream,
        "serve": _cmd_serve,
        "info": _cmd_info,
        "variants": _cmd_variants,
        "registry": _cmd_registry,
    }
    from repro.errors import ReproError

    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        return 0  # downstream pager/head closed the pipe


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
