"""Shared experiment machinery: variant suites, best-of-N, speedups.

The paper's protocol (§4.2): each (graph, algorithm) pair is run 5 times,
the lowest-MDL result is kept for quality metrics, and MCMC/total time is
summed across all runs for the speedup figures. ``run_variant_suite``
implements exactly that and returns flat row dicts the reporting layer
renders.

Bench scale: pure-Python MCMC is slow, so the bench targets support two
scales selected by the ``REPRO_BENCH_SCALE`` environment variable —
``smoke`` (default: subset of graphs, 1 run each; minutes) and ``paper``
(full corpus, 3 runs; closer to an hour). Both preserve the evaluation's
qualitative shape.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from enum import Enum

from repro.core.results import SBPResult
from repro.core.variants import SBPConfig, Variant
from repro.graph.graph import Graph
from repro.metrics.mdl_metrics import partition_normalized_mdl
from repro.metrics.modularity import directed_modularity
from repro.metrics.nmi import normalized_mutual_information
from repro.service.jobs import JobSpec, execute_job
from repro.service.store import ResultStore
from repro.types import Assignment

__all__ = [
    "BenchScale",
    "current_scale",
    "VariantRun",
    "run_variant_suite",
    "speedup_rows",
]


class BenchScale(str, Enum):
    """Experiment size preset."""

    SMOKE = "smoke"
    PAPER = "paper"

    @property
    def runs(self) -> int:
        """Best-of-N repetitions per (graph, variant)."""
        return 1 if self is BenchScale.SMOKE else 3


def current_scale() -> BenchScale:
    """Scale selected by ``REPRO_BENCH_SCALE`` (default smoke)."""
    raw = os.environ.get("REPRO_BENCH_SCALE", "smoke").lower()
    try:
        return BenchScale(raw)
    except ValueError as exc:
        raise ValueError(
            f"REPRO_BENCH_SCALE must be 'smoke' or 'paper', got {raw!r}"
        ) from exc


@dataclass
class VariantRun:
    """Aggregated outcome of best-of-N runs of one variant on one graph."""

    graph_id: str
    variant: str
    best: SBPResult
    all_results: list[SBPResult]

    @property
    def total_mcmc_seconds(self) -> float:
        """MCMC time summed over all runs (the paper's speedup numerator)."""
        return sum(r.mcmc_seconds for r in self.all_results)

    @property
    def total_seconds(self) -> float:
        return sum(r.total_seconds for r in self.all_results)

    @property
    def total_merge_seconds(self) -> float:
        """Block-merge phase time summed over all runs (Fig. 2's other bar)."""
        return sum(r.timings.block_merge for r in self.all_results)

    @property
    def total_merge_scan_seconds(self) -> float:
        """Candidate-scan part of the merge phase (what the backends speed up)."""
        return sum(r.timings.merge_scan for r in self.all_results)

    @property
    def total_sweeps(self) -> int:
        return sum(r.mcmc_sweeps for r in self.all_results)

    def row(self, graph: Graph, truth: Assignment | None = None) -> dict[str, object]:
        row: dict[str, object] = {
            "graph": self.graph_id,
            "algorithm": _display_name(self.variant),
            "V": graph.num_vertices,
            "E": graph.num_edges,
            "blocks": self.best.num_blocks,
            "MDL_norm": self.best.normalized_mdl,
            "modularity": directed_modularity(graph, self.best.assignment),
            "mcmc_s": self.total_mcmc_seconds,
            "merge_s": self.total_merge_seconds,
            "total_s": self.total_seconds,
            "sweeps": self.total_sweeps,
        }
        if truth is not None:
            row["NMI"] = normalized_mutual_information(truth, self.best.assignment)
            row["truth_MDL_norm"] = partition_normalized_mdl(graph, truth)
        return row


def run_variant_suite(
    graph_id: str,
    graph: Graph,
    variants: list[Variant | str],
    runs: int = 1,
    seed: int = 0,
    config: SBPConfig | None = None,
    store: ResultStore | None = None,
) -> dict[str, VariantRun]:
    """Run each variant ``runs`` times on ``graph`` (best-of-N protocol).

    Each (variant, graph) pair is one service job executed through
    :func:`~repro.service.jobs.execute_job`, whose seed derivation
    (``spawn_seeds(seed, runs)``) replays the suite's historical member
    runs exactly. All variants share the same derived seed sequence so
    their MCMC phases are driven by comparable randomness. With a
    ``store``, a re-benched pair loads its byte-identical prior outcome
    instead of re-running (timings included — cached rows report the
    original run's clock, not zero).
    """
    if config is None:
        config = SBPConfig()
    out: dict[str, VariantRun] = {}
    for variant in variants:
        variant = Variant(variant)
        spec = JobSpec.for_graph(
            graph, config.replace(variant=variant, seed=seed), runs=runs
        )
        outcome = execute_job(spec, store=store)
        out[variant.value] = VariantRun(
            graph_id=graph_id,
            variant=variant.value,
            best=outcome.best,
            all_results=outcome.results,
        )
    return out


def speedup_rows(
    suites: dict[str, dict[str, VariantRun]],
    baseline: str = "sbp",
    metric: str = "mcmc",
) -> list[dict[str, object]]:
    """Per-graph speedup of each variant over the baseline.

    ``metric`` is ``'mcmc'`` (MCMC-phase time, Figs. 4b/6) or ``'total'``
    (overall runtime including the merge phase, the Amdahl numbers of
    §5.2/§5.4).
    """
    rows: list[dict[str, object]] = []
    for graph_id, suite in suites.items():
        base = suite.get(baseline)
        if base is None:
            raise KeyError(f"suite for {graph_id!r} lacks baseline {baseline!r}")
        base_time = (
            base.total_mcmc_seconds if metric == "mcmc" else base.total_seconds
        )
        row: dict[str, object] = {"graph": graph_id}
        for name, run in suite.items():
            if name == baseline:
                continue
            time = run.total_mcmc_seconds if metric == "mcmc" else run.total_seconds
            row[f"{_display_name(name)}_speedup"] = (
                base_time / time if time > 0 else float("inf")
            )
        rows.append(row)
    return rows


def _display_name(variant: str) -> str:
    return {
        "sbp": "SBP",
        "a-sbp": "A-SBP",
        "h-sbp": "H-SBP",
        "b-sbp": "B-SBP",
        "tiered": "Tiered-SBP",
    }.get(variant, variant)
