"""Experiment harness: drives every table/figure reproduction.

Each ``benchmarks/bench_*.py`` target is a thin wrapper over an
experiment function in :mod:`repro.bench.experiments`; shared machinery
(variant suites, speedup tables, ASCII rendering) lives here so the
experiments stay declarative.
"""

from repro.bench.harness import (
    BenchScale,
    current_scale,
    VariantRun,
    run_variant_suite,
    speedup_rows,
)
from repro.bench.reporting import format_table, format_series, write_report

__all__ = [
    "BenchScale",
    "current_scale",
    "VariantRun",
    "run_variant_suite",
    "speedup_rows",
    "format_table",
    "format_series",
    "write_report",
]
