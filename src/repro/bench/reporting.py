"""Plain-text rendering of experiment tables and series.

The paper reports its evaluation as tables and bar/line figures; the
bench targets print the same rows/series as ASCII and archive them under
``benchmarks/results/`` for inspection.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterable, Mapping

__all__ = ["format_table", "format_series", "format_grouped_bars", "write_report"]


def _fmt(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000 or (value != 0 and abs(value) < 0.001):
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)


def format_table(
    rows: Iterable[Mapping[str, object]],
    columns: list[str] | None = None,
    title: str | None = None,
) -> str:
    """Render dict-rows as an aligned ASCII table."""
    rows = list(rows)
    if not rows:
        return f"{title or 'table'}: (no rows)\n"
    if columns is None:
        columns = list(rows[0].keys())
    cells = [[_fmt(row.get(col, "")) for col in columns] for row in rows]
    widths = [
        max(len(col), *(len(row[i]) for row in cells)) for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(w) for col, w in zip(columns, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row in cells:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines) + "\n"


def format_series(
    series: Mapping[object, float],
    title: str | None = None,
    bar_width: int = 40,
    unit: str = "",
) -> str:
    """Render a key->value series as labeled ASCII bars (figure analogue)."""
    if not series:
        return f"{title or 'series'}: (empty)\n"
    max_value = max(abs(v) for v in series.values()) or 1.0
    key_width = max(len(str(k)) for k in series)
    lines = []
    if title:
        lines.append(title)
    for key, value in series.items():
        filled = int(round(bar_width * abs(value) / max_value))
        bar = "#" * filled
        lines.append(f"{str(key).ljust(key_width)}  {bar.ljust(bar_width)} {_fmt(value)}{unit}")
    return "\n".join(lines) + "\n"


def format_grouped_bars(
    rows: Iterable[Mapping[str, object]],
    group_key: str,
    value_keys: list[str],
    bar_width: int = 30,
    title: str | None = None,
    vmax: float | None = None,
) -> str:
    """Render per-group bars for several series — the paper's figure style.

    Each row becomes one group (e.g. a graph id) with one labeled bar per
    series in ``value_keys`` (e.g. NMI of SBP / H-SBP / A-SBP), scaled to
    a common maximum (``vmax`` or the observed one).
    """
    rows = list(rows)
    if not rows:
        return f"{title or 'figure'}: (no rows)\n"
    observed = [
        float(row[k])
        for row in rows
        for k in value_keys
        if isinstance(row.get(k), (int, float)) and row[k] == row[k]
    ]
    scale = vmax if vmax is not None else (max(observed, default=1.0) or 1.0)
    label_width = max(len(k) for k in value_keys)
    lines = []
    if title:
        lines.append(title)
    for row in rows:
        lines.append(f"{row.get(group_key, '?')}")
        for key in value_keys:
            value = row.get(key)
            if not isinstance(value, (int, float)) or value != value:
                lines.append(f"  {key.ljust(label_width)} (n/a)")
                continue
            filled = int(round(bar_width * min(abs(float(value)) / scale, 1.0)))
            lines.append(
                f"  {key.ljust(label_width)} {('#' * filled).ljust(bar_width)} "
                f"{_fmt(value)}"
            )
    return "\n".join(lines) + "\n"


def write_report(name: str, text: str, directory: str | os.PathLike[str] | None = None) -> Path:
    """Print ``text`` and archive it under the results directory.

    The directory defaults to ``$REPRO_RESULTS_DIR`` or
    ``benchmarks/results`` relative to the current working directory.
    """
    print(text)
    if directory is None:
        directory = os.environ.get("REPRO_RESULTS_DIR", "benchmarks/results")
    path = Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    out = path / f"{name}.txt"
    out.write_text(text, encoding="utf-8")
    return out
