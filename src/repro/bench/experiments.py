"""Experiment definitions — one per paper table/figure (see DESIGN.md §3).

Each function returns plain rows/series so the bench targets only render
and archive. Expensive suites (the full synthetic and real-world
evaluations) are cached per process because several figures share the
same underlying runs, exactly as in the paper (Figs. 4a, 4b and 8a all
come from one set of runs).
"""

from __future__ import annotations

import time

from repro.bench.harness import BenchScale, VariantRun, run_variant_suite
from repro.core.sbp import run_sbp
from repro.core.variants import SBPConfig, Variant
from repro.generators.corpus import SYNTHETIC_SPECS, corpus_ids, generate_synthetic
from repro.generators.realworld import (
    REAL_WORLD_SPECS,
    generate_real_world_standin,
    real_world_ids,
)
from repro.graph.properties import summarize
from repro.metrics.correlation import CorrelationFit, fit_correlation
from repro.metrics.influence import (
    influence_degree_correlation,
    total_influence,
)
from repro.metrics.nmi import normalized_mutual_information
from repro.parallel.simulate import SimulatedThreadModel

__all__ = [
    "SMOKE_SYNTHETIC_IDS",
    "SMOKE_REAL_WORLD_IDS",
    "table1_rows",
    "table2_rows",
    "synthetic_suites",
    "real_world_suites",
    "fig2_breakdown_rows",
    "fig3_correlations",
    "fig4a_nmi_rows",
    "fig4b_speedup_rows",
    "fig5_quality_rows",
    "fig6_speedup_rows",
    "fig7_scaling_series",
    "fig8_iteration_rows",
    "influence_ablation_rows",
    "hybrid_fraction_ablation_rows",
]

#: Smoke-scale subsets: one graph per (r, density) corner plus marginals.
SMOKE_SYNTHETIC_IDS = ["S2", "S4", "S6", "S8", "S10", "S14", "S22"]
SMOKE_REAL_WORLD_IDS = [
    "rajat01",
    "wiki-Vote",
    "barth5",
    "p2p-Gnutella31",
    "soc-Slashdot0902",
    "web-BerkStan",
]

_SUITE_CACHE: dict[tuple, dict] = {}


def _synthetic_ids(scale: BenchScale) -> list[str]:
    if scale is BenchScale.SMOKE:
        return list(SMOKE_SYNTHETIC_IDS)
    return corpus_ids(include_redacted=True)


def _real_world_names(scale: BenchScale) -> list[str]:
    if scale is BenchScale.SMOKE:
        return list(SMOKE_REAL_WORLD_IDS)
    return real_world_ids()


# ----------------------------------------------------------------------
# Tables 1 and 2
# ----------------------------------------------------------------------
def table1_rows(seed: int = 0) -> list[dict[str, object]]:
    """Generated corpus statistics in Table 1's format (all 24 graphs)."""
    rows = []
    for gid in corpus_ids(include_redacted=True):
        spec = SYNTHETIC_SPECS[gid]
        graph, truth = generate_synthetic(gid, seed=seed)
        stats = summarize(graph)
        rows.append(
            {
                "ID": gid,
                "V": graph.num_vertices,
                "E": graph.num_edges,
                "r": spec.r,
                "dense": spec.dense,
                "communities": int(truth.max()) + 1,
                "mean_degree": stats.mean_degree,
                "plaw_exponent": stats.power_law_exponent,
            }
        )
    return rows


def table2_rows(seed: int = 0) -> list[dict[str, object]]:
    """Stand-in statistics next to the original Table 2 graphs."""
    rows = []
    for name in real_world_ids():
        spec = REAL_WORLD_SPECS[name]
        graph = generate_real_world_standin(name, seed=seed)
        rows.append(
            {
                "ID": name,
                "domain": spec.domain,
                "paper_V": spec.paper_vertices,
                "paper_E": spec.paper_edges,
                "standin_V": graph.num_vertices,
                "standin_E": graph.num_edges,
                "paper_E/V": spec.paper_edges / spec.paper_vertices,
                "standin_E/V": graph.num_edges / graph.num_vertices,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Shared evaluation suites
# ----------------------------------------------------------------------
def synthetic_suites(
    scale: BenchScale, seed: int = 0
) -> dict[str, dict[str, VariantRun]]:
    """SBP/A-SBP/H-SBP on the synthetic corpus (cached per scale)."""
    key = ("synthetic", scale, seed)
    if key not in _SUITE_CACHE:
        suites: dict[str, dict[str, VariantRun]] = {}
        for gid in _synthetic_ids(scale):
            graph, truth = generate_synthetic(gid, seed=seed)
            suite = run_variant_suite(
                gid,
                graph,
                [Variant.SBP, Variant.ASBP, Variant.HSBP],
                runs=scale.runs,
                seed=seed + 17,
            )
            for run in suite.values():
                run.graph_ref = graph  # type: ignore[attr-defined]
                run.truth_ref = truth  # type: ignore[attr-defined]
            suites[gid] = suite
        _SUITE_CACHE[key] = suites
    return _SUITE_CACHE[key]


def real_world_suites(
    scale: BenchScale, seed: int = 0
) -> dict[str, dict[str, VariantRun]]:
    """SBP and H-SBP on the real-world stand-ins (cached per scale).

    Mirrors the paper: A-SBP is not run on the real-world graphs.
    """
    key = ("realworld", scale, seed)
    if key not in _SUITE_CACHE:
        suites: dict[str, dict[str, VariantRun]] = {}
        for name in _real_world_names(scale):
            graph = generate_real_world_standin(name, seed=seed)
            suite = run_variant_suite(
                name,
                graph,
                [Variant.SBP, Variant.HSBP],
                runs=scale.runs,
                seed=seed + 29,
            )
            for run in suite.values():
                run.graph_ref = graph  # type: ignore[attr-defined]
                run.truth_ref = None  # type: ignore[attr-defined]
            suites[name] = suite
        _SUITE_CACHE[key] = suites
    return _SUITE_CACHE[key]


# ----------------------------------------------------------------------
# Fig. 2 — execution time breakdown
# ----------------------------------------------------------------------
def fig2_breakdown_rows(scale: BenchScale, seed: int = 0) -> list[dict[str, object]]:
    """Percent of serial-SBP runtime spent in the MCMC phase per graph."""
    suites = synthetic_suites(scale, seed)
    rows = []
    for gid, suite in suites.items():
        run = suite["sbp"]
        mcmc = run.total_mcmc_seconds
        total = run.total_seconds
        merge = run.total_merge_seconds
        rows.append(
            {
                "graph": gid,
                "mcmc_s": mcmc,
                "merge_s": merge,
                "merge_scan_s": run.total_merge_scan_seconds,
                "other_s": total - mcmc - merge,
                "mcmc_pct": 100.0 * mcmc / total if total > 0 else 0.0,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Fig. 3 — NMI vs modularity / normalized MDL correlation
# ----------------------------------------------------------------------
def fig3_correlations(
    scale: BenchScale, seed: int = 0
) -> tuple[CorrelationFit, CorrelationFit, list[dict[str, object]]]:
    """Returns (NMI~modularity fit, NMI~MDL_norm fit, the score rows).

    The MDL fit uses ``1 - MDL_norm`` so both fits are increasing-good;
    the paper's claim is about correlation *strength* (r^2), which is
    sign-invariant.
    """
    from repro.metrics.modularity import directed_modularity

    suites = synthetic_suites(scale, seed)
    rows = []
    for gid, suite in suites.items():
        for name, run in suite.items():
            graph = run.graph_ref  # type: ignore[attr-defined]
            truth = run.truth_ref  # type: ignore[attr-defined]
            rows.append(
                {
                    "graph": gid,
                    "algorithm": name,
                    "NMI": normalized_mutual_information(truth, run.best.assignment),
                    "modularity": directed_modularity(graph, run.best.assignment),
                    "MDL_norm": run.best.normalized_mdl,
                }
            )
    nmi = [r["NMI"] for r in rows]
    modularity = [r["modularity"] for r in rows]
    inv_mdl = [1.0 - r["MDL_norm"] for r in rows]
    return (
        fit_correlation(modularity, nmi),
        fit_correlation(inv_mdl, nmi),
        rows,
    )


# ----------------------------------------------------------------------
# Figs. 4a / 4b / 8a — synthetic accuracy, speedup, iterations
# ----------------------------------------------------------------------
def fig4a_nmi_rows(scale: BenchScale, seed: int = 0) -> list[dict[str, object]]:
    suites = synthetic_suites(scale, seed)
    rows = []
    for gid, suite in suites.items():
        truth = suite["sbp"].truth_ref  # type: ignore[attr-defined]
        row: dict[str, object] = {"graph": gid}
        for name in ("sbp", "h-sbp", "a-sbp"):
            run = suite[name]
            row[f"NMI_{name}"] = normalized_mutual_information(
                truth, run.best.assignment
            )
        rows.append(row)
    return rows


def fig4b_speedup_rows(scale: BenchScale, seed: int = 0) -> list[dict[str, object]]:
    suites = synthetic_suites(scale, seed)
    rows = []
    for gid, suite in suites.items():
        base = suite["sbp"].total_mcmc_seconds
        base_total = suite["sbp"].total_seconds
        rows.append(
            {
                "graph": gid,
                "ASBP_mcmc_speedup": base / max(suite["a-sbp"].total_mcmc_seconds, 1e-12),
                "HSBP_mcmc_speedup": base / max(suite["h-sbp"].total_mcmc_seconds, 1e-12),
                "ASBP_overall_speedup": base_total / max(suite["a-sbp"].total_seconds, 1e-12),
                "HSBP_overall_speedup": base_total / max(suite["h-sbp"].total_seconds, 1e-12),
            }
        )
    return rows


def fig8_iteration_rows(
    scale: BenchScale, seed: int = 0, real_world: bool = False
) -> list[dict[str, object]]:
    """MCMC sweep counts per algorithm (Fig. 8a synthetic, 8b real-world)."""
    suites = real_world_suites(scale, seed) if real_world else synthetic_suites(scale, seed)
    rows = []
    for gid, suite in suites.items():
        row: dict[str, object] = {"graph": gid}
        for name, run in suite.items():
            row[f"sweeps_{name}"] = run.total_sweeps
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Figs. 5 / 6 — real-world quality and speedup
# ----------------------------------------------------------------------
def fig5_quality_rows(scale: BenchScale, seed: int = 0) -> list[dict[str, object]]:
    from repro.metrics.modularity import directed_modularity

    suites = real_world_suites(scale, seed)
    rows = []
    for name, suite in suites.items():
        graph = suite["sbp"].graph_ref  # type: ignore[attr-defined]
        row: dict[str, object] = {"graph": name}
        for variant in ("sbp", "h-sbp"):
            run = suite[variant]
            row[f"MDLnorm_{variant}"] = run.best.normalized_mdl
            row[f"modularity_{variant}"] = directed_modularity(
                graph, run.best.assignment
            )
        rows.append(row)
    return rows


def fig6_speedup_rows(scale: BenchScale, seed: int = 0) -> list[dict[str, object]]:
    suites = real_world_suites(scale, seed)
    rows = []
    for name, suite in suites.items():
        base = suite["sbp"]
        hybrid = suite["h-sbp"]
        rows.append(
            {
                "graph": name,
                "HSBP_mcmc_speedup": base.total_mcmc_seconds
                / max(hybrid.total_mcmc_seconds, 1e-12),
                "HSBP_overall_speedup": base.total_seconds
                / max(hybrid.total_seconds, 1e-12),
            }
        )
    return rows


# ----------------------------------------------------------------------
# Fig. 7 — strong scaling on soc-Slashdot0902 (simulated threads)
# ----------------------------------------------------------------------
def fig7_scaling_series(
    scale: BenchScale,
    seed: int = 0,
    thread_counts: list[int] | None = None,
    schedule: str = "static",
) -> tuple[dict[int, float], dict[int, float]]:
    """Modeled MCMC runtime/speedup of H-SBP under 1..128 threads.

    Runs H-SBP once on the soc-Slashdot0902 stand-in with per-sweep work
    recording, calibrates the thread model with the measured 1-thread
    MCMC time, and replays under each thread count (DESIGN.md §4,
    substitution 1). Returns (seconds per thread count, speedups).
    """
    if thread_counts is None:
        thread_counts = [1, 2, 4, 8, 16, 32, 64, 128]
    graph = generate_real_world_standin("soc-Slashdot0902", seed=seed)
    config = SBPConfig(variant=Variant.HSBP, seed=seed + 5, record_work=True)
    start = time.perf_counter()
    result = run_sbp(graph, config)
    elapsed = time.perf_counter() - start
    del elapsed  # measured phase times live in result.timings
    # The paper parallelizes the per-sweep blockmodel reconstruction
    # (§3.1: "this overhead can be reduced by performing the
    # reconstruction of B in parallel"); model half of it as parallel.
    model = SimulatedThreadModel.calibrated(
        result.sweep_stats,
        measured_mcmc_seconds=result.timings.mcmc,
        measured_rebuild_seconds=result.timings.rebuild,
        schedule=schedule,
        rebuild_parallel_fraction=0.5,
    )
    seconds = model.scaling_curve(thread_counts)
    speedups = model.speedup_curve(thread_counts)
    return seconds, speedups


# ----------------------------------------------------------------------
# Ablations (§2.3 influence, §4.2 V* fraction)
# ----------------------------------------------------------------------
def influence_ablation_rows(seed: int = 0) -> list[dict[str, object]]:
    """Empirical check of the degree-influence assumption behind H-SBP.

    On small DCSBM graphs (where Eq. 3 is computable) the rows report
    the local total influence, its wall-clock cost — making the paper's
    intractability point measurable — and the Spearman correlation
    between per-vertex influence and degree.
    """
    from repro.generators.dcsbm import DCSBMParams, generate_dcsbm

    rows = []
    for num_vertices in (20, 35, 50):
        graph, truth = generate_dcsbm(
            DCSBMParams(
                num_vertices=num_vertices,
                num_communities=3,
                within_between_ratio=6.0,
                mean_degree=5.0,
            ),
            seed=seed + num_vertices,
        )
        start = time.perf_counter()
        alpha = total_influence(graph, truth, beta=1.0)
        alpha_seconds = time.perf_counter() - start
        rho = influence_degree_correlation(graph, truth, beta=1.0)
        rows.append(
            {
                "V": num_vertices,
                "E": graph.num_edges,
                "alpha": alpha,
                "alpha_seconds": alpha_seconds,
                "degree_spearman_rho": rho,
            }
        )
    return rows


def hybrid_fraction_ablation_rows(
    seed: int = 0, graph_id: str = "S2", fractions: list[float] | None = None
) -> list[dict[str, object]]:
    """H-SBP quality/time as the serial V* fraction sweeps 0 -> 0.5.

    Fraction 0 degenerates to A-SBP, large fractions approach serial
    SBP; the paper fixes 15% — this ablation shows the tradeoff that
    choice sits on.
    """
    if fractions is None:
        fractions = [0.0, 0.05, 0.15, 0.30, 0.50]
    graph, truth = generate_synthetic(graph_id, seed=seed)
    rows = []
    for fraction in fractions:
        config = SBPConfig(
            variant=Variant.HSBP, vstar_fraction=fraction, seed=seed + 3
        )
        result = run_sbp(graph, config)
        rows.append(
            {
                "vstar_fraction": fraction,
                "NMI": normalized_mutual_information(truth, result.assignment),
                "MDL_norm": result.normalized_mdl,
                "mcmc_s": result.mcmc_seconds,
                "sweeps": result.mcmc_sweeps,
            }
        )
    return rows
