"""The unified job engine: one spec, one digest, one execution path.

Every entry point that used to hand-roll its own build-config/run/save
loop — ``repro detect``, ``repro compare``, the bench harness's
``run_variant_suite`` and the long-running ``repro serve`` service — now
describes its work as a :class:`JobSpec` and executes it through
:func:`execute_job`. That buys all of them the same three properties:

* **a content address** — :func:`job_digest` composes
  :meth:`Graph.digest() <repro.graph.graph.Graph.digest>` (the graph
  half) with :func:`~repro.resilience.checkpoint.config_digest` (the
  chain-determining config half), plus the mode and best-of run count.
  Stream jobs extend the address with every batch's content and the
  drift policy, since those determine the trajectory too.
* **cache discipline** — with a :class:`~repro.service.store.ResultStore`
  a digest hit loads a byte-equal outcome instead of re-running MCMC.
  This is sound because every engine in the repo is bit-identical by
  construction and the digest covers exactly the fields the checkpoint
  layer proves determine the chain.
* **resilient execution** — jobs run under
  :class:`~repro.core.fit_session.FitSession` /
  :class:`~repro.streaming.session.StreamSession`; an optional
  checkpointer snapshots progress so a re-leased job resumes instead of
  restarting, and ``resilient=True`` wraps the execution backend in the
  ``resilient:<inner>`` timeout/retry/fallback chain.

``block_storage="auto"`` is resolved against the graph *before* the
digest is computed, mirroring the checkpoint layer: the digest records
the decision, so an ``auto`` job and the equivalent explicit config
share a cache entry.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from repro.core.results import SBPResult, best_of
from repro.core.variants import SBPConfig
from repro.errors import ServiceError
from repro.graph.graph import Graph
from repro.resilience.checkpoint import RunCheckpointer, config_digest
from repro.service.store import ResultStore
from repro.streaming.source import EdgeStream
from repro.utils.log import get_logger

__all__ = ["JOB_MODES", "JobSpec", "JobOutcome", "job_digest", "execute_job"]

_log = get_logger("service.jobs")

#: ``fit`` — full-graph best-of-N search; ``sample`` — the SamBaS
#: front-end (``sample_rate < 1.0``); ``stream`` — a snapshot stream
#: under the drift-policied warm/cold session.
JOB_MODES = ("fit", "sample", "stream")


@dataclass(frozen=True)
class JobSpec:
    """Everything that determines a job's result, and nothing else.

    ``graph`` is the full graph (``fit`` / ``sample``) or the stream's
    initial graph (``stream``; it must be ``stream.graph``). Wall-clock
    knobs like ``time_budget`` ride along inside ``config`` but are
    excluded from the digest by :func:`config_digest`, exactly as they
    are excluded from checkpoint compatibility.
    """

    graph: Graph
    config: SBPConfig
    mode: str = "fit"
    #: best-of-N repetitions (the paper's §4.2 protocol); ignored by
    #: ``stream`` jobs, which fit each snapshot once.
    runs: int = 1
    #: the edge stream for ``stream`` jobs (``graph`` is its initial graph).
    stream: EdgeStream | None = None
    drift_policy: str = "mdl-ratio"
    drift_threshold: float = 0.05

    def __post_init__(self) -> None:
        if self.mode not in JOB_MODES:
            raise ServiceError(f"mode must be one of {JOB_MODES}, got {self.mode!r}")
        if self.runs < 1:
            raise ServiceError(f"runs must be >= 1, got {self.runs}")
        if self.mode == "stream":
            if self.stream is None:
                raise ServiceError("stream jobs need an EdgeStream")
            if self.stream.graph is not self.graph:
                raise ServiceError(
                    "a stream job's graph must be its stream's initial graph"
                )
        elif self.stream is not None:
            raise ServiceError(f"{self.mode} jobs must not carry a stream")
        if self.mode == "sample" and self.config.sample_rate >= 1.0:
            raise ServiceError("sample jobs need config.sample_rate < 1.0")
        if self.mode == "fit" and self.config.sample_rate < 1.0:
            raise ServiceError(
                "fit jobs need config.sample_rate == 1.0 (use mode='sample')"
            )

    @classmethod
    def for_graph(
        cls, graph: Graph, config: SBPConfig | None = None, runs: int = 1
    ) -> "JobSpec":
        """A fit/sample job, the mode derived from ``config.sample_rate``."""
        if config is None:
            config = SBPConfig()
        mode = "sample" if config.sample_rate < 1.0 else "fit"
        return cls(graph=graph, config=config, mode=mode, runs=runs)

    @classmethod
    def for_stream(
        cls,
        stream: EdgeStream,
        config: SBPConfig | None = None,
        *,
        drift_policy: str = "mdl-ratio",
        drift_threshold: float = 0.05,
    ) -> "JobSpec":
        """A stream job over ``stream``'s snapshots."""
        if config is None:
            config = SBPConfig()
        return cls(
            graph=stream.graph,
            config=config,
            mode="stream",
            stream=stream,
            drift_policy=drift_policy,
            drift_threshold=drift_threshold,
        )

    def resolved(self) -> "JobSpec":
        """Copy with ``block_storage="auto"`` resolved against the graph.

        Must run before :func:`job_digest`, mirroring the checkpoint
        layer: the digest records the resolved *decision*.
        """
        from dataclasses import replace

        from repro.core.fit_session import resolve_storage_policy

        config = resolve_storage_policy(self.graph, self.config)
        if config is self.config:
            return self
        return replace(self, config=config)

    def digest(self) -> str:
        """The job's content address (always of the *resolved* spec)."""
        return job_digest(self.resolved())


def _batch_digest(h: "hashlib._Hash", stream: EdgeStream) -> None:
    """Fold every batch's content into ``h`` (order matters, by design)."""
    for batch in stream.batches:
        h.update(b"batch")
        h.update(int(batch.num_vertices or 0).to_bytes(8, "little"))
        h.update(batch.add.astype("<i8", copy=False).tobytes())
        h.update(b"/")
        h.update(batch.remove.astype("<i8", copy=False).tobytes())


def job_digest(spec: JobSpec) -> str:
    """Canonical content address of a job: sha256 over (graph, config,
    mode, runs[, stream batches + drift policy]).

    The config half reuses :func:`config_digest`, so the address covers
    exactly the chain-determining fields — execution backends, which are
    bit-identical by construction, deliberately do not fragment the
    cache. Call :meth:`JobSpec.resolved` first so an ``auto`` storage
    policy hashes as its resolved engine.
    """
    payload = {
        "graph": spec.graph.digest(),
        "config": config_digest(spec.config),
        "mode": spec.mode,
        "runs": spec.runs if spec.mode != "stream" else 1,
    }
    h = hashlib.sha256(json.dumps(payload, sort_keys=True).encode("utf-8"))
    if spec.mode == "stream":
        h.update(
            f"stream:{spec.drift_policy}:{spec.drift_threshold!r}".encode("utf-8")
        )
        _batch_digest(h, spec.stream)
    return h.hexdigest()[:32]


@dataclass
class JobOutcome:
    """What :func:`execute_job` returns (and the store persists).

    ``results`` holds the best-of-N member results for fit/sample jobs
    and the per-snapshot results for stream jobs (so callers aggregate
    timings the same way in both shapes); ``stream`` additionally holds
    the full :class:`~repro.streaming.session.StreamResult` container
    for stream jobs.
    """

    digest: str
    mode: str
    results: list[SBPResult] = field(default_factory=list)
    stream: object | None = None  # StreamResult for mode="stream"
    #: True when this outcome was loaded from a store instead of run.
    cache_hit: bool = False

    @property
    def best(self) -> SBPResult:
        """Lowest-MDL member (fit/sample) or final snapshot (stream)."""
        if self.mode == "stream":
            return self.stream.final
        return best_of(self.results)

    @property
    def interrupted(self) -> bool:
        return any(r.interrupted for r in self.results)

    def summary(self) -> dict[str, object]:
        """Flat rollup for status endpoints and reports."""
        best = self.best
        out: dict[str, object] = {
            "digest": self.digest,
            "mode": self.mode,
            "runs": len(self.results),
            "cache_hit": self.cache_hit,
            "variant": best.variant,
            "V": best.num_vertices,
            "E": best.num_edges,
            "blocks": best.num_blocks,
            "MDL_norm": best.normalized_mdl,
            "mcmc_s": sum(r.mcmc_seconds for r in self.results),
            "sweeps": sum(r.mcmc_sweeps for r in self.results),
            "interrupted": self.interrupted,
        }
        if self.mode == "stream":
            out["warm_refits"] = self.stream.warm_refits
            out["cold_fits"] = self.stream.cold_fits
        return out


def execute_job(
    spec: JobSpec,
    store: ResultStore | None = None,
    checkpointer: RunCheckpointer | None = None,
    *,
    resilient: bool = False,
) -> JobOutcome:
    """Execute ``spec``, consulting ``store`` first (see module doc).

    A digest hit in ``store`` returns the cached outcome without running
    anything; a miss runs the job and puts the outcome. Interrupted
    outcomes (time budget, SIGINT, degraded shard) are returned but
    *never* cached — a rerun must finish the work, not re-serve a
    partial result.
    """
    spec = spec.resolved()
    digest = spec.digest()
    if store is not None:
        cached = store.get(digest)
        if cached is not None:
            _log.info("job %s: cache hit (%s)", digest[:12], spec.mode)
            return cached

    config = spec.config
    if resilient and not any(
        config.backend.startswith(p) for p in ("resilient:", "distributed:")
    ):
        # The distributed runtime owns its own fault tolerance; plain
        # backends get the timeout/retry/fallback chain (bit-identical).
        config = config.replace(backend=f"resilient:{config.backend}")

    if spec.mode == "stream":
        from repro.streaming.session import StreamSession

        session = StreamSession(
            config,
            drift_policy=spec.drift_policy,
            drift_threshold=spec.drift_threshold,
            checkpointer=checkpointer,
        )
        stream_result = session.run(spec.stream)
        outcome = JobOutcome(
            digest=digest,
            mode=spec.mode,
            results=[snap.result for snap in stream_result.snapshots],
            stream=stream_result,
        )
    else:
        from repro.core.sbp import run_best_of

        _, results = run_best_of(
            spec.graph, config, runs=spec.runs, checkpointer=checkpointer
        )
        outcome = JobOutcome(digest=digest, mode=spec.mode, results=results)

    if store is not None and not outcome.interrupted:
        store.put(outcome)
    return outcome
