"""Content-addressed result store: ``job_digest -> JobOutcome``.

The store is the service's cache discipline: a job's digest is a pure
function of (graph content, chain-determining config, mode, runs), and
every engine in the repo is bit-identical by construction, so a stored
outcome *is* the outcome of re-running the job. A cache hit therefore
loads a byte-equal result instead of re-running MCMC.

Two registered engines share one contract:

* ``disk`` — one JSON artifact per digest under a two-level fan-out
  (``ab/abcdef...json``), written through
  :func:`~repro.io.serialize.atomic_write` so a crash mid-put can never
  leave a truncated entry, with an LRU size-budget eviction policy
  (reads refresh recency via mtime);
* ``memory`` — the same serialized bytes held in a dict, for tests and
  in-process services.

Both serialize through the versioned result format
(:func:`~repro.io.serialize.result_payload` /
:func:`~repro.io.serialize.stream_payload`), so store entries survive
format growth exactly like plain result files do, and both count
hits / misses / puts / evictions for :func:`~repro.diagnostics.run_health`.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.errors import ServiceError
from repro.io.serialize import (
    _RESULT_FORMAT_VERSION,
    _check_version,
    atomic_write,
    result_from_payload,
    result_payload,
    stream_from_payload,
    stream_payload,
)

__all__ = [
    "StoreStats",
    "ResultStore",
    "DiskResultStore",
    "MemoryResultStore",
    "register_result_store",
    "get_result_store",
    "available_result_stores",
]

_OUTCOME_FORMAT = "repro.job_outcome"


@dataclass
class StoreStats:
    """Cache accounting, surfaced through ``run_health`` and ``/health``."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0

    def as_dict(self, entries: int, bytes_used: int) -> dict[str, int]:
        return {
            "entries": entries,
            "bytes": bytes_used,
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
        }


def _encode_outcome(outcome) -> bytes:
    """Serialize a :class:`~repro.service.jobs.JobOutcome` to JSON bytes."""
    payload: dict = {
        "format": _OUTCOME_FORMAT,
        "version": _RESULT_FORMAT_VERSION,
        "digest": outcome.digest,
        "mode": outcome.mode,
        "runs": len(outcome.results),
        "results": [result_payload(r) for r in outcome.results],
        "stream": (
            stream_payload(outcome.stream) if outcome.stream is not None else None
        ),
    }
    return json.dumps(payload, indent=2).encode("utf-8")


def _decode_outcome(name: str, raw: bytes):
    """Inverse of :func:`_encode_outcome`; ``name`` labels decode errors."""
    from repro.errors import SerializationError
    from repro.service.jobs import JobOutcome

    try:
        payload = json.loads(raw.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise SerializationError(f"{name}: corrupt store entry ({exc})") from exc
    if not isinstance(payload, dict) or payload.get("format") != _OUTCOME_FORMAT:
        raise SerializationError(f"{name}: not a {_OUTCOME_FORMAT} entry")
    _check_version(name, payload, _RESULT_FORMAT_VERSION)
    try:
        results = [result_from_payload(name, p) for p in payload["results"]]
        stream = (
            stream_from_payload(name, payload["stream"])
            if payload.get("stream") is not None
            else None
        )
        return JobOutcome(
            digest=str(payload["digest"]),
            mode=str(payload["mode"]),
            results=results,
            stream=stream,
            cache_hit=True,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SerializationError(
            f"{name}: malformed job outcome field ({exc!r})"
        ) from exc


class ResultStore:
    """Contract shared by the registered store engines.

    ``get`` returns a cached :class:`~repro.service.jobs.JobOutcome`
    (flagged ``cache_hit=True``) or ``None``; ``put`` persists one.
    Subclasses implement the byte-level ``_read`` / ``_write`` /
    ``_entries`` primitives; accounting and (de)serialization live here
    so every engine counts identically.
    """

    def __init__(self) -> None:
        self.stats = StoreStats()

    # -- byte-level primitives (engine-specific) -----------------------
    def _read(self, digest: str) -> bytes | None:
        raise NotImplementedError

    def _write(self, digest: str, raw: bytes) -> None:
        raise NotImplementedError

    def _entries(self) -> list[tuple[str, int]]:
        """(digest, size_bytes) of every stored entry."""
        raise NotImplementedError

    # -- contract ------------------------------------------------------
    def get(self, digest: str):
        raw = self._read(digest)
        if raw is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return _decode_outcome(f"store:{digest}", raw)

    def put(self, outcome) -> None:
        self._write(outcome.digest, _encode_outcome(outcome))
        self.stats.puts += 1

    def __contains__(self, digest: str) -> bool:
        return self._read(digest) is not None

    def digests(self) -> list[str]:
        return sorted(d for d, _ in self._entries())

    @property
    def bytes_used(self) -> int:
        return sum(size for _, size in self._entries())

    def health(self) -> dict[str, int]:
        entries = self._entries()
        return self.stats.as_dict(len(entries), sum(s for _, s in entries))


class DiskResultStore(ResultStore):
    """On-disk store: one atomic JSON artifact per digest, LRU eviction.

    Parameters
    ----------
    directory:
        Store root; created on first put. Entries live under a
        two-level fan-out (``ab/abcdef...json``) keyed by digest prefix.
    size_budget_bytes:
        Soft cap on total store size. After every put, least-recently-
        used entries (by mtime; reads refresh it) are evicted until the
        store fits — except the entry just written, which always
        survives. ``None`` disables eviction.
    """

    def __init__(
        self,
        directory: str | os.PathLike[str],
        size_budget_bytes: int | None = None,
    ) -> None:
        super().__init__()
        if size_budget_bytes is not None and size_budget_bytes <= 0:
            raise ServiceError(
                f"size_budget_bytes must be positive, got {size_budget_bytes}"
            )
        self.directory = Path(directory)
        self.size_budget_bytes = size_budget_bytes

    def _path(self, digest: str) -> Path:
        return self.directory / digest[:2] / f"{digest}.json"

    def _read(self, digest: str) -> bytes | None:
        path = self._path(digest)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            return None
        os.utime(path)  # refresh LRU recency
        return raw

    def _write(self, digest: str, raw: bytes) -> None:
        path = self._path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        with atomic_write(path, mode="wb") as fh:
            fh.write(raw)
        self._evict(keep=digest)

    def _entries(self) -> list[tuple[str, int]]:
        if not self.directory.is_dir():
            return []
        out = []
        for path in self.directory.glob("??/*.json"):
            try:
                out.append((path.stem, path.stat().st_size))
            except FileNotFoundError:  # pragma: no cover - concurrent evict
                continue
        return out

    def _evict(self, keep: str) -> None:
        if self.size_budget_bytes is None:
            return
        stat_rows = []
        for path in self.directory.glob("??/*.json"):
            try:
                st = path.stat()
            except FileNotFoundError:  # pragma: no cover - concurrent evict
                continue
            stat_rows.append((st.st_mtime_ns, path.stat().st_size, path))
        total = sum(size for _, size, _ in stat_rows)
        for _, size, path in sorted(stat_rows, key=lambda row: row[0]):
            if total <= self.size_budget_bytes:
                break
            if path.stem == keep:
                continue  # the entry just written always survives
            try:
                path.unlink()
            except FileNotFoundError:  # pragma: no cover - concurrent evict
                continue
            total -= size
            self.stats.evictions += 1


class MemoryResultStore(ResultStore):
    """In-process store holding serialized bytes (tests, inproc services).

    Keeping *bytes* rather than live objects preserves the disk store's
    contract exactly: a hit deserializes through the same versioned
    format, so byte-equality of cached results is engine-independent.
    """

    def __init__(self, size_budget_bytes: int | None = None) -> None:
        super().__init__()
        self.size_budget_bytes = size_budget_bytes
        self._data: dict[str, bytes] = {}  # insertion/access-ordered = LRU

    def _read(self, digest: str) -> bytes | None:
        raw = self._data.get(digest)
        if raw is not None:
            self._data[digest] = self._data.pop(digest)  # refresh recency
        return raw

    def _write(self, digest: str, raw: bytes) -> None:
        self._data.pop(digest, None)
        self._data[digest] = raw
        if self.size_budget_bytes is None:
            return
        while (
            sum(len(b) for b in self._data.values()) > self.size_budget_bytes
            and len(self._data) > 1
        ):
            oldest = next(iter(self._data))
            del self._data[oldest]
            self.stats.evictions += 1

    def _entries(self) -> list[tuple[str, int]]:
        return [(d, len(raw)) for d, raw in self._data.items()]


# ----------------------------------------------------------------------
# Registry (the pluggable-engine pattern shared by the whole repo)
# ----------------------------------------------------------------------
_STORE_REGISTRY: dict[str, Callable[..., ResultStore]] = {}


def register_result_store(name: str, factory: Callable[..., ResultStore]) -> None:
    """Register a store engine; its name becomes valid for ``repro serve``."""
    if name in _STORE_REGISTRY:
        raise ServiceError(f"result store {name!r} already registered")
    _STORE_REGISTRY[name] = factory


def get_result_store(name: str) -> Callable[..., ResultStore]:
    factory = _STORE_REGISTRY.get(str(name))
    if factory is None:
        raise ServiceError(
            f"unknown result store {name!r}; "
            f"registered: {available_result_stores()}"
        )
    return factory


def available_result_stores() -> list[str]:
    return sorted(_STORE_REGISTRY)


register_result_store("disk", DiskResultStore)
register_result_store("memory", MemoryResultStore)
