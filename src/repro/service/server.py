"""``repro serve``: the partition service's stdlib-HTTP front-end.

A :class:`PartitionService` wires the three service layers together —
content-addressed :class:`~repro.service.store.ResultStore`, TTL-leased
:class:`~repro.service.queue.LeaseQueue`, worker
:class:`~repro.service.orchestrator.Orchestrator` — behind four JSON
endpoints served by a ``ThreadingHTTPServer`` (stdlib only, no extra
dependencies):

``POST /submit``
    Body: a graph source (``{"edges": [[u, v], ...], "num_vertices": N}``
    upload, a server-local ``{"path": ...}`` graph file, or a
    ``{"corpus": "S2"}`` / ``{"standin": "wiki-Vote"}`` generator name),
    plus optional ``config`` (:class:`SBPConfig` fields), ``runs``, and
    for stream jobs a ``{"stream": {"source": ..., "options": {...}}}``
    block. Returns ``{"job_id": <digest>, "state": ...}``. Submission is
    idempotent: the same content returns the same job id, and a job
    already DONE in the store is served from cache without re-running.
``GET /status/<job_id>``
    Queue state (pending / leased / done / failed, attempts, worker)
    plus the outcome summary once the result is in the store.
``GET /result/<job_id>``
    The stored outcome artifact itself (the versioned JSON the store
    holds, byte-for-byte).
``GET /report``
    The bench reporting tables (:func:`~repro.bench.reporting.\
format_table`) rendered over every stored outcome, as ``text/plain``.
``GET /health``
    Rollup: queue counts (including lease expirations) and store stats.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path

import numpy as np

from repro.core.variants import SBPConfig
from repro.errors import ReproError, ServiceError, UnknownJobError
from repro.graph.graph import Graph
from repro.service.jobs import JobSpec
from repro.service.orchestrator import Orchestrator
from repro.service.queue import LeaseQueue
from repro.service.store import ResultStore
from repro.utils.log import get_logger

__all__ = ["PartitionService", "build_job_spec"]

_log = get_logger("service.server")


def _load_graph_from_request(body: dict) -> Graph:
    """Materialize the request's graph source (upload, path or generator)."""
    sources = [k for k in ("edges", "path", "corpus", "standin") if k in body]
    if len(sources) != 1:
        raise ServiceError(
            "request must name exactly one graph source: 'edges' (+ "
            f"'num_vertices'), 'path', 'corpus' or 'standin'; got {sources}"
        )
    if "edges" in body:
        edges = np.asarray(body["edges"], dtype=np.int64)
        num_vertices = body.get("num_vertices")
        if num_vertices is None:
            num_vertices = int(edges.max()) + 1 if edges.size else 1
        return Graph(int(num_vertices), edges)
    if "path" in body:
        from repro.graph.io import read_edge_list, read_matrix_market

        path = str(body["path"])
        if not Path(path).is_file():
            raise ServiceError(f"graph file not found on server: {path}")
        return read_matrix_market(path) if path.endswith(".mtx") else read_edge_list(path)
    seed = int(body.get("graph_seed", 0))
    if "corpus" in body:
        from repro.generators.corpus import generate_synthetic

        graph, _ = generate_synthetic(str(body["corpus"]), seed=seed)
        return graph
    from repro.generators.realworld import generate_real_world_standin

    return generate_real_world_standin(str(body["standin"]), seed=seed)


def build_job_spec(body: dict) -> JobSpec:
    """Turn a ``/submit`` JSON body into a :class:`JobSpec`.

    Also the programmatic submission path: tests and clients embedding
    the service construct specs through the same validation.
    """
    if not isinstance(body, dict):
        raise ServiceError("request body must be a JSON object")
    config_fields = body.get("config", {})
    if not isinstance(config_fields, dict):
        raise ServiceError("'config' must be an object of SBPConfig fields")
    try:
        config = SBPConfig(**config_fields)
    except TypeError as exc:
        raise ServiceError(f"bad config field: {exc}") from exc
    stream_block = body.get("stream")
    if stream_block is not None:
        from repro.streaming.source import get_stream_source

        if not isinstance(stream_block, dict) or "source" not in stream_block:
            raise ServiceError("'stream' must be {'source': ..., 'options': {...}}")
        spec = get_stream_source(str(stream_block["source"]))
        options = stream_block.get("options", {})
        if not isinstance(options, dict):
            raise ServiceError("'stream.options' must be an object")
        try:
            stream = spec.build(**options)
        except TypeError as exc:
            raise ServiceError(f"bad stream option: {exc}") from exc
        return JobSpec.for_stream(
            stream,
            config,
            drift_policy=str(stream_block.get("drift_policy", "mdl-ratio")),
            drift_threshold=float(stream_block.get("drift_threshold", 0.05)),
        )
    graph = _load_graph_from_request(body)
    return JobSpec.for_graph(graph, config, runs=int(body.get("runs", 1)))


class PartitionService:
    """Store + queue + orchestrator behind the HTTP endpoints.

    Parameters
    ----------
    store, queue:
        The storage and scheduling layers (pick engines via the
        ``repro serve`` CLI or the registries).
    workers:
        Orchestrator worker-thread count.
    host, port:
        Bind address; ``port=0`` picks an ephemeral port (tests).
    checkpoint_root:
        Per-job checkpoint directory root handed to the orchestrator.
    """

    def __init__(
        self,
        store: ResultStore,
        queue: LeaseQueue,
        *,
        workers: int = 2,
        host: str = "127.0.0.1",
        port: int = 8642,
        checkpoint_root: str | Path | None = None,
    ) -> None:
        self.store = store
        self.queue = queue
        self.orchestrator = Orchestrator(
            queue, store, workers=workers, checkpoint_root=checkpoint_root
        )
        service = self

        class _Handler(BaseHTTPRequestHandler):
            def log_message(self, fmt, *args):  # noqa: ARG002 - quiet server
                _log.info("http: " + fmt, *args)

            def _send(self, code: int, payload: bytes, content_type: str) -> None:
                self.send_response(code)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

            def _send_json(self, code: int, obj: object) -> None:
                self._send(
                    code,
                    json.dumps(obj, indent=2).encode("utf-8"),
                    "application/json",
                )

            def do_POST(self):  # noqa: N802 - http.server API
                if self.path.rstrip("/") != "/submit":
                    self._send_json(404, {"error": f"no such endpoint {self.path}"})
                    return
                try:
                    length = int(self.headers.get("Content-Length", 0))
                    body = json.loads(self.rfile.read(length) or b"{}")
                    self._send_json(200, service.submit(body))
                except UnknownJobError as exc:
                    self._send_json(404, {"error": str(exc)})
                except (ReproError, ValueError, json.JSONDecodeError) as exc:
                    self._send_json(400, {"error": str(exc)})

            def do_GET(self):  # noqa: N802 - http.server API
                try:
                    parts = [p for p in self.path.split("/") if p]
                    if parts[:1] == ["status"] and len(parts) == 2:
                        self._send_json(200, service.status(parts[1]))
                    elif parts[:1] == ["result"] and len(parts) == 2:
                        raw = service.result_bytes(parts[1])
                        self._send(200, raw, "application/json")
                    elif parts == ["report"]:
                        self._send(
                            200, service.report().encode("utf-8"), "text/plain"
                        )
                    elif parts == ["health"]:
                        self._send_json(200, service.health())
                    else:
                        self._send_json(
                            404, {"error": f"no such endpoint {self.path}"}
                        )
                except UnknownJobError as exc:
                    self._send_json(404, {"error": str(exc)})
                except (ReproError, ValueError) as exc:
                    self._send_json(400, {"error": str(exc)})

        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._http_thread: threading.Thread | None = None

    # -- endpoint bodies (also the programmatic API) --------------------
    def submit(self, body: dict) -> dict[str, object]:
        spec = build_job_spec(body)
        job_id = self.queue.submit(spec)
        status = self.queue.status(job_id)
        _log.info("submitted job %s (%s)", job_id[:12], spec.mode)
        return status

    def status(self, job_id: str) -> dict[str, object]:
        status = self.queue.status(job_id)
        outcome = self.store.get(job_id)
        if outcome is not None:
            status["outcome"] = outcome.summary()
        return status

    def result_bytes(self, job_id: str) -> bytes:
        raw = self.store._read(job_id)
        if raw is None:
            # Known to the queue but absent from the store: either still
            # running or evicted — distinguish for the caller.
            state = self.queue.status(job_id)["state"]  # raises if unknown
            raise UnknownJobError(
                f"job {job_id[:12]} has no stored result (state={state}); "
                "poll /status until done, or resubmit if it was evicted"
            )
        return raw

    def report(self) -> str:
        from repro.bench.reporting import format_table

        rows = []
        for digest in self.store.digests():
            outcome = self.store.get(digest)
            if outcome is not None:
                rows.append(outcome.summary())
        title = f"partition service store ({len(rows)} outcomes)"
        return format_table(rows, title=title)

    def health(self) -> dict[str, object]:
        counts = self.queue.counts()
        return {
            "ok": counts["failed"] == 0,
            "queue": counts,
            "store": self.store.health(),
            "workers": self.orchestrator.num_workers,
        }

    # -- lifecycle ------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        return self._httpd.server_address[:2]

    def start(self) -> None:
        """Serve HTTP and drain the queue in background threads."""
        self.orchestrator.start()
        if self._http_thread is None:
            self._http_thread = threading.Thread(
                target=self._httpd.serve_forever, name="repro-serve", daemon=True
            )
            self._http_thread.start()
        host, port = self.address
        _log.info("partition service listening on http://%s:%d", host, port)

    def serve_forever(self) -> None:  # pragma: no cover - interactive entry
        """Foreground entry point for the CLI (Ctrl-C to stop)."""
        self.orchestrator.start()
        host, port = self.address
        print(f"repro serve: listening on http://{host}:{port} "
              f"({self.orchestrator.num_workers} workers)")
        try:
            self._httpd.serve_forever()
        except KeyboardInterrupt:
            print("repro serve: shutting down")
        finally:
            self.close()

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self.orchestrator.stop()
        self._http_thread = None
