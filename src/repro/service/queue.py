"""Leased job queue: the fuzzbench trial-lease state machine.

Jobs move ``PENDING -> LEASED -> DONE | FAILED``. A lease carries a TTL;
the worker must heartbeat before it expires or the job silently returns
to ``PENDING`` for any survivor to pick up (with its attempt counter
bumped — a job that keeps killing its workers eventually fails instead
of looping forever). All lease operations are fenced by the worker name:
a worker whose lease expired and was re-issued cannot complete,
heartbeat or fail the job anymore (:class:`~repro.errors.LeaseError`),
so a zombie resurfacing after a requeue can never clobber the
survivor's work.

Submissions are deduplicated by job id (the content digest from
:func:`~repro.service.jobs.job_digest`): resubmitting a known job
returns the existing record — including an already-``DONE`` one, whose
result is a pure function of the id. A ``FAILED`` job *is* revived by a
resubmit (fresh attempts), matching operator expectations.

The queue is in-memory and thread-safe (one lock around the state
table); two pick orders are registered — ``fifo`` (oldest submission
first, the default) and ``lifo`` (newest first, drains hot-off-the-press
requests when a backlog builds).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable

from repro.errors import LeaseError, ServiceError, UnknownJobError
from repro.service.jobs import JobSpec

__all__ = [
    "JobState",
    "QueuedJob",
    "LeaseQueue",
    "register_job_queue",
    "get_job_queue",
    "available_job_queues",
]


class JobState(str, Enum):
    """Trial-lease lifecycle states."""

    PENDING = "pending"
    LEASED = "leased"
    DONE = "done"
    FAILED = "failed"


@dataclass
class QueuedJob:
    """One job's queue record (spec + lease bookkeeping)."""

    job_id: str
    spec: JobSpec
    state: JobState = JobState.PENDING
    #: monotonically increasing submission ticket (pick-order key).
    ticket: int = 0
    #: lease attempts so far (incremented when a lease is *issued*).
    attempts: int = 0
    worker: str | None = None
    lease_expiry: float | None = None
    error: str | None = None

    def status_row(self) -> dict[str, object]:
        return {
            "job_id": self.job_id,
            "mode": self.spec.mode,
            "state": self.state.value,
            "attempts": self.attempts,
            "worker": self.worker,
            "error": self.error,
        }


class LeaseQueue:
    """In-memory leased job queue (see module doc).

    Parameters
    ----------
    lease_ttl:
        Seconds a lease stays valid without a heartbeat.
    max_attempts:
        Lease issues after which an expiring job goes ``FAILED``
        instead of back to ``PENDING``.
    order:
        ``"fifo"`` or ``"lifo"`` pick order over pending jobs.
    clock:
        Injectable monotonic clock (tests advance a fake one to expire
        leases deterministically).
    """

    def __init__(
        self,
        lease_ttl: float = 30.0,
        max_attempts: int = 3,
        order: str = "fifo",
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if lease_ttl <= 0:
            raise ServiceError(f"lease_ttl must be > 0, got {lease_ttl}")
        if max_attempts < 1:
            raise ServiceError(f"max_attempts must be >= 1, got {max_attempts}")
        if order not in ("fifo", "lifo"):
            raise ServiceError(f"order must be 'fifo' or 'lifo', got {order!r}")
        self.lease_ttl = float(lease_ttl)
        self.max_attempts = int(max_attempts)
        self.order = order
        self._clock = clock
        self._lock = threading.Lock()
        self._jobs: dict[str, QueuedJob] = {}
        self._next_ticket = 0
        #: lease-expiry requeue events (the orchestrator's fault canary).
        self.expirations = 0

    # ------------------------------------------------------------------
    def submit(self, spec: JobSpec) -> str:
        """Enqueue ``spec``; returns its job id (the content digest).

        Deduplicated by id: a known PENDING/LEASED/DONE job is returned
        as-is, a FAILED one is revived with fresh attempts.
        """
        spec = spec.resolved()
        job_id = spec.digest()
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                job = QueuedJob(job_id=job_id, spec=spec, ticket=self._next_ticket)
                self._next_ticket += 1
                self._jobs[job_id] = job
            elif job.state is JobState.FAILED:
                job.state = JobState.PENDING
                job.ticket = self._next_ticket
                self._next_ticket += 1
                job.attempts = 0
                job.worker = None
                job.lease_expiry = None
                job.error = None
            return job_id

    def lease(self, worker: str) -> QueuedJob | None:
        """Issue a lease on the next pending job, or ``None`` if drained.

        Expired leases are swept first, so a dead worker's job is
        immediately available to the survivor asking.
        """
        with self._lock:
            self._expire_stale_locked()
            pending = [j for j in self._jobs.values() if j.state is JobState.PENDING]
            if not pending:
                return None
            key = (lambda j: j.ticket) if self.order == "fifo" else (lambda j: -j.ticket)
            job = min(pending, key=key)
            job.state = JobState.LEASED
            job.attempts += 1
            job.worker = worker
            job.lease_expiry = self._clock() + self.lease_ttl
            return job

    def heartbeat(self, job_id: str, worker: str) -> None:
        """Renew ``worker``'s lease; raises if the lease is no longer its."""
        with self._lock:
            self._expire_stale_locked()
            job = self._get_locked(job_id)
            self._check_lease_locked(job, worker, "heartbeat")
            job.lease_expiry = self._clock() + self.lease_ttl

    def complete(self, job_id: str, worker: str) -> None:
        """Mark ``worker``'s leased job DONE (the result lives in the store)."""
        with self._lock:
            self._expire_stale_locked()
            job = self._get_locked(job_id)
            self._check_lease_locked(job, worker, "complete")
            job.state = JobState.DONE
            job.worker = worker
            job.lease_expiry = None
            job.error = None

    def fail(self, job_id: str, worker: str, error: str) -> None:
        """Record a job error; requeues until ``max_attempts`` is spent."""
        with self._lock:
            self._expire_stale_locked()
            job = self._get_locked(job_id)
            self._check_lease_locked(job, worker, "fail")
            job.error = error
            job.worker = None
            job.lease_expiry = None
            job.state = (
                JobState.FAILED
                if job.attempts >= self.max_attempts
                else JobState.PENDING
            )

    # ------------------------------------------------------------------
    def status(self, job_id: str) -> dict[str, object]:
        with self._lock:
            self._expire_stale_locked()
            return self._get_locked(job_id).status_row()

    def snapshot(self) -> list[dict[str, object]]:
        """Every job's status row, in submission order."""
        with self._lock:
            self._expire_stale_locked()
            return [
                job.status_row()
                for job in sorted(self._jobs.values(), key=lambda j: j.ticket)
            ]

    def counts(self) -> dict[str, int]:
        with self._lock:
            self._expire_stale_locked()
            out = {state.value: 0 for state in JobState}
            for job in self._jobs.values():
                out[job.state.value] += 1
            out["expirations"] = self.expirations
            return out

    def drained(self) -> bool:
        """True when no job is pending or leased."""
        counts = self.counts()
        return counts["pending"] == 0 and counts["leased"] == 0

    def get_spec(self, job_id: str) -> JobSpec:
        with self._lock:
            return self._get_locked(job_id).spec

    # ------------------------------------------------------------------
    def _get_locked(self, job_id: str) -> QueuedJob:
        job = self._jobs.get(job_id)
        if job is None:
            raise UnknownJobError(f"unknown job {job_id!r}")
        return job

    def _check_lease_locked(self, job: QueuedJob, worker: str, op: str) -> None:
        if job.state is not JobState.LEASED or job.worker != worker:
            raise LeaseError(
                f"cannot {op} job {job.job_id[:12]}: lease not held by "
                f"{worker!r} (state={job.state.value}, holder={job.worker!r})"
            )

    def _expire_stale_locked(self) -> None:
        now = self._clock()
        for job in self._jobs.values():
            if (
                job.state is JobState.LEASED
                and job.lease_expiry is not None
                and job.lease_expiry <= now
            ):
                self.expirations += 1
                job.worker = None
                job.lease_expiry = None
                if job.attempts >= self.max_attempts:
                    job.state = JobState.FAILED
                    job.error = (
                        f"lease expired {job.attempts} time(s); attempts exhausted"
                    )
                else:
                    job.state = JobState.PENDING


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_QUEUE_REGISTRY: dict[str, Callable[..., LeaseQueue]] = {}


def register_job_queue(name: str, factory: Callable[..., LeaseQueue]) -> None:
    """Register a queue engine; its name becomes valid for ``repro serve``."""
    if name in _QUEUE_REGISTRY:
        raise ServiceError(f"job queue {name!r} already registered")
    _QUEUE_REGISTRY[name] = factory


def get_job_queue(name: str) -> Callable[..., LeaseQueue]:
    factory = _QUEUE_REGISTRY.get(str(name))
    if factory is None:
        raise ServiceError(
            f"unknown job queue {name!r}; registered: {available_job_queues()}"
        )
    return factory


def available_job_queues() -> list[str]:
    return sorted(_QUEUE_REGISTRY)


def _fifo_queue(**kwargs) -> LeaseQueue:
    """TTL-leased queue draining oldest submissions first (fuzzbench shape)."""
    return LeaseQueue(order="fifo", **kwargs)


def _lifo_queue(**kwargs) -> LeaseQueue:
    """TTL-leased queue draining newest submissions first (latency bias)."""
    return LeaseQueue(order="lifo", **kwargs)


register_job_queue("fifo", _fifo_queue)
register_job_queue("lifo", _lifo_queue)
