"""The partition service: job engine, result store, queue, orchestrator.

Three layers over the fit/stream sessions (see DESIGN.md §Service):

1. **job engine** (:mod:`~repro.service.jobs`) — :class:`JobSpec` +
   :func:`job_digest` + :func:`execute_job`, the one execution path every
   front-end (CLI, bench harness, HTTP service) goes through;
2. **result store** (:mod:`~repro.service.store`) — content-addressed
   ``job_digest -> JobOutcome`` cache with bit-identical load semantics;
3. **orchestrator + front-end** (:mod:`~repro.service.queue`,
   :mod:`~repro.service.orchestrator`, :mod:`~repro.service.server`) —
   TTL-leased queue, heartbeat worker pool, stdlib-HTTP endpoints.
"""

from repro.service.jobs import (
    JOB_MODES,
    JobOutcome,
    JobSpec,
    execute_job,
    job_digest,
)
from repro.service.orchestrator import Orchestrator, run_jobs_serially
from repro.service.queue import (
    JobState,
    LeaseQueue,
    QueuedJob,
    available_job_queues,
    get_job_queue,
    register_job_queue,
)
from repro.service.store import (
    DiskResultStore,
    MemoryResultStore,
    ResultStore,
    StoreStats,
    available_result_stores,
    get_result_store,
    register_result_store,
)

__all__ = [
    "JOB_MODES",
    "JobSpec",
    "JobOutcome",
    "job_digest",
    "execute_job",
    "StoreStats",
    "ResultStore",
    "DiskResultStore",
    "MemoryResultStore",
    "register_result_store",
    "get_result_store",
    "available_result_stores",
    "JobState",
    "QueuedJob",
    "LeaseQueue",
    "register_job_queue",
    "get_job_queue",
    "available_job_queues",
    "Orchestrator",
    "run_jobs_serially",
    "PartitionService",
    "build_job_spec",
]


def __getattr__(name: str):
    # server.py imports http.server; load it lazily so plain job/store
    # users never pay for it.
    if name in ("PartitionService", "build_job_spec"):
        from repro.service import server

        return getattr(server, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
