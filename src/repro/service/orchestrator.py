"""Worker pool draining the lease queue through the job engine.

Each worker is a thread in a lease / heartbeat / execute / complete
loop: it leases a job, starts a sidecar heartbeat timer (period
``lease_ttl / 3``) so the lease survives a long MCMC run, executes the
job through :func:`~repro.service.jobs.execute_job` — store-first, under
the resilient backend, with a per-job checkpoint directory so a
*re-leased* job resumes from its predecessor's last completed
agglomerative iteration instead of restarting — and marks it DONE.

Failure model (the fuzzbench trial shape):

* an exception inside the job marks it ``fail`` — the queue requeues it
  until its attempts are spent;
* a worker that *dies* (crash, OOM, kill -9) simply stops heartbeating;
  its lease expires and the queue hands the job to a survivor. The dead
  worker's fencing token (its name) guarantees a zombie resurfacing
  later cannot clobber the survivor's completion.

Determinism: execution order never affects results — each job's outcome
is a pure function of its content digest, so N workers draining a mixed
queue produce byte-identical results to serial execution (CI-gated).

Chaos hooks for tests: ``crash_plan={"w1": 1}`` makes worker ``w1``
die (thread exits, no fail call, heartbeat stops) on its 1st leased job,
simulating a hard kill mid-job.
"""

from __future__ import annotations

import threading
import time
import traceback
from pathlib import Path

from repro.resilience.checkpoint import RunCheckpointer
from repro.service.jobs import execute_job
from repro.service.queue import LeaseQueue
from repro.service.store import ResultStore
from repro.utils.log import get_logger

__all__ = ["Orchestrator", "run_jobs_serially"]

_log = get_logger("service.orchestrator")


class _WorkerKilled(BaseException):
    """Simulated hard worker death (chaos hook; never caught as failure)."""


class _Heartbeat:
    """Sidecar timer renewing one job's lease until stopped."""

    def __init__(self, queue: LeaseQueue, job_id: str, worker: str) -> None:
        self.queue = queue
        self.job_id = job_id
        self.worker = worker
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name=f"heartbeat-{worker}", daemon=True
        )

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()

    def stop(self) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)

    def _run(self) -> None:
        period = self.queue.lease_ttl / 3.0
        while not self._stop.wait(period):
            try:
                self.queue.heartbeat(self.job_id, self.worker)
            except Exception:
                # Lease lost (expired + re-issued): stop renewing; the
                # worker's complete/fail will be fenced off by the queue.
                return


class Orchestrator:
    """N workers draining ``queue`` into ``store`` (see module doc).

    Parameters
    ----------
    queue, store:
        The lease queue to drain and the content-addressed store every
        outcome lands in (also the cache consulted before running).
    workers:
        Worker thread count.
    poll_interval:
        Idle sleep between lease attempts when the queue is empty.
    checkpoint_root:
        Directory for per-job checkpoint subdirectories (keyed by
        digest) so re-leased jobs resume; ``None`` disables resume.
    resilient:
        Wrap plain execution backends in ``resilient:<inner>``.
    crash_plan:
        Chaos hook: ``{worker_name: n}`` kills that worker on its n-th
        leased job *before* completion (tests only).
    """

    def __init__(
        self,
        queue: LeaseQueue,
        store: ResultStore,
        workers: int = 2,
        *,
        poll_interval: float = 0.05,
        checkpoint_root: str | Path | None = None,
        resilient: bool = True,
        crash_plan: dict[str, int] | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.queue = queue
        self.store = store
        self.num_workers = int(workers)
        self.poll_interval = float(poll_interval)
        self.checkpoint_root = (
            Path(checkpoint_root) if checkpoint_root is not None else None
        )
        self.resilient = resilient
        self.crash_plan = dict(crash_plan or {})
        self._threads: list[threading.Thread] = []
        self._shutdown = threading.Event()
        self._drain_only = threading.Event()

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the worker threads (idempotent)."""
        if self._threads:
            return
        self._shutdown.clear()
        for index in range(self.num_workers):
            name = f"worker-{index}"
            thread = threading.Thread(
                target=self._worker_loop, args=(name,), name=name, daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def drain(self, timeout: float | None = None) -> bool:
        """Block until the queue is drained (no pending/leased jobs).

        Returns False on timeout. Workers keep running afterwards;
        call :meth:`stop` to reap them.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while not self.queue.drained():
            if deadline is not None and time.monotonic() >= deadline:
                return False
            time.sleep(self.poll_interval)
        return True

    def run_until_drained(self, timeout: float | None = None) -> bool:
        """Start, drain, stop — the one-shot batch entry point."""
        self.start()
        try:
            return self.drain(timeout)
        finally:
            self.stop()

    def stop(self, timeout: float = 10.0) -> None:
        """Signal shutdown and join the worker threads."""
        self._shutdown.set()
        for thread in self._threads:
            thread.join(timeout=timeout)
        self._threads.clear()

    # ------------------------------------------------------------------
    def _checkpointer(self, job_id: str) -> RunCheckpointer | None:
        if self.checkpoint_root is None:
            return None
        return RunCheckpointer(self.checkpoint_root / job_id)

    def _worker_loop(self, name: str) -> None:
        leased = 0
        while not self._shutdown.is_set():
            job = self.queue.lease(name)
            if job is None:
                self._shutdown.wait(self.poll_interval)
                continue
            leased += 1
            try:
                self._execute_one(name, job, leased)
            except _WorkerKilled:
                _log.info("worker %s killed by crash plan (job %s)",
                          name, job.job_id[:12])
                return  # hard death: no fail(), no further leases
            except Exception:  # pragma: no cover - defensive
                _log.warning("worker %s crashed outside the job guard:\n%s",
                             name, traceback.format_exc())
                return

    def _execute_one(self, name: str, job, leased: int) -> None:
        with _Heartbeat(self.queue, job.job_id, name):
            if self.crash_plan.get(name) == leased:
                raise _WorkerKilled(name)
            try:
                outcome = execute_job(
                    job.spec,
                    store=self.store,
                    checkpointer=self._checkpointer(job.job_id),
                    resilient=self.resilient,
                )
            except Exception as exc:
                _log.warning("job %s failed on %s: %s",
                             job.job_id[:12], name, exc)
                self._try(self.queue.fail, job.job_id, name, repr(exc))
                return
        if outcome.interrupted:
            # Best-so-far results are not completions: requeue so a rerun
            # (resuming from the checkpoint) finishes the search.
            self._try(self.queue.fail, job.job_id, name,
                      "interrupted (best-so-far); requeued to finish")
            return
        self._try(self.queue.complete, job.job_id, name)

    @staticmethod
    def _try(op, *args) -> None:
        """Lease-fenced queue call; losing the race is not an error."""
        try:
            op(*args)
        except Exception as exc:
            _log.info("queue op %s fenced off: %s", op.__name__, exc)


def run_jobs_serially(specs, store: ResultStore | None = None):
    """Reference executor: the same jobs, one at a time, no queue.

    Exists for the orchestrator equivalence gates (and as the simplest
    possible client of the job engine).
    """
    return [execute_job(spec, store=store) for spec in specs]
