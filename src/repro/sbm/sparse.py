"""Sparse inter-block matrix — the §6 data-structure study.

The paper's conclusion suggests "utilizing data structures that are more
suited to repeated reconstruction" for the blockmodel. Our inference
path uses a dense ``B`` (optimal at reproduction scale, DESIGN.md §5);
this module provides the sparse alternative a large-C deployment would
use — a dict-of-rows matrix with mirrored column index — implementing
the exact operation set the blockmodel needs:

* cell reads and batched row/column gathers,
* the O(degree) move update,
* block merges,
* full reconstruction from an edge list,
* densification (for interop and testing).

Property tests pin sparse behaviour to the dense oracle, and the
``bench_extension_sparse_storage`` target measures where the crossover
between the two representations sits.
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.errors import BlockmodelError
from repro.types import IntArray

__all__ = ["SparseBlockMatrix"]


class SparseBlockMatrix:
    """C x C integer matrix stored as row and column hash maps.

    Both orientations are maintained so row *and* column gathers are
    O(nnz(row)) — the access pattern of the delta-MDL kernels. All
    mutations keep the two mirrors consistent; zero entries are evicted
    eagerly so iteration cost tracks the true support.
    """

    __slots__ = ("num_blocks", "_rows", "_cols")

    def __init__(self, num_blocks: int) -> None:
        if num_blocks < 1:
            raise BlockmodelError(f"num_blocks must be >= 1, got {num_blocks}")
        self.num_blocks = num_blocks
        self._rows: dict[int, dict[int, int]] = defaultdict(dict)
        self._cols: dict[int, dict[int, int]] = defaultdict(dict)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls, src_blocks: IntArray, dst_blocks: IntArray, num_blocks: int
    ) -> "SparseBlockMatrix":
        """Count block-pair occurrences from parallel edge-block arrays."""
        matrix = cls(num_blocks)
        if len(src_blocks) != len(dst_blocks):
            raise BlockmodelError("src/dst block arrays must have equal length")
        if len(src_blocks):
            keys = np.asarray(src_blocks, dtype=np.int64) * num_blocks + np.asarray(
                dst_blocks, dtype=np.int64
            )
            unique, counts = np.unique(keys, return_counts=True)
            for key, count in zip(unique.tolist(), counts.tolist()):
                matrix._set(key // num_blocks, key % num_blocks, count)
        return matrix

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "SparseBlockMatrix":
        if dense.ndim != 2 or dense.shape[0] != dense.shape[1]:
            raise BlockmodelError(f"dense matrix must be square, got {dense.shape}")
        matrix = cls(dense.shape[0])
        rows, cols = np.nonzero(dense)
        for r, c in zip(rows.tolist(), cols.tolist()):
            matrix._set(r, c, int(dense[r, c]))
        return matrix

    # ------------------------------------------------------------------
    # Element access
    # ------------------------------------------------------------------
    def get(self, r: int, c: int) -> int:
        return self._rows.get(r, {}).get(c, 0)

    def add(self, r: int, c: int, delta: int) -> None:
        """Add ``delta`` to cell (r, c); negative totals are an error."""
        if delta == 0:
            return
        value = self.get(r, c) + delta
        if value < 0:
            raise BlockmodelError(
                f"cell ({r}, {c}) would go negative ({value})"
            )
        self._set(r, c, value)

    def _set(self, r: int, c: int, value: int) -> None:
        if not (0 <= r < self.num_blocks and 0 <= c < self.num_blocks):
            raise BlockmodelError(f"cell ({r}, {c}) out of range")
        if value == 0:
            self._rows.get(r, {}).pop(c, None)
            self._cols.get(c, {}).pop(r, None)
        else:
            self._rows[r][c] = value
            self._cols[c][r] = value

    # ------------------------------------------------------------------
    # Batched views (what the delta kernels gather)
    # ------------------------------------------------------------------
    def row_items(self, r: int) -> tuple[IntArray, IntArray]:
        """Sorted (columns, values) of row ``r``'s support."""
        row = self._rows.get(r, {})
        if not row:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy()
        cols = np.asarray(sorted(row), dtype=np.int64)
        vals = np.asarray([row[int(c)] for c in cols], dtype=np.int64)
        return cols, vals

    def col_items(self, c: int) -> tuple[IntArray, IntArray]:
        """Sorted (rows, values) of column ``c``'s support."""
        col = self._cols.get(c, {})
        if not col:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy()
        rows = np.asarray(sorted(col), dtype=np.int64)
        vals = np.asarray([col[int(r)] for r in rows], dtype=np.int64)
        return rows, vals

    def gather(self, rows: IntArray, cols: IntArray) -> IntArray:
        """Vectorized-ish multi-cell read (the B[r, t] gather)."""
        return np.asarray(
            [self.get(int(r), int(c)) for r, c in zip(rows, cols)],
            dtype=np.int64,
        )

    def row_sum(self, r: int) -> int:
        return sum(self._rows.get(r, {}).values())

    def col_sum(self, c: int) -> int:
        return sum(self._cols.get(c, {}).values())

    # ------------------------------------------------------------------
    # Blockmodel operations
    # ------------------------------------------------------------------
    def apply_move(
        self,
        r: int,
        s: int,
        t_out: IntArray,
        c_out: IntArray,
        t_in: IntArray,
        c_in: IntArray,
        loops: int,
    ) -> None:
        """The O(degree) vertex-move update (mirrors Blockmodel.apply_move)."""
        for t, c in zip(t_out.tolist(), c_out.tolist()):
            self.add(r, t, -c)
            self.add(s, t, c)
        for t, c in zip(t_in.tolist(), c_in.tolist()):
            self.add(t, r, -c)
            self.add(t, s, c)
        if loops:
            self.add(r, r, -loops)
            self.add(s, s, loops)

    def merge_into(self, r: int, s: int) -> None:
        """Merge block r into s: row/col r folded into row/col s."""
        if r == s:
            raise BlockmodelError("cannot merge a block with itself")
        row_r = dict(self._rows.get(r, {}))
        for c, value in row_r.items():
            self.add(r, c, -value)
            target_col = s if c == r else c
            self.add(s, target_col, value)
        col_r = dict(self._cols.get(r, {}))
        for row, value in col_r.items():
            self.add(row, r, -value)
            target_row = s if row == r else row
            self.add(target_row, s, value)

    # ------------------------------------------------------------------
    # Interop / stats
    # ------------------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        dense = np.zeros((self.num_blocks, self.num_blocks), dtype=np.int64)
        for r, row in self._rows.items():
            for c, value in row.items():
                dense[r, c] = value
        return dense

    @property
    def nnz(self) -> int:
        return sum(len(row) for row in self._rows.values())

    @property
    def total(self) -> int:
        return sum(sum(row.values()) for row in self._rows.values())

    @property
    def fill_fraction(self) -> float:
        return self.nnz / float(self.num_blocks) ** 2

    def memory_bytes(self) -> int:
        """Rough live-entry footprint: two mirrored (key, value) maps."""
        # ~3 machine words per dict slot is a conservative hash-map model
        return self.nnz * 2 * 3 * 8

    def check_mirror_consistency(self) -> None:
        """Invariant: the row and column maps describe the same matrix."""
        from_rows = {(r, c): v for r, row in self._rows.items() for c, v in row.items()}
        from_cols = {(r, c): v for c, col in self._cols.items() for r, v in col.items()}
        if from_rows != from_cols:
            raise BlockmodelError("row/column mirrors diverged")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SparseBlockMatrix(C={self.num_blocks}, nnz={self.nnz}, "
            f"fill={self.fill_fraction:.3f})"
        )
