"""Incremental MDL deltas for vertex moves and block merges.

Both SBP phases are dominated by evaluating ``delta MDL`` for proposed
state changes (paper §2.2: "Computing dMDL and the subsequent updates to
B are the two main computational bottlenecks of SBP"). Using the
expansion ``L = sum g(B_ij) - sum g(d_out) - sum g(d_in)`` with
``g(x) = x log x`` (see :mod:`repro.sbm.entropy`), a vertex move r -> s
only changes:

* matrix cells ``(r, t)``/``(s, t)`` for blocks ``t`` that v points to,
* cells ``(t, r)``/``(t, s)`` for blocks that point to v,
* the four intersection cells ``(r,r), (r,s), (s,r), (s,s)``,
* the four degree entries ``d_out[r], d_out[s], d_in[r], d_in[s]``.

That is O(degree(v)) work per proposal instead of O(C) row scans — the
same sparsity the authors' C++ implementation exploits.

During MCMC sweeps the number of blocks C is constant, so the model
complexity terms of Eq. 2 cancel and ``dS = -dL``. During the merge
phase the C-dependent terms are identical for every candidate merge of
the same round, so ranking merges by ``-dL`` (as Alg. 1 does) is
unaffected; the full MDL including complexity terms is recomputed at
phase boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.graph import Graph
from repro.sbm.blockmodel import Blockmodel
from repro.types import FloatArray, IntArray
from repro.utils.arrays import expand_ranges

# The x log x kernels and the strictly left-to-right reduction live in
# repro.sbm.kernels now: `_g` vectorized over count arrays, `_g_scalar`
# for corner/degree cells, `_seq_sum` as the cumsum-discipline float sum
# (pairwise np.sum rounds differently from the sequential accumulation
# the vectorized backend uses, so the reduction order is part of the
# bit-identity contract). With jit off every name is the pre-existing
# numpy expression; the jitted versions only engage after a bitwise
# parity probe.
from repro.sbm.kernels import seq_sum as _seq_sum
from repro.sbm.kernels import xlogx_counts as _g
from repro.sbm.kernels import xlogx_scalar as _g_scalar

__all__ = [
    "VertexMoveContext",
    "vertex_move_context",
    "vertex_move_delta",
    "hastings_correction",
    "merge_delta",
    "merge_delta_batch",
]


@dataclass
class VertexMoveContext:
    """Neighbour-block profile of one vertex under the current assignment.

    Computed once per proposal and shared by the delta evaluation, the
    Hastings correction and (on acceptance) the in-place state update.

    ``t_out``/``c_out``: sorted unique blocks reached by v's out-edges
    (self-loops excluded) and the edge multiplicities; ``t_in``/``c_in``
    likewise for in-edges. ``t_all``/``c_all`` is the merged support used
    by the Hastings correction.
    """

    v: int
    r: int
    t_out: IntArray
    c_out: IntArray
    t_in: IntArray
    c_in: IntArray
    t_all: IntArray
    c_all: IntArray
    loops: int
    deg_out: int
    deg_in: int

    @property
    def degree(self) -> int:
        return self.deg_out + self.deg_in


def vertex_move_context(bm: Blockmodel, graph: Graph, v: int) -> VertexMoveContext:
    """Build the :class:`VertexMoveContext` for vertex ``v``."""
    assignment = bm.assignment
    out_nbrs = graph.out_neighbors(v)
    in_nbrs = graph.in_neighbors(v)
    out_other = out_nbrs[out_nbrs != v]
    in_other = in_nbrs[in_nbrs != v]
    t_out, c_out = _unique_counts(assignment[out_other])
    t_in, c_in = _unique_counts(assignment[in_other])
    t_all, c_all = _merge_support(t_out, c_out, t_in, c_in)
    return VertexMoveContext(
        v=v,
        r=int(assignment[v]),
        t_out=t_out,
        c_out=c_out,
        t_in=t_in,
        c_in=c_in,
        t_all=t_all,
        c_all=c_all,
        loops=int(graph.self_loops[v]),
        deg_out=int(graph.out_degree[v]),
        deg_in=int(graph.in_degree[v]),
    )


def vertex_move_delta(bm: Blockmodel, ctx: VertexMoveContext, s: int) -> float:
    """``dS = MDL_after - MDL_before`` for moving ``ctx.v`` to block ``s``.

    Negative values improve the description length. Only the likelihood
    part of Eq. 2 varies (C is constant during a sweep).
    """
    r = ctx.r
    if s == r:
        return 0.0
    st = bm.state

    delta_g = 0.0

    # Generic out cells: (r, t) loses c, (s, t) gains c, for t not in {r, s}.
    if ctx.t_out.size:
        mask = (ctx.t_out != r) & (ctx.t_out != s)
        t = ctx.t_out[mask]
        c = ctx.c_out[mask].astype(np.float64)
        if t.size:
            row_r = st.row_gather(r, t).astype(np.float64)
            row_s = st.row_gather(s, t).astype(np.float64)
            terms = _g(row_r - c) - _g(row_r) + _g(row_s + c) - _g(row_s)
            delta_g += _seq_sum(terms)

    # Generic in cells: (t, r) loses c, (t, s) gains c.
    if ctx.t_in.size:
        mask = (ctx.t_in != r) & (ctx.t_in != s)
        t = ctx.t_in[mask]
        c = ctx.c_in[mask].astype(np.float64)
        if t.size:
            col_r = st.col_gather(r, t).astype(np.float64)
            col_s = st.col_gather(s, t).astype(np.float64)
            terms = _g(col_r - c) - _g(col_r) + _g(col_s + c) - _g(col_s)
            delta_g += _seq_sum(terms)

    # Intersection cells receive combined row + column (+ self-loop) deltas.
    k_out_r, k_out_s = _count_at(ctx.t_out, ctx.c_out, r, s)
    k_in_r, k_in_s = _count_at(ctx.t_in, ctx.c_in, r, s)
    corners = (
        (st.get(r, r), -k_out_r - k_in_r - ctx.loops),
        (st.get(r, s), -k_out_s + k_in_r),
        (st.get(s, r), k_out_r - k_in_s),
        (st.get(s, s), k_out_s + k_in_s + ctx.loops),
    )
    for old, diff in corners:
        if diff:
            delta_g += _g_scalar(float(old) + diff) - _g_scalar(float(old))

    # Degree terms: L subtracts g(d_out) and g(d_in), so dL gets -(delta g(d)).
    delta_deg = (
        _g_scalar(float(bm.d_out[r] - ctx.deg_out))
        - _g_scalar(float(bm.d_out[r]))
        + _g_scalar(float(bm.d_out[s] + ctx.deg_out))
        - _g_scalar(float(bm.d_out[s]))
        + _g_scalar(float(bm.d_in[r] - ctx.deg_in))
        - _g_scalar(float(bm.d_in[r]))
        + _g_scalar(float(bm.d_in[s] + ctx.deg_in))
        - _g_scalar(float(bm.d_in[s]))
    )

    delta_likelihood = delta_g - delta_deg
    return -delta_likelihood


def hastings_correction(bm: Blockmodel, ctx: VertexMoveContext, s: int) -> float:
    """Metropolis-Hastings proposal-asymmetry correction ``p_rev / p_fwd``.

    Follows the GraphChallenge SBP baseline: the probability of proposing
    block ``x`` from vertex v is a degree-weighted mixture over v's
    neighbour blocks ``t``: ``sum_t k_t * (B[t,x] + B[x,t] + 1) / (d_t + C)``.
    The reverse probability is evaluated against the post-move state,
    reconstructed here from the context in O(degree) without touching B.
    """
    r = ctx.r
    if s == r:
        return 1.0
    t = ctx.t_all
    if t.size == 0:
        return 1.0
    k = ctx.c_all.astype(np.float64)
    C = float(bm.num_blocks)
    st = bm.state

    d_t = bm.d[t].astype(np.float64)
    fwd = k * (st.col_gather(s, t) + st.row_gather(s, t) + 1.0) / (d_t + C)

    # Post-move cells B'[t, r] and B'[r, t] over the support, and d'.
    b_tr = st.col_gather(r, t).astype(np.float64)
    b_rt = st.row_gather(r, t).astype(np.float64)
    # in-edges leave column r; out-edges leave row r.
    b_tr -= _scatter(ctx.t_in, ctx.c_in, t)
    b_rt -= _scatter(ctx.t_out, ctx.c_out, t)
    # Corrections where t is r or s (the intersection cells).
    k_out_r, k_out_s = _count_at(ctx.t_out, ctx.c_out, r, s)
    k_in_r, k_in_s = _count_at(ctx.t_in, ctx.c_in, r, s)
    idx_r = np.searchsorted(t, r)
    if idx_r < t.size and t[idx_r] == r:
        # B'[r, r] = B[r,r] - k_out_r - k_in_r - loops; the two scatter
        # subtractions above applied -k_in_r to b_tr and -k_out_r to b_rt,
        # so only the remaining parts are adjusted here.
        b_tr[idx_r] += -k_out_r - ctx.loops
        b_rt[idx_r] += -k_in_r - ctx.loops
    idx_s = np.searchsorted(t, s)
    if idx_s < t.size and t[idx_s] == s:
        # B'[s, r] = B[s,r] + k_out_r - k_in_s ; scatter gave -k_in_s.
        b_tr[idx_s] += k_out_r
        # B'[r, s] = B[r,s] - k_out_s + k_in_r ; scatter gave -k_out_s.
        b_rt[idx_s] += k_in_r

    d_new = d_t.copy()
    d_new[t == r] -= ctx.degree
    d_new[t == s] += ctx.degree
    bwd = k * (b_tr + b_rt + 1.0) / (d_new + C)

    p_fwd = _seq_sum(fwd)
    p_bwd = _seq_sum(bwd)
    if p_fwd <= 0.0:
        return 1.0
    return p_bwd / p_fwd


def merge_delta(bm: Blockmodel, r: int, s: int) -> float:
    """``dS`` (likelihood part) for merging block ``r`` into ``s`` (Alg. 1).

    O(C) using the two affected rows and columns. Generic terms are
    reduced with :func:`_seq_sum` (strict left-to-right accumulation) so
    :func:`merge_delta_batch` can reproduce the result bit-for-bit.
    """
    if r == s:
        return 0.0
    st = bm.state
    C = bm.num_blocks
    mask = np.ones(C, dtype=bool)
    mask[r] = False
    mask[s] = False

    row_r = st.dense_row(r)[mask].astype(np.float64)
    row_s = st.dense_row(s)[mask].astype(np.float64)
    col_r = st.dense_col(r)[mask].astype(np.float64)
    col_s = st.dense_col(s)[mask].astype(np.float64)

    delta_g = _seq_sum(_g(row_r + row_s) - _g(row_r) - _g(row_s)) + _seq_sum(
        _g(col_r + col_s) - _g(col_r) - _g(col_s)
    )
    corner_new = float(st.get(s, s) + st.get(r, s) + st.get(s, r) + st.get(r, r))
    delta_g += (
        _g_scalar(corner_new)
        - _g_scalar(float(st.get(s, s)))
        - _g_scalar(float(st.get(r, s)))
        - _g_scalar(float(st.get(s, r)))
        - _g_scalar(float(st.get(r, r)))
    )

    delta_deg = (
        _g_scalar(float(bm.d_out[r] + bm.d_out[s]))
        - _g_scalar(float(bm.d_out[r]))
        - _g_scalar(float(bm.d_out[s]))
        + _g_scalar(float(bm.d_in[r] + bm.d_in[s]))
        - _g_scalar(float(bm.d_in[r]))
        - _g_scalar(float(bm.d_in[s]))
    )

    return -(delta_g - delta_deg)


def merge_delta_batch(bm: Blockmodel, r: IntArray, s: IntArray) -> FloatArray:
    """Batch :func:`merge_delta` over aligned candidate arrays ``r``, ``s``.

    Bit-identical to the scalar oracle, but O(nnz) instead of O(C) per
    candidate. The key identity: a generic term
    ``g(B[r,t] + B[s,t]) - g(B[r,t]) - g(B[s,t])`` is exactly ``+0.0``
    unless *both* cells are non-zero, and adding ``+0.0`` never perturbs
    an IEEE float sum (no term is ``-0.0``). So only the support
    *intersections* of the two merged rows (and columns) contribute:
    they are materialized as (candidate, block, count) triplets via one
    sorted merge over CSR/CSC walks of ``B`` and reduced per candidate
    with ``np.add.at`` — sequential accumulation in ascending block
    order, the same order :func:`_seq_sum` gives the serial oracle.
    Duplicate ``(r, s)`` pairs — frequent, since each block draws
    several proposals from one CDF — are evaluated once and scattered
    back.
    """
    r = np.asarray(r, dtype=np.int64)
    s = np.asarray(s, dtype=np.int64)
    if r.shape != s.shape or r.ndim != 1:
        raise ValueError("r and s must be aligned 1-D candidate arrays")
    out = np.zeros(r.shape[0], dtype=np.float64)
    live = r != s  # merging a block with itself is a no-op (delta 0)
    if not live.any():
        return out

    st = bm.state
    C = bm.num_blocks
    keys = r[live] * C + s[live]
    ukeys, inv = np.unique(keys, return_inverse=True)
    ur = ukeys // C
    us = ukeys % C

    # Sparse views of B: CSR (row-major nonzeros) and CSC (column-major).
    nz_r, nz_c, nz_v = st.nonzero()
    row_ptr = np.zeros(C + 1, dtype=np.int64)
    np.cumsum(np.bincount(nz_r, minlength=C), out=row_ptr[1:])
    csc_order = np.argsort(nz_c * C + nz_r, kind="stable")
    col_ptr = np.zeros(C + 1, dtype=np.int64)
    np.cumsum(np.bincount(nz_c, minlength=C), out=col_ptr[1:])

    delta_g = _intersection_terms(
        ur, us, C, row_ptr, nz_c, nz_v
    ) + _intersection_terms(
        ur, us, C, col_ptr, nz_r[csc_order], nz_v[csc_order]
    )

    # Intersection cells collapse onto the merged diagonal entry.
    brr = st.gather(ur, ur).astype(np.float64)
    brs = st.gather(ur, us).astype(np.float64)
    bsr = st.gather(us, ur).astype(np.float64)
    bss = st.gather(us, us).astype(np.float64)
    corner_new = bss + brs + bsr + brr
    delta_g = delta_g + (_g(corner_new) - _g(bss) - _g(brs) - _g(bsr) - _g(brr))

    do_r = bm.d_out[ur].astype(np.float64)
    do_s = bm.d_out[us].astype(np.float64)
    di_r = bm.d_in[ur].astype(np.float64)
    di_s = bm.d_in[us].astype(np.float64)
    delta_deg = (
        _g(do_r + do_s) - _g(do_r) - _g(do_s)
        + _g(di_r + di_s) - _g(di_r) - _g(di_s)
    )

    out[live] = (-(delta_g - delta_deg))[inv]
    return out


def _intersection_terms(
    ur: IntArray,
    us: IntArray,
    C: int,
    ptr: IntArray,
    support: IntArray,
    values: IntArray,
) -> FloatArray:
    """Per-pair ``sum_t g(a_t + b_t) - g(a_t) - g(b_t)`` over shared support.

    ``ptr``/``support``/``values`` describe a CSR-like structure (rows of
    ``B`` or of ``B^T``); for every pair ``(ur[p], us[p])`` the two
    sparse lines are walked, tagged with the pair index, and merged by a
    stable sort on ``(pair, block)`` — entries sharing both land
    adjacently (line ``ur`` first), yielding the intersection triplets.
    Blocks ``t in {r, s}`` are the corner cells and are excluded here.
    """
    num_pairs = ur.shape[0]
    acc = np.zeros(num_pairs, dtype=np.float64)
    len_r = ptr[ur + 1] - ptr[ur]
    len_s = ptr[us + 1] - ptr[us]
    idx_r = expand_ranges(ptr[ur], len_r)
    idx_s = expand_ranges(ptr[us], len_s)
    if idx_r.size == 0 or idx_s.size == 0:
        return acc
    pid = np.concatenate([
        np.repeat(np.arange(num_pairs, dtype=np.int64), len_r),
        np.repeat(np.arange(num_pairs, dtype=np.int64), len_s),
    ])
    blk = np.concatenate([support[idx_r], support[idx_s]])
    val = np.concatenate([values[idx_r], values[idx_s]])

    key = pid * C + blk
    order = np.argsort(key, kind="stable")  # ur-side precedes us-side on ties
    key = key[order]
    val = val[order]
    hit = key[:-1] == key[1:]
    if not hit.any():
        return acc
    i = np.nonzero(hit)[0]
    p = key[i] // C
    t = key[i] % C
    keep = (t != ur[p]) & (t != us[p])
    i = i[keep]
    p = p[keep]
    a = val[i].astype(np.float64)      # from row/col ur
    b = val[i + 1].astype(np.float64)  # from row/col us
    terms = _g(a + b) - _g(a) - _g(b)
    # Sorted by (pair, block): add.at accumulates each pair's terms in
    # ascending block order — bit-identical to the oracle's _seq_sum.
    np.add.at(acc, p, terms)
    return acc


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _unique_counts(blocks: IntArray) -> tuple[IntArray, IntArray]:
    """Sorted unique block ids and multiplicities (empty-safe)."""
    if blocks.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy()
    t, c = np.unique(blocks, return_counts=True)
    return t.astype(np.int64), c.astype(np.int64)


def _merge_support(
    t_out: IntArray, c_out: IntArray, t_in: IntArray, c_in: IntArray
) -> tuple[IntArray, IntArray]:
    """Union of two sorted sparse count vectors."""
    if t_out.size == 0:
        return t_in, c_in
    if t_in.size == 0:
        return t_out, c_out
    t_all = np.union1d(t_out, t_in)
    c_all = _scatter(t_out, c_out, t_all).astype(np.int64) + _scatter(
        t_in, c_in, t_all
    ).astype(np.int64)
    return t_all, c_all


def _scatter(t_src: IntArray, c_src: IntArray, t_dst: IntArray) -> np.ndarray:
    """Counts of the sparse vector (t_src, c_src) evaluated at t_dst."""
    out = np.zeros(t_dst.shape[0], dtype=np.float64)
    if t_src.size == 0 or t_dst.size == 0:
        return out
    pos = np.searchsorted(t_dst, t_src)
    valid = (pos < t_dst.size) & (t_dst[np.minimum(pos, t_dst.size - 1)] == t_src)
    np.add.at(out, pos[valid], c_src[valid])
    return out


def _count_at(t: IntArray, c: IntArray, r: int, s: int) -> tuple[int, int]:
    """Multiplicities of blocks ``r`` and ``s`` in a sorted sparse vector."""
    k_r = 0
    k_s = 0
    if t.size:
        ir = np.searchsorted(t, r)
        if ir < t.size and t[ir] == r:
            k_r = int(c[ir])
        is_ = np.searchsorted(t, s)
        if is_ < t.size and t[is_] == s:
            k_s = int(c[is_])
    return k_r, k_s
