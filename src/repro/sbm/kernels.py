"""Jitted sweep kernels for the hot trio, with a bit-identical numpy fallback.

The per-sweep cost of every storage engine concentrates in three tiny
kernels (paper §2.2's "computing dMDL and the subsequent updates to B"):

* **CDF assembly + integer-plateau draw** — building the symmetrized-row
  prefix sum ``cumsum(B[u, :] + B[:, u])`` and resolving the
  floor-and-clamp inverse-CDF lookup (:mod:`repro.sbm.moves`,
  :class:`~repro.sbm.block_storage.RowCDF`);
* **scalar delta-MDL accumulation** — the ``x log x`` terms and the
  strictly left-to-right ``_seq_sum`` reduction of
  :mod:`repro.sbm.delta`;
* **the O(deg) move scatter** — ``apply_move`` / ``scatter_edges``
  index-add loops (:mod:`repro.sbm.incremental` and the storage
  engines).

This module publishes one dispatch name per kernel. At import time it
selects, per kernel, either a ``numba.njit(cache=True)`` implementation
or the pure-numpy reference:

* numba missing, or ``REPRO_DISABLE_JIT=1`` in the environment → every
  dispatch name *is* the numpy reference (the exact pre-existing
  expressions, so behaviour and rounding are unchanged by construction);
* numba present → integer kernels are adopted unconditionally (int64
  arithmetic is exact, so a loop and a ufunc cannot disagree), while
  float kernels must first pass a bitwise **parity probe** against the
  numpy reference — ``np.log`` may be vectorized differently from
  libm's scalar ``log``, and a last-ulp difference would break the
  byte-equal trajectory contract. A kernel that fails the probe silently
  stays on numpy; :func:`kernel_table` reports what actually runs.

The golden-trajectory and storage-equivalence gates run with jit on and
off (CI job ``kernels``), so the selection can never change a chain.
"""

from __future__ import annotations

import os

import numpy as np

from repro.sbm.entropy import xlogx_counts as _xlogx_counts_np

__all__ = [
    "JIT_DISABLE_ENV",
    "jit_enabled",
    "jit_status",
    "kernel_table",
    "sym_cdf_dense",
    "sym_cdf_lines",
    "cdf_index",
    "seq_sum",
    "xlogx_scalar",
    "xlogx_counts",
    "apply_move_dense",
    "scatter_dense",
    "index_add",
    "index_sub",
]

#: Setting this environment variable to a non-empty value other than
#: ``0``/``false`` forces the pure-numpy fallback even when numba is
#: importable (read once, at import).
JIT_DISABLE_ENV = "REPRO_DISABLE_JIT"


# ----------------------------------------------------------------------
# Pure-numpy references. These are the canonical expressions the rest of
# the codebase used before the kernel module existed; the dispatch names
# resolve to them verbatim whenever jit is off, so the fallback path is
# the oracle by construction.
# ----------------------------------------------------------------------
def _sym_cdf_dense_np(B: np.ndarray, u: int) -> np.ndarray:
    """Prefix sum of the symmetrized dense row ``B[u, :] + B[:, u]``."""
    return np.cumsum(B[u, :] + B[:, u])


def _sym_cdf_lines_np(row: np.ndarray, col: np.ndarray) -> np.ndarray:
    """Prefix sum of two materialized length-C lines (hybrid cache hit)."""
    return np.cumsum(row + col)


def _cdf_index_np(cdf: np.ndarray, q: int) -> int:
    """``searchsorted(cdf, q, side="right")`` — the plateau-safe lookup."""
    return int(np.searchsorted(cdf, q, side="right"))


def _seq_sum_np(terms: np.ndarray) -> float:
    """Strictly left-to-right float sum (``cumsum`` last element)."""
    if terms.size == 0:
        return 0.0
    return float(np.cumsum(terms)[-1])


def _xlogx_scalar_np(x: float) -> float:
    """``x log x`` with the ``0 log 0 = 0`` convention, scalar form."""
    return 0.0 if x <= 0 else float(x * np.log(x))


def _apply_move_dense_np(B, r, s, t_out, c_out, t_in, c_in, loops) -> None:
    """The dense oracle's O(deg) vertex-move update, verbatim."""
    B[r, t_out] -= c_out
    B[s, t_out] += c_out
    B[t_in, r] -= c_in
    B[t_in, s] += c_in
    if loops:
        B[r, r] -= loops
        B[s, s] += loops


def _scatter_dense_np(B, old_src, old_dst, new_src, new_dst) -> None:
    """The dense oracle's sweep-barrier scatter, verbatim."""
    np.subtract.at(B, (old_src, old_dst), 1)
    np.add.at(B, (new_src, new_dst), 1)


def _index_add_np(target: np.ndarray, idx: np.ndarray, vals) -> None:
    """``target[idx] += vals`` with duplicate indices accumulated."""
    np.add.at(target, idx, vals)


def _index_sub_np(target: np.ndarray, idx: np.ndarray, vals) -> None:
    """``target[idx] -= vals`` with duplicate indices accumulated."""
    np.subtract.at(target, idx, vals)


# ----------------------------------------------------------------------
# Import-time selection
# ----------------------------------------------------------------------
def _jit_disabled_by_env() -> bool:
    raw = os.environ.get(JIT_DISABLE_ENV, "").strip().lower()
    return raw not in ("", "0", "false")


_DISABLED = _jit_disabled_by_env()
_NUMBA_IMPORT_ERROR: Exception | None = None
if _DISABLED:
    _njit = None
else:
    try:
        from numba import njit as _njit
    except Exception as exc:  # pragma: no cover - depends on environment
        _njit = None
        _NUMBA_IMPORT_ERROR = exc

#: kernel name -> "numba" | "numpy"; filled by the selection below.
_TABLE: dict[str, str] = {}


def _select(name: str, numpy_impl, numba_impl):
    """Pick the implementation for ``name`` and record the choice."""
    if numba_impl is None:
        _TABLE[name] = "numpy"
        return numpy_impl
    _TABLE[name] = "numba"
    return numba_impl


if _njit is not None:  # pragma: no cover - exercised by the CI kernels job

    @_njit(cache=True)
    def _sym_cdf_dense_nb(B, u):
        C = B.shape[0]
        out = np.empty(C, dtype=np.int64)
        acc = np.int64(0)
        for j in range(C):
            acc += B[u, j] + B[j, u]
            out[j] = acc
        return out

    @_njit(cache=True)
    def _sym_cdf_lines_nb(row, col):
        C = row.shape[0]
        out = np.empty(C, dtype=np.int64)
        acc = np.int64(0)
        for j in range(C):
            acc += row[j] + col[j]
            out[j] = acc
        return out

    @_njit(cache=True)
    def _cdf_index_nb(cdf, q):
        lo = 0
        hi = cdf.shape[0]
        while lo < hi:
            mid = (lo + hi) // 2
            if cdf[mid] <= q:
                lo = mid + 1
            else:
                hi = mid
        return lo

    @_njit(cache=True)
    def _seq_sum_nb(terms):
        acc = 0.0
        for i in range(terms.shape[0]):
            acc += terms[i]
        return acc

    @_njit(cache=True)
    def _xlogx_scalar_nb(x):
        if x <= 0.0:
            return 0.0
        return x * np.log(x)

    @_njit(cache=True)
    def _xlogx_counts_nb(x):
        out = np.zeros(x.shape[0], dtype=np.float64)
        for i in range(x.shape[0]):
            xi = x[i]
            if xi > 0.0:
                out[i] = xi * np.log(xi)
        return out

    @_njit(cache=True)
    def _apply_move_dense_nb(B, r, s, t_out, c_out, t_in, c_in, loops):
        for i in range(t_out.shape[0]):
            B[r, t_out[i]] -= c_out[i]
            B[s, t_out[i]] += c_out[i]
        for i in range(t_in.shape[0]):
            B[t_in[i], r] -= c_in[i]
            B[t_in[i], s] += c_in[i]
        if loops:
            B[r, r] -= loops
            B[s, s] += loops

    @_njit(cache=True)
    def _scatter_dense_nb(B, old_src, old_dst, new_src, new_dst):
        for i in range(old_src.shape[0]):
            B[old_src[i], old_dst[i]] -= 1
        for i in range(new_src.shape[0]):
            B[new_src[i], new_dst[i]] += 1

    @_njit(cache=True)
    def _index_add_nb(target, idx, vals):
        for i in range(idx.shape[0]):
            target[idx[i]] += vals[i]

    @_njit(cache=True)
    def _index_sub_nb(target, idx, vals):
        for i in range(idx.shape[0]):
            target[idx[i]] -= vals[i]

    def _float_kernel_parity_ok() -> bool:
        """Bitwise probe: jitted float kernels vs the numpy references.

        The delta kernels only ever evaluate ``x log x`` on
        integer-valued float64 counts, so the probe covers small
        integers densely plus large magnitudes, and ``seq_sum`` on
        signed mixed-magnitude terms. Any single-bit disagreement
        rejects the jitted float kernels (integer kernels are immune —
        int64 arithmetic has one correct answer).
        """
        counts = np.concatenate([
            np.arange(0.0, 2048.0),
            np.array([1e4, 12345.0, 1e6, 87654321.0, 1e9, 1e12, 3e15]),
        ])
        ref = _xlogx_counts_np(counts)
        if not np.array_equal(ref, _xlogx_counts_nb(counts)):
            return False
        for x in counts:
            if _xlogx_scalar_np(float(x)) != _xlogx_scalar_nb(float(x)):
                return False
        rng = np.random.default_rng(12345)
        for size in (1, 2, 7, 63, 1024):
            terms = rng.standard_normal(size) * rng.choice(
                [1.0, 1e-9, 1e9], size=size
            )
            if _seq_sum_np(terms) != _seq_sum_nb(terms):
                return False
        return True

    _FLOAT_PARITY = _float_kernel_parity_ok()
    _seq_sum_jit = _seq_sum_nb if _FLOAT_PARITY else None
    _xlogx_scalar_jit = _xlogx_scalar_nb if _FLOAT_PARITY else None
    _xlogx_counts_jit = _xlogx_counts_nb if _FLOAT_PARITY else None
    _sym_cdf_dense_jit = _sym_cdf_dense_nb
    _sym_cdf_lines_jit = _sym_cdf_lines_nb
    _cdf_index_jit = _cdf_index_nb
    _apply_move_dense_jit = _apply_move_dense_nb
    _scatter_dense_jit = _scatter_dense_nb
    _index_add_jit = _index_add_nb
    _index_sub_jit = _index_sub_nb
else:
    _FLOAT_PARITY = False
    _seq_sum_jit = None
    _xlogx_scalar_jit = None
    _xlogx_counts_jit = None
    _sym_cdf_dense_jit = None
    _sym_cdf_lines_jit = None
    _cdf_index_jit = None
    _apply_move_dense_jit = None
    _scatter_dense_jit = None
    _index_add_jit = None
    _index_sub_jit = None


#: Compressed/dense symmetrized-row CDF assembly (int64, exact).
sym_cdf_dense = _select("sym_cdf_dense", _sym_cdf_dense_np, _sym_cdf_dense_jit)
#: CDF assembly from two materialized lines (hybrid cache hits).
sym_cdf_lines = _select("sym_cdf_lines", _sym_cdf_lines_np, _sym_cdf_lines_jit)
#: Integer-plateau inverse-CDF lookup (``side="right"`` semantics).
cdf_index = _select("cdf_index", _cdf_index_np, _cdf_index_jit)
#: Strictly left-to-right float sum (delta-MDL reduction discipline).
seq_sum = _select("seq_sum", _seq_sum_np, _seq_sum_jit)
#: Scalar ``x log x`` (corner/degree delta terms).
xlogx_scalar = _select("xlogx_scalar", _xlogx_scalar_np, _xlogx_scalar_jit)
#: Vectorized ``x log x`` over count arrays (generic delta terms).
xlogx_counts = _select("xlogx_counts", _xlogx_counts_np, _xlogx_counts_jit)
#: Dense-engine O(deg) vertex-move update.
apply_move_dense = _select(
    "apply_move_dense", _apply_move_dense_np, _apply_move_dense_jit
)
#: Dense-engine sweep-barrier edge scatter.
scatter_dense = _select("scatter_dense", _scatter_dense_np, _scatter_dense_jit)
#: Duplicate-accumulating ``target[idx] += vals``.
index_add = _select("index_add", _index_add_np, _index_add_jit)
#: Duplicate-accumulating ``target[idx] -= vals``.
index_sub = _select("index_sub", _index_sub_np, _index_sub_jit)


def jit_enabled() -> bool:
    """True when at least one dispatch name resolved to a numba kernel."""
    return any(impl == "numba" for impl in _TABLE.values())


def kernel_table() -> dict[str, str]:
    """Kernel name -> the implementation actually selected at import."""
    return dict(_TABLE)


def jit_status() -> dict[str, object]:
    """Machine-readable selection summary (diagnostics / benchmarks)."""
    return {
        "disabled_by_env": _DISABLED,
        "numba_importable": _njit is not None,
        "float_parity": bool(_FLOAT_PARITY),
        "kernels": kernel_table(),
    }
